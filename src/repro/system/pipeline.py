"""Pipelined CPU/FPGA system model (paper Section 6.1).

The DE5-Net system splits each inference between the FPGA (conv + FC) and
the host CPU (pooling, LRN, softmax). With pipelined processing — image
*i* runs its CPU layers while image *i+1* occupies the FPGA — steady-state
throughput is limited by the slower stage, and the paper states "the
execution time of CPU were hidden by FPGA".

The model combines the accelerator simulator's per-image FPGA time with
:class:`~repro.system.host.HostModel`'s CPU estimate and reports both the
FPGA-only and overall-system figures — the distinction Table 2's footnotes
draw for the [3] baseline (663.5 vs 780.6 GOP/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.accelerator import AcceleratorSimulator, ModelSimResult
from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..nn.models.arch import (
    Architecture,
    ConvDef,
    DropoutDef,
    FCDef,
    FlattenDef,
    LRNDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)
from ..hw.workload import ModelWorkload
from .host import DEFAULT_HOST_OPS_PER_SECOND, UnknownHostLayerError


def host_ops_from_architecture(architecture: Architecture) -> int:
    """Elementwise host ops per image from a symbolic architecture walk.

    Mirrors :func:`repro.system.host.host_layer_ops` without building the
    network, so full-size VGG16 never allocates its FC tensors. The two
    walks are pinned against each other by tests; an unknown layer def
    raises (like the network walk) instead of silently costing zero.
    """
    total = 0
    for layer_def, in_shape, out_shape in architecture.layer_shapes():
        in_size = in_shape[0] * in_shape[1] * in_shape[2]
        out_size = out_shape[0] * out_shape[1] * out_shape[2]
        if isinstance(layer_def, PoolDef):
            total += out_size * layer_def.kernel * layer_def.kernel
        elif isinstance(layer_def, LRNDef):
            total += in_size * 8
        elif isinstance(layer_def, SoftmaxDef):
            total += in_size * 10
        elif isinstance(layer_def, ReLUDef):
            total += in_size
        elif isinstance(layer_def, (ConvDef, FCDef, FlattenDef, DropoutDef)):
            continue
        else:
            raise UnknownHostLayerError(
                f"no host cost model for layer def {layer_def.name!r} "
                f"({type(layer_def).__name__}); add it to "
                f"host_ops_from_architecture and host_layer_ops"
            )
    return total


@dataclass(frozen=True)
class SystemResult:
    """Pipelined system outcome for one model."""

    model: str
    fpga_seconds: float
    host_seconds: float
    dense_ops: int

    @property
    def bottleneck(self) -> str:
        return "fpga" if self.fpga_seconds >= self.host_seconds else "host"

    @property
    def cpu_hidden(self) -> bool:
        """The paper's claim: CPU work fits inside the FPGA stage."""
        return self.host_seconds <= self.fpga_seconds

    @property
    def pipelined_seconds_per_image(self) -> float:
        """Steady-state per-image time of the two-stage pipeline."""
        return max(self.fpga_seconds, self.host_seconds)

    @property
    def sequential_seconds_per_image(self) -> float:
        """Per-image time without pipelining (the naive system)."""
        return self.fpga_seconds + self.host_seconds

    @property
    def fpga_gops(self) -> float:
        """FPGA-only throughput (what Table 2 reports as the main figure)."""
        return self.dense_ops / self.fpga_seconds / 1e9

    @property
    def system_gops(self) -> float:
        """Overall system throughput, pipelined."""
        return self.dense_ops / self.pipelined_seconds_per_image / 1e9

    @property
    def pipeline_speedup(self) -> float:
        """Gain of pipelining over sequential host+FPGA execution."""
        return self.sequential_seconds_per_image / self.pipelined_seconds_per_image


def run_system(
    architecture: Architecture,
    workload: ModelWorkload,
    config: AcceleratorConfig,
    device: FPGADevice,
    host_ops_per_second: float = DEFAULT_HOST_OPS_PER_SECOND,
    simulation: ModelSimResult = None,
) -> SystemResult:
    """Evaluate the pipelined system for one model.

    ``simulation`` may be supplied to reuse an existing accelerator run.
    """
    if simulation is None:
        simulation = AcceleratorSimulator(config, device).simulate(workload)
    if host_ops_per_second <= 0:
        raise ValueError("host rate must be positive")
    host_seconds = host_ops_from_architecture(architecture) / host_ops_per_second
    return SystemResult(
        model=workload.name,
        fpga_seconds=simulation.seconds_per_image,
        host_seconds=host_seconds,
        dense_ops=workload.dense_ops,
    )
