"""CPU/FPGA system-level model: host layer costs and pipelined execution."""

from .host import (
    DEFAULT_HOST_OPS_PER_SECOND,
    HostLayerCost,
    HostModel,
    UnknownHostLayerError,
    host_costs,
    host_layer_ops,
)
from .pipeline import SystemResult, host_ops_from_architecture, run_system

__all__ = [
    "HostModel",
    "HostLayerCost",
    "host_costs",
    "host_layer_ops",
    "DEFAULT_HOST_OPS_PER_SECOND",
    "UnknownHostLayerError",
    "SystemResult",
    "run_system",
    "host_ops_from_architecture",
]
