"""Host-CPU execution model for the non-accelerated layers.

In the paper's system (Section 6.1) the FPGA executes all convolution and
FC layers while "the remaining layers, such as pooling, LRN and softmax,
are executed by the host program on CPU", and pipelined processing hides
the CPU time behind the FPGA time.

This model estimates the host's per-image time from per-element operation
costs: each layer class maps to an elementwise op count, divided by the
host's sustained rate (default: a couple of vectorized Xeon cores). The
hiding claim is then *tested* against the simulated FPGA time rather than
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..nn.layers import (
    AvgPool2D,
    BatchNorm,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from ..nn.layers.base import Layer
from ..nn.network import Network
from ..nn.tensor import FeatureShape


@dataclass(frozen=True)
class HostLayerCost:
    """Estimated host work for one CPU layer."""

    name: str
    kind: str
    elementwise_ops: int

    def seconds(self, ops_per_second: float) -> float:
        if ops_per_second <= 0:
            raise ValueError("host rate must be positive")
        return self.elementwise_ops / ops_per_second


class UnknownHostLayerError(TypeError):
    """A host-side layer the cost model has no entry for.

    Returning 0 here would silently understate the CPU stage and could
    flip the paper's "CPU time is hidden" verdict, so an unrecognized
    layer is an error, not free work.
    """


def host_layer_ops(layer: Layer, input_shape: FeatureShape) -> int:
    """Elementwise operation estimate for one host layer.

    Pooling costs one compare/add per window element; LRN costs a square,
    a windowed sum (via prefix sums, ~2 ops), a power and a divide (~8 ops
    total) per element; softmax an exp+div (~10); ReLU one op; inference
    batch norm a fused scale+shift (2). Layers with no arithmetic
    (dropout, flatten) are free. Unknown layer types raise
    :class:`UnknownHostLayerError` rather than silently costing nothing.
    """
    output = layer.output_shape(input_shape)
    if isinstance(layer, (MaxPool2D, AvgPool2D)):
        return output.size * layer.kernel * layer.kernel
    if isinstance(layer, LocalResponseNorm):
        return input_shape.size * 8
    if isinstance(layer, Softmax):
        return input_shape.size * 10
    if isinstance(layer, ReLU):
        return input_shape.size
    if isinstance(layer, BatchNorm):
        return input_shape.size * 2
    if isinstance(layer, (Dropout, Flatten)):
        return 0
    raise UnknownHostLayerError(
        f"no host cost model for layer {layer.name!r} "
        f"({type(layer).__name__}); add it to host_layer_ops"
    )


def host_costs(network: Network) -> List[HostLayerCost]:
    """Host cost of every CPU-side layer of a network, in order."""
    costs = []
    shape = network.input_shape
    for layer in network:
        if not layer.runs_on_accelerator:
            costs.append(
                HostLayerCost(
                    name=layer.name,
                    kind=type(layer).__name__,
                    elementwise_ops=host_layer_ops(layer, shape),
                )
            )
        shape = layer.output_shape(shape)
    return costs


#: Default sustained host rate. The DE5-Net sits in a Xeon-class host; a
#: couple of vectorized cores sustain ~4 G elementwise ops/s on pooling/LRN
#: loops, which is what the paper's pipelining claim presumes.
DEFAULT_HOST_OPS_PER_SECOND = 4e9


@dataclass(frozen=True)
class HostModel:
    """The host CPU: per-image time for the non-accelerated layers."""

    ops_per_second: float = DEFAULT_HOST_OPS_PER_SECOND

    def seconds_per_image(self, network: Network) -> float:
        return sum(c.seconds(self.ops_per_second) for c in host_costs(network))

    def breakdown(self, network: Network) -> Sequence[Tuple[str, float]]:
        """(layer, seconds) pairs for reporting."""
        return [
            (cost.name, cost.seconds(self.ops_per_second))
            for cost in host_costs(network)
        ]
