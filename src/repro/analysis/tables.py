"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a monospace table with right-aligned numeric columns."""
    cells = [[_format(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for original, row in zip(rows, cells):
        rendered = []
        for i, (value, cell) in enumerate(zip(original, row)):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                rendered.append(cell.rjust(widths[i]))
            else:
                rendered.append(cell.ljust(widths[i]))
        lines.append("  ".join(rendered))
    return "\n".join(lines)


def _format(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        if magnitude >= 0.1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def format_mop(ops: float) -> float:
    """Operations -> MOP with sensible rounding (paper Table 1 units)."""
    return ops / 1e6


def format_pct(fraction: float) -> str:
    """Fraction -> percentage string."""
    return f"{fraction:.1%}"
