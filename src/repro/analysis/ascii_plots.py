"""ASCII plotting for the paper's figures (no plotting library offline).

Two primitives cover everything the paper draws: a line/scatter plot
(Figure 6's boost curve, Figure 1's roofline levels) and a 2-D heatmap
(Figure 7's S_ec x N_cu throughput surface).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

#: Glyph ramp for heatmaps, light to dark.
HEAT_RAMP = " .:-=+*#%@"


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    title: str = "",
    mark_x: Optional[float] = None,
) -> str:
    """Render y(x) as an ASCII scatter/line chart.

    ``mark_x`` draws a vertical marker (the chosen design point).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / x_span * (width - 1)))

    def row(y: float) -> int:
        return min(height - 1, int((y_hi - y) / y_span * (height - 1)))

    if mark_x is not None:
        c = col(mark_x)
        for r in range(height):
            grid[r][c] = "|"
    for x, y in zip(xs, ys):
        grid[row(y)][col(x)] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.3g} +" + "".join(grid[0]))
    for r in range(1, height - 1):
        lines.append(" " * 10 + " |" + "".join(grid[r]))
    lines.append(f"{y_lo:>10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_lo:<6.3g}" + " " * (width - 12) + f"{x_hi:>6.3g}")
    return "\n".join(lines)


def heatmap(
    values: Mapping[Tuple[int, int], float],
    title: str = "",
    mark: Optional[Tuple[int, int]] = None,
    mask: Optional[Mapping[Tuple[int, int], bool]] = None,
) -> str:
    """Render a sparse (x, y) -> value map as an ASCII heatmap.

    ``mask`` marks infeasible cells (rendered ``x``); ``mark`` highlights
    one cell with ``O`` (the paper's chosen design point).
    """
    if not values:
        raise ValueError("empty heatmap")
    xs = sorted({x for x, _ in values})
    ys = sorted({y for _, y in values})
    # Infeasible cells render as 'x' and must not stretch the color scale.
    usable = [
        v for k, v in values.items() if mask is None or not mask.get(k, False)
    ]
    if not usable:
        usable = list(values.values())
    lo, hi = min(usable), max(usable)
    span = (hi - lo) or 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "      " + " ".join(f"{x:>3}" for x in xs)
    lines.append(header)
    for y in reversed(ys):
        cells = []
        for x in xs:
            key = (x, y)
            if key not in values:
                cells.append("  .")
                continue
            if mask is not None and mask.get(key, False):
                cells.append("  x")
                continue
            if mark == key:
                cells.append("  O")
                continue
            level = int((values[key] - lo) / span * (len(HEAT_RAMP) - 1))
            level = max(0, min(len(HEAT_RAMP) - 1, level))
            cells.append("  " + HEAT_RAMP[level])
        lines.append(f"{y:>5} " + " ".join(cells))
    lines.append(f"scale: '{HEAT_RAMP[0]}'={lo:.3g} .. '{HEAT_RAMP[-1]}'={hi:.3g}"
                 + ("   x = infeasible" if mask else "")
                 + ("   O = chosen" if mark else ""))
    return "\n".join(lines)
