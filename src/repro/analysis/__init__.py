"""Reporting helpers: tables and paper-vs-measured comparisons."""

from .ascii_plots import heatmap, line_plot
from .compare import Comparison, render_comparisons, worst_error
from .report import generate_report, write_report
from .tables import format_mop, format_pct, render_table

__all__ = [
    "Comparison",
    "render_comparisons",
    "worst_error",
    "render_table",
    "format_mop",
    "format_pct",
    "line_plot",
    "heatmap",
    "generate_report",
    "write_report",
]
