"""Paper-vs-measured comparison records.

Every experiment emits :class:`Comparison` rows so EXPERIMENTS.md and the
benchmark harness can report how closely the reproduction tracks the
published numbers, and the test suite can assert the *shape* claims
(who wins, by roughly what factor) within explicit tolerance bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    experiment: str
    metric: str
    paper: float
    measured: float

    @property
    def ratio(self) -> float:
        """measured / paper (1.0 = exact reproduction)."""
        if self.paper == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.paper

    @property
    def relative_error(self) -> float:
        """|measured - paper| / |paper|."""
        if self.paper == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return abs(self.measured - self.paper) / abs(self.paper)

    def within(self, tolerance: float) -> bool:
        """True when the relative error is inside the tolerance band."""
        return self.relative_error <= tolerance


def render_comparisons(rows: Sequence[Comparison], title: str = "") -> str:
    """Monospace paper-vs-measured table."""
    from .tables import render_table

    table_rows: List[Sequence[object]] = [
        (row.metric, row.paper, row.measured, f"{row.ratio:.2f}x", f"{row.relative_error:.1%}")
        for row in rows
    ]
    return render_table(
        ("metric", "paper", "measured", "ratio", "rel err"),
        table_rows,
        title=title or None,
    )


def worst_error(rows: Sequence[Comparison]) -> float:
    """Largest relative error across a comparison set."""
    if not rows:
        return 0.0
    return max(row.relative_error for row in rows)
