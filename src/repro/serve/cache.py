"""LRU cache of deployed models.

Deployment is the expensive step of the serving path: it re-walks the
encoded layers, checks buffer fits and serializes the weight blob
(:func:`repro.deploy.deploy`). A serving frontend that flips between a
handful of models should pay that once per (model, configuration, device)
triple, the way an OpenCL host caches compiled kernels per device.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, List, Optional, Sequence, Tuple, TypeVar

from ..core.specs import LayerSpec
from ..deploy import DeployedModel, deploy
from ..hw.config import AcceleratorConfig
from ..hw.device import STRATIX_V_GXA7, FPGADevice
from ..pipeline import QuantizedPipeline
from ..telemetry.caches import CacheStats, register_cache_object

T = TypeVar("T")

def __getattr__(name: str):
    # Deprecated alias: :class:`repro.telemetry.caches.CacheStats` is the
    # uniform stats record now; the field order matches the historical
    # ``CacheInfo(hits, misses, evictions, size, capacity)`` exactly.
    # Lazy so importing the module never warns — only touching the alias.
    if name == "CacheInfo":
        import warnings

        warnings.warn(
            "repro.serve.cache.CacheInfo is deprecated; use "
            "repro.telemetry.caches.CacheStats",
            DeprecationWarning,
            stacklevel=2,
        )
        return CacheStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class LRUCache:
    """A small least-recently-used cache with explicit accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> List[Hashable]:
        """Keys from least- to most-recently used."""
        return list(self._entries)

    def get_or_create(self, key: Hashable, factory: Callable[[], T]) -> T:
        """Return the cached value for ``key``, creating it on a miss."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]  # type: ignore[return-value]
        self.misses += 1
        value = factory()
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def info(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )


def deployment_key(
    model: str, config: Optional[AcceleratorConfig], device: FPGADevice
) -> Tuple[str, Optional[AcceleratorConfig], str]:
    """Cache key of one deployment: (model, config, device).

    ``config=None`` means "let the DSE flow choose"; that choice depends
    only on the workload and device, so ``None`` is itself a stable key.
    """
    return (model, config, device.name)


class DeploymentCache:
    """LRU cache mapping (model, config, device) to a deployed model.

    Each instance registers itself (via weak reference) as the
    ``serve.deploy`` telemetry cache family; the most recently constructed
    cache wins the name, and a collected cache drops out of snapshots.
    """

    def __init__(self, capacity: int = 4) -> None:
        self._cache = LRUCache(capacity)
        register_cache_object(
            "serve.deploy",
            self,
            lambda cache: cache._stats(),
        )

    def _stats(self) -> CacheStats:
        info = self._cache.info()
        return CacheStats(
            hits=info.hits,
            misses=info.misses,
            evictions=info.evictions,
            size=info.size,
            capacity=info.capacity,
            name="serve.deploy",
        )

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def evictions(self) -> int:
        return self._cache.evictions

    def __len__(self) -> int:
        return len(self._cache)

    def info(self) -> CacheStats:
        return self._cache.info()

    def get_or_deploy(
        self,
        pipeline: QuantizedPipeline,
        specs: Sequence[LayerSpec],
        config: Optional[AcceleratorConfig] = None,
        device: FPGADevice = STRATIX_V_GXA7,
    ) -> DeployedModel:
        """A deployed model for the triple, re-encoding only on a miss."""
        key = deployment_key(pipeline.network.name, config, device)
        return self._cache.get_or_create(
            key,
            lambda: deploy(pipeline, specs, config=config, device=device),
        )
