"""Request queue and dynamic batcher for the serving simulator.

The batcher implements the standard serving trade-off between latency and
occupancy: requests accumulate in an open batch until either the batch
reaches ``max_batch`` images (close immediately — the accelerator's
``S_ec`` feature-buffer lanes are full) or the *oldest* queued request has
waited ``max_wait_s`` (close on deadline so tail latency stays bounded).
Batch formation is a pure function of the arrival sequence and the policy,
which is what makes the invariants directly testable:

- no batch ever exceeds ``max_batch`` requests,
- no request waits in the queue past ``max_wait_s`` before dispatch,
- every request appears in exactly one batch, in arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BatchPolicy:
    """Dynamic-batching knobs: size cap and queueing-delay cap."""

    max_batch: int = 8
    max_wait_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s cannot be negative")


@dataclass(frozen=True)
class ServeRequest:
    """One inference request: an image and its (virtual) arrival time."""

    request_id: int
    arrival_s: float
    image: np.ndarray

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time cannot be negative")


@dataclass(frozen=True)
class Batch:
    """A closed batch: the requests plus the virtual time it was sealed."""

    requests: Tuple[ServeRequest, ...]
    close_s: float

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch cannot be empty")

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def first_arrival_s(self) -> float:
        return self.requests[0].arrival_s

    @property
    def queue_span_s(self) -> float:
        """How long the oldest request sat queued before the batch closed."""
        return self.close_s - self.first_arrival_s


def form_batches(
    requests: Sequence[ServeRequest], policy: BatchPolicy
) -> List[Batch]:
    """Group requests into dispatch batches under a batching policy.

    A batch closes the instant its ``max_batch``-th request arrives, or at
    ``first_arrival + max_wait_s`` when the next request would arrive too
    late (including the trailing partial batch once arrivals stop).
    """
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    batches: List[Batch] = []
    open_batch: List[ServeRequest] = []
    for request in ordered:
        if open_batch:
            deadline = open_batch[0].arrival_s + policy.max_wait_s
            if request.arrival_s > deadline:
                batches.append(Batch(tuple(open_batch), close_s=deadline))
                open_batch = []
        open_batch.append(request)
        if len(open_batch) >= policy.max_batch:
            batches.append(Batch(tuple(open_batch), close_s=request.arrival_s))
            open_batch = []
    if open_batch:
        batches.append(
            Batch(
                tuple(open_batch),
                close_s=open_batch[0].arrival_s + policy.max_wait_s,
            )
        )
    return batches


def poisson_arrivals(
    count: int, rate_rps: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times (seconds) of a Poisson process at ``rate_rps``."""
    if count < 1:
        raise ValueError("need at least one arrival")
    if rate_rps <= 0:
        raise ValueError("arrival rate must be positive")
    gaps = rng.exponential(scale=1.0 / rate_rps, size=count)
    return np.cumsum(gaps)


def uniform_arrivals(count: int, rate_rps: float) -> np.ndarray:
    """Deterministic, evenly spaced arrivals at ``rate_rps``."""
    if count < 1:
        raise ValueError("need at least one arrival")
    if rate_rps <= 0:
        raise ValueError("arrival rate must be positive")
    return np.arange(count) / rate_rps


def make_requests(
    images: Sequence[np.ndarray], arrivals: Sequence[float]
) -> List[ServeRequest]:
    """Pair images with arrival times into a request stream."""
    if len(images) != len(arrivals):
        raise ValueError(
            f"{len(images)} images for {len(arrivals)} arrival times"
        )
    return [
        ServeRequest(request_id=i, arrival_s=float(t), image=np.asarray(img))
        for i, (img, t) in enumerate(zip(images, arrivals))
    ]
