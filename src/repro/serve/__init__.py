"""Batched multi-accelerator serving (simulated, virtual-clock).

Two engines share one timing model:

- :class:`ServingSimulator` — the reference implementation: offline
  batch formation (:func:`form_batches`) over real deployed pipelines,
  with full numerics on every request.
- :class:`EventDrivenSimulator` — the fleet-scale engine: a
  priority-queue event loop over :class:`ServiceProfile` timing records
  (:mod:`repro.serve.fleet`) that pushes millions of simulated requests
  through in seconds, with continuous batching, SLO classes, admission
  control and autoscaling. Differentially pinned against the reference.

Load comes from :mod:`repro.serve.loadgen` traces (Poisson, diurnal,
burst). See ``docs/serving.md``.
"""

from .batcher import (
    Batch,
    BatchPolicy,
    ServeRequest,
    form_batches,
    make_requests,
    poisson_arrivals,
    uniform_arrivals,
)
from .cache import CacheStats, DeploymentCache, LRUCache, deployment_key
from .events import (
    DEFAULT_SLO,
    EventBatch,
    EventDrivenSimulator,
    EventOutcome,
    EventReport,
    EventRequest,
    SLOClass,
)
from .fleet import (
    AutoscalePolicy,
    Fleet,
    Instance,
    PipelinedProfile,
    ScaleEvent,
    ServiceProfile,
)
from .mixed import (
    FleetGroup,
    MixedFleetReport,
    simulate_mixed_fleet,
    trace_requests,
)
from .loadgen import (
    LoadTrace,
    TRACE_KINDS,
    burst_trace,
    diurnal_trace,
    make_trace,
    poisson_trace,
    uniform_trace,
)
from .simulator import (
    BatchTrace,
    ServeReport,
    ServingSimulator,
    build_worker_pool,
)
from .stats import Rejection, ServeResponse, ServeStats

__all__ = [
    "AutoscalePolicy",
    "Batch",
    "BatchPolicy",
    "BatchTrace",
    "CacheInfo",
    "CacheStats",
    "DEFAULT_SLO",
    "DeploymentCache",
    "EventBatch",
    "EventDrivenSimulator",
    "EventOutcome",
    "EventReport",
    "EventRequest",
    "Fleet",
    "FleetGroup",
    "Instance",
    "LRUCache",
    "LoadTrace",
    "MixedFleetReport",
    "PipelinedProfile",
    "Rejection",
    "SLOClass",
    "ScaleEvent",
    "ServeReport",
    "ServeRequest",
    "ServeResponse",
    "ServeStats",
    "ServiceProfile",
    "ServingSimulator",
    "TRACE_KINDS",
    "build_worker_pool",
    "burst_trace",
    "deployment_key",
    "diurnal_trace",
    "form_batches",
    "make_requests",
    "make_trace",
    "poisson_arrivals",
    "poisson_trace",
    "simulate_mixed_fleet",
    "trace_requests",
    "uniform_arrivals",
    "uniform_trace",
]


def __getattr__(name: str):
    # Deprecated: kept importable from the package for backwards
    # compatibility; the warning fires in repro.serve.cache.__getattr__.
    if name == "CacheInfo":
        from . import cache

        return cache.CacheInfo
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
