"""Batched multi-accelerator serving runtime (simulated).

Grows the single-image :class:`repro.runtime.SystemRuntime` into a serving
system: a request queue with a dynamic batcher, a pool of N simulated
accelerator instances, an LRU cache of deployed models, and serving
telemetry. See ``docs/serving.md``.
"""

from .batcher import (
    Batch,
    BatchPolicy,
    ServeRequest,
    form_batches,
    make_requests,
    poisson_arrivals,
    uniform_arrivals,
)
from .cache import CacheInfo, CacheStats, DeploymentCache, LRUCache, deployment_key
from .simulator import (
    BatchTrace,
    ServeReport,
    ServingSimulator,
    build_worker_pool,
)
from .stats import ServeResponse, ServeStats

__all__ = [
    "Batch",
    "BatchPolicy",
    "BatchTrace",
    "CacheInfo",
    "CacheStats",
    "DeploymentCache",
    "LRUCache",
    "ServeReport",
    "ServeRequest",
    "ServeResponse",
    "ServeStats",
    "ServingSimulator",
    "build_worker_pool",
    "deployment_key",
    "form_batches",
    "make_requests",
    "poisson_arrivals",
    "uniform_arrivals",
]
