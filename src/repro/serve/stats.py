"""Serving telemetry: per-request latency, queue depth, batches, GOP/s.

All times are virtual (simulated) seconds. The arithmetic is deliberately
elementary — sorted-order percentiles, event-walk queue depths — so the
test suite can pin every figure against hand-computed values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Rejection:
    """One request turned away by admission control, with the reason."""

    request_id: int
    slo: str
    arrival_s: float
    reason: str


@dataclass(frozen=True)
class ServeResponse:
    """One completed request with its full timing attribution."""

    request_id: int
    worker_id: int
    batch_id: int
    batch_size: int
    arrival_s: float
    close_s: float
    start_s: float
    finish_s: float
    output: np.ndarray
    top1: int

    @property
    def batch_wait_s(self) -> float:
        """Time spent waiting for the batch to close."""
        return self.close_s - self.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Time from arrival until the batch starts on a worker."""
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        """Time the batch occupied its accelerator instance."""
        return self.finish_s - self.start_s

    @property
    def latency_s(self) -> float:
        """End-to-end request latency."""
        return self.finish_s - self.arrival_s


class ServeStats:
    """Aggregate statistics over one simulated serving run."""

    def __init__(
        self,
        responses: Sequence[ServeResponse],
        dense_ops_per_image: int,
        rejections: Sequence[Rejection] = (),
    ) -> None:
        if not responses:
            raise ValueError("stats need at least one response")
        if dense_ops_per_image < 0:
            raise ValueError("dense ops cannot be negative")
        self.responses: Tuple[ServeResponse, ...] = tuple(
            sorted(responses, key=lambda r: r.request_id)
        )
        self.dense_ops_per_image = dense_ops_per_image
        self.rejections: Tuple[Rejection, ...] = tuple(rejections)

    # ---- request counts ------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.responses)

    @property
    def batch_count(self) -> int:
        return len({r.batch_id for r in self.responses})

    def batch_size_histogram(self) -> Dict[int, int]:
        """batch size -> number of batches dispatched at that size."""
        sizes = {r.batch_id: r.batch_size for r in self.responses}
        histogram: Dict[int, int] = {}
        for size in sizes.values():
            histogram[size] = histogram.get(size, 0) + 1
        return dict(sorted(histogram.items()))

    @property
    def mean_batch_size(self) -> float:
        return self.count / self.batch_count

    # ---- admission -----------------------------------------------------

    @property
    def rejected_count(self) -> int:
        return len(self.rejections)

    @property
    def offered_count(self) -> int:
        """Served plus rejected — the load the clients actually offered."""
        return self.count + self.rejected_count

    @property
    def rejection_rate(self) -> float:
        return self.rejected_count / self.offered_count

    def rejections_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rejection in self.rejections:
            counts[rejection.reason] = counts.get(rejection.reason, 0) + 1
        return dict(sorted(counts.items()))

    def rejections_by_class(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rejection in self.rejections:
            counts[rejection.slo] = counts.get(rejection.slo, 0) + 1
        return dict(sorted(counts.items()))

    # ---- SLO classes ---------------------------------------------------

    def slo_classes(self) -> List[str]:
        """Distinct SLO class names present, sorted ("" when untagged)."""
        return sorted({getattr(r, "slo", "") for r in self.responses})

    # ---- latency -------------------------------------------------------

    def latencies_s(self, slo: Optional[str] = None) -> List[float]:
        """Per-request latencies; ``slo`` filters to one class."""
        if slo is None:
            return [r.latency_s for r in self.responses]
        latencies = [
            r.latency_s
            for r in self.responses
            if getattr(r, "slo", "") == slo
        ]
        if not latencies:
            raise ValueError(f"no responses in SLO class {slo!r}")
        return latencies

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.latencies_s()))

    @property
    def max_latency_s(self) -> float:
        return float(max(self.latencies_s()))

    def latency_percentile_s(
        self, percentile: float, slo: Optional[str] = None
    ) -> float:
        """Nearest-rank latency percentile (0 < percentile <= 100)."""
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        ordered = sorted(self.latencies_s(slo))
        rank = int(np.ceil(percentile / 100 * len(ordered))) - 1
        return ordered[max(rank, 0)]

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile_s(50)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile_s(95)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile_s(99)

    @property
    def p999_latency_s(self) -> float:
        return self.latency_percentile_s(99.9)

    @property
    def mean_queue_wait_s(self) -> float:
        return float(np.mean([r.queue_wait_s for r in self.responses]))

    # ---- queue depth ---------------------------------------------------

    def queue_depth_timeline(self) -> List[Tuple[float, int]]:
        """(time, depth) steps of the number of queued-but-unstarted requests.

        Depth rises at each arrival and falls when the request's batch
        starts on a worker; simultaneous events collapse into one step.
        """
        events: Dict[float, int] = {}
        for response in self.responses:
            events[response.arrival_s] = events.get(response.arrival_s, 0) + 1
            events[response.start_s] = events.get(response.start_s, 0) - 1
        depth = 0
        timeline: List[Tuple[float, int]] = []
        for time in sorted(events):
            depth += events[time]
            timeline.append((time, depth))
        return timeline

    @property
    def max_queue_depth(self) -> int:
        return max(depth for _, depth in self.queue_depth_timeline())

    # ---- throughput ----------------------------------------------------

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion, in virtual seconds."""
        start = min(r.arrival_s for r in self.responses)
        finish = max(r.finish_s for r in self.responses)
        return finish - start

    @property
    def requests_per_second(self) -> float:
        return self.count / self.makespan_s

    @property
    def aggregate_gops(self) -> float:
        """Dense-op throughput of the whole pool over the run (paper basis)."""
        return self.count * self.dense_ops_per_image / self.makespan_s / 1e9

    def worker_busy_s(self) -> Dict[int, float]:
        """worker id -> total virtual seconds spent executing batches."""
        batch_service: Dict[int, Tuple[int, float]] = {
            r.batch_id: (r.worker_id, r.service_s) for r in self.responses
        }
        busy: Dict[int, float] = {}
        for worker_id, service in batch_service.values():
            busy[worker_id] = busy.get(worker_id, 0.0) + service
        return dict(sorted(busy.items()))

    def worker_utilization(self) -> Dict[int, float]:
        """worker id -> busy fraction of the makespan."""
        span = self.makespan_s
        if span <= 0:
            return {w: 0.0 for w in self.worker_busy_s()}
        return {w: busy / span for w, busy in self.worker_busy_s().items()}

    # ---- reporting -----------------------------------------------------

    def render(self) -> str:
        """Human-readable summary block for the CLI."""
        histogram = ", ".join(
            f"{size}x{count}" for size, count in self.batch_size_histogram().items()
        )
        utilization = "  ".join(
            f"w{worker}: {fraction:.0%}"
            for worker, fraction in self.worker_utilization().items()
        )
        lines = [
            f"requests:        {self.count} in {self.batch_count} batches "
            f"(sizes {histogram})",
            f"makespan:        {self.makespan_s * 1e3:.3f} ms virtual",
            f"latency:         mean {self.mean_latency_s * 1e3:.3f} ms   "
            f"p50 {self.p50_latency_s * 1e3:.3f} ms   "
            f"p95 {self.p95_latency_s * 1e3:.3f} ms   "
            f"max {self.max_latency_s * 1e3:.3f} ms",
            f"queue:           mean wait {self.mean_queue_wait_s * 1e3:.3f} ms   "
            f"max depth {self.max_queue_depth}",
            f"throughput:      {self.requests_per_second:.1f} img/s   "
            f"{self.aggregate_gops:.1f} GOP/s aggregate",
            f"worker busy:     {utilization}",
        ]
        if self.rejections:
            reasons = ", ".join(
                f"{reason}: {count}"
                for reason, count in self.rejections_by_reason().items()
            )
            by_class = ", ".join(
                f"{slo}: {count}"
                for slo, count in self.rejections_by_class().items()
            )
            lines.append(
                f"rejected:        {self.rejected_count} of "
                f"{self.offered_count} offered "
                f"({self.rejection_rate:.1%}; {reasons}; by class {by_class})"
            )
        return "\n".join(lines)
