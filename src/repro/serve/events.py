"""Event-driven, virtual-clock serving simulator.

This is the fleet-scale engine behind ``serve-sim --engine events``: a
priority-queue event loop over *virtual* time that pushes millions of
simulated requests through in seconds of wall time. It is a pure timing
simulator — instances are :class:`repro.serve.fleet.ServiceProfile`
records, not live pipelines — and it is **differentially pinned** against
the reference :class:`repro.serve.simulator.ServingSimulator`: with one
SLO class, windowed batching and no autoscaling, per-request latencies
and batch compositions are *exactly* (float-for-float) equal
(``tests/test_serve_events.py``).

Event kinds, in tie-break order at equal virtual times:

1. ``FINISH`` — an instance completes a batch (or one streamed image in
   continuous mode); waiting work dispatches immediately.
2. ``ARRIVAL`` — a request arrives; admission control may reject it,
   otherwise it joins its SLO class's open batch (windows mode) or queue
   (continuous mode). Arrivals are walked straight off the sorted trace
   array, so they never enter the heap.
3. ``SEAL`` — a batching window expires (``max_wait_s`` after the oldest
   member arrived); processed after same-instant arrivals so a request
   arriving exactly at the deadline still joins, matching
   :func:`repro.serve.batcher.form_batches`.
4. ``SCALE`` — the autoscaler evaluates its policy.

Batching modes:

- **windows** (default, reference-equivalent): a batch seals when full
  (``max_batch``) or at its window deadline, then dispatches whole to the
  earliest-free instance.
- **continuous**: no windows — each instance is a pipelined stream, and
  queued requests are admitted *into the in-flight batch* whenever a
  stream lane (``max_batch`` of them) frees up. An admitted request
  finishes at ``max(now + fill, tail + step)``: either it refills a
  drained pipeline or it slots in behind the last scheduled image.

SLO classes are served strictly by priority; per-class ``queue_limit``
gives admission control, and rejected requests surface in the report,
``ServeStats`` and the telemetry snapshot with their reasons.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..telemetry.context import Telemetry
from ..telemetry.spans import VirtualClock
from .batcher import BatchPolicy
from .fleet import AutoscalePolicy, Fleet, ScaleEvent, ServiceProfile
from .loadgen import LoadTrace
from .stats import Rejection, ServeStats

__all__ = [
    "DEFAULT_SLO",
    "EventBatch",
    "EventDrivenSimulator",
    "EventOutcome",
    "EventReport",
    "EventRequest",
    "SLOClass",
]

# Tie-break ranks of same-instant events (see module docstring).
_FINISH, _ARRIVAL, _SEAL, _SCALE = 0, 1, 2, 3


@dataclass(frozen=True)
class SLOClass:
    """One service-level class of the request population.

    ``priority`` orders dispatch (lower = more latency-sensitive, served
    first); ``queue_limit`` bounds the class's admitted-but-unstarted
    requests (admission control — arrivals beyond it are rejected with
    reason ``"queue_full"``); ``max_wait_s`` optionally overrides the
    batch policy's window deadline for this class;
    ``target_latency_s`` is the SLO target reported alongside the
    measured percentiles (it does not change scheduling).
    """

    name: str
    priority: int = 0
    target_latency_s: Optional[float] = None
    queue_limit: Optional[int] = None
    max_wait_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an SLO class needs a name")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None)")
        if self.max_wait_s is not None and self.max_wait_s < 0:
            raise ValueError("max_wait_s cannot be negative")
        if self.target_latency_s is not None and self.target_latency_s <= 0:
            raise ValueError("target_latency_s must be positive")


DEFAULT_SLO = SLOClass("standard")


@dataclass(frozen=True)
class EventRequest:
    """One simulated request: id, arrival time and SLO class name."""

    request_id: int
    arrival_s: float
    slo: str = DEFAULT_SLO.name

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time cannot be negative")


@dataclass(frozen=True)
class EventOutcome:
    """One served request's full timing attribution.

    Same timing surface as :class:`repro.serve.stats.ServeResponse`
    (so :class:`ServeStats` consumes either), plus the SLO class; the
    event engine carries no payloads, so there is no output tensor.
    """

    request_id: int
    slo: str
    worker_id: int
    batch_id: int
    batch_size: int
    arrival_s: float
    close_s: float
    start_s: float
    finish_s: float

    @property
    def batch_wait_s(self) -> float:
        return self.close_s - self.arrival_s

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass(frozen=True)
class EventBatch:
    """Dispatch record of one batch (windows) or stream run (continuous)."""

    batch_id: int
    worker_id: int
    slo: str
    size: int
    close_s: float
    start_s: float
    finish_s: float


@dataclass(frozen=True)
class EventReport:
    """Everything one event-driven serving run produced."""

    outcomes: Tuple[EventOutcome, ...]
    rejections: Tuple[Rejection, ...]
    batches: Tuple[EventBatch, ...]
    scale_events: Tuple[ScaleEvent, ...]
    class_names: Tuple[str, ...]
    offered: int
    served: int
    makespan_s: float
    max_queue_depth: int
    final_instances: int
    peak_instances: int
    busy_seconds: Dict[int, float]
    dense_ops_per_image: int
    records_collected: bool

    @property
    def rejected(self) -> int:
        return len(self.rejections)

    @property
    def requests_per_second(self) -> float:
        return self.served / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def stats(self) -> ServeStats:
        """ServeStats over the outcomes (needs ``collect_records=True``)."""
        if not self.records_collected:
            raise ValueError(
                "per-request records were not collected "
                "(engine ran with collect_records=False)"
            )
        return ServeStats(
            self.outcomes,
            dense_ops_per_image=self.dense_ops_per_image,
            rejections=self.rejections,
        )


class _ClassState:
    """Mutable per-SLO-class serving state (internal)."""

    __slots__ = ("open", "open_seq", "queue", "queue_head", "pending",
                 "max_wait_s", "limit", "priority", "name")

    def __init__(self, slo: SLOClass, max_wait_s: float) -> None:
        self.name = slo.name
        self.priority = slo.priority
        self.limit = slo.queue_limit
        self.max_wait_s = (
            slo.max_wait_s if slo.max_wait_s is not None else max_wait_s
        )
        self.open: List[Tuple[int, float]] = []  # windows: open batch
        self.open_seq = 0  # generation counter invalidating stale SEALs
        self.queue: List[Tuple[int, float]] = []  # continuous: FIFO queue
        self.queue_head = 0  # pop index (amortized O(1) FIFO on a list)
        self.pending = 0  # admitted but not yet started

    def queue_len(self) -> int:
        return len(self.queue) - self.queue_head


class EventDrivenSimulator:
    """Virtual-clock, event-driven serving over a simulated fleet."""

    def __init__(
        self,
        profile: ServiceProfile,
        policy: BatchPolicy,
        classes: Sequence[SLOClass] = (DEFAULT_SLO,),
        instances: int = 1,
        continuous: bool = False,
        autoscale: Optional[AutoscalePolicy] = None,
        telemetry: Optional[Telemetry] = None,
        record_spans: bool = True,
        collect_records: bool = True,
    ) -> None:
        """``collect_records=False`` skips per-request outcome/batch
        materialization (fleet-scale runs keep only aggregate latencies
        and the telemetry instruments); ``record_spans=False`` keeps the
        metrics registry wiring but skips the per-batch span tree."""
        if instances < 1:
            raise ValueError("need at least one instance")
        if not classes:
            raise ValueError("need at least one SLO class")
        names = [slo.name for slo in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO class names in {names}")
        if autoscale is not None and not (
            autoscale.min_instances <= instances <= autoscale.max_instances
        ):
            raise ValueError(
                "initial instance count must lie within "
                "[min_instances, max_instances] of the autoscale policy"
            )
        self.profile = profile
        self.policy = policy
        self.classes = tuple(classes)
        self.instances = instances
        self.continuous = continuous
        self.autoscale = autoscale
        self.telemetry = telemetry
        self.record_spans = record_spans
        self.collect_records = collect_records
        self.clock = VirtualClock()
        self._class_index = {slo.name: i for i, slo in enumerate(self.classes)}

    # ---- entry points ---------------------------------------------------

    def run(self, requests: Sequence[EventRequest]) -> EventReport:
        """Simulate an explicit request list (tests, small CLI runs)."""
        if not requests:
            raise ValueError("need at least one request")
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        ids = [r.request_id for r in ordered]
        if len(set(ids)) != len(ids):
            raise ValueError("request ids must be unique")
        arrivals = [r.arrival_s for r in ordered]
        try:
            class_ids = [self._class_index[r.slo] for r in ordered]
        except KeyError as error:
            raise ValueError(f"unknown SLO class {error.args[0]!r}") from None
        return self._simulate(ids, arrivals, class_ids)

    def run_trace(self, trace: LoadTrace) -> EventReport:
        """Simulate a generated :class:`LoadTrace` (fleet-scale path)."""
        try:
            remap = [self._class_index[name] for name in trace.class_names]
        except KeyError as error:
            raise ValueError(
                f"trace class {error.args[0]!r} not among engine classes "
                f"{sorted(self._class_index)}"
            ) from None
        class_ids = [remap[i] for i in trace.class_ids.tolist()]
        arrivals = trace.arrivals.tolist()
        return self._simulate(list(range(len(arrivals))), arrivals, class_ids)

    # ---- the event loop -------------------------------------------------

    def _simulate(
        self,
        ids: List[int],
        arrivals: List[float],
        class_ids: List[int],
    ) -> EventReport:
        profile = self.profile
        fill = profile.fill_s
        step = profile.step_s
        max_batch = self.policy.max_batch
        continuous = self.continuous
        collect = self.collect_records
        fleet = Fleet(profile, self.instances)
        states = [
            _ClassState(slo, self.policy.max_wait_s) for slo in self.classes
        ]
        by_priority = sorted(
            range(len(states)), key=lambda i: (states[i].priority, i)
        )

        heap: List[tuple] = []  # (time, rank, seq, a, b)
        seq = 0
        dispatch: List[tuple] = []  # (priority, close_s, bseq, cls, members)
        bseq = 0
        next_batch_id = 0

        n = len(arrivals)
        i = 0  # next arrival index
        queued = 0  # admitted but not started, across classes
        max_queued = 0
        in_service = 0  # outstanding FINISH events
        last_scale_s = -float("inf")
        scale_events: List[ScaleEvent] = []

        rejections: List[Rejection] = []
        # Parallel per-request record columns (materialized at the end).
        rec_rid: List[int] = []
        rec_cls: List[int] = []
        rec_worker: List[int] = []
        rec_batch: List[int] = []
        rec_arrival: List[float] = []
        rec_close: List[float] = []
        rec_start: List[float] = []
        rec_finish: List[float] = []
        # Aggregates kept even when records are off.
        lat_by_class: List[List[float]] = [[] for _ in states]
        wait_all: List[float] = []
        served = 0
        last_finish_s = arrivals[0] if n else 0.0
        first_arrival_s = arrivals[0] if n else 0.0
        # Batch traces; continuous mode finalizes stream runs at the end.
        batch_rows: List[list] = []  # [id, worker, cls, size, close, start, finish]
        run_of_instance: Dict[int, int] = {}  # continuous: open run per instance

        def more_work() -> bool:
            return i < n or queued > 0 or in_service > 0

        def record(rid: int, cls: int, worker: int, batch: int,
                   arrival: float, close: float, start: float,
                   finish: float) -> None:
            nonlocal served, last_finish_s
            served += 1
            lat_by_class[cls].append(finish - arrival)
            wait_all.append(start - arrival)
            if finish > last_finish_s:
                last_finish_s = finish
            if collect:
                rec_rid.append(rid)
                rec_cls.append(cls)
                rec_worker.append(worker)
                rec_batch.append(batch)
                rec_arrival.append(arrival)
                rec_close.append(close)
                rec_start.append(start)
                rec_finish.append(finish)

        # ---- windows mode helpers ----------------------------------

        def seal(cls: int, close_s: float) -> None:
            nonlocal bseq
            state = states[cls]
            members = state.open
            state.open = []
            state.open_seq += 1
            heappush(dispatch, (state.priority, close_s, bseq, cls, members))
            bseq += 1
            try_dispatch()

        def try_dispatch() -> None:
            nonlocal in_service, seq, next_batch_id, queued
            while dispatch:
                now = self.clock.now()
                free = [w for w in fleet.active if w.available_s <= now]
                if not free:
                    return
                worker = min(free, key=lambda w: (w.available_s, w.instance_id))
                _, close_s, _, cls, members = heappop(dispatch)
                size = len(members)
                # Same expression as the reference simulator, so start
                # and finish are float-identical on the restricted config.
                start_s = max(close_s, worker.available_s)
                finish_s = start_s + profile.batch_seconds(size)
                worker.available_s = finish_s
                worker.busy_s += finish_s - start_s
                worker.batches += 1
                batch_id = next_batch_id
                next_batch_id += 1
                states[cls].pending -= size
                queued -= size
                in_service += 1
                heappush(heap, (finish_s, _FINISH, seq, worker, None))
                seq += 1
                if collect:
                    batch_rows.append(
                        [batch_id, worker.instance_id, cls, size,
                         close_s, start_s, finish_s]
                    )
                for rid, arrival in members:
                    record(rid, cls, worker.instance_id, batch_id,
                           arrival, close_s, start_s, finish_s)

        # ---- continuous mode helpers -------------------------------

        def try_admit() -> None:
            nonlocal in_service, seq, next_batch_id, queued
            now = self.clock.now()
            while True:
                state = None
                cls = -1
                for index in by_priority:
                    if states[index].queue_len() > 0:
                        state, cls = states[index], index
                        break
                if state is None:
                    return
                best = None
                best_key = None
                for w in fleet.active:
                    if w.in_flight >= max_batch:
                        continue
                    finish = max(now + fill, w.tail_s + step)
                    key = (finish, w.instance_id)
                    if best_key is None or key < best_key:
                        best, best_key = w, key
                if best is None:
                    return
                rid, arrival = state.queue[state.queue_head]
                state.queue_head += 1
                if state.queue_head > 64 and state.queue_head * 2 > len(state.queue):
                    del state.queue[: state.queue_head]
                    state.queue_head = 0
                state.pending -= 1
                queued -= 1
                if best.in_flight == 0:
                    run = next_batch_id
                    next_batch_id += 1
                    run_of_instance[best.instance_id] = run
                    if collect:
                        batch_rows.append(
                            [run, best.instance_id, cls, 0, now, now, now]
                        )
                else:
                    run = run_of_instance[best.instance_id]
                finish_s = best_key[0]
                best.busy_s += finish_s - max(best.tail_s, now)
                best.tail_s = finish_s
                best.in_flight += 1
                in_service += 1
                heappush(heap, (finish_s, _FINISH, seq, best, None))
                seq += 1
                if collect:
                    row = batch_rows[-1] if batch_rows[-1][0] == run else None
                    if row is None:  # joined an earlier run
                        for row in reversed(batch_rows):
                            if row[0] == run:
                                break
                    row[3] += 1
                    row[6] = max(row[6], finish_s)
                    if row[2] != cls:
                        row[2] = -1  # mixed-class stream run
                record(rid, cls, best.instance_id, run,
                       arrival, now, now, finish_s)

        # ---- autoscaling -------------------------------------------

        def scale_check() -> None:
            nonlocal last_scale_s, seq
            policy = self.autoscale
            now = self.clock.now()
            if policy is None:
                return
            if now - last_scale_s >= policy.cooldown_s:
                per_instance = queued / fleet.size
                if (
                    per_instance > policy.scale_up_queue_per_instance
                    and fleet.size < policy.max_instances
                ):
                    worker = fleet.spawn(now + policy.startup_delay_s)
                    last_scale_s = now
                    scale_events.append(
                        ScaleEvent(
                            time_s=now,
                            action="up",
                            instances=fleet.size,
                            queued=queued,
                            reason=(
                                f"queue depth {queued} > "
                                f"{policy.scale_up_queue_per_instance:g}"
                                f"/instance x {fleet.size - 1}"
                            ),
                        )
                    )
                    del worker
                elif (
                    queued == 0
                    and fleet.size > policy.min_instances
                    and fleet.retire_idle(now) is not None
                ):
                    last_scale_s = now
                    scale_events.append(
                        ScaleEvent(
                            time_s=now,
                            action="down",
                            instances=fleet.size,
                            queued=0,
                            reason="idle instance, empty queue",
                        )
                    )
            # Always retry dispatch: an instance may have just left its
            # startup delay with no FINISH/SEAL event pending to kick it.
            if continuous:
                try_admit()
            else:
                try_dispatch()
            if more_work() or fleet.size > policy.min_instances:
                heappush(
                    heap,
                    (now + policy.check_interval_s, _SCALE, seq, None, None),
                )
                seq += 1

        if self.autoscale is not None and n:
            heappush(heap, (first_arrival_s, _SCALE, seq, None, None))
            seq += 1

        # ---- main loop ---------------------------------------------

        while i < n or heap:
            take_heap = bool(heap) and (
                i >= n
                or heap[0][0] < arrivals[i]
                or (heap[0][0] == arrivals[i] and heap[0][1] < _ARRIVAL)
            )
            if take_heap:
                time_s, rank, _, a, b = heappop(heap)
                self.clock.advance_to(time_s)
                if rank == _FINISH:
                    in_service -= 1
                    if continuous:
                        a.in_flight -= 1
                        try_admit()
                    else:
                        try_dispatch()
                elif rank == _SEAL:
                    cls = a
                    if b == states[cls].open_seq and states[cls].open:
                        seal(cls, time_s)
                elif rank == _SCALE:
                    scale_check()
                continue
            # Arrival i.
            t = arrivals[i]
            rid = ids[i]
            cls = class_ids[i]
            i += 1
            self.clock.advance_to(t)
            state = states[cls]
            limit = state.limit
            if limit is not None and state.pending >= limit:
                rejections.append(
                    Rejection(
                        request_id=rid,
                        slo=state.name,
                        arrival_s=t,
                        reason="queue_full",
                    )
                )
                continue
            state.pending += 1
            queued += 1
            if queued > max_queued:
                max_queued = queued
            if continuous:
                state.queue.append((rid, t))
                try_admit()
            else:
                state.open.append((rid, t))
                if len(state.open) == 1:
                    state.open_seq += 1
                    heappush(
                        heap,
                        (t + state.max_wait_s, _SEAL, seq, cls,
                         state.open_seq),
                    )
                    seq += 1
                if len(state.open) >= max_batch:
                    seal(cls, t)

        # ---- report ------------------------------------------------

        makespan_s = (
            last_finish_s - first_arrival_s if served else 0.0
        )
        outcomes: Tuple[EventOutcome, ...] = ()
        batches: Tuple[EventBatch, ...] = ()
        if collect:
            run_sizes = {row[0]: row[3] for row in batch_rows}
            outcomes = tuple(
                EventOutcome(
                    request_id=rec_rid[k],
                    slo=states[rec_cls[k]].name,
                    worker_id=rec_worker[k],
                    batch_id=rec_batch[k],
                    batch_size=run_sizes[rec_batch[k]],
                    arrival_s=rec_arrival[k],
                    close_s=rec_close[k],
                    start_s=rec_start[k],
                    finish_s=rec_finish[k],
                )
                for k in range(len(rec_rid))
            )
            batches = tuple(
                EventBatch(
                    batch_id=row[0],
                    worker_id=row[1],
                    slo="mixed" if row[2] < 0 else states[row[2]].name,
                    size=row[3],
                    close_s=row[4],
                    start_s=row[5],
                    finish_s=row[6],
                )
                for row in sorted(batch_rows)
            )
        report = EventReport(
            outcomes=outcomes,
            rejections=tuple(rejections),
            batches=batches,
            scale_events=tuple(scale_events),
            class_names=tuple(state.name for state in states),
            offered=n,
            served=served,
            makespan_s=makespan_s,
            max_queue_depth=max_queued,
            final_instances=fleet.size,
            peak_instances=fleet.peak_size,
            busy_seconds=fleet.busy_seconds(),
            dense_ops_per_image=profile.dense_ops_per_image,
            records_collected=collect,
        )
        if self.telemetry is not None:
            self._record_telemetry(report, lat_by_class, wait_all)
        return report

    # ---- telemetry ------------------------------------------------------

    def _record_telemetry(
        self,
        report: EventReport,
        lat_by_class: List[List[float]],
        wait_all: List[float],
    ) -> None:
        """Mirror the run into the metrics registry and the span tree.

        Latencies land in sample-retaining histograms (global and one per
        SLO class), so registry percentiles are *identical* to
        ``ServeStats.latency_percentile_s`` — p50/p99/p999-vs-offered-load
        curves come straight from the snapshot.
        """
        telemetry = self.telemetry
        registry = telemetry.registry
        registry.counter("serve/offered").inc(report.offered)
        registry.counter("serve/requests").inc(report.served)
        rejected_counts: Dict[Tuple[str, str], int] = {}
        for rejection in report.rejections:
            key = (rejection.slo, rejection.reason)
            rejected_counts[key] = rejected_counts.get(key, 0) + 1
        for (slo, reason), count in sorted(rejected_counts.items()):
            registry.counter("serve/rejected", slo=slo, reason=reason).inc(
                count
            )
        latency = registry.histogram("serve/latency_s")
        for cls, latencies in enumerate(lat_by_class):
            if not latencies:
                continue
            latency.observe_many(latencies)
            registry.histogram(
                "serve/latency_s", slo=report.class_names[cls]
            ).observe_many(latencies)
        registry.histogram("serve/queue_wait_s").observe_many(wait_all)
        if report.batches:
            registry.counter("serve/batches").inc(len(report.batches))
            registry.histogram(
                "serve/batch_size", buckets=(1, 2, 4, 8, 16, 32, 64)
            ).observe_many([batch.size for batch in report.batches])
        registry.gauge("serve/makespan_s").set(report.makespan_s)
        registry.gauge("serve/requests_per_second").set(
            report.requests_per_second
        )
        registry.gauge("serve/max_queue_depth").set(report.max_queue_depth)
        registry.gauge("serve/instances").set(report.final_instances)
        registry.gauge("serve/instances_peak").set(report.peak_instances)
        if self.record_spans and report.records_collected:
            tracer = telemetry.tracer
            for batch in report.batches:
                span = tracer.record_span(
                    "request",
                    start_s=batch.close_s,
                    end_s=batch.finish_s,
                    batch_id=batch.batch_id,
                    size=batch.size,
                    slo=batch.slo,
                )
                if span is not None:
                    with tracer.attach(span):
                        tracer.record_span(
                            "batch",
                            start_s=batch.start_s,
                            end_s=batch.finish_s,
                            worker=batch.worker_id,
                            size=batch.size,
                            slo=batch.slo,
                        )
