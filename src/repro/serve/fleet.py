"""Fleet management for the event-driven serving simulator.

A *fleet* is the pool of simulated accelerator instances the event engine
(:mod:`repro.serve.events`) dispatches onto. Each instance is a pure
timing model — a :class:`ServiceProfile` captures the two-stage CPU/FPGA
pipeline of one deployed :class:`repro.runtime.SystemRuntime` (Section
6.1 of the paper) — so a fleet of N instances costs N small records, and
simulating millions of requests never touches the ABM numerics. The
functional path stays with the reference :class:`ServingSimulator`,
which is differentially pinned against the event engine.

Instances can be spawned and retired mid-run: :class:`AutoscalePolicy`
describes when the engine should do so (queue-depth watermarks with
cooldown and startup delay), and every decision is recorded as a
:class:`ScaleEvent` so tests can pin the scaling trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AutoscalePolicy",
    "Fleet",
    "Instance",
    "PipelinedProfile",
    "ScaleEvent",
    "ServiceProfile",
]


@dataclass(frozen=True)
class ServiceProfile:
    """Timing model of one simulated accelerator instance.

    ``fpga_s`` and ``host_s`` are the per-image stage times of the
    paper's two-stage CPU/FPGA pipeline; a batch of B images costs

        T(B) = fpga + host + (B - 1) * max(fpga, host)

    exactly as :meth:`repro.runtime.SystemRuntime.batch_seconds` — the
    expressions are kept identical so the event engine's virtual times
    are *bit-equal* to the reference simulator's.
    """

    fpga_s: float
    host_s: float
    dense_ops_per_image: int = 0
    name: str = "profile"

    def __post_init__(self) -> None:
        if self.fpga_s <= 0 or self.host_s < 0:
            raise ValueError("stage times must be positive (host may be 0)")
        if self.dense_ops_per_image < 0:
            raise ValueError("dense ops cannot be negative")

    @property
    def step_s(self) -> float:
        """Steady-state per-image time: the slower pipeline stage."""
        return max(self.fpga_s, self.host_s)

    @property
    def fill_s(self) -> float:
        """Latency of one image through both stages (pipeline fill)."""
        return self.fpga_s + self.host_s

    @property
    def capacity_rps(self) -> float:
        """Saturated per-instance throughput, images per second."""
        return 1.0 / self.step_s

    def batch_seconds(self, batch_size: int) -> float:
        """Service time of one batch — same arithmetic as the runtime."""
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        return self.fpga_s + self.host_s + (batch_size - 1) * max(
            self.fpga_s, self.host_s
        )

    @classmethod
    def from_runtime(cls, runtime) -> "ServiceProfile":
        """Extract the timing profile of a deployed ``SystemRuntime``.

        Copies the exact floats the reference ``ServingSimulator`` uses
        (``simulation.seconds_per_image`` and the host model's per-image
        time), which is what makes the differential equality exact.
        """
        simulation = runtime.simulation
        return cls(
            fpga_s=simulation.seconds_per_image,
            host_s=runtime.host_model.seconds_per_image(
                runtime.pipeline.network
            ),
            dense_ops_per_image=simulation.dense_ops,
            name=runtime.pipeline.network.name,
        )


@dataclass(frozen=True)
class PipelinedProfile:
    """Timing model of one *pipelined* deployment (a shard group).

    Generalizes :class:`ServiceProfile` from the two-stage CPU/FPGA
    pipeline to an N-stage layer-pipeline over heterogeneous devices
    (:mod:`repro.shard`): ``stage_s`` are the per-shard service times and
    ``link_s`` the inter-shard transfer times, interleaved in stream
    order. The deterministic tandem-line law pinned by
    :mod:`repro.shard.pipeline_sim` gives

        T(B) = fill + (B - 1) * bottleneck

    for any inter-stage queue depth >= 1, where ``fill`` is the sum of
    all stage and link times and ``bottleneck`` the maximum — the same
    shape as the two-stage formula, so the profile duck-types straight
    into :class:`Fleet` and the event engine. The arithmetic mirrors
    :meth:`repro.shard.plan.ShardPlan.batch_seconds` term for term, so
    event-engine virtual times are bit-equal to the plan's estimates.
    """

    stage_s: Tuple[float, ...]
    link_s: Tuple[float, ...] = ()
    dense_ops_per_image: int = 0
    name: str = "pipeline"
    #: Modeled inter-stage FIFO depth (throughput-neutral for depth >= 1;
    #: carried for the telemetry gauges and the simulator cross-check).
    queue_depth: int = 2

    def __post_init__(self) -> None:
        if not self.stage_s:
            raise ValueError("a pipelined profile needs at least one stage")
        if any(t <= 0 for t in self.stage_s):
            raise ValueError("stage times must be positive")
        if len(self.link_s) != len(self.stage_s) - 1:
            raise ValueError(
                f"{len(self.stage_s)} stages need {len(self.stage_s) - 1} "
                f"links, got {len(self.link_s)}"
            )
        if any(t < 0 for t in self.link_s):
            raise ValueError("link times cannot be negative")
        if self.dense_ops_per_image < 0:
            raise ValueError("dense ops cannot be negative")
        if self.queue_depth < 1:
            raise ValueError("queue depth must be >= 1")

    @property
    def service_times(self) -> Tuple[float, ...]:
        """Stage and link times interleaved in stream order."""
        times: List[float] = []
        for i, stage in enumerate(self.stage_s):
            times.append(stage)
            if i < len(self.link_s):
                times.append(self.link_s[i])
        return tuple(times)

    @property
    def n_stages(self) -> int:
        return len(self.stage_s)

    @property
    def step_s(self) -> float:
        """Steady-state per-image time: the bottleneck stage or link."""
        return max(self.service_times)

    @property
    def fill_s(self) -> float:
        """One image's latency through the empty pipeline."""
        return sum(self.service_times)

    @property
    def capacity_rps(self) -> float:
        """Saturated throughput of the whole pipelined group."""
        return 1.0 / self.step_s

    def batch_seconds(self, batch_size: int) -> float:
        """Makespan of one batch — same arithmetic as ``ShardPlan``."""
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        return self.fill_s + (batch_size - 1) * self.step_s

    @classmethod
    def from_shard_plan(cls, plan, queue_depth: int = 2) -> "PipelinedProfile":
        """Profile of a planned shard pipeline (`repro.shard.plan.ShardPlan`).

        Copies the exact floats of the plan's timing model, so serving
        estimates agree with the partition search bit for bit.
        """
        return cls(
            stage_s=tuple(s.seconds_per_image for s in plan.shards),
            link_s=tuple(t.seconds for t in plan.transfers),
            dense_ops_per_image=plan.dense_ops_per_image,
            name=f"{plan.model}:pipeline",
            queue_depth=queue_depth,
        )


class Instance:
    """One simulated accelerator instance's mutable serving state."""

    __slots__ = (
        "instance_id",
        "available_s",
        "tail_s",
        "in_flight",
        "busy_s",
        "spawned_s",
        "retired_s",
        "batches",
    )

    def __init__(self, instance_id: int, spawned_s: float = 0.0) -> None:
        self.instance_id = instance_id
        #: Windows mode: virtual time the instance frees up.
        self.available_s = spawned_s
        #: Continuous mode: finish time of the last scheduled stream slot.
        self.tail_s = spawned_s
        #: Continuous mode: admitted-but-unfinished requests (lane usage).
        self.in_flight = 0
        self.busy_s = 0.0
        self.spawned_s = spawned_s
        self.retired_s: Optional[float] = None
        self.batches = 0

    def idle_at(self, now: float) -> bool:
        """No in-flight work and no scheduled stream past ``now``."""
        return self.in_flight == 0 and self.available_s <= now and self.tail_s <= now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Instance({self.instance_id}, available={self.available_s}, "
            f"in_flight={self.in_flight})"
        )


class Fleet:
    """The active instance pool plus lifetime accounting.

    Spawned instances get monotonically increasing ids (an id is never
    reused, so outcomes always attribute to one concrete instance even
    across scale-down/up cycles); retired instances are kept for the
    final utilization report.
    """

    def __init__(self, profile: ServiceProfile, instances: int = 1) -> None:
        if instances < 1:
            raise ValueError("a fleet needs at least one instance")
        self.profile = profile
        self._next_id = 0
        self.active: List[Instance] = []
        self.retired: List[Instance] = []
        self.peak_size = 0
        for _ in range(instances):
            self.spawn(0.0)

    @property
    def size(self) -> int:
        return len(self.active)

    def spawn(self, now: float) -> Instance:
        instance = Instance(self._next_id, spawned_s=now)
        self._next_id += 1
        self.active.append(instance)
        self.peak_size = max(self.peak_size, len(self.active))
        return instance

    def retire_idle(self, now: float) -> Optional[Instance]:
        """Retire the newest idle instance, if any; returns it or None."""
        for instance in sorted(
            self.active, key=lambda w: w.instance_id, reverse=True
        ):
            if instance.idle_at(now):
                instance.retired_s = now
                self.active.remove(instance)
                self.retired.append(instance)
                return instance
        return None

    def all_instances(self) -> List[Instance]:
        """Active + retired, ordered by instance id."""
        return sorted(
            self.active + self.retired, key=lambda w: w.instance_id
        )

    def busy_seconds(self) -> Dict[int, float]:
        """instance id -> total virtual seconds of scheduled service."""
        return {w.instance_id: w.busy_s for w in self.all_instances()}


@dataclass(frozen=True)
class AutoscalePolicy:
    """Queue-depth driven horizontal scaling of the fleet.

    The engine evaluates the policy every ``check_interval_s`` of
    virtual time: when the number of admitted-but-unstarted requests
    exceeds ``scale_up_queue_per_instance`` per active instance it
    spawns one instance (up to ``max_instances``, honoring
    ``cooldown_s`` between decisions and ``startup_delay_s`` before the
    new instance takes work); when the queue is empty and an instance
    sits idle it retires one (down to ``min_instances``).
    """

    min_instances: int = 1
    max_instances: int = 4
    check_interval_s: float = 1e-3
    scale_up_queue_per_instance: float = 8.0
    cooldown_s: float = 0.0
    startup_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.min_instances < 1:
            raise ValueError("min_instances must be >= 1")
        if self.max_instances < self.min_instances:
            raise ValueError("max_instances must be >= min_instances")
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if self.scale_up_queue_per_instance <= 0:
            raise ValueError("scale_up_queue_per_instance must be positive")
        if self.cooldown_s < 0 or self.startup_delay_s < 0:
            raise ValueError("cooldown/startup delay cannot be negative")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision, for the report and the tests."""

    time_s: float
    action: str  # "up" | "down"
    instances: int  # fleet size *after* the decision
    queued: int
    reason: str

    def __post_init__(self) -> None:
        if self.action not in ("up", "down"):
            raise ValueError("scale action must be 'up' or 'down'")
