"""Mixed fleets: replica groups and pipelined groups, per SLO class.

A real deployment of the partitioned designs (:mod:`repro.shard`) is
rarely homogeneous: latency-sensitive traffic goes to single-device
replicas (short fill), while bulk traffic goes to layer-pipelined
shard groups whose bottleneck rate is higher but whose fill latency is
longer. A :class:`FleetGroup` binds one timing profile — a two-stage
:class:`repro.serve.fleet.ServiceProfile` or an N-stage
:class:`repro.serve.fleet.PipelinedProfile` — to the SLO classes it
serves; :func:`simulate_mixed_fleet` routes a request population by SLO
class and runs each group through its own
:class:`repro.serve.events.EventDrivenSimulator`, merging the per-group
reports. Groups are independent pools (no work stealing across groups),
which is exactly the static-routing deployment the partition search
sizes; everything stays on the event engine's virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .batcher import BatchPolicy
from .events import (
    DEFAULT_SLO,
    EventDrivenSimulator,
    EventReport,
    EventRequest,
    SLOClass,
)
from .fleet import AutoscalePolicy
from .loadgen import LoadTrace

__all__ = [
    "FleetGroup",
    "MixedFleetReport",
    "simulate_mixed_fleet",
    "trace_requests",
]


@dataclass(frozen=True)
class FleetGroup:
    """One homogeneous pool inside a mixed fleet.

    ``profile`` is any object with the service-profile surface
    (``fill_s``/``step_s``/``batch_seconds``/``dense_ops_per_image``) —
    replica groups pass a ``ServiceProfile``, pipelined groups a
    ``PipelinedProfile``. ``slo_classes`` names the classes this group
    owns; routing is static and exclusive.
    """

    name: str
    profile: object
    instances: int = 1
    slo_classes: Tuple[str, ...] = (DEFAULT_SLO.name,)
    continuous: bool = False
    autoscale: Optional[AutoscalePolicy] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a fleet group needs a name")
        if self.instances < 1:
            raise ValueError(f"group {self.name!r} needs >= 1 instance")
        if not self.slo_classes:
            raise ValueError(f"group {self.name!r} serves no SLO class")
        if len(set(self.slo_classes)) != len(self.slo_classes):
            raise ValueError(
                f"group {self.name!r} lists duplicate SLO classes"
            )


@dataclass(frozen=True)
class MixedFleetReport:
    """Merged outcome of one mixed-fleet run (one report per group)."""

    groups: Tuple[str, ...]
    reports: Mapping[str, EventReport]
    #: Groups that received no traffic (not simulated, no report).
    idle_groups: Tuple[str, ...] = field(default=())

    def report_for(self, group: str) -> EventReport:
        if group not in self.reports:
            raise KeyError(
                f"no report for group {group!r} "
                f"(simulated: {sorted(self.reports)}, idle: {self.idle_groups})"
            )
        return self.reports[group]

    @property
    def offered(self) -> int:
        return sum(r.offered for r in self.reports.values())

    @property
    def served(self) -> int:
        return sum(r.served for r in self.reports.values())

    @property
    def rejected(self) -> int:
        return sum(r.rejected for r in self.reports.values())

    @property
    def makespan_s(self) -> float:
        """Virtual time the *last* group finished (groups run in parallel)."""
        return max(r.makespan_s for r in self.reports.values())

    @property
    def requests_per_second(self) -> float:
        makespan = self.makespan_s
        return self.served / makespan if makespan > 0 else 0.0


def trace_requests(trace: LoadTrace) -> Tuple[EventRequest, ...]:
    """Materialize a :class:`LoadTrace` as routable event requests."""
    names = trace.class_names
    return tuple(
        EventRequest(
            request_id=i,
            arrival_s=float(arrival),
            slo=names[class_id],
        )
        for i, (arrival, class_id) in enumerate(
            zip(trace.arrivals.tolist(), trace.class_ids.tolist())
        )
    )


def simulate_mixed_fleet(
    groups: Sequence[FleetGroup],
    requests: Sequence[EventRequest],
    policy: BatchPolicy,
    classes: Sequence[SLOClass] = (DEFAULT_SLO,),
    telemetry=None,
    record_spans: bool = True,
    collect_records: bool = True,
) -> MixedFleetReport:
    """Route requests by SLO class and simulate every group's pool.

    Every SLO class must be owned by exactly one group, and every group
    must only claim known classes — misrouted traffic is a configuration
    error, not a silent drop. Groups whose classes received no requests
    are reported idle. All groups share the same batch policy (per-class
    deadlines still come from :class:`SLOClass.max_wait_s`) and, when a
    telemetry context is given, the same metrics registry.
    """
    if not groups:
        raise ValueError("need at least one fleet group")
    names = [g.name for g in groups]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate group names: {names}")
    class_by_name = {slo.name: slo for slo in classes}
    owner: Dict[str, FleetGroup] = {}
    for group in groups:
        for slo_name in group.slo_classes:
            if slo_name not in class_by_name:
                raise ValueError(
                    f"group {group.name!r} claims unknown SLO class "
                    f"{slo_name!r} (known: {sorted(class_by_name)})"
                )
            if slo_name in owner:
                raise ValueError(
                    f"SLO class {slo_name!r} claimed by both "
                    f"{owner[slo_name].name!r} and {group.name!r}"
                )
            owner[slo_name] = group
    unowned = sorted(set(class_by_name) - set(owner))
    if unowned:
        raise ValueError(f"SLO classes {unowned} are not served by any group")

    routed: Dict[str, List[EventRequest]] = {g.name: [] for g in groups}
    for request in requests:
        group = owner.get(request.slo)
        if group is None:
            raise ValueError(f"request {request.request_id} has unknown "
                             f"SLO class {request.slo!r}")
        routed[group.name].append(request)

    reports: Dict[str, EventReport] = {}
    idle: List[str] = []
    for group in groups:
        subset = routed[group.name]
        if not subset:
            idle.append(group.name)
            continue
        simulator = EventDrivenSimulator(
            profile=group.profile,
            policy=policy,
            classes=tuple(class_by_name[n] for n in group.slo_classes),
            instances=group.instances,
            continuous=group.continuous,
            autoscale=group.autoscale,
            telemetry=telemetry,
            record_spans=record_spans,
            collect_records=collect_records,
        )
        reports[group.name] = simulator.run(subset)
    return MixedFleetReport(
        groups=tuple(names),
        reports=reports,
        idle_groups=tuple(idle),
    )
