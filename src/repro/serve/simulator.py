"""Virtual-time serving simulator: batcher + worker pool + telemetry.

The simulator advances a discrete-event virtual clock over one request
stream: the dynamic batcher (:func:`repro.serve.batcher.form_batches`)
seals batches, each sealed batch is dispatched to the earliest-free of N
independently-simulated accelerator instances, and each batch runs the
full ABM numerics in one genuinely batched pass through its worker's
:class:`SystemRuntime` (the batch stacks into the compiled plans' pixel
axis) — so batched serving is *bit-exact* against sequential inference
while the timing model captures queueing, batching and multi-accelerator
overlap.

Batch service time follows the paper's two-stage CPU/FPGA pipeline
(Section 6.1) generalized to a batch of B images: fill the pipeline once,
then stream at the slower stage's rate
(:meth:`repro.runtime.SystemRuntime.batch_seconds`).

This is the **reference engine**: it runs the full numerics per batch, so
it is exact but slow. The fleet-scale path is the event-driven engine in
:mod:`repro.serve.events`, which is differentially pinned against this
class — on one instance with windowed batching, its per-request latencies
and batch compositions equal this simulator's float-for-float
(``tests/test_serve_events.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.specs import LayerSpec
from ..hw.config import AcceleratorConfig
from ..hw.device import STRATIX_V_GXA7, FPGADevice
from ..pipeline import QuantizedPipeline
from ..runtime import SystemRuntime
from ..system.host import DEFAULT_HOST_OPS_PER_SECOND
from ..telemetry.context import Telemetry, activate
from .batcher import Batch, BatchPolicy, ServeRequest, form_batches
from .cache import DeploymentCache
from .stats import ServeResponse, ServeStats


def build_worker_pool(
    pipeline: QuantizedPipeline,
    specs: Sequence[LayerSpec],
    workers: int,
    config: Optional[AcceleratorConfig] = None,
    device: FPGADevice = STRATIX_V_GXA7,
    cache: Optional[DeploymentCache] = None,
    host_ops_per_second: float = DEFAULT_HOST_OPS_PER_SECOND,
) -> List[SystemRuntime]:
    """N accelerator instances serving one deployed model.

    The deployment (encode + buffer check + blob) happens once — through
    ``cache`` when given, so repeat pools for the same (model, config,
    device) skip re-encoding entirely — and each worker wraps it in its
    own :class:`SystemRuntime`, i.e. its own simulated accelerator.
    """
    if workers < 1:
        raise ValueError("worker pool needs at least one accelerator")
    if cache is not None:
        deployed = cache.get_or_deploy(pipeline, specs, config=config, device=device)
    else:
        from ..deploy import deploy

        deployed = deploy(pipeline, specs, config=config, device=device)
    return [
        SystemRuntime(
            pipeline,
            deployed,
            device=device,
            host_ops_per_second=host_ops_per_second,
        )
        for _ in range(workers)
    ]


@dataclass(frozen=True)
class BatchTrace:
    """Dispatch record of one batch, for reporting and tests."""

    batch_id: int
    worker_id: int
    size: int
    close_s: float
    start_s: float
    finish_s: float


@dataclass(frozen=True)
class ServeReport:
    """Everything one simulated serving run produced."""

    responses: Tuple[ServeResponse, ...]
    batches: Tuple[BatchTrace, ...]
    stats: ServeStats

    def output_for(self, request_id: int) -> ServeResponse:
        for response in self.responses:
            if response.request_id == request_id:
                return response
        raise KeyError(f"no response for request {request_id}")


class ServingSimulator:
    """Serve a request stream across a pool of simulated accelerators."""

    def __init__(
        self,
        workers: Sequence[SystemRuntime],
        policy: BatchPolicy,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        """``telemetry``, when given, is activated around every batch
        execution — each batch produces a ``request`` span (request ids +
        virtual close/start/finish times as attributes) wrapping a
        ``batch`` span, under which the pipeline's ``layer`` and the
        compiled plans' ``kernel`` spans nest — and the run's ServeStats
        figures are recorded into its metric registry."""
        if not workers:
            raise ValueError("need at least one worker runtime")
        names = {worker.pipeline.network.name for worker in workers}
        if len(names) > 1:
            raise ValueError(
                f"all workers must serve the same model, got {sorted(names)}"
            )
        self.workers = list(workers)
        self.policy = policy
        self.telemetry = telemetry

    def run(self, requests: Sequence[ServeRequest]) -> ServeReport:
        """Simulate the stream; returns bit-exact outputs plus telemetry."""
        if not requests:
            raise ValueError("need at least one request")
        batches = sorted(
            form_batches(requests, self.policy), key=lambda b: b.close_s
        )
        available = [0.0] * len(self.workers)
        responses: List[ServeResponse] = []
        traces: List[BatchTrace] = []
        for batch_id, batch in enumerate(batches):
            worker_id = min(
                range(len(self.workers)), key=lambda i: (available[i], i)
            )
            worker = self.workers[worker_id]
            start_s = max(batch.close_s, available[worker_id])
            finish_s = start_s + worker.batch_seconds(batch.size)
            available[worker_id] = finish_s
            traces.append(
                BatchTrace(
                    batch_id=batch_id,
                    worker_id=worker_id,
                    size=batch.size,
                    close_s=batch.close_s,
                    start_s=start_s,
                    finish_s=finish_s,
                )
            )
            responses.extend(
                self._serve_batch(batch, batch_id, worker_id, worker, start_s, finish_s)
            )
        stats = ServeStats(
            responses, dense_ops_per_image=self.workers[0].simulation.dense_ops
        )
        if self.telemetry is not None:
            self._record_stats(responses, traces, stats)
        return ServeReport(
            responses=tuple(responses), batches=tuple(traces), stats=stats
        )

    def _record_stats(
        self,
        responses: Sequence[ServeResponse],
        traces: Sequence[BatchTrace],
        stats: ServeStats,
    ) -> None:
        """Mirror the run's ServeStats into the telemetry registry.

        Latencies land in a sample-retaining histogram, so the registry's
        nearest-rank percentiles are *identical* to
        :meth:`ServeStats.latency_percentile_s` (a differential test pins
        this).
        """
        registry = self.telemetry.registry
        registry.counter("serve/requests").inc(stats.count)
        registry.counter("serve/batches").inc(stats.batch_count)
        latency = registry.histogram("serve/latency_s")
        for value in stats.latencies_s():
            latency.observe(float(value))
        queue_wait = registry.histogram("serve/queue_wait_s")
        for response in responses:
            queue_wait.observe(response.start_s - response.arrival_s)
        batch_size = registry.histogram(
            "serve/batch_size", buckets=(1, 2, 4, 8, 16, 32, 64)
        )
        for trace in traces:
            batch_size.observe(trace.size)
        registry.gauge("serve/makespan_s").set(stats.makespan_s)
        registry.gauge("serve/requests_per_second").set(stats.requests_per_second)
        registry.gauge("serve/max_queue_depth").set(stats.max_queue_depth)

    def _serve_batch(
        self,
        batch: Batch,
        batch_id: int,
        worker_id: int,
        worker: SystemRuntime,
        start_s: float,
        finish_s: float,
    ) -> List[ServeResponse]:
        images = [request.image for request in batch.requests]
        if self.telemetry is not None:
            with activate(self.telemetry):
                with self.telemetry.span(
                    "request",
                    batch_id=batch_id,
                    requests=[r.request_id for r in batch.requests],
                    close_s=batch.close_s,
                    start_s=start_s,
                    finish_s=finish_s,
                ):
                    with self.telemetry.span(
                        "batch", worker=worker_id, size=batch.size
                    ):
                        outcomes = worker.infer_batch(images)
        else:
            outcomes = worker.infer_batch(images)
        return [
            ServeResponse(
                request_id=request.request_id,
                worker_id=worker_id,
                batch_id=batch_id,
                batch_size=batch.size,
                arrival_s=request.arrival_s,
                close_s=batch.close_s,
                start_s=start_s,
                finish_s=finish_s,
                output=outcome.output,
                top1=outcome.top1,
            )
            for request, outcome in zip(batch.requests, outcomes)
        ]
