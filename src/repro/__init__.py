"""ABM-SpConv reproduction (DAC 2019).

A from-scratch Python implementation of accumulate-before-multiply sparse
convolution, the supporting CNN / quantization / pruning substrates, an
event-driven model of the proposed FPGA accelerator, and the design-space
exploration flow — everything needed to regenerate the paper's tables and
figures on a laptop.

Subpackages
-----------
``repro.core``
    The factored convolution, sparse weight encoding and op-count analysis.
``repro.nn``
    Inference-only numpy CNN framework with AlexNet/VGG16.
``repro.quant`` / ``repro.prune``
    Dynamic fixed-point quantization and magnitude pruning.
``repro.hw``
    Event-driven accelerator simulator and FPGA device catalog.
``repro.dse``
    Performance / bandwidth / resource models and the exploration flow.
``repro.baselines``
    Executable SDConv / FDConv / SpConv models and published accelerators.
``repro.workloads``
    Calibrated synthetic model and input generators.
``repro.experiments``
    One module per paper table/figure.
"""

__version__ = "1.0.0"
