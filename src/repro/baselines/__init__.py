"""Executable baseline convolution schemes and published accelerators."""

from .fdconv import DEFAULT_OVERHEAD, DEFAULT_TILE, OaAModel, fdconv2d
from .published import PublishedAccelerator, get_baseline, published_accelerators
from .sdconv import SDConvResult, sdconv2d, sdconv_ops
from .spconv import SpConvResult, spconv2d, spconv_ops

__all__ = [
    "OaAModel",
    "fdconv2d",
    "DEFAULT_TILE",
    "DEFAULT_OVERHEAD",
    "PublishedAccelerator",
    "published_accelerators",
    "get_baseline",
    "SDConvResult",
    "sdconv2d",
    "sdconv_ops",
    "SpConvResult",
    "spconv2d",
    "spconv_ops",
]
