"""Executable baseline convolution schemes and published accelerators.

Importing this package registers every built-in :class:`SchemeModel`
(``sdconv``, ``fdconv``, ``spconv``, ``winograd2``, ``winograd4``,
``spectral``) with the registry in :mod:`repro.core.schemes`; the ``abm``
model registers with core itself.
"""

from .fdconv import DEFAULT_OVERHEAD, DEFAULT_TILE, FDConvModel, OaAModel, fdconv2d
from .published import PublishedAccelerator, get_baseline, published_accelerators
from .sdconv import SDConvModel, SDConvResult, sdconv2d, sdconv_ops
from .spconv import SpConvModel, SpConvResult, spconv2d, spconv_ops
from .spectral import (
    SpectralConvResult,
    SpectralModel,
    spectral_conv2d,
    spectral_ops,
    spectral_raw,
    spectral_raw_from_plan,
)
from .winograd import (
    WinogradConvResult,
    WinogradModel,
    winograd_conv2d,
    winograd_ops,
    winograd_raw,
    winograd_raw_from_plan,
    winograd_reduction,
)

__all__ = [
    "OaAModel",
    "FDConvModel",
    "fdconv2d",
    "DEFAULT_TILE",
    "DEFAULT_OVERHEAD",
    "PublishedAccelerator",
    "published_accelerators",
    "get_baseline",
    "SDConvModel",
    "SDConvResult",
    "sdconv2d",
    "sdconv_ops",
    "SpConvModel",
    "SpConvResult",
    "spconv2d",
    "spconv_ops",
    "SpectralConvResult",
    "SpectralModel",
    "spectral_conv2d",
    "spectral_ops",
    "spectral_raw",
    "spectral_raw_from_plan",
    "WinogradConvResult",
    "WinogradModel",
    "winograd_conv2d",
    "winograd_ops",
    "winograd_raw",
    "winograd_raw_from_plan",
    "winograd_reduction",
]
