"""SDConv baseline: dense spatial convolution.

The reference the paper normalizes everything to. Functionally this is
plain Equation (1); the integer version is the oracle ABM-SpConv must match
bit-for-bit, and the op count (2 per MAC) is the '#OP' every throughput
number in Table 2 divides by. The MAC-array timing model lives in
:mod:`repro.hw.mac_array`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.abm import ConvGeometry, direct_conv2d_codes
from ..core.schemes import (
    ConvScheme,
    SchemeOps,
    SchemeResources,
    register_scheme_model,
)
from ..core.specs import LayerSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.config import AcceleratorConfig
    from ..hw.workload import LayerWorkload


@dataclass(frozen=True)
class SDConvResult:
    """Output and op count of a dense spatial convolution."""

    output: np.ndarray
    multiply_ops: int
    accumulate_ops: int

    @property
    def total_ops(self) -> int:
        return self.multiply_ops + self.accumulate_ops


def sdconv2d(
    feature_codes: np.ndarray,
    weight_codes: np.ndarray,
    geometry: ConvGeometry,
    bias_codes: np.ndarray = None,
) -> SDConvResult:
    """Dense integer convolution with exact op accounting.

    Every weight — zero or not — costs one multiply and one accumulate:
    dense hardware cannot skip, which is exactly the gap the sparse
    schemes exploit.
    """
    output = direct_conv2d_codes(feature_codes, weight_codes, geometry, bias_codes)
    weights = np.asarray(weight_codes)
    pixels = int(output.shape[1] * output.shape[2])
    total_macs = int(weights.size) * pixels
    return SDConvResult(
        output=output, multiply_ops=total_macs, accumulate_ops=total_macs
    )


def sdconv_ops(spec: LayerSpec) -> int:
    """Analytic dense op count (2 per MAC) for a layer spec."""
    return spec.dense_ops


class SDConvModel:
    """Dense MAC-array execution as a :class:`SchemeModel`.

    Model-only (``executable = False``): the fused runtime's dense GEMM
    *is* the ABM datapath, so a separate SDConv dispatch would be
    redundant — the scheme exists for prediction tables and as the
    taxonomy's normalization point.
    """

    name = "sdconv"
    taxonomy = ConvScheme.SDCONV
    executable = False

    def supports(self, spec: LayerSpec) -> bool:
        return True

    def layer_ops(self, workload: "LayerWorkload") -> SchemeOps:
        macs = float(workload.spec.macs)
        return SchemeOps(multiplies=macs, accumulates=macs)

    def layer_cycles(
        self, workload: "LayerWorkload", config: "AcceleratorConfig"
    ) -> float:
        """One MAC per shared multiplier per cycle — the 2*N_mac*F roof."""
        return workload.spec.macs / float(config.total_multipliers)

    def execution_cost(self, workload: "LayerWorkload") -> float:
        return 2.0 * workload.spec.macs

    def resource_overhead(self, config: "AcceleratorConfig") -> SchemeResources:
        return SchemeResources()


register_scheme_model(SDConvModel())
