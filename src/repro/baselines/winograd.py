"""Winograd minimal-filtering convolution: F(2x2,3x3) and F(4x4,3x3).

The classic reduced-multiplication scheme for 3x3 stride-1 layers (Lavin &
Gray, 2016) and the workhorse of layer-heterogeneous FPGA designs
(HPIPE-style): an m x m output tile costs ``(m+2)^2`` elementwise
multiplies instead of ``9 m^2`` MACs — 2.25x fewer for F(2x2,3x3), 4x for
F(4x4,3x3) — at the price of cheap add-only input/output transforms.

Numerics matter here because the rest of the system is integer-exact:

- **F(2x2,3x3) is bit-exact on integer codes.** Every entry of ``B^T`` and
  ``A^T`` is in {0, +-1, +-2} and every entry of ``G`` is a multiple of
  1/2, so all intermediates are dyadic rationals with denominator at most
  4. Executed in float64 they are *exactly representable*, and provided
  ``81 * C_g * max|x| * max|w| + max|bias| < 2**51`` (checked at compile
  time by the fused model plan, mirroring the GEMM datapath's 2**53 proof)
  no magnitude ever loses a bit — the result equals the integer
  convolution term for term.
- **F(4x4,3x3) is exact after rounding.** ``G`` contains 1/6 and 1/24,
  which are not dyadic; the float64 result carries ~1e-12 relative error,
  so consumers round to the nearest integer (error must be < 0.5 — easily
  true at 8-bit code magnitudes) before the integer epilogue.

Both tiles execute as batched numpy fast paths: the elementwise stage is
``(m+2)^2`` BLAS GEMMs of shape (M_g x C_g) x (C_g x B*tiles) in a single
broadcast ``matmul``, and each separable transform folds into *one* large
Kronecker GEMM over the flattened tile axis — ``B^T (x) B^T`` applied to
a ``(t^2, C*B*tiles)`` gather of shifted tile slices, ``A^T (x) A^T``
applied to the product stack. That keeps the whole kernel at three GEMMs
plus one strided gather per batch, which is what lets it undercut the
im2col+GEMM datapath on a memory-bound host. The summation order differs
from the textbook ``B^T d B`` nesting but every intermediate is an
exactly-representable dyadic value, so bit-exactness is unaffected.
Kernel transforms ``U = G g G^T`` are cached per compiled layer plan
(LRU, registered with telemetry as ``baselines.winograd``).
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from ..core.abm import ConvGeometry
from ..core.schemes import (
    ConvScheme,
    SchemeOps,
    SchemeResources,
    register_scheme_model,
)
from ..core.specs import LayerSpec
from ..telemetry.caches import CacheStats, register_cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import LayerPlan
    from ..hw.config import AcceleratorConfig
    from ..hw.workload import LayerWorkload

# ---------------------------------------------------------------------------
# Transform matrices (Lavin & Gray 2016, standard polynomial points).
# ---------------------------------------------------------------------------

_BT2 = np.array(
    [
        [1.0, 0.0, -1.0, 0.0],
        [0.0, 1.0, 1.0, 0.0],
        [0.0, -1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0, -1.0],
    ]
)
_G2 = np.array(
    [
        [1.0, 0.0, 0.0],
        [0.5, 0.5, 0.5],
        [0.5, -0.5, 0.5],
        [0.0, 0.0, 1.0],
    ]
)
_AT2 = np.array(
    [
        [1.0, 1.0, 1.0, 0.0],
        [0.0, 1.0, -1.0, -1.0],
    ]
)

_BT4 = np.array(
    [
        [4.0, 0.0, -5.0, 0.0, 1.0, 0.0],
        [0.0, -4.0, -4.0, 1.0, 1.0, 0.0],
        [0.0, 4.0, -4.0, -1.0, 1.0, 0.0],
        [0.0, -2.0, -1.0, 2.0, 1.0, 0.0],
        [0.0, 2.0, -1.0, -2.0, 1.0, 0.0],
        [0.0, 4.0, 0.0, -5.0, 0.0, 1.0],
    ]
)
_G4 = np.array(
    [
        [1.0 / 4.0, 0.0, 0.0],
        [-1.0 / 6.0, -1.0 / 6.0, -1.0 / 6.0],
        [-1.0 / 6.0, 1.0 / 6.0, -1.0 / 6.0],
        [1.0 / 24.0, 1.0 / 12.0, 1.0 / 6.0],
        [1.0 / 24.0, -1.0 / 12.0, 1.0 / 6.0],
        [0.0, 0.0, 1.0],
    ]
)
_AT4 = np.array(
    [
        [1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
        [0.0, 1.0, -1.0, 2.0, -2.0, 0.0],
        [0.0, 1.0, 1.0, 4.0, 4.0, 0.0],
        [0.0, 1.0, -1.0, 8.0, -8.0, 1.0],
    ]
)

#: tile (m) -> (B^T, G, A^T); only KxK = 3x3 kernels are supported.
TRANSFORMS: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {
    2: (_BT2, _G2, _AT2),
    4: (_BT4, _G4, _AT4),
}

#: Tiles whose transforms are purely dyadic — bit-exact in float64.
EXACT_TILES = (2,)


def transforms_for_tile(tile: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The (B^T, G, A^T) transform triple for an output tile edge."""
    try:
        return TRANSFORMS[tile]
    except KeyError:
        raise ValueError(
            f"unsupported Winograd tile {tile}; choose from {sorted(TRANSFORMS)}"
        ) from None


def winograd_reduction(tile: int) -> float:
    """Multiply reduction over dense 3x3: ``9 m^2 / (m+2)^2``."""
    transforms_for_tile(tile)
    return 9.0 * tile * tile / float((tile + 2) ** 2)


def _matrix_adds(matrix: np.ndarray) -> int:
    """Adds to apply the matrix to one column: sum over rows of (nnz - 1)."""
    nnz = (matrix != 0).sum(axis=1)
    return int(np.maximum(nnz - 1, 0).sum())


def winograd_supported(spec: LayerSpec) -> bool:
    """Winograd applies to 3x3 stride-1 conv layers (any padding/groups)."""
    return (not spec.is_fc) and spec.kernel == 3 and spec.stride == 1


def winograd_ops(spec: LayerSpec, tile: int) -> SchemeOps:
    """Analytic per-image op counts of the layer under Winograd.

    Multiplies are the elementwise-product stage (``(m+2)^2`` per output
    tile per (input, output) channel pair); accumulates cover the channel
    reduction of the products plus the exact add counts of the input and
    output transforms (kernel transforms amortize across pixels and are
    excluded, matching how the executable caches them).
    """
    if not winograd_supported(spec):
        raise ValueError(f"{spec.name}: Winograd needs a 3x3 stride-1 conv layer")
    bt, _, at = transforms_for_tile(tile)
    m = tile
    t = m + 2
    tiles = math.ceil(spec.out_rows / m) * math.ceil(spec.out_cols / m)
    group_in = spec.in_channels // spec.groups
    multiplies = float(spec.out_channels) * group_in * t * t * tiles
    elem_adds = float(spec.out_channels) * max(0, group_in - 1) * t * t * tiles
    in_adds = 2.0 * _matrix_adds(bt) * t * spec.in_channels * tiles
    out_adds = float(_matrix_adds(at)) * (t + m) * spec.out_channels * tiles
    return SchemeOps(multiplies=multiplies, accumulates=elem_adds + in_adds + out_adds)


#: tile -> (B^T (x) B^T, A^T (x) A^T): the separable input/output
#: transforms as single matrices over the row-major flattened tile axis
#: q = a_row * t + b_col.
_KRON_TRANSFORMS: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _kron_transforms(tile: int) -> Tuple[np.ndarray, np.ndarray]:
    cached = _KRON_TRANSFORMS.get(tile)
    if cached is None:
        bt, _, at = transforms_for_tile(tile)
        cached = (np.kron(bt, bt), np.kron(at, at))
        _KRON_TRANSFORMS[tile] = cached
    return cached


def winograd_kernel_transform(weights: np.ndarray, tile: int) -> np.ndarray:
    """``U = G g G^T`` for a (M, C, 3, 3) weight tensor -> (M, C, t, t)."""
    _, g, _ = transforms_for_tile(tile)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4 or weights.shape[2:] != (3, 3):
        raise ValueError(f"expected (M, C, 3, 3) weights, got {weights.shape}")
    return g @ weights @ g.T


def winograd_raw(
    batch: np.ndarray,
    geometry: ConvGeometry,
    kernel_transforms: Sequence[np.ndarray],
    tile: int = 2,
    bias_codes: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int, int, int]:
    """Batched Winograd convolution producing raw float64 sums.

    ``batch`` is (B, C, H, W) integer codes; ``kernel_transforms`` holds one
    pre-transformed ``U`` tensor of shape (group_out, C_g, t, t) per channel
    group. Returns ``(raw, images, out_rows, out_cols)`` with ``raw`` shaped
    (M, B * out_rows * out_cols) kernel-major — the same layout the CSR
    plan's raw/GEMM paths produce, so the fused epilogue is shared.
    """
    transforms_for_tile(tile)
    batch = np.asarray(batch)
    if batch.ndim != 4:
        raise ValueError(f"expected a BCHW batch, got shape {batch.shape}")
    if geometry.kernel != 3 or geometry.stride != 1:
        raise ValueError("Winograd execution needs kernel=3, stride=1")
    images, channels, rows, cols = batch.shape
    groups = geometry.groups
    if len(kernel_transforms) != groups:
        raise ValueError(
            f"{len(kernel_transforms)} kernel transforms for {groups} groups"
        )
    group_in = channels // groups
    group_out = kernel_transforms[0].shape[0]
    m_out = group_out * groups
    pad = geometry.padding
    out_rows = rows + 2 * pad - 2
    out_cols = cols + 2 * pad - 2
    if out_rows < 1 or out_cols < 1:
        raise ValueError("convolution geometry does not fit the input")
    m = tile
    t = m + 2
    tiles_r = -(-out_rows // m)
    tiles_c = -(-out_cols // m)
    rows_in = (tiles_r - 1) * m + t
    cols_in = (tiles_c - 1) * m + t
    n_tiles = images * tiles_r * tiles_c
    k_in, k_out = _kron_transforms(tile)
    # One zero-padded float64 staging array covers conv padding and the
    # ragged last tile; the extra zeros contribute exact zero terms.
    # Channel-major layout so the elementwise GEMM sees (C_g, B*tiles)
    # columns without a scattered transpose.
    work = np.zeros((channels, images, rows_in, cols_in), dtype=np.float64)
    work[:, :, pad : pad + rows, pad : pad + cols] = batch.transpose(1, 0, 2, 3)
    # Gather the t*t shifted tile slices (each a strided copy whose inner
    # axis hops m elements), then apply the whole separable input
    # transform as a single (t^2 x t^2) Kronecker GEMM.
    x = np.empty((t * t, channels, images, tiles_r, tiles_c), dtype=np.float64)
    for i in range(t):
        for j in range(t):
            x[i * t + j] = work[:, :, i : i + tiles_r * m : m, j : j + tiles_c * m : m]
    vm = (k_in @ x.reshape(t * t, -1)).reshape(t * t, channels, n_tiles)
    prods = []
    for grp in range(groups):
        u = kernel_transforms[grp]
        if u.shape != (group_out, group_in, t, t):
            raise ValueError(
                f"group {grp}: kernel transform shape {u.shape} != "
                f"{(group_out, group_in, t, t)}"
            )
        ur = np.ascontiguousarray(u.transpose(2, 3, 0, 1)).reshape(
            t * t, group_out, group_in
        )
        vg = vm[:, grp * group_in : (grp + 1) * group_in]
        prods.append(np.matmul(ur, vg))  # (t*t, group_out, B*tiles)
    prod = prods[0] if groups == 1 else np.concatenate(prods, axis=1)
    # Output transform: Y = A^T M A folded into one Kronecker GEMM over
    # the same row-major flattened tile axis.
    y = (k_out @ prod.reshape(t * t, -1)).reshape(
        m, m, m_out, images, tiles_r, tiles_c
    )  # (p_row, p_col, M, B, Tr, Tc)
    full = y.transpose(2, 3, 4, 0, 5, 1).reshape(
        m_out, images, tiles_r * m, tiles_c * m
    )
    raw = np.ascontiguousarray(full[:, :, :out_rows, :out_cols]).reshape(
        m_out, images * out_rows * out_cols
    )
    if bias_codes is not None:
        raw += np.asarray(bias_codes, dtype=np.float64)[:, None]
    return raw, images, out_rows, out_cols


@dataclass(frozen=True)
class WinogradConvResult:
    """Output and analytic op count of a Winograd convolution."""

    output: np.ndarray
    multiply_ops: int
    accumulate_ops: int
    tile: int

    @property
    def total_ops(self) -> int:
        return self.multiply_ops + self.accumulate_ops


def winograd_conv2d(
    feature_codes: np.ndarray,
    weight_codes: np.ndarray,
    geometry: ConvGeometry,
    bias_codes: Optional[np.ndarray] = None,
    tile: int = 2,
) -> WinogradConvResult:
    """Winograd convolution of CHW integer codes with (M, C_g, 3, 3) weights.

    Returns integer codes (rounded to nearest for the non-dyadic F(4x4,3x3)
    transforms; F(2x2,3x3) is exact and the rounding is the identity),
    numerically matching :func:`repro.core.abm.direct_conv2d_codes`.
    """
    features = np.asarray(feature_codes)
    weights = np.asarray(weight_codes)
    if features.ndim != 3 or weights.ndim != 4:
        raise ValueError("expected CHW features and (M, C_g, K, K) weights")
    groups = geometry.groups
    m_out = weights.shape[0]
    if m_out % groups:
        raise ValueError("output channels must divide into groups")
    group_out = m_out // groups
    transforms = [
        winograd_kernel_transform(
            weights[g * group_out : (g + 1) * group_out], tile
        )
        for g in range(groups)
    ]
    raw, _, out_rows, out_cols = winograd_raw(
        features[None], geometry, transforms, tile=tile, bias_codes=bias_codes
    )
    output = np.rint(raw).astype(np.int64).reshape(m_out, out_rows, out_cols)
    in_rows, in_cols = features.shape[1], features.shape[2]
    spec = LayerSpec(
        name="winograd",
        kind="conv",
        in_channels=features.shape[0],
        out_channels=m_out,
        kernel=geometry.kernel,
        stride=geometry.stride,
        padding=geometry.padding,
        groups=groups,
        in_rows=in_rows,
        in_cols=in_cols,
        out_rows=out_rows,
        out_cols=out_cols,
    )
    ops = winograd_ops(spec, tile)
    return WinogradConvResult(
        output=output,
        multiply_ops=int(round(ops.multiplies)),
        accumulate_ops=int(round(ops.accumulates)),
        tile=tile,
    )


# ---------------------------------------------------------------------------
# Kernel-transform cache (per compiled layer plan).
# ---------------------------------------------------------------------------

TRANSFORM_CACHE_CAPACITY = 64

_transform_cache: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
_transform_refs: Dict[int, "weakref.ref"] = {}
_transform_lock = threading.RLock()
_transform_hits = 0
_transform_misses = 0
_transform_evictions = 0


def _evict_transforms(plan_id: int) -> None:
    global _transform_evictions
    with _transform_lock:
        _transform_refs.pop(plan_id, None)
        for key in [k for k in _transform_cache if k[0] == plan_id]:
            del _transform_cache[key]
            _transform_evictions += 1


def kernel_transform_for_plan(
    plan: "LayerPlan", group: int, tile: int
) -> np.ndarray:
    """The cached ``U = G g G^T`` tensor of one plan group.

    Keyed by plan identity (plans are immutable once compiled); entries
    evict with the plan or on the LRU bound. This is what makes the fused
    Winograd stage pay the kernel transform once per layer, not per batch.
    """
    global _transform_hits, _transform_misses
    key = (id(plan), group, tile)
    with _transform_lock:
        cached = _transform_cache.get(key)
        if cached is not None:
            _transform_cache.move_to_end(key)
            _transform_hits += 1
            return cached
        _transform_misses += 1
    u = winograd_kernel_transform(plan.dense_group_weights(group), tile)
    with _transform_lock:
        global _transform_evictions
        _transform_cache[key] = u
        if id(plan) not in _transform_refs:
            _transform_refs[id(plan)] = weakref.ref(plan)
            weakref.finalize(plan, _evict_transforms, id(plan))
        while len(_transform_cache) > TRANSFORM_CACHE_CAPACITY:
            old_key, _ = _transform_cache.popitem(last=False)
            _transform_evictions += 1
            if not any(k[0] == old_key[0] for k in _transform_cache):
                _transform_refs.pop(old_key[0], None)
    return u


def winograd_raw_from_plan(
    plan: "LayerPlan",
    batch: np.ndarray,
    bias_codes: Optional[np.ndarray] = None,
    tile: int = 2,
) -> Tuple[np.ndarray, int, int, int]:
    """Winograd execution of a compiled layer plan (cached transforms)."""
    transforms = [
        kernel_transform_for_plan(plan, g, tile)
        for g in range(plan.geometry.groups)
    ]
    return winograd_raw(
        batch, plan.geometry, transforms, tile=tile, bias_codes=bias_codes
    )


def clear_transform_cache() -> None:
    """Drop every cached kernel transform (tests)."""
    global _transform_hits, _transform_misses, _transform_evictions
    with _transform_lock:
        _transform_cache.clear()
        _transform_refs.clear()
        _transform_hits = 0
        _transform_misses = 0
        _transform_evictions = 0


def transform_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the transform cache (telemetry)."""
    with _transform_lock:
        return CacheStats(
            hits=_transform_hits,
            misses=_transform_misses,
            evictions=_transform_evictions,
            size=len(_transform_cache),
            capacity=TRANSFORM_CACHE_CAPACITY,
            name="baselines.winograd",
        )


register_cache("baselines.winograd", transform_cache_stats)


# ---------------------------------------------------------------------------
# Scheme model.
# ---------------------------------------------------------------------------

#: Calibrated software cost-ratio surface: predicted wall time of the
#: numpy Winograd fast path relative to the dense im2col+GEMM ABM
#: datapath, as ``flop_ratio * base * penalties``. The penalties model
#: why raw multiply reduction does not translate 1:1 into wall time on a
#: BLAS host — small GEMM operand dims run below peak, few tiles leave
#: gather/launch overhead unamortized, and large working sets push the
#: t^2-wide transform stacks (and the kernel-transform tensor U) out of
#: cache so the extra passes become DRAM-bound. Constants fitted to
#: interleaved best-of sweeps against ``LayerPlan.execute_batch_gemm``
#: on the reference host (see BENCH_schemes.json); tuned conservative so
#: predicted wins are measured wins.
_CAL_BASE = {2: 0.42, 4: 0.57}
_CAL_CIN_ADD = 12.0  # BLAS efficiency saturation in the inner dim (C_g)
_CAL_MOUT_ADD = 32.0  # ... and in the output-channel dim (M_g)
_CAL_TILE_ADD = 6.0  # per-axis tile-count amortization of gather overhead
_CAL_ACT_MB = 12.0  # activation-stack working set at the cache knee
_CAL_U_MB = 24.0  # kernel-transform tensor working set at the cache knee
_CAL_NOMINAL_BATCH = 4.0  # batch the working-set terms are calibrated at

#: Modeled ALMs per CU for the transform engines: pipelined B^T/A^T
#: shift-and-add adder networks processing one tile column per cycle
#: (WinoFPGA-style; the multiplies themselves reuse the CU's shared DSP
#: multipliers). F(4x4,3x3)'s 6-wide trees with x4/x5/x8 taps cost ~3x
#: the F(2x2,3x3) trees. Plus M20K tile buffers per CU.
_TRANSFORM_ALMS = {2: 900, 4: 2600}
_TILE_M20KS = {2: 6, 4: 10}


class WinogradModel:
    """Winograd F(m x m, 3x3) as a :class:`SchemeModel`."""

    taxonomy = ConvScheme.FDCONV
    executable = True

    def __init__(self, tile: int) -> None:
        transforms_for_tile(tile)
        self.tile = tile
        self.name = f"winograd{tile}"

    def supports(self, spec: LayerSpec) -> bool:
        return winograd_supported(spec)

    def layer_ops(self, workload: "LayerWorkload") -> SchemeOps:
        return winograd_ops(workload.spec, self.tile)

    def layer_cycles(
        self, workload: "LayerWorkload", config: "AcceleratorConfig"
    ) -> float:
        """A Winograd unit on the shared multiplier bank: one elementwise
        multiply per multiplier per cycle, transforms overlapped in the
        ALM adder trees — effective MAC rate ``R_wino * N_mult``."""
        spec = workload.spec
        if not self.supports(spec):
            return math.inf
        rate = winograd_reduction(self.tile) * config.total_multipliers
        return spec.macs / rate

    def execution_cost(self, workload: "LayerWorkload") -> float:
        spec = workload.spec
        if not self.supports(spec):
            return math.inf
        ops = winograd_ops(spec, self.tile)
        m = self.tile
        t = m + 2
        tiles_r = math.ceil(spec.out_rows / m)
        tiles_c = math.ceil(spec.out_cols / m)
        tiles = tiles_r * tiles_c
        group_in = spec.in_channels // spec.groups
        group_out = spec.out_channels // spec.groups
        act_mb = (
            t * t * (spec.in_channels + spec.out_channels) * tiles
            * 8.0 * _CAL_NOMINAL_BATCH / 1e6
        )
        u_mb = t * t * spec.out_channels * group_in * 8.0 / 1e6
        ratio = (
            ops.total_ops / (2.0 * spec.macs)
            * _CAL_BASE[self.tile]
            * (1.0 + _CAL_CIN_ADD / group_in)
            * (1.0 + _CAL_MOUT_ADD / group_out)
            * (1.0 + _CAL_TILE_ADD / min(tiles_r, tiles_c))
            * (1.0 + act_mb / _CAL_ACT_MB)
            * (1.0 + u_mb / _CAL_U_MB)
        )
        # Same float-op units as ABMSchemeModel.execution_cost (2*macs):
        # the ratio is the calibrated wall-time ratio vs that datapath.
        return 2.0 * spec.macs * ratio

    def resource_overhead(self, config: "AcceleratorConfig") -> SchemeResources:
        return SchemeResources(
            alms=_TRANSFORM_ALMS[self.tile] * config.n_cu,
            dsps=0,
            m20ks=_TILE_M20KS[self.tile] * config.n_cu,
        )


register_scheme_model(WinogradModel(2))
register_scheme_model(WinogradModel(4))
