"""Published accelerator baselines of paper Table 2.

Wraps the literature columns (designs [3], [4], [10], [12], [13]) with the
derived metrics the paper uses for cross-device comparison: performance
density (GOP/s per DSP) and frequency-normalized speedups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..workloads.paper_targets import TABLE2_COLUMNS, Table2Column


@dataclass(frozen=True)
class PublishedAccelerator:
    """One baseline column with derived comparison metrics."""

    column: Table2Column

    @property
    def key(self) -> str:
        return self.column.key

    @property
    def throughput_gops(self) -> float:
        return self.column.throughput_gops

    @property
    def perf_density(self) -> float:
        """GOP/s per DSP, recomputed from the raw columns."""
        return self.column.throughput_gops / self.column.dsps

    @property
    def perf_per_mhz(self) -> float:
        """Frequency-normalized throughput (GOP/s per MHz)."""
        return self.column.throughput_gops / self.column.freq_mhz

    def speedup_over(self, other: "PublishedAccelerator") -> float:
        """Raw throughput ratio vs another design."""
        return self.throughput_gops / other.throughput_gops

    def speedup_over_normalized(self, other: "PublishedAccelerator") -> float:
        """Throughput ratio normalized by clock frequency."""
        return self.perf_per_mhz / other.perf_per_mhz

    def density_advantage(self, other: "PublishedAccelerator") -> float:
        """Performance-density ratio vs another design."""
        return self.perf_density / other.perf_density


def published_accelerators(
    cnn: Optional[str] = None, scheme: Optional[str] = None
) -> List[PublishedAccelerator]:
    """All Table 2 columns, optionally filtered by CNN model or scheme."""
    rows = []
    for column in TABLE2_COLUMNS:
        if cnn is not None and column.cnn != cnn.lower():
            continue
        if scheme is not None and column.scheme.lower() != scheme.lower():
            continue
        rows.append(PublishedAccelerator(column))
    return rows


def get_baseline(key: str) -> PublishedAccelerator:
    """Look one design up by its key (e.g. ``'zeng-vgg16'``)."""
    for column in TABLE2_COLUMNS:
        if column.key == key:
            return PublishedAccelerator(column)
    raise KeyError(
        f"unknown baseline {key!r}; available: "
        f"{', '.join(column.key for column in TABLE2_COLUMNS)}"
    )
