"""FDConv baseline: frequency-domain convolution (Zeng et al. [3]).

The strongest prior design the paper compares against performs convolution
in the frequency domain with overlap-and-add (OaA) tiling, cutting MAC
operations ~3.3x on 3x3 layers. Two views:

- :func:`fdconv2d` — a functional FFT/OaA convolution (float; frequency
  domain is inherently non-integer) validated against spatial convolution,
  so the baseline is executable rather than a literature constant.
- :class:`OaAModel` — the analytic MAC-reduction model. The ideal OaA
  reduction for a KxK kernel on t x t output tiles is
  ``K^2 t^2 / (t + K - 1)^2`` real products avoided per output; transform
  overheads (the FFTs themselves and the complex arithmetic) erode it by a
  platform factor, calibrated so K=3, t=4 reproduces [3]'s published 3.3x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.schemes import (
    ConvScheme,
    SchemeOps,
    SchemeResources,
    register_scheme_model,
)
from ..core.specs import LayerSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.config import AcceleratorConfig
    from ..hw.workload import LayerWorkload

#: Default OaA output-tile edge used by [3] for 3x3 kernels.
DEFAULT_TILE = 4
#: Transform-overhead factor calibrated to [3]'s 3.3x on K=3, t=4.
DEFAULT_OVERHEAD = 1.212


def fdconv2d(
    features: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Frequency-domain convolution of a CHW input with (M, N, K, K) weights.

    Full-map FFT formulation (OaA tiles compose to the same numbers);
    returns the *cross-correlation* like the spatial layers do. Strides are
    applied by decimating the dense result, as FDConv hardware does.
    """
    features = np.asarray(features, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if features.ndim != 3 or weights.ndim != 4:
        raise ValueError("expected CHW features and (M, N, K, K) weights")
    channels, rows, cols = features.shape
    kernels, w_channels, k, k2 = weights.shape
    if k != k2:
        raise ValueError("kernels must be square")
    if w_channels != channels:
        raise ValueError("FDConv baseline does not support grouped convolution")
    if padding:
        features = np.pad(
            features, ((0, 0), (padding, padding), (padding, padding))
        )
        rows += 2 * padding
        cols += 2 * padding
    out_rows = (rows - k) // stride + 1
    out_cols = (cols - k) // stride + 1
    fft_rows, fft_cols = rows, cols
    # Correlation == convolution with a flipped kernel.
    flipped = weights[:, :, ::-1, ::-1]
    feature_fft = np.fft.rfft2(features, s=(fft_rows, fft_cols))
    kernel_fft = np.fft.rfft2(flipped, s=(fft_rows, fft_cols))
    # Sum over input channels in the frequency domain.
    product = np.einsum("nrc,mnrc->mrc", feature_fft, kernel_fft)
    full = np.fft.irfft2(product, s=(fft_rows, fft_cols))
    valid = full[:, k - 1 : k - 1 + out_rows * stride, k - 1 : k - 1 + out_cols * stride]
    return valid[:, ::stride, ::stride]


@dataclass(frozen=True)
class OaAModel:
    """Analytic MAC-reduction model of overlap-and-add FDConv."""

    tile: int = DEFAULT_TILE
    overhead: float = DEFAULT_OVERHEAD

    def reduction(self, kernel: int, stride: int = 1) -> float:
        """MAC reduction rate for a KxK/stride-S convolution layer.

        Strided convolutions compute a dense result and discard samples, so
        the useful reduction divides by S^2; layers where that leaves no
        gain (and 1x1/FC layers) fall back to 1.0 — spatial execution.
        """
        if kernel <= 1:
            return 1.0
        ideal = (kernel**2 * self.tile**2) / ((self.tile + kernel - 1) ** 2)
        effective = ideal / self.overhead / (stride**2)
        return max(1.0, effective)

    def layer_ops(self, spec: LayerSpec) -> float:
        """Op count of the layer under FDConv (2 per surviving MAC)."""
        if spec.is_fc:
            return float(spec.dense_ops)
        return spec.dense_ops / self.reduction(spec.kernel, spec.stride)


class FDConvModel:
    """OaA frequency-domain convolution as a :class:`SchemeModel`.

    Model-only (``executable = False``): :func:`fdconv2d` is a single-image
    functional baseline without group support; the batched executable
    frequency-domain path is :mod:`repro.baselines.spectral`. This model
    keeps [3]'s calibrated OaA reduction in prediction tables.
    """

    name = "fdconv"
    taxonomy = ConvScheme.FDCONV
    executable = False

    def __init__(self, oaa: OaAModel = None) -> None:
        self.oaa = oaa if oaa is not None else OaAModel()

    def supports(self, spec: LayerSpec) -> bool:
        return (not spec.is_fc) and spec.kernel > 1 and spec.groups == 1

    def layer_ops(self, workload: "LayerWorkload") -> SchemeOps:
        half = self.oaa.layer_ops(workload.spec) / 2.0
        return SchemeOps(multiplies=half, accumulates=half)

    def layer_cycles(
        self, workload: "LayerWorkload", config: "AcceleratorConfig"
    ) -> float:
        """Effective MAC rate ``R_mac * N_mult`` — the 2*R*N_mac*F roof."""
        spec = workload.spec
        rate = self.oaa.reduction(spec.kernel, spec.stride)
        return spec.macs / (rate * config.total_multipliers)

    def execution_cost(self, workload: "LayerWorkload") -> float:
        return self.oaa.layer_ops(workload.spec) / 0.7

    def resource_overhead(self, config: "AcceleratorConfig") -> SchemeResources:
        return SchemeResources(alms=4000, dsps=24, m20ks=16)


register_scheme_model(FDConvModel())
