"""SpConv baseline: zero-skipping sparse convolution (Han-style pruning).

Prior sparse accelerators [1, 2, 8] skip the multiply-accumulate of pruned
(zero) weights but still spend one multiply *and* one accumulate per
surviving weight — unlike ABM-SpConv, which deduplicates the multiplies.
This module provides the functional scheme plus its exact op accounting,
the 'SpConv[7]' column of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.abm import ConvGeometry
from ..core.schemes import (
    ConvScheme,
    SchemeOps,
    SchemeResources,
    register_scheme_model,
)
from ..core.specs import LayerSpec
from ..nn.layers.conv import im2col

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.config import AcceleratorConfig
    from ..hw.workload import LayerWorkload


@dataclass(frozen=True)
class SpConvResult:
    """Output and exact op count of a zero-skipping convolution."""

    output: np.ndarray
    multiply_ops: int
    accumulate_ops: int

    @property
    def total_ops(self) -> int:
        return self.multiply_ops + self.accumulate_ops


def spconv2d(
    feature_codes: np.ndarray,
    weight_codes: np.ndarray,
    geometry: ConvGeometry,
    bias_codes: np.ndarray = None,
) -> SpConvResult:
    """Zero-skipping integer convolution.

    Identical numerics to dense convolution (skipped terms are zero), but
    the op count reflects only surviving weights: one multiply plus one
    accumulate per nonzero weight per output pixel.
    """
    features = np.asarray(feature_codes, dtype=np.int64)
    weights = np.asarray(weight_codes)
    if features.ndim != 3 or weights.ndim != 4:
        raise ValueError("expected CHW features and (M, N, K, K) weights")
    channels = features.shape[0]
    kernels = weights.shape[0]
    group_in = weights.shape[1]
    if channels % group_in:
        raise ValueError("input channels incompatible with weight shape")
    groups = channels // group_in
    if kernels % groups:
        raise ValueError("output channels must divide into groups")
    group_out = kernels // groups
    out_parts = []
    multiply_ops = 0
    for g in range(groups):
        patches = im2col(
            features[g * group_in : (g + 1) * group_in],
            geometry.kernel,
            geometry.stride,
            geometry.padding,
        )
        pixels = patches.shape[0]
        block = np.zeros((group_out, pixels), dtype=np.int64)
        for m in range(group_out):
            kernel = weights[g * group_out + m].reshape(-1).astype(np.int64)
            nz = np.flatnonzero(kernel)
            multiply_ops += int(nz.size) * pixels
            if nz.size:
                # Skip the zeros: gather only surviving columns.
                block[m] = patches[:, nz] @ kernel[nz]
        out_parts.append(block)
    output = np.concatenate(out_parts, axis=0)
    if bias_codes is not None:
        output = output + np.asarray(bias_codes, dtype=np.int64)[:, None]
    pixels_total = output.shape[1]
    rows = int(
        (features.shape[1] + 2 * geometry.padding - geometry.kernel) // geometry.stride
        + 1
    )
    cols = pixels_total // rows
    return SpConvResult(
        output=output.reshape(kernels, rows, cols),
        multiply_ops=multiply_ops,
        accumulate_ops=multiply_ops,
    )


def spconv_ops(spec: LayerSpec, density: float) -> float:
    """Analytic zero-skipping op count (2 per surviving MAC)."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    return 2.0 * spec.macs * density


#: Software efficiency of the gather-based zero-skipping path relative to a
#: dense BLAS GEMM — irregular column gathers run far below GEMM rate,
#: which is why pruned-weight savings rarely show up as wall time on CPUs.
EXECUTION_EFFICIENCY = 0.35


class SpConvModel:
    """Zero-skipping sparse convolution as a :class:`SchemeModel`.

    Model-only (``executable = False``): the functional :func:`spconv2d`
    exists for differential checks, but its per-kernel gather loop is not a
    batched fast path the fused runtime should ever pick.
    """

    name = "spconv"
    taxonomy = ConvScheme.SPCONV
    executable = False

    def supports(self, spec: LayerSpec) -> bool:
        return True

    def layer_ops(self, workload: "LayerWorkload") -> SchemeOps:
        surviving = float(workload.spec.macs) * workload.density
        return SchemeOps(multiplies=surviving, accumulates=surviving)

    def layer_cycles(
        self, workload: "LayerWorkload", config: "AcceleratorConfig"
    ) -> float:
        """Surviving MACs retire one per shared multiplier per cycle."""
        return (
            workload.spec.macs
            * workload.density
            / float(config.total_multipliers)
        )

    def execution_cost(self, workload: "LayerWorkload") -> float:
        return spconv_ops(workload.spec, workload.density) / EXECUTION_EFFICIENCY

    def resource_overhead(self, config: "AcceleratorConfig") -> SchemeResources:
        return SchemeResources()


register_scheme_model(SpConvModel())
