"""Spectral (FFT) convolution as an executable per-layer scheme.

Where :mod:`repro.baselines.fdconv` keeps the single-image functional
baseline and the OaA reduction *model*, this module promotes the
frequency-domain idea (SPEC2-style) to a batched fast path the fused model
plan can dispatch to: full-map rfft2 of the padded batch, channel reduction
in the frequency domain (one einsum per group), irfft2, valid-crop plus
stride decimation. Kernel FFTs are cached per compiled layer plan (LRU,
telemetry family ``baselines.spectral``) so a layer pays its weight
transform once, like the Winograd kernel transforms.

Numerics: the frequency domain is inherently float, so spectral raw sums
carry FFT round-off (~1e-12 relative). On integer codes the true sums are
integers, and at 8-bit magnitudes the absolute error is far below 0.5 —
consumers round to the nearest integer before the requantize epilogue and
recover the exact spatial result. The differential suite pins this.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from ..core.abm import ConvGeometry
from ..core.schemes import (
    ConvScheme,
    SchemeOps,
    SchemeResources,
    register_scheme_model,
)
from ..core.specs import LayerSpec
from ..telemetry.caches import CacheStats, register_cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import LayerPlan
    from ..hw.config import AcceleratorConfig
    from ..hw.workload import LayerWorkload


def spectral_supported(spec: LayerSpec) -> bool:
    """Spectral convolution pays off only when there is a kernel to fold:
    1x1/FC layers are pure channel mixes and stay spatial."""
    return (not spec.is_fc) and spec.kernel > 1


def _fft_component_ops(points: float) -> Tuple[float, float]:
    """(multiplies, accumulates) of one real 2-D FFT over ``points`` samples.

    Radix-2 accounting: ``N log2 N`` complex butterflies at 4 mul + 6 add,
    halved for the real-input/real-output transforms actually used.
    """
    if points <= 1:
        return 0.0, 0.0
    stages = points * math.log2(points)
    return 2.0 * stages, 3.0 * stages


def spectral_ops(spec: LayerSpec) -> SchemeOps:
    """Analytic per-image op counts of the layer under full-map FFT.

    Three stages: forward rfft2 of every input channel, the frequency-domain
    complex multiply-accumulate over channel groups, and inverse rfft2 of
    every output channel. Kernel FFTs amortize across the batch (cached per
    plan) and are excluded, symmetrical to Winograd's cached ``U``.
    """
    if not spectral_supported(spec):
        raise ValueError(f"{spec.name}: spectral needs a conv layer with K > 1")
    rows = spec.in_rows + 2 * spec.padding
    cols = spec.in_cols + 2 * spec.padding
    points = float(rows * cols)
    bins = rows * (cols // 2 + 1)
    fft_mul, fft_acc = _fft_component_ops(points)
    group_in = spec.in_channels // spec.groups
    # Complex mult = 4 mul + 2 add per frequency bin, then the channel
    # reduction adds (C_g - 1) complex adds per output channel and bin.
    elem_mul = 4.0 * bins * spec.out_channels * group_in
    elem_acc = 2.0 * bins * spec.out_channels * group_in + 2.0 * bins * (
        spec.out_channels * max(0, group_in - 1)
    )
    multiplies = fft_mul * (spec.in_channels + spec.out_channels) + elem_mul
    accumulates = fft_acc * (spec.in_channels + spec.out_channels) + elem_acc
    return SchemeOps(multiplies=multiplies, accumulates=accumulates)


def spectral_kernel_fft(
    weights: np.ndarray, fft_shape: Tuple[int, int]
) -> np.ndarray:
    """rfft2 of flipped (M, C, K, K) kernels -> (M, C, rows, cols//2 + 1).

    Flipping turns the FFT's circular convolution into the cross-correlation
    the spatial layers compute, matching :func:`repro.baselines.fdconv2d`.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4:
        raise ValueError(f"expected (M, C, K, K) weights, got {weights.shape}")
    if weights.shape[2] > fft_shape[0] or weights.shape[3] > fft_shape[1]:
        raise ValueError("kernel larger than the FFT frame")
    return np.fft.rfft2(weights[:, :, ::-1, ::-1], s=fft_shape)


def spectral_raw(
    batch: np.ndarray,
    geometry: ConvGeometry,
    kernel_ffts: Sequence[np.ndarray],
    bias_codes: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int, int, int]:
    """Batched spectral convolution producing raw float64 sums.

    ``batch`` is (B, C, H, W) integer codes; ``kernel_ffts`` holds one
    pre-transformed tensor per channel group, shaped
    (group_out, C_g, H_p, W_p//2 + 1) for the padded map (H_p, W_p).
    Returns ``(raw, images, out_rows, out_cols)`` with ``raw`` shaped
    (M, B * out_rows * out_cols) kernel-major — the shared fused-epilogue
    layout. The circular wraparound of the full-map FFT only touches the
    first ``K - 1`` rows/columns, which the valid crop discards.
    """
    batch = np.asarray(batch)
    if batch.ndim != 4:
        raise ValueError(f"expected a BCHW batch, got shape {batch.shape}")
    images, channels, rows, cols = batch.shape
    k = geometry.kernel
    stride = geometry.stride
    pad = geometry.padding
    groups = geometry.groups
    if len(kernel_ffts) != groups:
        raise ValueError(f"{len(kernel_ffts)} kernel FFTs for {groups} groups")
    group_in = channels // groups
    group_out = kernel_ffts[0].shape[0]
    m_out = group_out * groups
    rows_p = rows + 2 * pad
    cols_p = cols + 2 * pad
    out_rows = (rows_p - k) // stride + 1
    out_cols = (cols_p - k) // stride + 1
    if out_rows < 1 or out_cols < 1:
        raise ValueError("convolution geometry does not fit the input")
    expect = (group_out, group_in, rows_p, cols_p // 2 + 1)
    work = np.asarray(batch, dtype=np.float64)
    if pad:
        work = np.pad(work, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    feature_fft = np.fft.rfft2(work, s=(rows_p, cols_p))
    out = np.empty((m_out, images, out_rows, out_cols), dtype=np.float64)
    for grp in range(groups):
        u = kernel_ffts[grp]
        if u.shape != expect:
            raise ValueError(
                f"group {grp}: kernel FFT shape {u.shape} != {expect}"
            )
        xg = feature_fft[:, grp * group_in : (grp + 1) * group_in]
        product = np.einsum("bnrc,mnrc->bmrc", xg, u)
        full = np.fft.irfft2(product, s=(rows_p, cols_p))
        valid = full[
            :,
            :,
            k - 1 : k - 1 + out_rows * stride : stride,
            k - 1 : k - 1 + out_cols * stride : stride,
        ]
        out[grp * group_out : (grp + 1) * group_out] = valid.transpose(
            1, 0, 2, 3
        )
    raw = out.reshape(m_out, images * out_rows * out_cols)
    if bias_codes is not None:
        raw += np.asarray(bias_codes, dtype=np.float64)[:, None]
    return raw, images, out_rows, out_cols


@dataclass(frozen=True)
class SpectralConvResult:
    """Output and analytic op count of a spectral convolution."""

    output: np.ndarray
    multiply_ops: int
    accumulate_ops: int

    @property
    def total_ops(self) -> int:
        return self.multiply_ops + self.accumulate_ops


def spectral_conv2d(
    feature_codes: np.ndarray,
    weight_codes: np.ndarray,
    geometry: ConvGeometry,
    bias_codes: Optional[np.ndarray] = None,
) -> SpectralConvResult:
    """Spectral convolution of CHW integer codes with (M, C_g, K, K) weights.

    Returns integer codes (FFT round-off removed by rounding to nearest),
    numerically matching :func:`repro.core.abm.direct_conv2d_codes`.
    """
    features = np.asarray(feature_codes)
    weights = np.asarray(weight_codes)
    if features.ndim != 3 or weights.ndim != 4:
        raise ValueError("expected CHW features and (M, C_g, K, K) weights")
    groups = geometry.groups
    m_out = weights.shape[0]
    if m_out % groups:
        raise ValueError("output channels must divide into groups")
    group_out = m_out // groups
    rows_p = features.shape[1] + 2 * geometry.padding
    cols_p = features.shape[2] + 2 * geometry.padding
    ffts = [
        spectral_kernel_fft(
            weights[g * group_out : (g + 1) * group_out], (rows_p, cols_p)
        )
        for g in range(groups)
    ]
    raw, _, out_rows, out_cols = spectral_raw(
        features[None], geometry, ffts, bias_codes=bias_codes
    )
    output = np.rint(raw).astype(np.int64).reshape(m_out, out_rows, out_cols)
    spec = LayerSpec(
        name="spectral",
        kind="conv",
        in_channels=features.shape[0],
        out_channels=m_out,
        kernel=geometry.kernel,
        stride=geometry.stride,
        padding=geometry.padding,
        groups=groups,
        in_rows=features.shape[1],
        in_cols=features.shape[2],
        out_rows=out_rows,
        out_cols=out_cols,
    )
    ops = spectral_ops(spec)
    return SpectralConvResult(
        output=output,
        multiply_ops=int(round(ops.multiplies)),
        accumulate_ops=int(round(ops.accumulates)),
    )


# ---------------------------------------------------------------------------
# Kernel-FFT cache (per compiled layer plan).
# ---------------------------------------------------------------------------

FFT_CACHE_CAPACITY = 32

_fft_cache: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
_fft_refs: Dict[int, "weakref.ref"] = {}
_fft_lock = threading.RLock()
_fft_hits = 0
_fft_misses = 0
_fft_evictions = 0


def _evict_ffts(plan_id: int) -> None:
    global _fft_evictions
    with _fft_lock:
        _fft_refs.pop(plan_id, None)
        for key in [k for k in _fft_cache if k[0] == plan_id]:
            del _fft_cache[key]
            _fft_evictions += 1


def kernel_fft_for_plan(
    plan: "LayerPlan", group: int, fft_shape: Tuple[int, int]
) -> np.ndarray:
    """The cached flipped-kernel rfft2 of one plan group at one frame size."""
    global _fft_hits, _fft_misses
    key = (id(plan), group, fft_shape)
    with _fft_lock:
        cached = _fft_cache.get(key)
        if cached is not None:
            _fft_cache.move_to_end(key)
            _fft_hits += 1
            return cached
        _fft_misses += 1
    u = spectral_kernel_fft(plan.dense_group_weights(group), fft_shape)
    with _fft_lock:
        global _fft_evictions
        _fft_cache[key] = u
        if id(plan) not in _fft_refs:
            _fft_refs[id(plan)] = weakref.ref(plan)
            weakref.finalize(plan, _evict_ffts, id(plan))
        while len(_fft_cache) > FFT_CACHE_CAPACITY:
            old_key, _ = _fft_cache.popitem(last=False)
            _fft_evictions += 1
            if not any(k[0] == old_key[0] for k in _fft_cache):
                _fft_refs.pop(old_key[0], None)
    return u


def spectral_raw_from_plan(
    plan: "LayerPlan",
    batch: np.ndarray,
    bias_codes: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int, int, int]:
    """Spectral execution of a compiled layer plan (cached kernel FFTs)."""
    batch = np.asarray(batch)
    pad = plan.geometry.padding
    fft_shape = (batch.shape[2] + 2 * pad, batch.shape[3] + 2 * pad)
    ffts = [
        kernel_fft_for_plan(plan, g, fft_shape)
        for g in range(plan.geometry.groups)
    ]
    return spectral_raw(batch, plan.geometry, ffts, bias_codes=bias_codes)


def clear_fft_cache() -> None:
    """Drop every cached kernel FFT (tests)."""
    global _fft_hits, _fft_misses, _fft_evictions
    with _fft_lock:
        _fft_cache.clear()
        _fft_refs.clear()
        _fft_hits = 0
        _fft_misses = 0
        _fft_evictions = 0


def fft_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the kernel-FFT cache (telemetry)."""
    with _fft_lock:
        return CacheStats(
            hits=_fft_hits,
            misses=_fft_misses,
            evictions=_fft_evictions,
            size=len(_fft_cache),
            capacity=FFT_CACHE_CAPACITY,
            name="baselines.spectral",
        )


register_cache("baselines.spectral", fft_cache_stats)


# ---------------------------------------------------------------------------
# Scheme model.
# ---------------------------------------------------------------------------

#: Software-efficiency factor relative to one dense BLAS GEMM: pocketfft's
#: transforms and the einsum reduction run below GEMM arithmetic intensity.
#: Calibrated against BENCH_schemes.json.
EXECUTION_EFFICIENCY = 0.7

#: Modeled fabric of one shared FFT engine (butterfly pipeline + twiddle
#: ROMs + line buffers), SPEC2-style: a flat block, not per-CU.
_FFT_ENGINE = SchemeResources(alms=6000, dsps=32, m20ks=24)


class SpectralModel:
    """Full-map FFT convolution as a :class:`SchemeModel`."""

    name = "spectral"
    taxonomy = ConvScheme.FDCONV
    executable = True

    def supports(self, spec: LayerSpec) -> bool:
        return spectral_supported(spec)

    def layer_ops(self, workload: "LayerWorkload") -> SchemeOps:
        return spectral_ops(workload.spec)

    def layer_cycles(
        self, workload: "LayerWorkload", config: "AcceleratorConfig"
    ) -> float:
        """Surviving ops retire two per shared multiplier per cycle (one
        MAC), i.e. effective rate ``R_spec * N_mult`` with the reduction
        implied by the analytic op counts."""
        spec = workload.spec
        if not self.supports(spec):
            return math.inf
        return spectral_ops(spec).total_ops / (2.0 * config.total_multipliers)

    def execution_cost(self, workload: "LayerWorkload") -> float:
        spec = workload.spec
        if not self.supports(spec):
            return math.inf
        return spectral_ops(spec).total_ops / EXECUTION_EFFICIENCY

    def resource_overhead(self, config: "AcceleratorConfig") -> SchemeResources:
        return _FFT_ENGINE


register_scheme_model(SpectralModel())
