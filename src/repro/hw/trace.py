"""Execution tracing for the accelerator simulator.

A :class:`TraceRecorder` captures one event per scheduled task — which CU
ran it, when, and for how long — so utilization claims can be audited at
event granularity: tests assert tasks on one CU never overlap, gaps equal
the reported stalls, and a Gantt rendering makes scheduling behaviour
visible (the semi-synchronous pipelining of consecutive prefetch windows).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, MutableSequence, Optional


@dataclass(frozen=True)
class TaskEvent:
    """One executed task."""

    layer: str
    window_index: int
    group_index: int
    cu: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("task ends before it starts")

    @property
    def cycles(self) -> int:
        return self.end - self.start


class TraceRecorder:
    """Collects task events during a simulation.

    ``capacity`` bounds memory for full-model traced runs: when set, the
    recorder is a ring buffer keeping only the most recent ``capacity``
    events, and ``dropped`` counts the evicted ones. The default (``None``)
    keeps every event, as the audit tests require.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self.events: MutableSequence[TaskEvent] = (
            [] if capacity is None else deque(maxlen=capacity)
        )
        self.dropped = 0

    @property
    def recorded(self) -> int:
        """Total events seen, including any dropped by the ring buffer."""
        return len(self.events) + self.dropped

    def record(
        self, layer: str, window_index: int, group_index: int, cu: int, start: int, end: int
    ) -> None:
        if self.capacity is not None and len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(
            TaskEvent(
                layer=layer,
                window_index=window_index,
                group_index=group_index,
                cu=cu,
                start=start,
                end=end,
            )
        )

    def by_cu(self) -> Dict[int, List[TaskEvent]]:
        """Events grouped by CU, each list sorted by start time."""
        grouped: Dict[int, List[TaskEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.cu, []).append(event)
        for events in grouped.values():
            events.sort(key=lambda e: e.start)
        return grouped

    def verify_no_overlap(self) -> None:
        """Raise if any CU runs two tasks at once (scheduler soundness)."""
        for cu, events in self.by_cu().items():
            for previous, current in zip(events, events[1:]):
                if current.start < previous.end:
                    raise AssertionError(
                        f"CU{cu}: task {current.layer}/{current.window_index}"
                        f"/{current.group_index} starts at {current.start} "
                        f"before previous task ends at {previous.end}"
                    )

    def busy_cycles(self, cu: int) -> int:
        """Total busy cycles of one CU."""
        return sum(e.cycles for e in self.by_cu().get(cu, []))

    def makespan(self) -> int:
        if not self.events:
            return 0
        return max(e.end for e in self.events)

    def windows_in_flight(self) -> int:
        """Maximum number of distinct prefetch windows concurrently active.

        Should never exceed 2 per layer: the ping-pong FT-Buffer has two
        halves (this is the double-buffering invariant the tests check).
        """
        peak = 0
        for layer in {event.layer for event in self.events}:
            events = [e for e in self.events if e.layer == layer]
            instants = sorted({e.start for e in events})
            for t in instants:
                active = {e.window_index for e in events if e.start <= t < e.end}
                peak = max(peak, len(active))
        return peak

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart of the trace (one row per CU)."""
        total = self.makespan()
        if total == 0:
            return "(empty trace)"
        lines = []
        for cu, events in sorted(self.by_cu().items()):
            row = [" "] * width
            for event in events:
                lo = int(event.start / total * (width - 1))
                hi = max(lo + 1, int(event.end / total * (width - 1)))
                glyph = chr(ord("a") + event.group_index % 26)
                for i in range(lo, hi):
                    row[i] = glyph
            lines.append(f"CU{cu} |" + "".join(row) + "|")
        lines.append(f"      0{' ' * (width - 10)}{total:>8} cycles")
        return "\n".join(lines)
