"""Accelerator configuration — the design parameters of paper Section 4.2.

The architecture is configured by:

- ``n_cu`` — number of parallel convolution units,
- ``n_knl`` — convolution kernels executed in parallel per CU (one "kernel
  engine" each),
- ``n_share`` — the paper's N: accumulators sharing one multiplier,
- ``s_ec`` — vectorization width. The FT-Buffer's entries are ``8 * S_ec``
  bits wide: each entry holds the same feature pixel across a batch of
  ``S_ec`` images, so every kernel engine drives ``S_ec`` accumulator lanes
  from one decoded weight index per cycle (this is also why the paper's
  bandwidth model amortizes weight fetches over "a minimum batch size of
  S_ec"),
- ``d_f`` / ``d_w`` / ``d_q`` — depths of the feature, weight and Q-Table
  buffers.

Derived quantities follow the accounting validated in DESIGN.md: the paper
configuration (N_knl=14, N_cu=3, N=4, S_ec=20) yields 840 accumulators and
210 shared multipliers + ~30 interface DSPs = 240 DSP blocks, matching
Table 2's 94-95% DSP utilization on the 256-DSP GXA7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class AcceleratorConfig:
    """One point in the accelerator design space."""

    n_cu: int
    n_knl: int
    n_share: int
    s_ec: int
    d_f: int = 1568
    d_w: int = 2048
    d_q: int = 128
    freq_mhz: float = 200.0

    def __post_init__(self) -> None:
        if min(self.n_cu, self.n_knl, self.n_share, self.s_ec) < 1:
            raise ValueError("all parallelism parameters must be >= 1")
        if min(self.d_f, self.d_w, self.d_q) < 1:
            raise ValueError("all buffer depths must be >= 1")
        if self.freq_mhz <= 0:
            raise ValueError("frequency must be positive")

    # ---- derived array sizes ------------------------------------------

    @property
    def accumulators_per_cu(self) -> int:
        """Accumulator lanes in one CU: N_knl engines x S_ec lanes."""
        return self.n_knl * self.s_ec

    @property
    def total_accumulators(self) -> int:
        """N_acc — the first-class compute resource of the design."""
        return self.n_cu * self.accumulators_per_cu

    @property
    def multipliers_per_cu(self) -> int:
        """Shared multipliers in one CU (N accumulators per multiplier)."""
        return math.ceil(self.accumulators_per_cu / self.n_share)

    @property
    def total_multipliers(self) -> int:
        return self.n_cu * self.multipliers_per_cu

    @property
    def ft_buffer_pixels(self) -> int:
        """Feature pixels the FT-Buffer holds per image lane (d_f entries)."""
        return self.d_f * self.s_ec

    @property
    def ft_buffer_bytes(self) -> int:
        """FT-Buffer bytes per CU (entries are 8 * S_ec bits)."""
        return self.d_f * self.s_ec

    @property
    def wt_buffer_bytes(self) -> int:
        """WT-Buffer bytes per CU (16-bit entries)."""
        return self.d_w * 2

    @property
    def qtable_bytes(self) -> int:
        """Q-Table bytes per CU (16-bit entries)."""
        return self.d_q * 2

    def with_frequency(self, freq_mhz: float) -> "AcceleratorConfig":
        """Copy of this configuration at another clock frequency."""
        return replace(self, freq_mhz=freq_mhz)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"N_cu={self.n_cu} N_knl={self.n_knl} N={self.n_share} "
            f"S_ec={self.s_ec} (acc={self.total_accumulators}, "
            f"mult={self.total_multipliers}) @ {self.freq_mhz:g} MHz"
        )


#: The paper's final AlexNet configuration (Table 3).
PAPER_CONFIG_ALEXNET = AcceleratorConfig(
    n_cu=3, n_knl=14, n_share=4, s_ec=20, d_f=1152, d_w=1024, d_q=128, freq_mhz=202.0
)

#: The paper's final VGG16 configuration (Table 3).
PAPER_CONFIG_VGG16 = AcceleratorConfig(
    n_cu=3, n_knl=14, n_share=4, s_ec=20, d_f=1568, d_w=2048, d_q=128, freq_mhz=204.0
)
