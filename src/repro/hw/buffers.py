"""On-chip buffer models: FT-Buffer, WT-Buffer and Q-Table (paper Figure 4).

These validate that an encoded layer actually fits the configured depths —
the check the paper's exploration flow performs when it "encodes the pruned
model layer-by-layer ... and determines the buffer sizes of D_w and D_q" —
and account the M20K blocks each buffer consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.encoding import EncodedLayer
from .config import AcceleratorConfig

#: Capacity of one M20K block in bits.
M20K_BITS = 20 * 1024


@dataclass(frozen=True)
class BufferRequirement:
    """Depth needed by a workload vs. depth provisioned by a configuration."""

    name: str
    required_depth: int
    provisioned_depth: int
    entry_bits: int

    @property
    def fits(self) -> bool:
        return self.required_depth <= self.provisioned_depth

    @property
    def m20k_blocks(self) -> int:
        """M20K blocks for the provisioned buffer (width-dominated mapping).

        An M20K configures at most 40 bits wide x 512 deep; wide buffers
        replicate across blocks, deep buffers cascade.
        """
        width_blocks = math.ceil(self.entry_bits / 40)
        depth_blocks = math.ceil(self.provisioned_depth / 512)
        return width_blocks * depth_blocks


def ft_buffer_requirement(config: AcceleratorConfig) -> BufferRequirement:
    """FT-Buffer: d_f entries of 8*S_ec bits (double-buffered in hardware)."""
    return BufferRequirement(
        name="FT-Buffer",
        required_depth=config.d_f,
        provisioned_depth=config.d_f,
        entry_bits=8 * config.s_ec,
    )


def wt_buffer_requirement(
    config: AcceleratorConfig, layers: Sequence[EncodedLayer]
) -> BufferRequirement:
    """WT-Buffer: holds the deepest single-kernel index stream of any layer.

    Each kernel engine streams its own kernel's indices with a private loop
    counter, so the per-engine buffer slice must cover the deepest kernel —
    the rule that reproduces the paper's D_w = 1024 (AlexNet, deepest
    kernel ~830 nonzeros) and 2048 (VGG16, ~1660).
    """
    required = 0
    for layer in layers:
        required = max(required, layer.max_wt_entries_per_kernel)
    return BufferRequirement(
        name="WT-Buffer",
        required_depth=required,
        provisioned_depth=config.d_w,
        entry_bits=16,
    )


def qtable_requirement(
    config: AcceleratorConfig, layers: Sequence[EncodedLayer]
) -> BufferRequirement:
    """Q-Table: holds the deepest per-kernel value table of any layer."""
    required = 0
    for layer in layers:
        required = max(required, layer.max_qtable_entries_per_kernel)
    return BufferRequirement(
        name="Q-Table",
        required_depth=required,
        provisioned_depth=config.d_q,
        entry_bits=16,
    )


def buffer_report(
    config: AcceleratorConfig, layers: Sequence[EncodedLayer]
) -> Sequence[BufferRequirement]:
    """All three buffer checks for a model on a configuration."""
    return (
        ft_buffer_requirement(config),
        wt_buffer_requirement(config, layers),
        qtable_requirement(config, layers),
    )
