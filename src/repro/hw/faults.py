"""Fault injection on encoded weight streams.

The encoded model travels over DDR into on-chip buffers; this module
injects the classic transport faults — bit flips in the 16-bit index
entries, bit flips in Q-Table VAL bytes, and truncation — so the test
suite can characterize the decoder's behaviour under corruption:

- structural faults (counts no longer matching the stream) must be
  *detected*, never silently decoded;
- value faults decode "successfully" but perturb the output, and the
  blast radius is measurable (a single VAL flip corrupts every output
  pixel of one kernel; a single index flip moves one accumulate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.encoding import EncodedKernel, EncodedLayer, MAX_PACKED_INDEX, QTableEntry


@dataclass(frozen=True)
class FaultReport:
    """What was corrupted."""

    kind: str
    kernel_index: int
    position: int
    bit: int


def flip_index_bit(
    layer: EncodedLayer,
    kernel_index: int,
    entry_index: int,
    bit: int,
    clamp_to_kernel: bool = True,
) -> EncodedLayer:
    """Flip one bit of one WT-Buffer index entry.

    With ``clamp_to_kernel`` the flipped index wraps into the kernel's
    valid range (an in-range wrong read — silent data corruption); without
    it the raw flipped value is kept, possibly out of range.
    """
    if not 0 <= bit < 16:
        raise ValueError("index entries are 16 bits wide")
    kernel = layer.kernels[kernel_index]
    if not 0 <= entry_index < kernel.indices.size:
        raise ValueError("entry index out of range")
    indices = kernel.indices.copy()
    flipped = int(indices[entry_index]) ^ (1 << bit)
    size = int(np.prod(kernel.kernel_shape))
    if clamp_to_kernel:
        flipped %= size
    if flipped > MAX_PACKED_INDEX:
        raise ValueError("flip escapes the 16-bit index width")
    indices[entry_index] = flipped
    kernels = list(layer.kernels)
    kernels[kernel_index] = EncodedKernel(
        qtable=kernel.qtable, indices=indices, kernel_shape=kernel.kernel_shape
    )
    return EncodedLayer(name=layer.name, kernels=tuple(kernels))


def flip_value_bit(
    layer: EncodedLayer, kernel_index: int, entry_index: int, bit: int
) -> EncodedLayer:
    """Flip one bit of one Q-Table VAL byte (8-bit two's complement)."""
    if not 0 <= bit < 8:
        raise ValueError("VAL fields are 8 bits wide")
    kernel = layer.kernels[kernel_index]
    if not 0 <= entry_index < len(kernel.qtable):
        raise ValueError("Q-Table entry out of range")
    entry = kernel.qtable[entry_index]
    raw = entry.value & 0xFF
    flipped = raw ^ (1 << bit)
    value = flipped - 256 if flipped >= 128 else flipped
    if value == 0:
        # A zero VAL is not encodable; flip lands on the adjacent code,
        # which is what a hardware decoder treating 0 as 1 LSB would see.
        value = 1
    qtable = list(kernel.qtable)
    qtable[entry_index] = QTableEntry(value=value, count=entry.count)
    kernels = list(layer.kernels)
    kernels[kernel_index] = EncodedKernel(
        qtable=tuple(qtable), indices=kernel.indices, kernel_shape=kernel.kernel_shape
    )
    return EncodedLayer(name=layer.name, kernels=tuple(kernels))


def truncate_stream(
    layer: EncodedLayer, kernel_index: int, drop_entries: int
) -> EncodedLayer:
    """Drop the tail of a kernel's index stream *without* fixing its
    Q-Table counts — the structural corruption a decoder must detect."""
    kernel = layer.kernels[kernel_index]
    if not 1 <= drop_entries <= kernel.indices.size:
        raise ValueError("invalid truncation length")
    kernels = list(layer.kernels)
    # Constructing the inconsistent kernel must fail loudly: counts and
    # stream length no longer agree. We surface that as the detection.
    try:
        kernels[kernel_index] = EncodedKernel(
            qtable=kernel.qtable,
            indices=kernel.indices[: kernel.indices.size - drop_entries],
            kernel_shape=kernel.kernel_shape,
        )
    except ValueError as exc:
        raise CorruptionDetected(str(exc)) from exc
    return EncodedLayer(name=layer.name, kernels=tuple(kernels))


class CorruptionDetected(RuntimeError):
    """The decoder noticed a structurally-invalid encoded stream."""


def random_fault(
    layer: EncodedLayer, rng: np.random.Generator, kind: Optional[str] = None
) -> tuple:
    """Inject one random fault; returns (corrupted_layer, FaultReport)."""
    kinds = ("index", "value")
    chosen = kind or kinds[int(rng.integers(len(kinds)))]
    candidates = [
        i for i, kernel in enumerate(layer.kernels) if kernel.nonzero_count > 0
    ]
    if not candidates:
        raise ValueError("layer has no nonzero kernels to corrupt")
    kernel_index = int(rng.choice(candidates))
    kernel = layer.kernels[kernel_index]
    if chosen == "index":
        position = int(rng.integers(kernel.indices.size))
        bit = int(rng.integers(16))
        corrupted = flip_index_bit(layer, kernel_index, position, bit)
    elif chosen == "value":
        position = int(rng.integers(len(kernel.qtable)))
        bit = int(rng.integers(8))
        corrupted = flip_value_bit(layer, kernel_index, position, bit)
    else:
        raise ValueError(f"unknown fault kind {chosen!r}")
    return corrupted, FaultReport(
        kind=chosen, kernel_index=kernel_index, position=position, bit=bit
    )
