"""Hardware substrate: FPGA device catalog and accelerator simulator.

The simulator realizes the architecture of paper Figure 2: semi-synchronous
convolution units, each a "big" accumulator array plus a "small" shared
multiplier array, fed by the encoded weight stream, double-buffered against
DDR. It is event-driven at task granularity and cycle-approximate; a
bit-accurate :class:`~repro.hw.cu.FunctionalCU` model additionally verifies
the datapath's numerics against the reference algorithm.
"""

from .accelerator import (
    AcceleratorSimulator,
    ModelSimResult,
    clear_sim_cache,
    sim_cache_info,
    sim_cache_size,
    sim_cache_stats,
)
from .address_gen import AddressGenerator, FeatureAddress
from .buffers import (
    BufferRequirement,
    buffer_report,
    ft_buffer_requirement,
    qtable_requirement,
    wt_buffer_requirement,
)
from .config import PAPER_CONFIG_ALEXNET, PAPER_CONFIG_VGG16, AcceleratorConfig
from .cu import (
    PIPELINE_FILL_CYCLES,
    TASK_LAUNCH_CYCLES,
    ConvTask,
    FunctionalCU,
    GroupCostVector,
    TaskCost,
    task_cycles,
    task_cycles_batch,
)
from .device import (
    ARRIA_10_GT1150,
    ARRIA_10_GX1150,
    STRATIX_V_GXA7,
    FPGADevice,
    available_devices,
    get_device,
)
from .fifo import Fifo, FifoOverflow, FifoUnderflow
from .mac_array import (
    MacArrayConfig,
    MacArrayLayerResult,
    MacArrayModelResult,
    mac_array_for_device,
    simulate_mac_layer,
    simulate_mac_model,
)
from .memory import ExternalMemory
from .power import EnergyModel, PowerReport, abm_power, mac_array_power
from .scheduler import (
    POLICY_BALANCED,
    POLICY_NATURAL,
    SYNC_CYCLES,
    LayerSimResult,
    build_tasks,
    compile_window_schedules,
    make_kernel_groups,
    simulate_layer,
    simulate_layer_fast,
    simulate_layer_reference,
)
from .emulation import EmulationResult, emulate_layer
from .faults import (
    CorruptionDetected,
    FaultReport,
    flip_index_bit,
    flip_value_bit,
    random_fault,
    truncate_stream,
)
from .tiling import (
    WindowPlan,
    clear_window_plan_cache,
    plan_layer_windows,
    plan_windows,
    window_plan_cache_info,
    window_plan_cache_stats,
)
from .trace import TaskEvent, TraceRecorder
from .workload import (
    KernelWork,
    LayerWorkload,
    ModelWorkload,
    workload_from_arrays,
    workload_from_encoded,
)

__all__ = [
    "AcceleratorSimulator",
    "ModelSimResult",
    "clear_sim_cache",
    "sim_cache_info",
    "sim_cache_size",
    "sim_cache_stats",
    "AddressGenerator",
    "FeatureAddress",
    "BufferRequirement",
    "buffer_report",
    "ft_buffer_requirement",
    "wt_buffer_requirement",
    "qtable_requirement",
    "AcceleratorConfig",
    "PAPER_CONFIG_ALEXNET",
    "PAPER_CONFIG_VGG16",
    "ConvTask",
    "TaskCost",
    "GroupCostVector",
    "task_cycles",
    "task_cycles_batch",
    "FunctionalCU",
    "TASK_LAUNCH_CYCLES",
    "PIPELINE_FILL_CYCLES",
    "FPGADevice",
    "STRATIX_V_GXA7",
    "ARRIA_10_GX1150",
    "ARRIA_10_GT1150",
    "available_devices",
    "get_device",
    "Fifo",
    "FifoOverflow",
    "FifoUnderflow",
    "MacArrayConfig",
    "MacArrayLayerResult",
    "MacArrayModelResult",
    "mac_array_for_device",
    "simulate_mac_layer",
    "simulate_mac_model",
    "ExternalMemory",
    "EnergyModel",
    "PowerReport",
    "abm_power",
    "mac_array_power",
    "LayerSimResult",
    "simulate_layer",
    "simulate_layer_fast",
    "simulate_layer_reference",
    "compile_window_schedules",
    "build_tasks",
    "make_kernel_groups",
    "POLICY_NATURAL",
    "POLICY_BALANCED",
    "SYNC_CYCLES",
    "WindowPlan",
    "plan_windows",
    "plan_layer_windows",
    "clear_window_plan_cache",
    "window_plan_cache_info",
    "window_plan_cache_stats",
    "TraceRecorder",
    "TaskEvent",
    "EmulationResult",
    "emulate_layer",
    "CorruptionDetected",
    "FaultReport",
    "flip_index_bit",
    "flip_value_bit",
    "truncate_stream",
    "random_fault",
    "KernelWork",
    "LayerWorkload",
    "ModelWorkload",
    "workload_from_arrays",
    "workload_from_encoded",
]
