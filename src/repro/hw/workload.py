"""Accelerator workload descriptions.

The simulator does not need weight *values* — cycle counts depend only on
each kernel's nonzero count (accumulate work) and distinct-value count
(multiply work), plus the layer geometry. A :class:`LayerWorkload` carries
exactly that, and can be built either from a real encoded layer
(:func:`workload_from_encoded`) or from calibrated synthetic statistics
(:mod:`repro.workloads`) for full-size models whose dense tensors would not
fit in laptop memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.encoding import EncodedLayer
from ..core.specs import LayerSpec


@dataclass(frozen=True)
class KernelWork:
    """Per-kernel work figures: one output channel's costs per output pixel."""

    nonzeros: int
    distinct_values: int

    def __post_init__(self) -> None:
        if self.nonzeros < 0 or self.distinct_values < 0:
            raise ValueError("work figures cannot be negative")
        if self.distinct_values > self.nonzeros:
            raise ValueError("distinct values cannot exceed nonzeros")


@dataclass(frozen=True)
class LayerWorkload:
    """Everything the simulator needs to schedule one layer."""

    spec: LayerSpec
    kernels: Tuple[KernelWork, ...]
    #: Encoded weight bytes of the layer (drives the bandwidth model).
    encoded_bytes: int

    def __post_init__(self) -> None:
        if len(self.kernels) != self.spec.out_channels:
            raise ValueError(
                f"{self.spec.name}: {len(self.kernels)} kernel work items for "
                f"{self.spec.out_channels} output channels"
            )

    @property
    def accumulate_ops(self) -> int:
        """Total accumulates per image (Table 1 'Acc.')."""
        return sum(k.nonzeros for k in self.kernels) * self.spec.output_pixels

    @property
    def multiply_ops(self) -> int:
        """Total multiplies per image (Table 1 'Mult.')."""
        return sum(k.distinct_values for k in self.kernels) * self.spec.output_pixels

    @property
    def mean_nonzeros(self) -> float:
        return float(np.mean([k.nonzeros for k in self.kernels]))

    @property
    def density(self) -> float:
        total = self.spec.weight_count
        if total == 0:
            return 0.0
        return sum(k.nonzeros for k in self.kernels) / total

    def nonzeros_array(self) -> np.ndarray:
        return np.array([k.nonzeros for k in self.kernels], dtype=np.int64)

    def distinct_array(self) -> np.ndarray:
        return np.array([k.distinct_values for k in self.kernels], dtype=np.int64)


@dataclass(frozen=True)
class ModelWorkload:
    """Ordered layer workloads of a whole network."""

    name: str
    layers: Tuple[LayerWorkload, ...]

    @property
    def accumulate_ops(self) -> int:
        return sum(layer.accumulate_ops for layer in self.layers)

    @property
    def multiply_ops(self) -> int:
        return sum(layer.multiply_ops for layer in self.layers)

    @property
    def dense_ops(self) -> int:
        """Original-model op count that throughput is normalized to."""
        return sum(layer.spec.dense_ops for layer in self.layers)

    @property
    def encoded_bytes(self) -> int:
        return sum(layer.encoded_bytes for layer in self.layers)

    def layer(self, name: str) -> LayerWorkload:
        for candidate in self.layers:
            if candidate.spec.name == name:
                return candidate
        raise KeyError(f"no layer named {name!r} in workload {self.name!r}")


def workload_from_encoded(spec: LayerSpec, encoded: EncodedLayer) -> LayerWorkload:
    """Build a layer workload from an actually-encoded weight tensor."""
    kernels = tuple(
        KernelWork(nonzeros=k.nonzero_count, distinct_values=k.distinct_values)
        for k in encoded.kernels
    )
    return LayerWorkload(spec=spec, kernels=kernels, encoded_bytes=encoded.encoded_bytes)


def workload_from_arrays(
    spec: LayerSpec,
    nonzeros: Sequence[int],
    distinct: Sequence[int],
    encoded_bytes: int = 0,
) -> LayerWorkload:
    """Build a layer workload from per-kernel statistic arrays.

    When ``encoded_bytes`` is omitted it is derived from the encoding's
    16-bit-per-entry format (index stream + Q-Table + per-kernel header).
    """
    kernels = tuple(
        KernelWork(nonzeros=int(n), distinct_values=int(d))
        for n, d in zip(nonzeros, distinct)
    )
    if encoded_bytes == 0:
        encoded_bytes = sum(2 + 2 * k.distinct_values + 2 * k.nonzeros for k in kernels)
    return LayerWorkload(spec=spec, kernels=kernels, encoded_bytes=encoded_bytes)
