"""Convolution Unit: cycle model and functional datapath model.

A CU (paper Figure 2-b) holds ``n_knl`` kernel engines. Each engine owns
``s_ec`` 16-bit accumulator lanes fed by the shared feature stream, and
every ``n_share`` lanes deposit their partial sums into a FIFO drained by
one shared multiplier in round-robin order.

Two views are provided:

- :func:`task_cycles` — the timing model used by the scheduler. Within a
  task the engines run in lockstep on the same feature window, so the task
  takes as long as its *slowest* engine; faster engines idle, which is
  exactly the workload-imbalance effect the paper's semi-synchronous CU
  scheduling confines to within one task.
- :class:`FunctionalCU` — a bit-accurate datapath emulation (address
  generator -> accumulators -> FIFO -> multiplier -> sum/round) used by the
  test suite to show the hardware dataflow computes the same numbers as
  :func:`repro.core.abm.abm_conv2d`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.encoding import EncodedKernel
from ..quant.fixed_point import QFormat
from .address_gen import AddressGenerator
from .config import AcceleratorConfig
from .fifo import Fifo

#: Cycles to launch a task on a CU (scheduler handshake + counter setup).
TASK_LAUNCH_CYCLES = 12
#: Cycles to fill/drain the accumulate->multiply pipeline once per task.
PIPELINE_FILL_CYCLES = 16


@dataclass(frozen=True)
class ConvTask:
    """A unit of scheduling: one kernel group on one prefetch window."""

    layer: str
    window_index: int
    group_index: int
    #: Per-kernel nonzero counts of the group (length <= n_knl).
    nonzeros: Tuple[int, ...]
    #: Per-kernel distinct-value counts of the group.
    distinct: Tuple[int, ...]
    #: Output pixels the window covers (per kernel).
    window_pixels: int

    def __post_init__(self) -> None:
        if len(self.nonzeros) != len(self.distinct):
            raise ValueError("nonzeros and distinct must have equal length")
        if not self.nonzeros:
            raise ValueError("a task needs at least one kernel")
        if self.window_pixels < 1:
            raise ValueError("window must cover at least one output pixel")


@dataclass(frozen=True)
class TaskCost:
    """Timing result of one task on one CU."""

    cycles: int
    #: Sum over engines of their busy (non-idle) cycles.
    engine_busy_cycles: int
    #: Engine-cycles available: engines * compute cycles.
    engine_cycle_capacity: int
    accumulate_ops: int
    multiply_ops: int

    @property
    def engine_utilization(self) -> float:
        """Fraction of engine-cycles doing useful work within the task."""
        if self.engine_cycle_capacity == 0:
            return 0.0
        return self.engine_busy_cycles / self.engine_cycle_capacity


@dataclass(frozen=True)
class GroupCostVector:
    """Batched :func:`task_cycles` over every kernel group of a layer.

    All arrays are indexed by group; entry ``g`` equals the corresponding
    field of ``task_cycles(ConvTask(group g, window_pixels), config)``.
    """

    cycles: np.ndarray
    engine_busy_cycles: np.ndarray
    engine_cycle_capacity: np.ndarray
    accumulate_ops: np.ndarray
    multiply_ops: np.ndarray


def task_cycles_batch(
    nonzeros: np.ndarray,
    distinct: np.ndarray,
    group_starts: np.ndarray,
    window_pixels: int,
    config: AcceleratorConfig,
) -> GroupCostVector:
    """Vectorized :func:`task_cycles` for all kernel groups at one window size.

    ``nonzeros``/``distinct`` are the per-kernel work figures laid out flat in
    dispatch (group-major) order; ``group_starts`` is the CSR-style offset of
    each group's first kernel. Tasks repeat identically across every prefetch
    window with the same pixel count, so one call per distinct window size
    replaces one scalar :func:`task_cycles` call per (window, group) pair.
    """
    if window_pixels < 1:
        raise ValueError("window must cover at least one output pixel")
    steps = -(-window_pixels // config.s_ec)
    nonzeros = np.asarray(nonzeros, dtype=np.int64)
    distinct = np.asarray(distinct, dtype=np.int64)
    engine = np.maximum(nonzeros, distinct * config.n_share) * steps
    compute = np.maximum.reduceat(engine, group_starts)
    return GroupCostVector(
        cycles=compute + TASK_LAUNCH_CYCLES + PIPELINE_FILL_CYCLES,
        engine_busy_cycles=np.add.reduceat(engine, group_starts),
        engine_cycle_capacity=config.n_knl * compute,
        accumulate_ops=np.add.reduceat(nonzeros, group_starts) * window_pixels,
        multiply_ops=np.add.reduceat(distinct, group_starts) * window_pixels,
    )


def task_cycles(task: ConvTask, config: AcceleratorConfig) -> TaskCost:
    """Timing model of one task (see module docstring).

    Per engine, the accumulate stage needs ``nnz * steps`` cycles (one
    decoded weight index per cycle, ``s_ec`` lanes in parallel) and the
    multiply stage needs ``distinct * n_share * steps`` cycles (each value
    group leaves ``s_ec`` partial sums, drained ``1/n_share`` per cycle per
    multiplier). The stages are FIFO-pipelined, so an engine is bound by
    the slower stage; the task is bound by the slowest engine.
    """
    steps = math.ceil(task.window_pixels / config.s_ec)
    engine_cycles = []
    busy = 0
    for nnz, q in zip(task.nonzeros, task.distinct):
        acc = nnz * steps
        mult = q * config.n_share * steps
        cycles = max(acc, mult)
        engine_cycles.append(cycles)
        busy += cycles
    compute = max(engine_cycles)
    total = compute + TASK_LAUNCH_CYCLES + PIPELINE_FILL_CYCLES
    acc_ops = sum(n for n in task.nonzeros) * task.window_pixels
    mult_ops = sum(q for q in task.distinct) * task.window_pixels
    return TaskCost(
        cycles=total,
        engine_busy_cycles=busy,
        engine_cycle_capacity=config.n_knl * compute,
        accumulate_ops=acc_ops,
        multiply_ops=mult_ops,
    )


class FunctionalCU:
    """Bit-accurate emulation of one kernel engine's datapath.

    Executes one encoded kernel over a feature window through the real
    pipeline stages: the address generator decodes the WT-Buffer stream,
    the accumulator array forms per-value partial sums, the partial-sum
    FIFO hands them to the shared multiplier, and the Sum/Round stage
    applies the single final rounding (paper: "Rounding is performed only
    once before writing feature map data back to main memory").
    """

    def __init__(self, config: AcceleratorConfig, kernel_size: int, stride: int = 1):
        self.config = config
        self.address_gen = AddressGenerator(kernel_size, stride)
        self.fifo = Fifo(depth=max(2 * config.n_share, 4))

    def run_kernel(
        self,
        encoded: EncodedKernel,
        padded_features: np.ndarray,
        out_positions: Sequence[Tuple[int, int]],
        bias: int = 0,
    ) -> List[int]:
        """Compute the (unrounded, 32-bit-accumulated) outputs of one kernel."""
        outputs = []
        for out_row, out_col in out_positions:
            values, groups = self.address_gen.gather(
                encoded, padded_features, out_row, out_col
            )
            total = bias
            for group, (weight_value, _) in enumerate(encoded.value_groups()):
                # Accumulator array: sum every feature word of this group.
                partial = int(values[groups == group].sum())
                # Partial sums traverse the FIFO to the shared multiplier.
                self.fifo.push(group, partial)
                tag, fifo_partial = self.fifo.pop()
                assert tag == group
                # Multiplier + final accumulation (Sum logic).
                total += weight_value * fifo_partial
            outputs.append(total)
        return outputs

    @staticmethod
    def round_output(value: int, source_fmt: QFormat, target_fmt: QFormat) -> int:
        """Sum/Round stage: rescale a datapath word to the feature format."""
        real = value * source_fmt.scale
        return int(target_fmt.quantize(real)[()])
