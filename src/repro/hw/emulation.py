"""Hardware-faithful layer execution through the functional datapath.

The fast path (:func:`repro.core.abm.abm_conv2d`) computes with numpy; this
module instead drives a whole layer through the *microarchitectural*
components — address generator decoding the WT-Buffer stream, accumulator
groups, partial-sum FIFO, shared multiplier — one kernel engine at a time,
the way RTL simulation would. It is slow by construction and exists to
pin the datapath design to the algorithm: the emulator and the fast path
must agree bit-for-bit on every layer (a test, and part of the
``verify``-style methodology an accelerator team would keep around).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.abm import ConvGeometry
from ..core.encoding import EncodedLayer
from .config import AcceleratorConfig
from .cu import FunctionalCU


@dataclass(frozen=True)
class EmulationResult:
    """Output of a hardware-faithful layer execution."""

    output: np.ndarray
    #: Total FIFO pushes observed (== multiplies == Q-Table group visits).
    fifo_pushes: int
    #: Deepest FIFO occupancy seen anywhere (validates the chosen depth).
    max_fifo_occupancy: int


def emulate_layer(
    feature_codes: np.ndarray,
    encoded: EncodedLayer,
    geometry: ConvGeometry,
    config: AcceleratorConfig,
    bias_codes: np.ndarray = None,
) -> EmulationResult:
    """Execute one conv layer through the functional CU datapath.

    Grouped convolutions route each kernel engine to its channel slice,
    mirroring the address generator's base-channel offset.
    """
    features = np.asarray(feature_codes)
    if features.ndim != 3:
        raise ValueError("expected CHW integer features")
    channels = features.shape[0]
    kernels = len(encoded.kernels)
    if kernels % geometry.groups or channels % geometry.groups:
        raise ValueError("channels must divide into groups")
    padded = np.pad(
        features.astype(np.int64),
        ((0, 0), (geometry.padding,) * 2, (geometry.padding,) * 2),
        mode="constant",
    )
    out_rows = (features.shape[1] + 2 * geometry.padding - geometry.kernel) // geometry.stride + 1
    out_cols = (features.shape[2] + 2 * geometry.padding - geometry.kernel) // geometry.stride + 1
    positions = [(r, c) for r in range(out_rows) for c in range(out_cols)]
    group_in = channels // geometry.groups
    group_out = kernels // geometry.groups
    output = np.zeros((kernels, out_rows, out_cols), dtype=np.int64)
    pushes = 0
    deepest = 0
    for m, kernel in enumerate(encoded.kernels):
        engine = FunctionalCU(config, geometry.kernel, geometry.stride)
        base = (m // group_out) * group_in
        window = padded[base : base + group_in]
        bias = int(bias_codes[m]) if bias_codes is not None else 0
        values = engine.run_kernel(kernel, window, positions, bias=bias)
        output[m] = np.asarray(values, dtype=np.int64).reshape(out_rows, out_cols)
        pushes += engine.fifo.pushes
        deepest = max(deepest, engine.fifo.max_occupancy)
    return EmulationResult(
        output=output, fifo_pushes=pushes, max_fifo_occupancy=deepest
    )
