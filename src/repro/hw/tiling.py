"""Prefetch-window planning (paper Figure 3).

The fetch/store unit streams the input feature map through the FT-Buffer in
*prefetch windows*. A window covers ``w_r x w_c`` output pixels across all
input channels — the accumulate stage needs every channel of a kernel
before a partial sum is final, so Equation (2) never tiles the reduction
axis. The whole layer is processed after ``G_r x G_c`` prefetches, the
quantity the paper's bandwidth model is written in.

Capacity model: the FT-Buffer stores ``d_f`` vector entries of ``8 * S_ec``
bits, i.e. ``d_f * S_ec`` feature bytes per CU. For convolution layers the
``S_ec`` lanes vectorize the window's (row-major linearized) output pixels
of one image; for FC layers — which have a single output pixel — the lanes
carry a batch of ``S_ec`` images instead, which is why the paper's weight
bandwidth model assumes "a minimum batch size of S_ec".

The planner maximizes the window under the capacity: full-width row stripes
when they fit, otherwise column tiles (whose halo overlap then shows up as
extra memory traffic, exactly the effect the prefetch-window model
captures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..core.specs import LayerSpec
from ..telemetry.caches import CacheStats, register_cache
from .config import AcceleratorConfig


@dataclass(frozen=True)
class WindowPlan:
    """Tiling decision for one layer on one configuration."""

    layer: str
    #: Output pixels covered per window (rows x cols); FC layers use 1x1.
    window_rows: int
    window_cols: int
    #: Prefetch grid: the layer completes after g_r * g_c windows.
    g_r: int
    g_c: int
    #: Input feature bytes loaded per window per image (includes halo).
    window_input_bytes: int
    #: Output feature bytes stored per window per image.
    window_output_bytes: int
    #: Images processed together (1 for conv, S_ec for FC).
    batch_images: int = 1

    def __post_init__(self) -> None:
        if min(self.window_rows, self.window_cols, self.g_r, self.g_c) < 1:
            raise ValueError(f"{self.layer}: window plan must be positive")

    @property
    def windows(self) -> int:
        return self.g_r * self.g_c

    @property
    def window_pixels(self) -> int:
        """Output positions computed per window (per output channel)."""
        return self.window_rows * self.window_cols

    @property
    def input_bytes_per_image(self) -> int:
        """Feature traffic per image for the whole layer (halo included)."""
        return self.windows * self.window_input_bytes

    @property
    def output_bytes_per_image(self) -> int:
        return self.windows * self.window_output_bytes


def input_extent(out_extent: int, kernel: int, stride: int) -> int:
    """Input pixels needed to produce ``out_extent`` outputs along one axis."""
    return (out_extent - 1) * stride + kernel


def plan_windows(spec: LayerSpec, config: AcceleratorConfig) -> WindowPlan:
    """Choose the largest prefetch window that fits the FT-Buffer.

    The plan depends only on the layer spec and the (d_f, s_ec) geometry of
    the configuration, so identical (spec, d_f, s_ec) triples share one
    cached :class:`WindowPlan` (frozen, safe to alias) — the quantized
    performance model, the bandwidth report and the compiled DSE grid stop
    re-planning identical layers across design points.
    """
    return plan_layer_windows(spec, config.d_f, config.s_ec)


@lru_cache(maxsize=4096)
def plan_layer_windows(spec: LayerSpec, d_f: int, s_ec: int) -> WindowPlan:
    """LRU-cached window planner keyed on (spec, d_f, s_ec).

    ``plan_windows`` delegates here; callers that vary only the buffer
    geometry (the DSE sweeps) can call this directly without building a
    full :class:`AcceleratorConfig`.
    """
    capacity = d_f * s_ec  # feature bytes per CU
    if spec.is_fc:
        # The whole input vector is one window; batch lanes give parallelism.
        if spec.input_size > capacity:
            raise ValueError(
                f"{spec.name}: FC input of {spec.input_size} bytes exceeds the "
                f"FT-Buffer capacity of {capacity}; deepen d_f"
            )
        return WindowPlan(
            layer=spec.name,
            window_rows=1,
            window_cols=1,
            g_r=1,
            g_c=1,
            window_input_bytes=spec.input_size,
            window_output_bytes=spec.out_channels,
            batch_images=s_ec,
        )

    channels = spec.in_channels
    k, s = spec.kernel, spec.stride

    # Steady-state capacity model with line-buffered halo reuse: advancing a
    # row stripe by w_r output rows only brings w_r * S new input rows; the
    # K - S halo rows stay resident in a dedicated line buffer. The first
    # window of each band pays the full halo, amortized into the per-window
    # traffic below.
    def new_rows(rows_out: int) -> int:
        return rows_out * s

    def fits(rows_out: int, cols_out: int) -> bool:
        cols_in = input_extent(cols_out, k, s)
        return channels * new_rows(rows_out) * cols_in <= capacity

    def lane_efficiency(rows_out: int, cols_out: int) -> float:
        pixels = rows_out * cols_out
        steps = math.ceil(pixels / s_ec)
        return pixels / (steps * s_ec)

    if fits(1, spec.out_cols):
        # Full-width stripes: among feasible stripe heights, pick the one
        # whose pixel count best fills the S_ec vector lanes (ties favour
        # taller stripes — fewer windows, less control overhead).
        w_c = spec.out_cols
        best_w_r, best_eff = 1, lane_efficiency(1, w_c)
        rows = 1
        while rows < spec.out_rows and fits(rows + 1, w_c):
            rows += 1
            eff = lane_efficiency(rows, w_c)
            if eff >= best_eff:
                best_w_r, best_eff = rows, eff
        w_r = best_w_r
    else:
        # Column tiling at one output row; never below one column.
        w_r = 1
        w_c = spec.out_cols
        while w_c > 1 and not fits(1, w_c):
            w_c -= 1
        if not fits(w_r, w_c):
            raise ValueError(
                f"{spec.name}: even a 1x1 output window exceeds the FT-Buffer "
                f"({channels * k * k} bytes needed, {capacity} available)"
            )
    g_r = math.ceil(spec.out_rows / w_r)
    g_c = math.ceil(spec.out_cols / w_c)
    cols_in = input_extent(w_c, k, s)
    steady_bytes = channels * new_rows(w_r) * cols_in
    # Full halo (K - S extra rows) is loaded once per row band; amortize it
    # over the band's g_c windows.
    halo_bytes = channels * max(k - s, 0) * cols_in
    return WindowPlan(
        layer=spec.name,
        window_rows=w_r,
        window_cols=w_c,
        g_r=g_r,
        g_c=g_c,
        window_input_bytes=steady_bytes + math.ceil(halo_bytes / g_c),
        window_output_bytes=spec.out_channels * w_r * w_c,
        batch_images=1,
    )


def clear_window_plan_cache() -> None:
    """Drop every cached :class:`WindowPlan`."""
    plan_layer_windows.cache_clear()


def window_plan_cache_info():
    """``functools.lru_cache`` statistics of the window-plan cache."""
    return plan_layer_windows.cache_info()


def window_plan_cache_stats() -> CacheStats:
    """Telemetry view of the window-plan LRU.

    ``functools.lru_cache`` does not expose an eviction counter, but
    ``cache_clear`` resets hits/misses along with the entries, so
    ``misses - currsize`` is exactly the number of evictions.
    """
    info = plan_layer_windows.cache_info()
    return CacheStats(
        hits=info.hits,
        misses=info.misses,
        evictions=info.misses - info.currsize,
        size=info.currsize,
        capacity=info.maxsize,
        name="hw.windows",
    )


register_cache("hw.windows", window_plan_cache_stats)
