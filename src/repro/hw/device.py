"""FPGA device catalog.

The paper evaluates on a Terasic DE5-Net (Intel Stratix-V GXA7: 234,720
ALMs, 256 DSP blocks, 2,560 M20K memories, 12.8 GB/s DDR3) and compares
against accelerators on Arria-10 parts. A :class:`FPGADevice` carries the
resource totals those comparisons need plus two modelling constants:

- ``macs_per_dsp`` — each Stratix-V DSP performs two 16/8-bit fixed-point
  MACs per cycle (paper Section 1), which fixes the SDConv roof at
  ``2 * 2 * 256 * 0.2 GHz = 204.8 GOP/s``.
- ``alms_per_accumulator`` — logic cost of one 16-bit accumulator slice
  (adder + input mux + control). This constant sets the *transformed*
  design-space roof of Figure 1: the GXA7's usable logic supports ~2,600
  accumulator slices, i.e. a 1,046 GOP/s accumulator-bound roof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class FPGADevice:
    """Resource inventory of one FPGA."""

    name: str
    alms: int
    dsps: int
    m20k_blocks: int
    bandwidth_gbs: float
    macs_per_dsp: int = 2
    alms_per_accumulator: int = 72
    #: Fraction of ALMs usable before routing/frequency collapse (the paper
    #: applies a logic-utilization constraint of ~75% during exploration).
    usable_logic_fraction: float = 0.8

    def __post_init__(self) -> None:
        if min(self.alms, self.dsps, self.m20k_blocks) < 1:
            raise ValueError(f"{self.name}: resources must be positive")
        if self.bandwidth_gbs <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")

    @property
    def mac_count(self) -> int:
        """N_mac: fixed-point MACs the DSP blocks supply per cycle."""
        return self.dsps * self.macs_per_dsp

    @property
    def max_accumulators(self) -> int:
        """Logic-bound accumulator capacity (sets the ABM roof of Fig. 1)."""
        return int(self.usable_logic_fraction * self.alms) // self.alms_per_accumulator

    @property
    def m20k_bytes(self) -> int:
        """On-chip memory capacity in bytes (an M20K block is 20 kbit)."""
        return self.m20k_blocks * 20 * 1024 // 8


#: The paper's evaluation device (DE5-Net board).
STRATIX_V_GXA7 = FPGADevice(
    name="Stratix-V GXA7",
    alms=234_720,
    dsps=256,
    m20k_blocks=2_560,
    bandwidth_gbs=12.8,
)

#: Arria-10 GX1150 (baselines [4] and [10] in Table 2).
ARRIA_10_GX1150 = FPGADevice(
    name="Arria-10 GX1150",
    alms=427_200,
    dsps=1_518,
    m20k_blocks=2_713,
    bandwidth_gbs=19.2,
)

#: Arria-10 GT1150 (baseline [12] in Table 2).
ARRIA_10_GT1150 = FPGADevice(
    name="Arria-10 GT1150",
    alms=427_200,
    dsps=1_518,
    m20k_blocks=2_713,
    bandwidth_gbs=19.2,
)

#: Mid-size Stratix-V sibling (GXA3-class inventory, same DDR3 board
#: bandwidth as the DE5-Net). Figures are datasheet approximations for
#: partition modeling, not a calibrated board.
STRATIX_V_GXA3 = FPGADevice(
    name="Stratix-V GXA3",
    alms=128_300,
    dsps=256,
    m20k_blocks=957,
    bandwidth_gbs=12.8,
)

#: Cyclone-V SoC-class small part (SE-A6-like inventory, single-channel
#: DDR3). Too small to hold the whole-model buffers of the evaluated
#: networks — it exists to carry *light shards* in pipelined
#: deployments, where it turns otherwise-idle silicon into throughput.
CYCLONE_V_SE = FPGADevice(
    name="Cyclone-V SE",
    alms=41_910,
    dsps=112,
    m20k_blocks=557,
    bandwidth_gbs=6.4,
)

_CATALOG: Dict[str, FPGADevice] = {
    device.name.lower(): device
    for device in (
        STRATIX_V_GXA7,
        ARRIA_10_GX1150,
        ARRIA_10_GT1150,
        STRATIX_V_GXA3,
        CYCLONE_V_SE,
    )
}


def available_devices() -> List[str]:
    """Names of all catalogued devices."""
    return sorted(device.name for device in _CATALOG.values())


def get_device(name: str) -> FPGADevice:
    """Look a device up by (case-insensitive) name."""
    key = name.lower()
    if key not in _CATALOG:
        raise KeyError(
            f"unknown device {name!r}; available: {', '.join(available_devices())}"
        )
    return _CATALOG[key]
