"""Address generator: decodes encoded weights into feature-map addresses.

The hardware decodes each 16-bit WT-Buffer entry on the fly, maps the
packed (n, k, k') index onto the feature-map domain for the current output
position, and issues a sequential read of the FT-Buffer (paper Section 4.2,
"a dedicated Address Generator is designed to decode the weight on-the-fly").

This functional model reproduces that mapping exactly, so the CU functional
model can execute real encoded weights against a real feature window and be
checked bit-for-bit against :func:`repro.core.abm.abm_conv2d`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..core.encoding import EncodedKernel, unpack_index


@dataclass(frozen=True)
class FeatureAddress:
    """A decoded feature-map coordinate for one accumulate operation."""

    channel: int
    row: int
    col: int
    #: Q-Table entry index this accumulate belongs to.
    group: int


class AddressGenerator:
    """Decodes one kernel's index stream for a given output position.

    Parameters
    ----------
    kernel_size / stride:
        Convolution geometry; the output position (r', c') anchors the
        window at (r' * stride, c' * stride) in the padded input.
    """

    def __init__(self, kernel_size: int, stride: int = 1) -> None:
        if kernel_size < 1 or stride < 1:
            raise ValueError("kernel size and stride must be positive")
        self.kernel_size = kernel_size
        self.stride = stride

    def addresses(
        self, encoded: EncodedKernel, out_row: int, out_col: int
    ) -> Iterator[FeatureAddress]:
        """Yield the accumulate addresses for one output pixel, in order."""
        base_row = out_row * self.stride
        base_col = out_col * self.stride
        for group, (_, block) in enumerate(encoded.value_groups()):
            for packed in block:
                channel, k, k2 = unpack_index(int(packed), self.kernel_size)
                yield FeatureAddress(
                    channel=channel, row=base_row + k, col=base_col + k2, group=group
                )

    def gather(
        self, encoded: EncodedKernel, window: np.ndarray, out_row: int, out_col: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fetch all accumulate operands for one output pixel.

        Returns ``(values, groups)``: the feature words read from the padded
        input ``window`` (CHW) and the Q-Table group of each read.
        """
        values = []
        groups = []
        for address in self.addresses(encoded, out_row, out_col):
            values.append(window[address.channel, address.row, address.col])
            groups.append(address.group)
        return np.asarray(values, dtype=np.int64), np.asarray(groups, dtype=np.int64)
