"""Semi-synchronous task scheduler and layer-level event simulation.

The task scheduling unit (paper Figure 2-a) watches the CU status flags and
launches a new task on any idle CU. A *task* is one kernel group on one
prefetch window (Figure 3); each CU has its own loop counter, so tasks of
different lengths — the irregular-sparsity imbalance that breaks lockstep
MAC arrays — simply finish when they finish. CUs only synchronize when the
feature-map buffers swap to a new prefetch window, hence "semi-synchronous".

The simulation is event-driven at task granularity: per window, tasks are
assigned greedily to the earliest-free CU; window t+1's prefetch overlaps
window t's compute through the double-buffered FT-Buffer; a barrier closes
every window. Per-CU busy cycles, lane-level work and memory stalls are
tracked so the experiments can report CU utilization the way the paper does
(87% for VGG16, 81% for AlexNet against [2]'s 64.5%).

Two implementations produce *identical* results:

- :func:`simulate_layer_reference` — the per-task event loop: one
  :class:`~repro.hw.cu.ConvTask` object and one scalar
  :func:`~repro.hw.cu.task_cycles` call per (window, kernel-group) pair.
- :func:`simulate_layer_fast` — the vectorized fast path. Task costs are a
  pure function of (group work figures, window pixels, config) and tasks
  repeat identically across windows, so per-group cost vectors are computed
  once per distinct window size with :func:`~repro.hw.cu.task_cycles_batch`,
  pre-sorted into LPT dispatch order, and the event loop degenerates to an
  array walk with an O(n_cu) earliest-free scan that replicates the
  reference heap's (free_at, cu) tie-breaking exactly.

:func:`simulate_layer` dispatches to the fast path by default
(``fast=False`` selects the reference). Differential tests in
``tests/test_hw_fastsim.py`` pin cycle-exact equality of every
:class:`LayerSimResult` field and of the recorded trace events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import AcceleratorConfig
from .cu import ConvTask, TaskCost, task_cycles, task_cycles_batch
from .memory import ExternalMemory
from .tiling import WindowPlan, plan_windows
from .trace import TraceRecorder
from .workload import LayerWorkload

#: Cycles charged for the barrier at every feature-buffer swap.
SYNC_CYCLES = 32

#: Kernel-grouping policies.
POLICY_NATURAL = "natural"
POLICY_BALANCED = "balanced"
_POLICIES = (POLICY_NATURAL, POLICY_BALANCED)


@dataclass(frozen=True)
class LayerSimResult:
    """Simulation outcome of one layer."""

    layer: str
    #: Total cycles including memory stalls and barriers.
    cycles: int
    #: Cycles spent purely on CU compute (sum of window makespans).
    compute_cycles: int
    #: Cycles the CUs sat waiting for prefetches.
    memory_stall_cycles: int
    #: Per-CU busy cycles.
    cu_busy_cycles: Tuple[int, ...]
    accumulate_ops: int
    multiply_ops: int
    tasks: int
    windows: int
    #: Images the simulated pass covered (S_ec for batched FC layers).
    images: int
    #: Feature+weight bytes moved from/to DDR during the pass.
    memory_bytes: int
    #: Engine-level busy/capacity within tasks (workload-imbalance view).
    engine_busy_cycles: int
    engine_capacity_cycles: int

    @property
    def cycles_per_image(self) -> float:
        return self.cycles / self.images

    @property
    def cu_utilization(self) -> float:
        """Mean fraction of compute time the CUs were busy."""
        if self.compute_cycles == 0:
            return 0.0
        return float(np.mean(self.cu_busy_cycles)) / self.compute_cycles

    @property
    def engine_utilization(self) -> float:
        """Within-task engine busy fraction (intra-CU imbalance)."""
        if self.engine_capacity_cycles == 0:
            return 0.0
        return self.engine_busy_cycles / self.engine_capacity_cycles

    @property
    def memory_bound(self) -> bool:
        return self.memory_stall_cycles > 0.05 * self.cycles


def make_kernel_groups(
    workload: LayerWorkload, config: AcceleratorConfig, policy: str = POLICY_NATURAL
) -> List[np.ndarray]:
    """Partition the layer's kernels into CU-sized groups.

    ``natural`` follows encoding order (what streaming the WT-Buffer gives
    for free); ``balanced`` sorts kernels by nonzero count first so each
    group's engines carry similar loads — an ablation knob for the paper's
    imbalance discussion.
    """
    if policy not in _POLICIES:
        raise ValueError(f"unknown grouping policy {policy!r}")
    order = np.arange(len(workload.kernels))
    if policy == POLICY_BALANCED:
        order = np.argsort(-workload.nonzeros_array(), kind="stable")
    return [
        order[start : start + config.n_knl]
        for start in range(0, order.size, config.n_knl)
    ]


def build_tasks(
    workload: LayerWorkload,
    plan: WindowPlan,
    config: AcceleratorConfig,
    policy: str = POLICY_NATURAL,
) -> List[ConvTask]:
    """All (window, kernel-group) tasks of a layer, in window-major order."""
    nonzeros = workload.nonzeros_array()
    distinct = workload.distinct_array()
    groups = make_kernel_groups(workload, config, policy)
    spec = workload.spec
    tasks = []
    for window_index in range(plan.windows):
        row_tile, col_tile = divmod(window_index, plan.g_c)
        rows = min(plan.window_rows, spec.out_rows - row_tile * plan.window_rows)
        cols = min(plan.window_cols, spec.out_cols - col_tile * plan.window_cols)
        pixels = rows * cols
        for group_index, group in enumerate(groups):
            tasks.append(
                ConvTask(
                    layer=spec.name,
                    window_index=window_index,
                    group_index=group_index,
                    nonzeros=tuple(int(n) for n in nonzeros[group]),
                    distinct=tuple(int(d) for d in distinct[group]),
                    window_pixels=pixels,
                )
            )
    return tasks


def _schedule_window(
    costs: Sequence[TaskCost], n_cu: int
) -> Tuple[int, List[int]]:
    """LPT list scheduling of one window's tasks; returns makespan + busy.

    The task scheduler knows every task's weight stream length up front (it
    is the Q-Table's total occurrence count), so dispatching the longest
    remaining task to the first idle CU is implementable hardware policy,
    and it is what keeps the CUs balanced despite irregular sparsity.
    """
    heap = [(0, cu) for cu in range(n_cu)]
    heapq.heapify(heap)
    busy = [0] * n_cu
    finish = 0
    for cost in sorted(costs, key=lambda c: -c.cycles):
        free_at, cu = heapq.heappop(heap)
        done = free_at + cost.cycles
        busy[cu] += cost.cycles
        finish = max(finish, done)
        heapq.heappush(heap, (done, cu))
    return finish, busy


def simulate_layer_reference(
    workload: LayerWorkload,
    config: AcceleratorConfig,
    memory: ExternalMemory,
    policy: str = POLICY_BALANCED,
    trace: Optional[TraceRecorder] = None,
) -> LayerSimResult:
    """Event-driven simulation of one layer on the accelerator.

    The FT-Buffer is double-buffered (ping-pong): while the CUs work on
    window *w*, window *w+1* prefetches into the other half. Tasks of two
    consecutive windows can therefore be in flight together; the only
    synchronization point — the paper's "infrequent" one — is that window
    *w+2* cannot start prefetching until every task of window *w* has
    released its buffer half.

    This is the reference implementation the vectorized
    :func:`simulate_layer_fast` is differentially tested against.
    """
    plan = plan_windows(workload.spec, config)
    tasks = build_tasks(workload, plan, config, policy)
    costs = [task_cycles(task, config) for task in tasks]
    groups = len(make_kernel_groups(workload, config, policy))

    # Per-window transfer: input window for every image lane of the batch,
    # the (batch-amortized) encoded weight stream, and the output store.
    weight_bytes_per_window = workload.encoded_bytes / plan.windows / config.s_ec
    window_bytes = int(
        plan.window_input_bytes * plan.batch_images
        + weight_bytes_per_window
        + plan.window_output_bytes * plan.batch_images
    )

    cu_free = [(0, cu) for cu in range(config.n_cu)]
    heapq.heapify(cu_free)
    cu_busy = [0] * config.n_cu
    stall_cycles = 0
    channel_free = 0  # when the DDR channel finishes its previous burst
    memory_bytes = 0
    engine_busy = 0
    engine_capacity = 0
    window_finish = [0] * plan.windows
    clock = 0

    for window_index in range(plan.windows):
        # Prefetch may start once the channel is free and the buffer half
        # (used two windows ago) has been released by its last task.
        buffer_free = window_finish[window_index - 2] if window_index >= 2 else 0
        transfer = memory.record(window_bytes)
        memory_bytes += window_bytes
        prefetch_done = max(channel_free, buffer_free) + transfer
        channel_free = prefetch_done
        release = prefetch_done + SYNC_CYCLES
        window_start = window_index * groups
        window_items = list(
            zip(tasks[window_start : window_start + groups],
                costs[window_start : window_start + groups])
        )
        window_costs = [cost for _, cost in window_items]
        finish_all = 0
        # LPT: dispatch the longest remaining task to the first idle CU.
        for task, cost in sorted(window_items, key=lambda item: -item[1].cycles):
            free_at, cu = heapq.heappop(cu_free)
            start = max(free_at, release)
            stall_cycles += start - free_at
            done = start + cost.cycles
            cu_busy[cu] += cost.cycles
            finish_all = max(finish_all, done)
            heapq.heappush(cu_free, (done, cu))
            engine_busy += cost.engine_busy_cycles
            engine_capacity += cost.engine_cycle_capacity
            if trace is not None:
                trace.record(
                    layer=task.layer,
                    window_index=task.window_index,
                    group_index=task.group_index,
                    cu=cu,
                    start=start,
                    end=done,
                )
        window_finish[window_index] = finish_all
        clock = max(clock, finish_all)

    compute_cycles = max(clock, 1)
    return LayerSimResult(
        layer=workload.spec.name,
        cycles=clock,
        compute_cycles=compute_cycles,
        memory_stall_cycles=min(stall_cycles // max(config.n_cu, 1), clock),
        cu_busy_cycles=tuple(cu_busy),
        accumulate_ops=workload.accumulate_ops * plan.batch_images,
        multiply_ops=workload.multiply_ops * plan.batch_images,
        tasks=len(tasks),
        windows=plan.windows,
        images=plan.batch_images,
        memory_bytes=memory_bytes,
        engine_busy_cycles=engine_busy,
        engine_capacity_cycles=engine_capacity,
    )


@dataclass(frozen=True)
class _WindowSchedule:
    """Pre-sorted dispatch schedule for one distinct window pixel count."""

    #: Group indices in LPT dispatch order (descending cost, stable ties).
    dispatch: Tuple[int, ...]
    #: Task cycles aligned with ``dispatch``.
    cycles: Tuple[int, ...]
    #: Window totals (independent of the CU assignment).
    engine_busy: int
    engine_capacity: int


def _window_pixel_counts(spec, plan: WindowPlan) -> List[int]:
    """Output pixels covered by each window, in window-major order."""
    pixels = []
    for window_index in range(plan.windows):
        row_tile, col_tile = divmod(window_index, plan.g_c)
        rows = min(plan.window_rows, spec.out_rows - row_tile * plan.window_rows)
        cols = min(plan.window_cols, spec.out_cols - col_tile * plan.window_cols)
        pixels.append(rows * cols)
    return pixels


def compile_window_schedules(
    workload: LayerWorkload,
    config: AcceleratorConfig,
    policy: str = POLICY_NATURAL,
    pixel_counts: Optional[Sequence[int]] = None,
) -> Dict[int, _WindowSchedule]:
    """Cost vectors for every distinct window size of a layer.

    A layer has at most four distinct window pixel counts (interior, right
    edge, bottom edge, corner), so the whole schedule costs four batched
    :func:`~repro.hw.cu.task_cycles_batch` calls instead of one scalar
    :func:`~repro.hw.cu.task_cycles` per (window, group) task.
    """
    if pixel_counts is None:
        plan = plan_windows(workload.spec, config)
        pixel_counts = _window_pixel_counts(workload.spec, plan)
    groups = make_kernel_groups(workload, config, policy)
    flat = np.concatenate(groups)
    nonzeros = workload.nonzeros_array()[flat]
    distinct = workload.distinct_array()[flat]
    group_starts = np.arange(0, flat.size, config.n_knl)
    schedules: Dict[int, _WindowSchedule] = {}
    for pixels in pixel_counts:
        if pixels in schedules:
            continue
        batch = task_cycles_batch(nonzeros, distinct, group_starts, pixels, config)
        # Same LPT order as the reference: descending cycles, stable ties.
        order = np.argsort(-batch.cycles, kind="stable")
        schedules[pixels] = _WindowSchedule(
            dispatch=tuple(order.tolist()),
            cycles=tuple(batch.cycles[order].tolist()),
            engine_busy=int(batch.engine_busy_cycles.sum()),
            engine_capacity=int(batch.engine_cycle_capacity.sum()),
        )
    return schedules


def simulate_layer_fast(
    workload: LayerWorkload,
    config: AcceleratorConfig,
    memory: ExternalMemory,
    policy: str = POLICY_BALANCED,
    trace: Optional[TraceRecorder] = None,
) -> LayerSimResult:
    """Vectorized layer simulation; cycle-exact vs the reference.

    No per-task Python objects are materialized: costs come pre-sorted from
    :func:`compile_window_schedules` and the greedy assignment scans a plain
    integer list for the earliest-free CU (first minimum wins, matching the
    reference heap's (free_at, cu) ordering). When a ``trace`` recorder is
    passed, events are reconstructed from the array schedule and are
    identical to the reference trace.
    """
    plan = plan_windows(workload.spec, config)
    pixel_counts = _window_pixel_counts(workload.spec, plan)
    schedules = compile_window_schedules(workload, config, policy, pixel_counts)
    n_groups = -(-len(workload.kernels) // config.n_knl)

    weight_bytes_per_window = workload.encoded_bytes / plan.windows / config.s_ec
    window_bytes = int(
        plan.window_input_bytes * plan.batch_images
        + weight_bytes_per_window
        + plan.window_output_bytes * plan.batch_images
    )

    n_cu = config.n_cu
    cu_range = range(n_cu)
    free = [0] * n_cu
    cu_busy = [0] * n_cu
    stall_cycles = 0
    channel_free = 0
    memory_bytes = 0
    engine_busy = 0
    engine_capacity = 0
    window_finish = [0] * plan.windows
    clock = 0
    layer_name = workload.spec.name

    for window_index in range(plan.windows):
        buffer_free = window_finish[window_index - 2] if window_index >= 2 else 0
        transfer = memory.record(window_bytes)
        memory_bytes += window_bytes
        prefetch_done = max(channel_free, buffer_free) + transfer
        channel_free = prefetch_done
        release = prefetch_done + SYNC_CYCLES
        schedule = schedules[pixel_counts[window_index]]
        finish_all = 0
        for position, cost in enumerate(schedule.cycles):
            cu = min(cu_range, key=free.__getitem__)
            free_at = free[cu]
            start = free_at if free_at > release else release
            stall_cycles += start - free_at
            done = start + cost
            cu_busy[cu] += cost
            free[cu] = done
            if done > finish_all:
                finish_all = done
            if trace is not None:
                trace.record(
                    layer=layer_name,
                    window_index=window_index,
                    group_index=schedule.dispatch[position],
                    cu=cu,
                    start=start,
                    end=done,
                )
        engine_busy += schedule.engine_busy
        engine_capacity += schedule.engine_capacity
        window_finish[window_index] = finish_all
        if finish_all > clock:
            clock = finish_all

    compute_cycles = max(clock, 1)
    return LayerSimResult(
        layer=layer_name,
        cycles=clock,
        compute_cycles=compute_cycles,
        memory_stall_cycles=min(stall_cycles // max(n_cu, 1), clock),
        cu_busy_cycles=tuple(cu_busy),
        accumulate_ops=workload.accumulate_ops * plan.batch_images,
        multiply_ops=workload.multiply_ops * plan.batch_images,
        tasks=plan.windows * n_groups,
        windows=plan.windows,
        images=plan.batch_images,
        memory_bytes=memory_bytes,
        engine_busy_cycles=engine_busy,
        engine_capacity_cycles=engine_capacity,
    )


def simulate_layer(
    workload: LayerWorkload,
    config: AcceleratorConfig,
    memory: ExternalMemory,
    policy: str = POLICY_BALANCED,
    trace: Optional[TraceRecorder] = None,
    fast: bool = True,
) -> LayerSimResult:
    """Simulate one layer; vectorized fast path by default.

    ``fast=False`` runs the per-task :func:`simulate_layer_reference` event
    loop instead. Both paths return identical results (including trace
    events) — the differential tests assert field-exact equality.
    """
    if fast:
        return simulate_layer_fast(workload, config, memory, policy, trace)
    return simulate_layer_reference(workload, config, memory, policy, trace)
