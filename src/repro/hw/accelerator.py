"""Top-level accelerator simulator facade.

Runs a whole :class:`~repro.hw.workload.ModelWorkload` through the
layer-level event simulation and aggregates the figures the paper reports:
inference time, throughput in GOP/s (normalized, as in the paper, to the
*original dense* op count of the model), performance density per DSP, CU
utilization and the external-bandwidth picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .config import AcceleratorConfig
from .device import FPGADevice
from .memory import ExternalMemory
from .scheduler import POLICY_BALANCED, LayerSimResult, simulate_layer
from .workload import ModelWorkload


@dataclass(frozen=True)
class ModelSimResult:
    """Aggregated simulation outcome for one model on one configuration."""

    model: str
    config: AcceleratorConfig
    layers: Tuple[LayerSimResult, ...]
    dense_ops: int

    @property
    def cycles_per_image(self) -> float:
        return float(sum(layer.cycles_per_image for layer in self.layers))

    @property
    def seconds_per_image(self) -> float:
        return self.cycles_per_image / (self.config.freq_mhz * 1e6)

    @property
    def images_per_second(self) -> float:
        return 1.0 / self.seconds_per_image

    @property
    def throughput_gops(self) -> float:
        """GOP/s on the paper's basis: dense #OP / average inference time."""
        return self.dense_ops / self.seconds_per_image / 1e9

    @property
    def effective_gops(self) -> float:
        """GOP/s counted on the operations actually executed (acc + mult)."""
        executed = sum(
            (layer.accumulate_ops + layer.multiply_ops) / layer.images
            for layer in self.layers
        )
        return executed / self.seconds_per_image / 1e9

    @property
    def cu_utilization(self) -> float:
        """Compute-time-weighted mean CU busy fraction (paper's efficiency)."""
        total_compute = sum(layer.compute_cycles for layer in self.layers)
        if total_compute == 0:
            return 0.0
        weighted = sum(
            layer.cu_utilization * layer.compute_cycles for layer in self.layers
        )
        return weighted / total_compute

    @property
    def engine_utilization(self) -> float:
        """Within-task engine busy fraction across the run."""
        capacity = sum(layer.engine_capacity_cycles for layer in self.layers)
        if capacity == 0:
            return 0.0
        busy = sum(layer.engine_busy_cycles for layer in self.layers)
        return busy / capacity

    @property
    def memory_stall_fraction(self) -> float:
        cycles = sum(layer.cycles for layer in self.layers)
        if cycles == 0:
            return 0.0
        return sum(layer.memory_stall_cycles for layer in self.layers) / cycles

    @property
    def bandwidth_gbs(self) -> float:
        """Average external bandwidth over the inference."""
        bytes_per_image = sum(
            layer.memory_bytes / layer.images for layer in self.layers
        )
        return bytes_per_image / self.seconds_per_image / 1e9

    def perf_density(self, dsps_used: int) -> float:
        """GOP/s per DSP — Table 2's cross-device comparison metric."""
        if dsps_used < 1:
            raise ValueError("DSP count must be positive")
        return self.throughput_gops / dsps_used

    def layer_result(self, name: str) -> LayerSimResult:
        for layer in self.layers:
            if layer.layer == name:
                return layer
        raise KeyError(f"no layer named {name!r} in simulation of {self.model!r}")


class AcceleratorSimulator:
    """Simulates the ABM-SpConv accelerator on model workloads."""

    def __init__(
        self,
        config: AcceleratorConfig,
        device: Optional[FPGADevice] = None,
        policy: str = POLICY_BALANCED,
    ) -> None:
        self.config = config
        self.device = device
        self.policy = policy

    def _memory(self) -> ExternalMemory:
        bandwidth = self.device.bandwidth_gbs if self.device else 12.8
        return ExternalMemory(bandwidth_gbs=bandwidth, freq_mhz=self.config.freq_mhz)

    def simulate(self, workload: ModelWorkload) -> ModelSimResult:
        """Run every layer and aggregate."""
        memory = self._memory()
        results = tuple(
            simulate_layer(layer, self.config, memory, policy=self.policy)
            for layer in workload.layers
        )
        return ModelSimResult(
            model=workload.name,
            config=self.config,
            layers=results,
            dense_ops=workload.dense_ops,
        )

    def utilization_summary(self, result: ModelSimResult) -> str:
        """Human-readable per-layer utilization table."""
        lines = [
            f"{'layer':<12} {'cycles':>12} {'CU util':>8} {'engine':>8} "
            f"{'mem stall':>10}"
        ]
        for layer in result.layers:
            lines.append(
                f"{layer.layer:<12} {layer.cycles:>12,} "
                f"{layer.cu_utilization:>7.1%} {layer.engine_utilization:>7.1%} "
                f"{layer.memory_stall_cycles / max(layer.cycles, 1):>9.1%}"
            )
        lines.append(
            f"{'total':<12} {int(np.ceil(result.cycles_per_image)):>12,} "
            f"{result.cu_utilization:>7.1%} {result.engine_utilization:>7.1%} "
            f"{result.memory_stall_fraction:>9.1%}"
        )
        return "\n".join(lines)
