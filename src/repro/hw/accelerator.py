"""Top-level accelerator simulator facade.

Runs a whole :class:`~repro.hw.workload.ModelWorkload` through the
layer-level event simulation and aggregates the figures the paper reports:
inference time, throughput in GOP/s (normalized, as in the paper, to the
*original dense* op count of the model), performance density per DSP, CU
utilization and the external-bandwidth picture.

Layer results are memoized in a process-wide LRU keyed on (workload
fingerprint, config, device bandwidth, policy): per-layer simulations are
independent pure functions of those inputs, so DSE sweeps, repeated
``SystemRuntime``/serve deployments and the experiment suite stop
re-simulating identical layers. ``simulate(..., workers=N)`` optionally
fans uncached layers out over a process pool with deterministic result
ordering.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..telemetry.caches import CacheStats, register_cache
from ..telemetry.context import get_active
from .config import AcceleratorConfig
from .device import FPGADevice
from .memory import ExternalMemory
from .scheduler import POLICY_BALANCED, LayerSimResult, simulate_layer
from .trace import TraceRecorder
from .workload import LayerWorkload, ModelWorkload

#: DDR bandwidth assumed when no device is given (the DE5-Net's DDR3).
DEFAULT_BANDWIDTH_GBS = 12.8

#: Layer results kept before LRU eviction. One entry per distinct
#: (layer workload, config, bandwidth, policy) — full-model simulations of
#: AlexNet/VGG16-class networks need a few tens of entries each.
SIM_CACHE_CAPACITY = 4096

_SimKey = Tuple[LayerWorkload, AcceleratorConfig, float, str]
_sim_cache: "OrderedDict[_SimKey, LayerSimResult]" = OrderedDict()
_sim_cache_lock = threading.Lock()
_sim_cache_hits = 0
_sim_cache_misses = 0
_sim_cache_evictions = 0


def _sim_cache_get(key: _SimKey) -> Optional[LayerSimResult]:
    global _sim_cache_hits, _sim_cache_misses
    with _sim_cache_lock:
        result = _sim_cache.get(key)
        if result is not None:
            _sim_cache.move_to_end(key)
            _sim_cache_hits += 1
        else:
            _sim_cache_misses += 1
        return result


def _sim_cache_put(key: _SimKey, result: LayerSimResult) -> None:
    global _sim_cache_evictions
    with _sim_cache_lock:
        _sim_cache[key] = result
        _sim_cache.move_to_end(key)
        while len(_sim_cache) > SIM_CACHE_CAPACITY:
            _sim_cache.popitem(last=False)
            _sim_cache_evictions += 1


def clear_sim_cache() -> None:
    """Drop all cached layer simulations (tests, memory-sensitive callers)."""
    global _sim_cache_hits, _sim_cache_misses, _sim_cache_evictions
    with _sim_cache_lock:
        _sim_cache.clear()
        _sim_cache_hits = 0
        _sim_cache_misses = 0
        _sim_cache_evictions = 0


def sim_cache_size() -> int:
    with _sim_cache_lock:
        return len(_sim_cache)


def sim_cache_info() -> CacheStats:
    """Full hit/miss/eviction accounting of the layer-sim result cache."""
    with _sim_cache_lock:
        return CacheStats(
            hits=_sim_cache_hits,
            misses=_sim_cache_misses,
            evictions=_sim_cache_evictions,
            size=len(_sim_cache),
            capacity=SIM_CACHE_CAPACITY,
            name="hw.sim",
        )


def sim_cache_stats() -> Tuple[int, int]:
    """(hits, misses) since the last :func:`clear_sim_cache`.

    .. deprecated:: use :func:`sim_cache_info`, which also reports
       evictions, size and capacity as a :class:`CacheStats`.
    """
    import warnings

    warnings.warn(
        "sim_cache_stats() is deprecated; use sim_cache_info(), which "
        "returns the full CacheStats record",
        DeprecationWarning,
        stacklevel=2,
    )
    info = sim_cache_info()
    return info.hits, info.misses


register_cache("hw.sim", sim_cache_info)


def _simulate_layer_job(
    job: Tuple[LayerWorkload, AcceleratorConfig, float, str, bool]
) -> LayerSimResult:
    """Module-level worker so parallel jobs pickle cleanly."""
    layer, config, bandwidth_gbs, policy, fast = job
    memory = ExternalMemory(bandwidth_gbs=bandwidth_gbs, freq_mhz=config.freq_mhz)
    return simulate_layer(layer, config, memory, policy=policy, fast=fast)


@dataclass(frozen=True)
class ModelSimResult:
    """Aggregated simulation outcome for one model on one configuration."""

    model: str
    config: AcceleratorConfig
    layers: Tuple[LayerSimResult, ...]
    dense_ops: int

    @property
    def cycles_per_image(self) -> float:
        return float(sum(layer.cycles_per_image for layer in self.layers))

    @property
    def seconds_per_image(self) -> float:
        return self.cycles_per_image / (self.config.freq_mhz * 1e6)

    @property
    def images_per_second(self) -> float:
        return 1.0 / self.seconds_per_image

    @property
    def throughput_gops(self) -> float:
        """GOP/s on the paper's basis: dense #OP / average inference time."""
        return self.dense_ops / self.seconds_per_image / 1e9

    @property
    def effective_gops(self) -> float:
        """GOP/s counted on the operations actually executed (acc + mult)."""
        executed = sum(
            (layer.accumulate_ops + layer.multiply_ops) / layer.images
            for layer in self.layers
        )
        return executed / self.seconds_per_image / 1e9

    @property
    def cu_utilization(self) -> float:
        """Compute-time-weighted mean CU busy fraction (paper's efficiency)."""
        total_compute = sum(layer.compute_cycles for layer in self.layers)
        if total_compute == 0:
            return 0.0
        weighted = sum(
            layer.cu_utilization * layer.compute_cycles for layer in self.layers
        )
        return weighted / total_compute

    @property
    def engine_utilization(self) -> float:
        """Within-task engine busy fraction across the run."""
        capacity = sum(layer.engine_capacity_cycles for layer in self.layers)
        if capacity == 0:
            return 0.0
        busy = sum(layer.engine_busy_cycles for layer in self.layers)
        return busy / capacity

    @property
    def memory_stall_fraction(self) -> float:
        cycles = sum(layer.cycles for layer in self.layers)
        if cycles == 0:
            return 0.0
        return sum(layer.memory_stall_cycles for layer in self.layers) / cycles

    @property
    def bandwidth_gbs(self) -> float:
        """Average external bandwidth over the inference."""
        bytes_per_image = sum(
            layer.memory_bytes / layer.images for layer in self.layers
        )
        return bytes_per_image / self.seconds_per_image / 1e9

    def perf_density(self, dsps_used: int) -> float:
        """GOP/s per DSP — Table 2's cross-device comparison metric."""
        if dsps_used < 1:
            raise ValueError("DSP count must be positive")
        return self.throughput_gops / dsps_used

    def layer_result(self, name: str) -> LayerSimResult:
        for layer in self.layers:
            if layer.layer == name:
                return layer
        raise KeyError(f"no layer named {name!r} in simulation of {self.model!r}")


class AcceleratorSimulator:
    """Simulates the ABM-SpConv accelerator on model workloads.

    ``fast`` selects the vectorized scheduler (identical results; see
    :mod:`repro.hw.scheduler`); ``use_cache`` routes layers through the
    process-wide result cache.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        device: Optional[FPGADevice] = None,
        policy: str = POLICY_BALANCED,
        fast: bool = True,
        use_cache: bool = True,
    ) -> None:
        self.config = config
        self.device = device
        self.policy = policy
        self.fast = fast
        self.use_cache = use_cache

    @property
    def bandwidth_gbs(self) -> float:
        return self.device.bandwidth_gbs if self.device else DEFAULT_BANDWIDTH_GBS

    def _memory(self) -> ExternalMemory:
        return ExternalMemory(
            bandwidth_gbs=self.bandwidth_gbs, freq_mhz=self.config.freq_mhz
        )

    def _key(self, layer: LayerWorkload) -> _SimKey:
        # LayerWorkload hashes by value (frozen dataclass of plain figures),
        # so equal workloads hit regardless of where they were constructed.
        return (layer, self.config, self.bandwidth_gbs, self.policy)

    def simulate(
        self,
        workload: ModelWorkload,
        workers: Optional[int] = None,
        trace: Optional["TraceRecorder"] = None,
    ) -> ModelSimResult:
        """Run every layer and aggregate.

        ``workers`` fans uncached layers out over a process pool
        (``repro.dse.parallel.map_jobs``); results come back in layer order
        either way, and cached layers are never re-simulated.

        ``trace`` captures per-task scheduler events into the given
        :class:`~repro.hw.trace.TraceRecorder`. Traced runs are forced
        serial and in-process and bypass the result cache in both
        directions — trace events cannot come from a cache hit or cross a
        process pool. The recorder's ``dropped`` count (ring-buffer
        overflow) is published as the ``hw.trace.dropped`` gauge when a
        telemetry context is active.
        """
        if trace is not None:
            return self._simulate_traced(workload, trace)
        layers = workload.layers
        results: List[Optional[LayerSimResult]] = [None] * len(layers)
        pending: List[int] = []
        for index, layer in enumerate(layers):
            cached = self._sim_cache_probe(layer) if self.use_cache else None
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
        if pending:
            from ..dse.parallel import map_jobs  # local: avoids import cycle

            jobs = [
                (layers[i], self.config, self.bandwidth_gbs, self.policy, self.fast)
                for i in pending
            ]
            for index, result in zip(pending, map_jobs(_simulate_layer_job, jobs, workers)):
                results[index] = result
                if self.use_cache:
                    _sim_cache_put(self._key(layers[index]), result)
        return ModelSimResult(
            model=workload.name,
            config=self.config,
            layers=tuple(results),
            dense_ops=workload.dense_ops,
        )

    def _simulate_traced(
        self, workload: ModelWorkload, trace: "TraceRecorder"
    ) -> ModelSimResult:
        results: List[LayerSimResult] = []
        for layer in workload.layers:
            memory = self._memory()
            results.append(
                simulate_layer(
                    layer,
                    self.config,
                    memory,
                    policy=self.policy,
                    trace=trace,
                    fast=self.fast,
                )
            )
        telemetry = get_active()
        if telemetry is not None:
            telemetry.registry.gauge("hw.trace.dropped").set(trace.dropped)
            telemetry.registry.gauge("hw.trace.recorded").set(trace.recorded)
        return ModelSimResult(
            model=workload.name,
            config=self.config,
            layers=tuple(results),
            dense_ops=workload.dense_ops,
        )

    def _sim_cache_probe(self, layer: LayerWorkload) -> Optional[LayerSimResult]:
        return _sim_cache_get(self._key(layer))

    def utilization_summary(self, result: ModelSimResult) -> str:
        """Human-readable per-layer utilization table."""
        lines = [
            f"{'layer':<12} {'cycles':>12} {'CU util':>8} {'engine':>8} "
            f"{'mem stall':>10}"
        ]
        for layer in result.layers:
            lines.append(
                f"{layer.layer:<12} {layer.cycles:>12,} "
                f"{layer.cu_utilization:>7.1%} {layer.engine_utilization:>7.1%} "
                f"{layer.memory_stall_cycles / max(layer.cycles, 1):>9.1%}"
            )
        lines.append(
            f"{'total':<12} {int(np.ceil(result.cycles_per_image)):>12,} "
            f"{result.cu_utilization:>7.1%} {result.engine_utilization:>7.1%} "
            f"{result.memory_stall_fraction:>9.1%}"
        )
        return "\n".join(lines)
