"""External (DDR) memory model.

The DE5-Net provides 12.8 GB/s of DDR3 bandwidth. The fetch/store unit
double-buffers prefetch windows, so memory transfers overlap compute; a
layer only becomes memory-bound when a window's transfer outlasts its
computation. The model charges a fixed per-burst latency plus a
bandwidth-proportional term and keeps running totals for the bandwidth
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fixed cycles charged per transfer burst (command + row activation).
BURST_LATENCY_CYCLES = 64


@dataclass
class ExternalMemory:
    """DDR interface shared by all CUs."""

    bandwidth_gbs: float
    freq_mhz: float
    total_bytes: int = 0
    total_transfer_cycles: int = 0
    transfers: int = 0
    _bytes_per_cycle: float = field(init=False)

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0 or self.freq_mhz <= 0:
            raise ValueError("bandwidth and frequency must be positive")
        self._bytes_per_cycle = (self.bandwidth_gbs * 1e9) / (self.freq_mhz * 1e6)

    @property
    def bytes_per_cycle(self) -> float:
        """Bytes the DDR delivers per accelerator clock cycle."""
        return self._bytes_per_cycle

    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles to move ``nbytes`` (without recording the transfer)."""
        if nbytes < 0:
            raise ValueError("transfer size cannot be negative")
        if nbytes == 0:
            return 0
        return BURST_LATENCY_CYCLES + int(round(nbytes / self._bytes_per_cycle))

    def record(self, nbytes: int) -> int:
        """Account a transfer and return its duration in cycles."""
        cycles = self.transfer_cycles(nbytes)
        if nbytes > 0:
            self.total_bytes += nbytes
            self.total_transfer_cycles += cycles
            self.transfers += 1
        return cycles

    def achieved_bandwidth_gbs(self, elapsed_cycles: int) -> float:
        """Average bandwidth over a run of ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles / (self.freq_mhz * 1e6)
        return self.total_bytes / seconds / 1e9
