"""MAC-array baseline accelerator model (the SDConv designs of Section 1).

Conventional FPGA CNN accelerators [4, 12, 13] instantiate an array of
DSP-based multiplier-accumulators and stream the dense convolution through
it. Their computational roof is ``2 * N_mac * Freq``; real designs land
below it because of array-geometry quantization losses (a layer whose
dimensions don't divide the array leaves lanes idle). This model captures
both effects so Figure 1's design-space comparison and the ablation benches
have an executable SDConv reference rather than a literature constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.specs import LayerSpec
from .device import FPGADevice


@dataclass(frozen=True)
class MacArrayConfig:
    """A MAC-array accelerator: an array of rows x cols MAC units."""

    rows: int  # output-channel parallelism
    cols: int  # pixel parallelism
    freq_mhz: float = 200.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")
        if self.freq_mhz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def mac_units(self) -> int:
        return self.rows * self.cols


def mac_array_for_device(device: FPGADevice, freq_mhz: float = 200.0) -> MacArrayConfig:
    """Largest near-square MAC array the device's DSPs support."""
    units = device.mac_count
    rows = int(math.sqrt(units))
    while units % rows:
        rows -= 1
    return MacArrayConfig(rows=rows, cols=units // rows, freq_mhz=freq_mhz)


@dataclass(frozen=True)
class MacArrayLayerResult:
    """Cycle estimate for one layer on the MAC array."""

    layer: str
    cycles: int
    macs: int
    mac_units: int

    @property
    def utilization(self) -> float:
        """Useful MACs over array capacity during the layer."""
        capacity = self.cycles * self.mac_units
        return 0.0 if capacity == 0 else min(1.0, self.macs / capacity)


def simulate_mac_layer(
    spec: LayerSpec, config: MacArrayConfig
) -> MacArrayLayerResult:
    """Dense spatial convolution on the array.

    Output channels map to array rows and output pixels to columns; the
    reduction (N/g * K * K) streams temporally. Ceiling effects on both
    axes model the quantization loss.
    """
    row_waves = math.ceil(spec.out_channels / config.rows)
    col_waves = math.ceil(spec.output_pixels / config.cols)
    cycles = row_waves * col_waves * spec.weights_per_kernel
    return MacArrayLayerResult(
        layer=spec.name,
        cycles=cycles,
        macs=spec.macs,
        mac_units=config.mac_units,
    )


@dataclass(frozen=True)
class MacArrayModelResult:
    """Whole-model MAC-array estimate."""

    layers: Tuple[MacArrayLayerResult, ...]
    config: MacArrayConfig
    dense_ops: int

    @property
    def cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def seconds_per_image(self) -> float:
        return self.cycles / (self.config.freq_mhz * 1e6)

    @property
    def throughput_gops(self) -> float:
        return self.dense_ops / self.seconds_per_image / 1e9

    @property
    def array_utilization(self) -> float:
        """Achieved MAC rate over the array's peak."""
        peak = self.config.mac_units * self.cycles
        total_macs = sum(layer.macs for layer in self.layers)
        return 0.0 if peak == 0 else min(1.0, total_macs / peak)


def simulate_mac_model(
    specs: Sequence[LayerSpec], config: MacArrayConfig
) -> MacArrayModelResult:
    """Run every layer through the MAC-array model."""
    layers = tuple(simulate_mac_layer(spec, config) for spec in specs)
    dense_ops = sum(spec.dense_ops for spec in specs)
    return MacArrayModelResult(layers=layers, config=config, dense_ops=dense_ops)
