"""Activity-based power/energy model.

The paper motivates FPGAs with "lower power dissipation" but reports no
power numbers; this model adds the standard activity-based estimate so the
energy side of the ABM-vs-MAC-array trade can be studied. Per-operation
energies are rough 28-nm (Stratix-V class) literature values — the *ratios*
(a DSP multiply costs several ALM adds; DDR dwarfs on-chip SRAM) are what
the conclusions rest on, and tests only assert relationships, not watts.

Energy per image = accumulates * E_acc + multiplies * E_mult
                 + on-chip buffer accesses * E_sram + DDR bytes * E_ddr;
Power = dynamic energy / time + static leakage (scaled by logic used).
"""

from __future__ import annotations

from dataclasses import dataclass

from .accelerator import ModelSimResult
from .config import AcceleratorConfig
from .mac_array import MacArrayModelResult
from .workload import ModelWorkload


@dataclass(frozen=True)
class EnergyModel:
    """Per-activity energy coefficients (Joules)."""

    accumulate_j: float = 1.5e-12  # 16-bit ALM adder toggle
    multiply_j: float = 6.0e-12  # 16x16 DSP multiply
    sram_access_j: float = 5.0e-12  # one 16-bit M20K access
    ddr_byte_j: float = 70.0e-12  # DDR3 transfer per byte
    static_w: float = 2.5  # base leakage of the powered device
    #: Buffer accesses charged per accumulate (feature read + partial write
    #: amortized over the S_ec lanes sharing one fetch).
    sram_accesses_per_op: float = 1.5

    def __post_init__(self) -> None:
        values = (
            self.accumulate_j,
            self.multiply_j,
            self.sram_access_j,
            self.ddr_byte_j,
            self.static_w,
        )
        if min(values) < 0:
            raise ValueError("energy coefficients cannot be negative")


@dataclass(frozen=True)
class PowerReport:
    """Energy/power figures for one inference workload."""

    label: str
    energy_per_image_j: float
    seconds_per_image: float
    static_w: float
    dense_ops: int

    @property
    def dynamic_power_w(self) -> float:
        return self.energy_per_image_j / self.seconds_per_image

    @property
    def total_power_w(self) -> float:
        return self.dynamic_power_w + self.static_w

    @property
    def gops_per_watt(self) -> float:
        """Efficiency on the paper's dense-op throughput basis."""
        gops = self.dense_ops / self.seconds_per_image / 1e9
        return gops / self.total_power_w

    @property
    def energy_per_image_mj(self) -> float:
        return self.energy_per_image_j * 1e3


def abm_power(
    simulation: ModelSimResult, model: EnergyModel = EnergyModel()
) -> PowerReport:
    """Power report for a simulated ABM-SpConv run."""
    acc_ops = sum(l.accumulate_ops / l.images for l in simulation.layers)
    mult_ops = sum(l.multiply_ops / l.images for l in simulation.layers)
    ddr_bytes = sum(l.memory_bytes / l.images for l in simulation.layers)
    energy = (
        acc_ops * model.accumulate_j
        + mult_ops * model.multiply_j
        + acc_ops * model.sram_accesses_per_op * model.sram_access_j
        + ddr_bytes * model.ddr_byte_j
    )
    return PowerReport(
        label=f"abm-spconv/{simulation.model}",
        energy_per_image_j=energy,
        seconds_per_image=simulation.seconds_per_image,
        static_w=model.static_w,
        dense_ops=simulation.dense_ops,
    )


def analytic_energy_per_image(
    workload: ModelWorkload,
    config: AcceleratorConfig,
    model: EnergyModel = EnergyModel(),
) -> float:
    """Per-image dynamic energy of a workload/configuration pair.

    Same activity accounting as :func:`abm_power`, but fed from the
    analytic models instead of a simulation: operation counts come from
    the workload statistics and DDR traffic from the bandwidth model's
    prefetch-window plan. The result depends only on the ``(d_f, s_ec)``
    geometry of the configuration — which is what lets the compiled DSE
    grid (:meth:`repro.dse.compiled.CompiledWorkload.evaluate_grid`)
    evaluate energy once per ``S_ec`` column and stay float-identical to
    this per-point path.
    """
    from ..dse.bandwidth import layer_traffic  # local: dse sits above hw

    acc_ops = workload.accumulate_ops
    mult_ops = workload.multiply_ops
    ddr_bytes = sum(
        layer_traffic(layer, config).total_bytes for layer in workload.layers
    )
    return (
        acc_ops * model.accumulate_j
        + mult_ops * model.multiply_j
        + acc_ops * model.sram_accesses_per_op * model.sram_access_j
        + ddr_bytes * model.ddr_byte_j
    )


def abm_power_analytic(
    workload: ModelWorkload,
    config: AcceleratorConfig,
    seconds_per_image: float,
    model: EnergyModel = EnergyModel(),
) -> PowerReport:
    """Power report for an analytically-modelled (unsimulated) design point.

    ``seconds_per_image`` comes from the performance model (cycles at the
    configured clock); energy from :func:`analytic_energy_per_image`.
    """
    return PowerReport(
        label=f"abm-spconv/{workload.name}",
        energy_per_image_j=analytic_energy_per_image(workload, config, model),
        seconds_per_image=seconds_per_image,
        static_w=model.static_w,
        dense_ops=workload.dense_ops,
    )


def mac_array_power(
    result: MacArrayModelResult,
    feature_bytes_per_image: float,
    weight_bytes_per_image: float,
    model: EnergyModel = EnergyModel(),
) -> PowerReport:
    """Power report for the dense MAC-array baseline.

    Every MAC costs one multiply, one accumulate and the same buffer
    traffic per operation; DDR moves the dense weights and features.
    """
    macs = sum(layer.macs for layer in result.layers)
    ddr_bytes = feature_bytes_per_image + weight_bytes_per_image
    energy = (
        macs * (model.multiply_j + model.accumulate_j)
        + macs * model.sram_accesses_per_op * model.sram_access_j
        + ddr_bytes * model.ddr_byte_j
    )
    return PowerReport(
        label="mac-array",
        energy_per_image_j=energy,
        seconds_per_image=result.seconds_per_image,
        static_w=model.static_w,
        dense_ops=result.dense_ops,
    )
