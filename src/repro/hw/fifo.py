"""Partial-sum FIFO model.

In the CU datapath (paper Figure 2-b) every accumulator group deposits its
partial sums into a FIFO from which the shared multiplier drains them in
round-robin order. The FIFO decouples the two stages; with a proper depth
the two-stage convolution pipeline never stalls (Section 4.2). This model
tracks occupancy, push/pop counts and stall events so tests can verify the
depth chosen by the DSE flow actually avoids back-pressure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple


class FifoOverflow(RuntimeError):
    """Raised when a push would exceed the FIFO's physical depth."""


class FifoUnderflow(RuntimeError):
    """Raised when a pop is attempted on an empty FIFO."""


@dataclass
class Fifo:
    """A bounded FIFO of (tag, value) tokens with stall accounting."""

    depth: int
    _queue: Deque[Tuple[int, int]] = field(default_factory=deque)
    pushes: int = 0
    pops: int = 0
    push_stalls: int = 0
    max_occupancy: int = 0

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"FIFO depth must be >= 1, got {self.depth}")

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._queue

    def try_push(self, tag: int, value: int) -> bool:
        """Push a token; returns False (and counts a stall) when full."""
        if self.full:
            self.push_stalls += 1
            return False
        self._queue.append((tag, value))
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))
        return True

    def push(self, tag: int, value: int) -> None:
        """Push a token; raises :class:`FifoOverflow` when full."""
        if not self.try_push(tag, value):
            raise FifoOverflow(f"push into full FIFO of depth {self.depth}")

    def pop(self) -> Tuple[int, int]:
        """Pop the oldest token; raises :class:`FifoUnderflow` when empty."""
        if self.empty:
            raise FifoUnderflow("pop from empty FIFO")
        self.pops += 1
        return self._queue.popleft()

    def peek(self) -> Optional[Tuple[int, int]]:
        """Oldest token without removing it, or None when empty."""
        return self._queue[0] if self._queue else None
