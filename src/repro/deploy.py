"""Deployment: package a quantized pipeline for the accelerator.

Bridges the functional world (:class:`~repro.pipeline.QuantizedPipeline`)
and the hardware world (:mod:`repro.hw`): extracts the accelerator
workload from the actually-encoded layers, verifies the encoding fits the
configuration's on-chip buffers, serializes the weight blob the runtime
would ship to DDR, and estimates the deployment's performance on a device.

    deployed = deploy(pipeline, architecture.accelerated_specs())
    deployed.save("model.abms")
    print(deployed.simulate(STRATIX_V_GXA7).throughput_gops)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .core.serialize import dumps
from .core.specs import LayerSpec
from .dse.explorer import explore
from .hw.accelerator import AcceleratorSimulator, ModelSimResult
from .hw.buffers import BufferRequirement, buffer_report
from .hw.config import AcceleratorConfig
from .hw.device import STRATIX_V_GXA7, FPGADevice
from .hw.trace import TraceRecorder
from .hw.workload import ModelWorkload, workload_from_encoded
from .pipeline import QuantizedPipeline
from .telemetry.context import get_active


class DeploymentError(RuntimeError):
    """The pipeline cannot be deployed as requested."""


@dataclass(frozen=True)
class DeployedModel:
    """A pipeline compiled, checked and packaged for one configuration."""

    name: str
    workload: ModelWorkload
    config: AcceleratorConfig
    buffers: Tuple[BufferRequirement, ...]
    blob: bytes

    @property
    def blob_bytes(self) -> int:
        return len(self.blob)

    @property
    def fits(self) -> bool:
        return all(requirement.fits for requirement in self.buffers)

    def save(self, path: str) -> int:
        """Write the weight blob to disk; returns its size."""
        with open(path, "wb") as handle:
            handle.write(self.blob)
        return len(self.blob)

    def simulate(
        self,
        device: FPGADevice = STRATIX_V_GXA7,
        cache: bool = True,
        workers: Optional[int] = None,
        trace: Optional["TraceRecorder"] = None,
    ) -> ModelSimResult:
        """Estimate the deployment's performance on a device.

        Routed through the process-wide layer-simulation result cache, so
        repeated deployments of the same workload (serve pools, DSE sweeps)
        do not re-simulate; pass ``cache=False`` to bypass it. ``workers``
        opts into parallel multi-layer simulation; ``trace`` forwards a
        :class:`~repro.hw.trace.TraceRecorder` (traced runs are serial and
        uncached, see :meth:`AcceleratorSimulator.simulate`).

        When a telemetry context is active the whole estimate runs under a
        ``simulate`` span.
        """
        simulator = AcceleratorSimulator(self.config, device, use_cache=cache)
        telemetry = get_active()
        if telemetry is None:
            return simulator.simulate(self.workload, workers=workers, trace=trace)
        with telemetry.span("simulate", model=self.workload.name, device=device.name):
            return simulator.simulate(self.workload, workers=workers, trace=trace)


def deploy(
    pipeline: QuantizedPipeline,
    specs: Sequence[LayerSpec],
    config: Optional[AcceleratorConfig] = None,
    device: FPGADevice = STRATIX_V_GXA7,
    strict: bool = True,
) -> DeployedModel:
    """Package a quantized pipeline for the accelerator.

    Parameters
    ----------
    specs:
        The accelerated-layer specs of the network (same names as the
        pipeline's compiled layers, e.g. ``architecture.accelerated_specs()``).
    config:
        Target configuration; when omitted the DSE flow picks one for the
        workload on ``device``.
    strict:
        Raise :class:`DeploymentError` when the encoding does not fit the
        configuration's buffers (set False to get the report anyway).
    """
    if not pipeline.compiled:
        raise DeploymentError("pipeline must be calibrated and quantized first")
    spec_by_name = {spec.name: spec for spec in specs}
    missing = [name for name in pipeline.compiled if name not in spec_by_name]
    if missing:
        raise DeploymentError(f"no specs for compiled layers: {missing}")
    encoded_layers = pipeline.encoded_layers()
    layers = tuple(
        workload_from_encoded(spec_by_name[encoded.name], encoded)
        for encoded in encoded_layers
    )
    workload = ModelWorkload(name=pipeline.network.name, layers=layers)
    if config is None:
        config = explore(workload, device).chosen
    requirements = tuple(buffer_report(config, encoded_layers))
    deployed = DeployedModel(
        name=pipeline.network.name,
        workload=workload,
        config=config,
        buffers=requirements,
        blob=dumps(encoded_layers),
    )
    if strict and not deployed.fits:
        broken = [r.name for r in requirements if not r.fits]
        raise DeploymentError(
            f"encoding exceeds on-chip buffers: {', '.join(broken)} "
            f"(pass strict=False to inspect the report)"
        )
    return deployed
