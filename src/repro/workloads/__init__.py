"""Calibrated synthetic workloads and the paper's published targets."""

from .codebooks import (
    ALEXNET_CODEBOOKS,
    DEFAULT_CODEBOOK_SIZE,
    VGG16_CODEBOOKS,
    codebook_size,
    codebook_sizes,
    codebook_values,
    expected_distinct,
)
from .images import calibration_batch, natural_image, spectrum_slope
from .synthetic import (
    synthesize_layer_stats,
    synthesize_quantized_layer,
    synthetic_feature_codes,
    synthetic_layer_workload,
    synthetic_model_workload,
)

__all__ = [
    "ALEXNET_CODEBOOKS",
    "VGG16_CODEBOOKS",
    "DEFAULT_CODEBOOK_SIZE",
    "codebook_size",
    "codebook_sizes",
    "codebook_values",
    "expected_distinct",
    "synthesize_layer_stats",
    "synthesize_quantized_layer",
    "synthetic_feature_codes",
    "synthetic_layer_workload",
    "synthetic_model_workload",
    "natural_image",
    "calibration_batch",
    "spectrum_slope",
]
