"""Per-layer effective weight codebooks, calibrated to paper Table 1.

The paper's models are pruned (Deep Compression) and quantized to 8 bits
(Ristretto). Table 1's measured multiply counts show that a kernel contains
far fewer *distinct* nonzero values than 8-bit quantization nominally
allows — e.g. CONV4_2 averages ~20 distinct values per 1,243 surviving
weights, FC6 only ~9. Trained-then-pruned-then-quantized weights cluster
heavily (pruning removes the dense center of the distribution and dynamic
fixed point maps the survivors onto few codes).

Without the original checkpoints we model this with a per-layer *effective
codebook*: surviving weights draw uniformly from ``size`` distinct nonzero
codes. The sizes below are solved from Table 1's Acc/Mult columns via
``E[distinct] = V * (1 - (1 - 1/V)**nnz)``; layers the paper doesn't list
use the value of the nearest listed layer of similar depth/shape.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

#: Effective codebook sizes for VGG16 (layers in Table 1 are exact fits).
VGG16_CODEBOOKS: Mapping[str, int] = {
    "conv1_1": 4,  # Table 1: 15.7 nnz -> 3.83 distinct
    "conv1_2": 39,  # Table 1: 126.7 nnz -> 37.3 distinct
    "conv2_1": 34,
    "conv2_2": 34,
    "conv3_1": 28,
    "conv3_2": 28,
    "conv3_3": 28,
    "conv4_1": 23,  # Table 1: 737.3 nnz -> 23.0 distinct
    "conv4_2": 20,  # Table 1: 1244.2 nnz -> 19.8 distinct
    "conv4_3": 20,
    "conv5_1": 20,
    "conv5_2": 20,
    "conv5_3": 20,
    "fc6": 9,  # Table 1: 1003.5 nnz -> 9.0 distinct
    "fc7": 5,  # Table 1: 163.8 nnz -> 5.13 distinct
    "fc8": 12,
}

#: Effective codebook sizes for AlexNet (no per-layer Table 1 data; chosen
#: by analogy with VGG16 layers of similar depth and kernel volume).
ALEXNET_CODEBOOKS: Mapping[str, int] = {
    "conv1": 30,
    "conv2": 24,
    "conv3": 22,
    "conv4": 22,
    "conv5": 22,
    "fc6": 9,
    "fc7": 5,
    "fc8": 12,
}

#: VGG19 inherits VGG16's per-block calibration; the extra convolutions of
#: blocks 3-5 use their block's deepest layer.
VGG19_CODEBOOKS: Mapping[str, int] = {
    **VGG16_CODEBOOKS,
    "conv3_4": VGG16_CODEBOOKS["conv3_3"],
    "conv4_4": VGG16_CODEBOOKS["conv4_3"],
    "conv5_4": VGG16_CODEBOOKS["conv5_3"],
}

_CODEBOOKS = {
    "alexnet": ALEXNET_CODEBOOKS,
    "vgg16": VGG16_CODEBOOKS,
    "vgg19": VGG19_CODEBOOKS,
}

#: Fallback codebook size for custom models.
DEFAULT_CODEBOOK_SIZE = 24


def codebook_sizes(model: str) -> Mapping[str, int]:
    """The calibrated codebook table of a known model."""
    key = model.lower()
    if key not in _CODEBOOKS:
        raise KeyError(
            f"no calibrated codebooks for {model!r}; "
            f"available: {', '.join(sorted(_CODEBOOKS))}"
        )
    return _CODEBOOKS[key]


def codebook_size(model: str, layer: str) -> int:
    """Codebook size of one layer (falls back to the default)."""
    return codebook_sizes(model).get(layer, DEFAULT_CODEBOOK_SIZE)


def codebook_values(size: int, weight_bits: int = 8) -> np.ndarray:
    """Concrete distinct nonzero codes for a codebook of ``size`` values.

    Pruning removes small magnitudes, so the surviving codes sit away from
    zero; we spread them symmetrically over the upper magnitude range of
    the signed ``weight_bits`` format. Only distinctness matters to the
    op counts — the specific values matter only for functional runs.
    """
    if size < 1:
        raise ValueError("codebook size must be >= 1")
    max_code = (1 << (weight_bits - 1)) - 1
    per_side = max(1, size // 2)
    # Magnitudes from ~max/4 up to max, evenly spread and deduplicated.
    magnitudes = np.unique(
        np.round(np.linspace(max_code // 4 + 1, max_code, per_side)).astype(np.int64)
    )
    values = np.concatenate([-magnitudes[::-1], magnitudes])
    if size % 2:
        extra = np.int64(max_code // 4)
        values = np.concatenate([values, [extra]])
    values = np.unique(values)[:size]
    if values.size < size:  # tiny formats: fill with remaining codes
        pool = np.setdiff1d(
            np.arange(-max_code, max_code + 1, dtype=np.int64), np.append(values, 0)
        )
        values = np.concatenate([values, pool[: size - values.size]])
    return np.sort(values)


def expected_distinct(nnz: float, size: int) -> float:
    """E[distinct values] when drawing nnz weights uniformly from the book."""
    if size < 1:
        raise ValueError("codebook size must be >= 1")
    if nnz <= 0:
        return 0.0
    return size * (1.0 - (1.0 - 1.0 / size) ** nnz)
