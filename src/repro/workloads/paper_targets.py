"""The paper's published numbers, collected in one place.

Every experiment prints a paper-vs-measured comparison; these constants are
the "paper" side. Transcribed from the DAC 2019 text (Tables 1-3, Figure 1,
Sections 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional


@dataclass(frozen=True)
class Table1Row:
    """One layer row of paper Table 1 (#OP in MOP)."""

    layer: str
    pruning_ratio: float
    sdconv_mop: float
    fdconv_mop: float
    spconv_mop: float
    abm_acc_mop: float
    abm_mult_mop: float
    acc_to_mult: float


#: Paper Table 1, the selected VGG16 layers it prints.
TABLE1_ROWS: Mapping[str, Table1Row] = {
    row.layer: row
    for row in (
        Table1Row("conv1_1", 0.42, 173, 52.5, 100, 50.3, 12.1, 4.1),
        Table1Row("conv1_2", 0.78, 3699, 1119, 814, 407, 119, 3.4),
        Table1Row("conv4_1", 0.68, 1849, 559, 592, 296, 9.23, 32.0),
        Table1Row("conv4_2", 0.73, 3699, 1119, 998, 499, 7.95, 62.7),
        Table1Row("fc6", 0.96, 205, 205, 8.23, 4.11, 0.037, 111),
        Table1Row("fc7", 0.96, 33.6, 33.6, 1.34, 0.67, 0.021, 31.9),
    )
}

#: Paper Table 1, 'Entire CNN' row (MOP).
TABLE1_TOTALS = {
    "sdconv": 30941.0,
    "fdconv": 9531.0,
    "spconv": 10082.0,
    "abm": 5040.0,
}

#: Paper Table 1, '#OP Saved' row.
TABLE1_SAVINGS = {"fdconv": 0.692, "spconv": 0.674, "abm": 0.836}

#: ABM's reduction over the other schemes (Section 3 text).
ABM_REDUCTION_VS = {"sdconv": 0.836, "fdconv": 0.471, "spconv": 0.50}


@dataclass(frozen=True)
class Table2Column:
    """One accelerator column of paper Table 2."""

    key: str
    reference: str
    scheme: str
    cnn: str
    fpga: str
    freq_mhz: float
    precision: str
    logic_alms: Optional[int]
    logic_fraction: Optional[float]
    dsps: int
    dsp_fraction: float
    m20k: Optional[int]
    m20k_fraction: Optional[float]
    methodology: str
    throughput_gops: float
    perf_density: float


#: Paper Table 2 (published baselines + the proposed design's two columns).
TABLE2_COLUMNS = (
    Table2Column(
        "suda-alexnet", "[13]", "SDConv", "alexnet", "Stratix-V GXA7", 100,
        "8-16 fixed", 121_000, 0.52, 256, 1.00, 1552, 0.61, "RTL", 134.1, 0.52,
    ),
    Table2Column(
        "ma-vgg16", "[12]", "SDConv", "vgg16", "Arria-10 GT1150", 231,
        "8-16 fixed", 313_000, 0.73, 1500, 0.98, 1668, 0.61, "RTL", 1171.0, 0.78,
    ),
    Table2Column(
        "zhang-vgg16", "[4]", "SDConv", "vgg16", "Arria-10 GX1150", 385,
        "16 fixed", None, None, 1378, 0.91, 1450, 0.53, "RTL+OpenCL", 1790.0, 1.29,
    ),
    Table2Column(
        "aydonat-alexnet", "[10]", "FDConv", "alexnet", "Arria-10 GX1150", 303,
        "16 float", 246_000, 0.58, 1476, 0.97, 2487, 0.92, "OpenCL", 1382.0, 0.94,
    ),
    Table2Column(
        "zeng-alexnet", "[3]", "FDConv", "alexnet", "Stratix-V GXA7", 200,
        "16 fixed", 107_000, 0.46, 256, 1.00, 1377, 0.73, "RTL", 663.5, 2.59,
    ),
    Table2Column(
        "zeng-vgg16", "[3]", "FDConv", "vgg16", "Stratix-V GXA7", 200,
        "16 fixed", 107_000, 0.46, 256, 1.00, 1377, 0.73, "RTL", 662.3, 2.58,
    ),
    Table2Column(
        "proposed-alexnet", "this work", "ABM-SpConv", "alexnet",
        "Stratix-V GXA7", 202, "8 fixed", 170_000, 0.73, 243, 0.95, 2460, 0.96,
        "OpenCL", 699.0, 2.87,
    ),
    Table2Column(
        "proposed-vgg16", "this work", "ABM-SpConv", "vgg16",
        "Stratix-V GXA7", 204, "8 fixed", 160_000, 0.68, 240, 0.94, 2435, 0.95,
        "OpenCL", 1029.0, 4.29,
    ),
)

#: Headline claims around Table 2.
VGG16_SPEEDUP_VS_FDCONV = 1.55
ALEXNET_SPEEDUP_VS_FDCONV = 1.054
VGG16_MAC_REDUCTION = 3.06
ALEXNET_MAC_REDUCTION = 2.3

#: Section 7: measured execution efficiency of the proposed design.
CU_EFFICIENCY = {"vgg16": 0.87, "alexnet": 0.81}
#: Execution efficiency of baseline [2], for comparison.
BASELINE_LI_EFFICIENCY = 0.645

#: Paper Table 3: design parameters and weight sizes (MB).
TABLE3 = {
    "alexnet": {
        "n_knl": 14, "n_cu": 3, "n_share": 4, "s_ec": 20,
        "d_f": 1152, "d_w": 1024, "d_q": 128,
        "original_mb": 61.0, "encoded_mb": 11.9,
    },
    "vgg16": {
        "n_knl": 14, "n_cu": 3, "n_share": 4, "s_ec": 20,
        "d_f": 1568, "d_w": 2048, "d_q": 128,
        "original_mb": 138.0, "encoded_mb": 26.4,
    },
}

#: Figure 1 roofs on the Stratix-V GXA7 at 200 MHz (GOP/s).
FIG1_ROOFS = {"sdconv": 204.8, "fdconv": 675.0, "abm": 1046.0}

#: Figure 6/7: the exploration optimum.
OPTIMAL_N_KNL = 14
OPTIMAL_S_EC = 20
OPTIMAL_N_CU = 3
FIG7_LOGIC_CONSTRAINT = 0.75
