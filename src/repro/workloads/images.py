"""Synthetic calibration images with natural-image statistics.

Dynamic fixed point is calibrated from activation ranges, and activation
ranges depend on input statistics. Plain white noise under-drives deep
layers; natural images famously follow a ~1/f amplitude spectrum with
strongly correlated color channels. This generator produces such images
offline, so calibration runs see realistic dynamic ranges without any
dataset.

Construction: white Gaussian noise shaped in the frequency domain by
``1 / f^alpha`` (alpha = 1 is the natural-image law), inverse-transformed,
then mixed across channels with a correlation factor and normalized to a
target range.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _pink_field(rows: int, cols: int, alpha: float, rng: np.random.Generator) -> np.ndarray:
    """One 2-D field with a 1/f^alpha amplitude spectrum, zero mean."""
    spectrum = rng.normal(size=(rows, cols)) + 1j * rng.normal(size=(rows, cols))
    fy = np.fft.fftfreq(rows)[:, None]
    fx = np.fft.fftfreq(cols)[None, :]
    radius = np.sqrt(fy**2 + fx**2)
    radius[0, 0] = 1.0  # keep DC finite; it is re-centred below
    shaped = spectrum / radius**alpha
    field = np.real(np.fft.ifft2(shaped))
    field -= field.mean()
    deviation = field.std()
    if deviation > 0:
        field /= deviation
    return field


def natural_image(
    shape: Tuple[int, int, int],
    rng: np.random.Generator,
    alpha: float = 1.0,
    channel_correlation: float = 0.85,
    value_range: Tuple[float, float] = (-1.0, 1.0),
) -> np.ndarray:
    """A CHW image with a 1/f^alpha spectrum and correlated channels."""
    channels, rows, cols = shape
    if channels < 1:
        raise ValueError("need at least one channel")
    if not 0.0 <= channel_correlation <= 1.0:
        raise ValueError("channel correlation must be in [0, 1]")
    lo, hi = value_range
    if hi <= lo:
        raise ValueError("value range must be increasing")
    shared = _pink_field(rows, cols, alpha, rng)
    image = np.empty(shape)
    for c in range(channels):
        own = _pink_field(rows, cols, alpha, rng)
        mixed = channel_correlation * shared + (1 - channel_correlation) * own
        image[c] = mixed
    # Normalize to the requested range with a 3-sigma soft clip.
    clipped = np.clip(image, -3.0, 3.0) / 3.0
    return lo + (clipped + 1.0) * (hi - lo) / 2.0


def calibration_batch(
    shape: Tuple[int, int, int],
    count: int,
    rng: np.random.Generator,
    **kwargs,
) -> np.ndarray:
    """A (count, C, H, W) batch of independent natural images."""
    if count < 1:
        raise ValueError("need at least one image")
    return np.stack([natural_image(shape, rng, **kwargs) for _ in range(count)])


def spectrum_slope(image_channel: np.ndarray) -> float:
    """Fitted log-log slope of the radial amplitude spectrum.

    Natural images sit near -1; white noise near 0. Used by tests to
    verify the generator and by users to sanity-check their own inputs.
    """
    arr = np.asarray(image_channel, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("expected a single 2-D channel")
    spectrum = np.abs(np.fft.fft2(arr - arr.mean()))
    fy = np.fft.fftfreq(arr.shape[0])[:, None]
    fx = np.fft.fftfreq(arr.shape[1])[None, :]
    radius = np.sqrt(fy**2 + fx**2).reshape(-1)
    amplitude = spectrum.reshape(-1)
    # Fit over a mid-frequency band, away from DC and Nyquist wrap.
    band = (radius > 0.02) & (radius < 0.35) & (amplitude > 0)
    if band.sum() < 16:
        raise ValueError("channel too small for a spectrum fit")
    slope, _ = np.polyfit(np.log(radius[band]), np.log(amplitude[band]), 1)
    return float(slope)
