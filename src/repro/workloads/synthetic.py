"""Synthetic pruned/quantized workload generation.

Two levels of fidelity, both calibrated to the paper's statistics:

- **Statistics-only** (:func:`synthesize_layer_stats`,
  :func:`synthetic_model_workload`): draws per-kernel nonzero and
  distinct-value counts without materializing weights, so full-size VGG16
  (138 M parameters) can be simulated on a laptop.
- **Concrete tensors** (:func:`synthesize_quantized_layer`,
  :func:`synthetic_feature_codes`): integer weight/feature tensors with the
  same statistics, used for functional runs and tests.

Determinism: everything is driven by an explicit numpy Generator seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.specs import LayerSpec
from ..hw.workload import LayerWorkload, ModelWorkload, workload_from_arrays
from ..nn.models import get_architecture
from ..prune.schedules import PruningSchedule, deep_compression_schedule
from .codebooks import codebook_size, codebook_values


def synthesize_layer_stats(
    spec: LayerSpec,
    density: float,
    codebook: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw per-kernel (nonzeros, distinct values) for one layer.

    Nonzero counts are Binomial(weights_per_kernel, density) — magnitude
    pruning with a global layer threshold leaves near-independent survival
    per weight. Distinct counts come from actually drawing each kernel's
    survivors uniformly from the codebook (multinomial occupancy).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    kernels = spec.out_channels
    weights = spec.weights_per_kernel
    nonzeros = rng.binomial(weights, density, size=kernels).astype(np.int64)
    probabilities = np.full(codebook, 1.0 / codebook)
    distinct = np.empty(kernels, dtype=np.int64)
    for m in range(kernels):
        if nonzeros[m] == 0:
            distinct[m] = 0
            continue
        counts = rng.multinomial(nonzeros[m], probabilities)
        distinct[m] = int(np.count_nonzero(counts))
    return nonzeros, distinct


def synthetic_layer_workload(
    spec: LayerSpec,
    density: float,
    codebook: int,
    rng: np.random.Generator,
) -> LayerWorkload:
    """A :class:`LayerWorkload` with synthetic calibrated statistics."""
    nonzeros, distinct = synthesize_layer_stats(spec, density, codebook, rng)
    return workload_from_arrays(spec, nonzeros, distinct)


def synthetic_model_workload(
    model: str,
    seed: int = 0,
    schedule: Optional[PruningSchedule] = None,
    scale: float = 1.0,
    spatial_scale: float = 1.0,
) -> ModelWorkload:
    """Synthetic workload for a registered model (full-size by default).

    Uses the Deep Compression pruning schedule and the calibrated per-layer
    codebooks unless a custom schedule is given. ``scale`` and
    ``spatial_scale`` shrink channel counts and input resolution the same
    way :meth:`Architecture.build` does, for workloads matching the scaled
    executable models the benchmarks run.
    """
    architecture = get_architecture(model)
    if schedule is None:
        schedule = deep_compression_schedule(model)
    rng = np.random.default_rng(seed)
    layers = []
    for spec in architecture.accelerated_specs(
        scale=scale, spatial_scale=spatial_scale
    ):
        layers.append(
            synthetic_layer_workload(
                spec,
                schedule.density(spec.name),
                codebook_size(model, spec.name),
                rng,
            )
        )
    return ModelWorkload(name=architecture.name, layers=tuple(layers))


def synthesize_quantized_layer(
    spec: LayerSpec,
    density: float,
    codebook: int,
    rng: np.random.Generator,
    weight_bits: int = 8,
) -> np.ndarray:
    """Concrete integer weight tensor (M, N/groups, K, K) with the target
    density and codebook statistics."""
    values = codebook_values(codebook, weight_bits)
    shape = spec.weight_shape()
    total = int(np.prod(shape))
    flat = np.zeros(total, dtype=np.int64)
    nnz = int(round(density * total))
    if nnz:
        positions = rng.choice(total, size=nnz, replace=False)
        flat[positions] = rng.choice(values, size=nnz)
    return flat.reshape(shape)


def synthetic_feature_codes(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    feature_bits: int = 8,
) -> np.ndarray:
    """Integer feature-map codes uniform over the signed feature format."""
    limit = 1 << (feature_bits - 1)
    return rng.integers(-limit, limit, size=shape, dtype=np.int64)
