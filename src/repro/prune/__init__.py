"""Magnitude pruning substrate (Deep Compression style)."""

from .magnitude import actual_density, prune_network, prune_tensor
from .schedules import (
    DEEP_COMPRESSION_ALEXNET,
    DEEP_COMPRESSION_VGG16,
    DEEP_COMPRESSION_VGG19,
    PruningSchedule,
    deep_compression_schedule,
    uniform_schedule,
)
from .structured import (
    prune_input_channels,
    prune_kernels,
    sparsity_structure_report,
)
from .sparsity import (
    LayerDensityReport,
    mac_reduction_rate,
    model_density,
    network_density_report,
)

__all__ = [
    "prune_tensor",
    "prune_network",
    "actual_density",
    "PruningSchedule",
    "deep_compression_schedule",
    "uniform_schedule",
    "DEEP_COMPRESSION_ALEXNET",
    "DEEP_COMPRESSION_VGG16",
    "DEEP_COMPRESSION_VGG19",
    "prune_kernels",
    "prune_input_channels",
    "sparsity_structure_report",
    "LayerDensityReport",
    "network_density_report",
    "model_density",
    "mac_reduction_rate",
]
