"""Magnitude pruning (Deep Compression style, Han et al. 2015).

The paper prunes AlexNet and VGG16 with Han's scheme: per layer, the
smallest-magnitude weights are zeroed until only a target density survives.
We reproduce the *sparsification*, not the retraining (there is no training
data offline and the accelerator is insensitive to accuracy); the per-layer
densities come from the published Deep Compression tables, which the paper's
Table 1 'Pruning Ratio' column matches layer for layer.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..nn.network import Network


def prune_tensor(weights: np.ndarray, density: float) -> np.ndarray:
    """Zero all but the ``density`` fraction of largest-magnitude weights.

    Returns a new array; ties at the threshold are broken by keeping the
    earliest entries in flat order so the kept count is exact.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    arr = np.asarray(weights, dtype=np.float64)
    keep = int(round(density * arr.size))
    if keep == 0:
        return np.zeros_like(arr)
    if keep >= arr.size:
        return arr.copy()
    flat = np.abs(arr).reshape(-1)
    # argpartition puts the `keep` largest magnitudes in the tail.
    kept_positions = np.argpartition(flat, arr.size - keep)[arr.size - keep :]
    mask = np.zeros(arr.size, dtype=bool)
    mask[kept_positions] = True
    pruned = arr.reshape(-1).copy()
    pruned[~mask] = 0.0
    return pruned.reshape(arr.shape)


def prune_network(network: Network, densities: Mapping[str, float]) -> Network:
    """Prune every weighted layer of a network in place.

    Layers absent from ``densities`` are left dense. Returns the network for
    chaining.
    """
    for layer in network:
        weights = layer.weights
        if weights is None or layer.name not in densities:
            continue
        layer.weights = prune_tensor(weights, densities[layer.name])
    return network


def actual_density(weights: np.ndarray) -> float:
    """Fraction of nonzero weights in a tensor."""
    arr = np.asarray(weights)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr)) / arr.size
