"""Structured pruning: kernel- and channel-granular sparsity.

The related-work baseline [2] (Li et al., ASP-DAC'18) accelerates
*structurally* pruned models — whole kernels or input channels removed —
because lockstep hardware cannot exploit irregular sparsity. ABM-SpConv's
semi-synchronous CUs handle the irregular kind directly, so the natural
ablation is: at equal density, what do the two sparsity structures do to
the workload statistics and the accelerator's utilization?

Two granularities are provided:

- :func:`prune_kernels` — remove entire output-channel kernels (the
  coarsest structure; surviving kernels stay dense);
- :func:`prune_input_channels` — remove entire input channels of each
  kernel (finer; keeps all output channels alive).
"""

from __future__ import annotations

import numpy as np


def prune_kernels(weights: np.ndarray, density: float) -> np.ndarray:
    """Keep only the ``density`` fraction of kernels with largest L1 norm.

    ``weights`` is (M, N, K, K) (or (M, N) for FC); zeroed kernels produce
    dead output channels, which structured-sparsity hardware then skips
    wholesale.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    arr = np.asarray(weights, dtype=np.float64)
    kernels = arr.shape[0]
    keep = int(round(density * kernels))
    pruned = arr.copy()
    if keep == 0:
        return np.zeros_like(arr)
    if keep >= kernels:
        return pruned
    norms = np.abs(arr.reshape(kernels, -1)).sum(axis=1)
    drop = np.argsort(norms)[: kernels - keep]
    pruned[drop] = 0.0
    return pruned


def prune_input_channels(weights: np.ndarray, density: float) -> np.ndarray:
    """Keep the ``density`` fraction of input channels (per layer, shared
    across all kernels) with the largest aggregate L1 norm."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    arr = np.asarray(weights, dtype=np.float64)
    if arr.ndim < 2:
        raise ValueError("weights need an input-channel axis")
    channels = arr.shape[1]
    keep = int(round(density * channels))
    pruned = arr.copy()
    if keep == 0:
        return np.zeros_like(arr)
    if keep >= channels:
        return pruned
    norms = np.abs(arr).sum(axis=tuple(i for i in range(arr.ndim) if i != 1))
    drop = np.argsort(norms)[: channels - keep]
    pruned[:, drop] = 0.0
    return pruned


def sparsity_structure_report(weights: np.ndarray) -> dict:
    """Describe how the zeros of a tensor are organized.

    Returns per-granularity survival fractions: element, kernel (output
    channel) and input channel. Unstructured pruning shows element density
    well below kernel/channel density; structured pruning aligns them.
    """
    arr = np.asarray(weights)
    if arr.ndim < 2:
        raise ValueError("weights need at least (M, N) axes")
    kernels = arr.shape[0]
    channels = arr.shape[1]
    element_density = float(np.count_nonzero(arr)) / arr.size if arr.size else 0.0
    kernel_alive = sum(
        1 for m in range(kernels) if np.count_nonzero(arr[m])
    )
    channel_alive = sum(
        1 for n in range(channels) if np.count_nonzero(arr[:, n])
    )
    return {
        "element_density": element_density,
        "kernel_density": kernel_alive / kernels,
        "channel_density": channel_alive / channels,
    }
