"""Per-layer pruning schedules.

The densities below are the published Deep Compression (Han et al., 2015)
per-layer surviving-weight fractions for AlexNet and VGG16. The paper uses
models "pruned by the scheme proposed by Han et al. [7]" and its Table 1
pruning ratios match these figures exactly (e.g. CONV1_1 42% pruned = 58%
density, CONV4_2 73% pruned = 27% density, FC6 96% pruned = 4% density).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

#: Deep Compression surviving-weight fractions for AlexNet.
DEEP_COMPRESSION_ALEXNET: Mapping[str, float] = {
    "conv1": 0.84,
    "conv2": 0.38,
    "conv3": 0.35,
    "conv4": 0.37,
    "conv5": 0.37,
    "fc6": 0.09,
    "fc7": 0.09,
    "fc8": 0.25,
}

#: Deep Compression surviving-weight fractions for VGG16.
DEEP_COMPRESSION_VGG16: Mapping[str, float] = {
    "conv1_1": 0.58,
    "conv1_2": 0.22,
    "conv2_1": 0.34,
    "conv2_2": 0.36,
    "conv3_1": 0.53,
    "conv3_2": 0.24,
    "conv3_3": 0.42,
    "conv4_1": 0.32,
    "conv4_2": 0.27,
    "conv4_3": 0.34,
    "conv5_1": 0.35,
    "conv5_2": 0.29,
    "conv5_3": 0.36,
    "fc6": 0.04,
    "fc7": 0.04,
    "fc8": 0.23,
}

def _vgg19_densities() -> Mapping[str, float]:
    """VGG19 schedule extrapolated from the published VGG16 one.

    Deep Compression reports no VGG19 table; each extra conv (the fourth
    of blocks 3-5) inherits its block's deepest published density, which
    keeps the whole-model MAC reduction in VGG16's regime.
    """
    densities = dict(DEEP_COMPRESSION_VGG16)
    densities["conv3_4"] = densities["conv3_3"]
    densities["conv4_4"] = densities["conv4_3"]
    densities["conv5_4"] = densities["conv5_3"]
    return densities


#: Extrapolated VGG19 schedule (see :func:`_vgg19_densities`).
DEEP_COMPRESSION_VGG19: Mapping[str, float] = _vgg19_densities()

_SCHEDULES: Dict[str, Mapping[str, float]] = {
    "alexnet": DEEP_COMPRESSION_ALEXNET,
    "vgg16": DEEP_COMPRESSION_VGG16,
    "vgg19": DEEP_COMPRESSION_VGG19,
}


@dataclass(frozen=True)
class PruningSchedule:
    """A named mapping from layer name to surviving-weight density."""

    name: str
    densities: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for layer, density in self.densities.items():
            if not 0.0 <= density <= 1.0:
                raise ValueError(
                    f"density for {layer!r} must be in [0, 1], got {density}"
                )

    def density(self, layer_name: str) -> float:
        """Density for a layer (raises KeyError when unscheduled)."""
        if layer_name not in self.densities:
            raise KeyError(f"schedule {self.name!r} has no entry for {layer_name!r}")
        return self.densities[layer_name]

    def pruning_ratio(self, layer_name: str) -> float:
        """Fraction removed — the paper's Table 1 'Pruning Ratio' column."""
        return 1.0 - self.density(layer_name)

    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self.densities


def deep_compression_schedule(model: str) -> PruningSchedule:
    """The Deep Compression schedule for ``'alexnet'`` or ``'vgg16'``."""
    key = model.lower()
    if key not in _SCHEDULES:
        raise KeyError(
            f"no Deep Compression schedule for {model!r}; "
            f"available: {', '.join(sorted(_SCHEDULES))}"
        )
    return PruningSchedule(name=f"deep-compression-{key}", densities=_SCHEDULES[key])


def uniform_schedule(layer_names: Iterable[str], density: float) -> PruningSchedule:
    """A flat schedule giving every named layer the same density."""
    return PruningSchedule(
        name=f"uniform-{density:g}",
        densities={name: density for name in layer_names},
    )
