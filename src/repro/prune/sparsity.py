"""Network-level sparsity reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..nn.network import Network
from .magnitude import actual_density


@dataclass(frozen=True)
class LayerDensityReport:
    """Nonzero statistics of one weighted layer."""

    name: str
    total_weights: int
    nonzero_weights: int

    @property
    def density(self) -> float:
        if self.total_weights == 0:
            return 0.0
        return self.nonzero_weights / self.total_weights

    @property
    def pruning_ratio(self) -> float:
        return 1.0 - self.density


def network_density_report(network: Network) -> List[LayerDensityReport]:
    """Per-layer density of every weighted layer in a network."""
    report = []
    for layer in network:
        weights = layer.weights
        if weights is None:
            continue
        report.append(
            LayerDensityReport(
                name=layer.name,
                total_weights=int(np.asarray(weights).size),
                nonzero_weights=int(np.count_nonzero(weights)),
            )
        )
    return report


def model_density(network: Network) -> float:
    """Overall surviving-weight fraction of a network."""
    report = network_density_report(network)
    total = sum(entry.total_weights for entry in report)
    if total == 0:
        return 0.0
    return sum(entry.nonzero_weights for entry in report) / total


def mac_reduction_rate(network: Network) -> float:
    """Reduction in MAC operations achieved by pruning (paper's R_mac).

    Weighted by each layer's MAC count, not its weight count — a pruned FC
    weight removes one MAC, but a pruned conv weight removes one MAC per
    output pixel.
    """
    total_macs = 0.0
    surviving_macs = 0.0
    shape = network.input_shape
    for layer in network:
        weights = layer.weights
        ops = layer.operation_count(shape)
        if weights is not None and ops:
            total_macs += ops / 2.0
            surviving_macs += (ops / 2.0) * actual_density(weights)
        shape = layer.output_shape(shape)
    if surviving_macs == 0.0:
        return float("inf") if total_macs else 1.0
    return total_macs / surviving_macs
