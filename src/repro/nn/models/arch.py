"""Architecture descriptions that build both networks and analytic specs.

An :class:`Architecture` is a declarative layer list. It has two consumers:

- :meth:`Architecture.build` instantiates an executable :class:`Network`
  (optionally channel-scaled so laptop-scale tests don't allocate VGG16's
  550 MB of fully-connected weights), and
- :meth:`Architecture.accelerated_specs` walks the same description purely
  symbolically and yields the :class:`~repro.core.specs.LayerSpec` of every
  conv/FC layer at full size — what Tables 1-3 and the DSE flow consume.

Keeping one source of truth guarantees the analytic and executable views of
AlexNet/VGG16 can never drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ...core.specs import LayerSpec, conv_spec, fc_spec
from ..initializers import initialize_network
from ..layers import (
    AvgPool2D,
    Conv2D,
    Dropout,
    Flatten,
    FullyConnected,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from ..network import Network
from ..tensor import FeatureShape, conv_output_extent, pool_output_extent


@dataclass(frozen=True)
class ConvDef:
    name: str
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    groups: int = 1
    #: Depthwise convolution: one filter per input channel (groups == the
    #: input channel count, output channels == input channels). The
    #: ``out_channels``/``groups`` fields are ignored when set.
    depthwise: bool = False


@dataclass(frozen=True)
class PoolDef:
    name: str
    kernel: int
    stride: int
    kind: str = "max"


@dataclass(frozen=True)
class FCDef:
    name: str
    out_features: int
    scale_output: bool = True


@dataclass(frozen=True)
class ReLUDef:
    name: str


@dataclass(frozen=True)
class LRNDef:
    name: str
    local_size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75


@dataclass(frozen=True)
class DropoutDef:
    name: str
    rate: float = 0.5


@dataclass(frozen=True)
class FlattenDef:
    name: str


@dataclass(frozen=True)
class SoftmaxDef:
    name: str


LayerDef = Union[
    ConvDef, PoolDef, FCDef, ReLUDef, LRNDef, DropoutDef, FlattenDef, SoftmaxDef
]


def _scaled(value: int, scale: float) -> int:
    """Scale a channel count, never below 1."""
    return max(1, int(round(value * scale)))


@dataclass
class Architecture:
    """A named CNN architecture description."""

    name: str
    input_channels: int
    input_rows: int
    input_cols: int
    defs: Sequence[LayerDef] = field(default_factory=list)

    def layer_shapes(self) -> List[tuple]:
        """Symbolic (layer_def, in_shape, out_shape) walk at full size.

        Shapes are (channels, rows, cols) tuples; no weights are allocated,
        so this works for models whose tensors would not fit in memory.
        """
        out: List[tuple] = []
        channels, rows, cols = self.input_channels, self.input_rows, self.input_cols
        for layer_def in self.defs:
            in_shape = (channels, rows, cols)
            if isinstance(layer_def, ConvDef):
                channels = layer_def.out_channels
                rows = conv_output_extent(
                    rows, layer_def.kernel, layer_def.stride, layer_def.padding
                )
                cols = conv_output_extent(
                    cols, layer_def.kernel, layer_def.stride, layer_def.padding
                )
            elif isinstance(layer_def, PoolDef):
                rows = pool_output_extent(rows, layer_def.kernel, layer_def.stride)
                cols = pool_output_extent(cols, layer_def.kernel, layer_def.stride)
            elif isinstance(layer_def, FlattenDef):
                channels, rows, cols = channels * rows * cols, 1, 1
            elif isinstance(layer_def, FCDef):
                channels, rows, cols = layer_def.out_features, 1, 1
            out.append((layer_def, in_shape, (channels, rows, cols)))
        return out

    def accelerated_specs(
        self, scale: float = 1.0, spatial_scale: float = 1.0
    ) -> List[LayerSpec]:
        """Conv/FC :class:`LayerSpec` list (no weight allocation at 1.0).

        ``scale`` / ``spatial_scale`` mirror :meth:`build`'s channel and
        input-resolution multipliers; a scaled request delegates to
        :meth:`build` (with zero weights) so the spec dims match the
        executable network exactly, while the full-size default stays a
        symbolic walk that never allocates tensors.
        """
        if scale != 1.0 or spatial_scale != 1.0:
            network = self.build(
                scale=scale, seed=None, spatial_scale=spatial_scale
            )
            specs = []
            for layer in network.accelerated_layers():
                in_shape = network.input_shape_of(layer.name)
                if isinstance(layer, Conv2D):
                    specs.append(
                        conv_spec(
                            layer.name,
                            layer.in_channels,
                            layer.out_channels,
                            layer.kernel,
                            in_shape.rows,
                            in_shape.cols,
                            stride=layer.stride,
                            padding=layer.padding,
                            groups=layer.groups,
                        )
                    )
                else:
                    specs.append(
                        fc_spec(layer.name, layer.in_features, layer.out_features)
                    )
            return specs
        specs: List[LayerSpec] = []
        channels, rows, cols = self.input_channels, self.input_rows, self.input_cols
        flattened = False
        for layer_def in self.defs:
            if isinstance(layer_def, ConvDef):
                out_channels = channels if layer_def.depthwise else layer_def.out_channels
                groups = channels if layer_def.depthwise else layer_def.groups
                spec = conv_spec(
                    layer_def.name,
                    channels,
                    out_channels,
                    layer_def.kernel,
                    rows,
                    cols,
                    stride=layer_def.stride,
                    padding=layer_def.padding,
                    groups=groups,
                )
                specs.append(spec)
                channels, rows, cols = spec.out_channels, spec.out_rows, spec.out_cols
            elif isinstance(layer_def, PoolDef):
                rows = pool_output_extent(rows, layer_def.kernel, layer_def.stride)
                cols = pool_output_extent(cols, layer_def.kernel, layer_def.stride)
            elif isinstance(layer_def, FlattenDef):
                channels, rows, cols = channels * rows * cols, 1, 1
                flattened = True
            elif isinstance(layer_def, FCDef):
                if not flattened and (rows, cols) != (1, 1):
                    raise ValueError(
                        f"{layer_def.name}: FC layer requires a flattened input"
                    )
                specs.append(fc_spec(layer_def.name, channels * rows * cols, layer_def.out_features))
                channels, rows, cols = layer_def.out_features, 1, 1
            # ReLU / LRN / Dropout / Softmax keep the shape.
        return specs

    def build(
        self,
        scale: float = 1.0,
        seed: Optional[int] = 0,
        spatial_scale: float = 1.0,
    ) -> Network:
        """Instantiate an executable network.

        Parameters
        ----------
        scale:
            Channel-count multiplier (1.0 = the published architecture).
            Grouped convolutions keep their group counts; channel counts are
            rounded up to multiples of the group count.
        seed:
            Seed for the synthetic Laplacian weights; ``None`` leaves all
            weights zero (useful when a pruner/quantizer will overwrite them).
        spatial_scale:
            Input resolution multiplier for cheap end-to-end runs.
        """
        if scale <= 0 or spatial_scale <= 0:
            raise ValueError("scale factors must be positive")
        rows = max(8, int(round(self.input_rows * spatial_scale)))
        cols = max(8, int(round(self.input_cols * spatial_scale)))
        input_shape = FeatureShape(self.input_channels, rows, cols)
        layers = []
        channels = self.input_channels
        cur_rows, cur_cols = rows, cols
        conv_defs = [d for d in self.defs if isinstance(d, ConvDef)]
        # A scaled channel count must divide by this layer's groups *and*
        # by the next convolution's groups (its input grouping).
        next_groups = {
            d.name: conv_defs[i + 1].groups if i + 1 < len(conv_defs) else 1
            for i, d in enumerate(conv_defs)
        }
        for layer_def in self.defs:
            if isinstance(layer_def, ConvDef):
                if layer_def.depthwise:
                    out_channels = channels
                    groups = channels
                else:
                    out_channels = _scaled(layer_def.out_channels, scale)
                    divisor = math.lcm(layer_def.groups, next_groups[layer_def.name])
                    out_channels = math.ceil(out_channels / divisor) * divisor
                    groups = layer_def.groups
                layers.append(
                    Conv2D(
                        layer_def.name,
                        channels,
                        out_channels,
                        layer_def.kernel,
                        stride=layer_def.stride,
                        padding=layer_def.padding,
                        groups=groups,
                    )
                )
                channels = out_channels
                cur_rows = conv_output_extent(
                    cur_rows, layer_def.kernel, layer_def.stride, layer_def.padding
                )
                cur_cols = conv_output_extent(
                    cur_cols, layer_def.kernel, layer_def.stride, layer_def.padding
                )
            elif isinstance(layer_def, PoolDef):
                pool_cls = MaxPool2D if layer_def.kind == "max" else AvgPool2D
                layers.append(pool_cls(layer_def.name, layer_def.kernel, layer_def.stride))
                cur_rows = pool_output_extent(cur_rows, layer_def.kernel, layer_def.stride)
                cur_cols = pool_output_extent(cur_cols, layer_def.kernel, layer_def.stride)
            elif isinstance(layer_def, FCDef):
                in_features = channels * cur_rows * cur_cols
                out_features = (
                    _scaled(layer_def.out_features, scale)
                    if layer_def.scale_output
                    else layer_def.out_features
                )
                layers.append(FullyConnected(layer_def.name, in_features, out_features))
                channels, cur_rows, cur_cols = out_features, 1, 1
            elif isinstance(layer_def, ReLUDef):
                layers.append(ReLU(layer_def.name))
            elif isinstance(layer_def, LRNDef):
                layers.append(
                    LocalResponseNorm(
                        layer_def.name,
                        local_size=layer_def.local_size,
                        alpha=layer_def.alpha,
                        beta=layer_def.beta,
                    )
                )
            elif isinstance(layer_def, DropoutDef):
                layers.append(Dropout(layer_def.name, rate=layer_def.rate))
            elif isinstance(layer_def, FlattenDef):
                layers.append(Flatten(layer_def.name))
                channels, cur_rows, cur_cols = channels * cur_rows * cur_cols, 1, 1
            elif isinstance(layer_def, SoftmaxDef):
                layers.append(Softmax(layer_def.name))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown layer definition {layer_def!r}")
        network = Network(self.name, input_shape, layers)
        if seed is not None:
            initialize_network(network, seed=seed)
        return network
