"""Model registry mapping names to architecture factories."""

from __future__ import annotations

from typing import Callable, Dict, List

from .alexnet import alexnet_architecture
from .arch import Architecture
from .cifarnet import cifarnet_architecture
from .lenet import lenet_architecture
from .mobilenet import mobilenet_tiny_architecture
from .vgg16 import vgg16_architecture
from .vgg19 import vgg19_architecture

_REGISTRY: Dict[str, Callable[[], Architecture]] = {
    "alexnet": alexnet_architecture,
    "vgg16": vgg16_architecture,
    "vgg19": vgg19_architecture,
    "cifarnet": cifarnet_architecture,
    "lenet": lenet_architecture,
    "mobilenet-tiny": mobilenet_tiny_architecture,
}


def available_models() -> List[str]:
    """Names of all registered architectures."""
    return sorted(_REGISTRY)


def get_architecture(name: str) -> Architecture:
    """Look up an architecture by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        )
    return _REGISTRY[key]()


def register_model(name: str, factory: Callable[[], Architecture]) -> None:
    """Register a custom architecture factory under ``name``."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"model {name!r} is already registered")
    _REGISTRY[key] = factory
