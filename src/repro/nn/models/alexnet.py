"""AlexNet (Krizhevsky et al., 2012) — one of the paper's two benchmarks.

The Caffe single-tower variant with 227x227 input, LRN after conv1/conv2 and
2-group convolutions in conv2/conv4/conv5 (the grouping matters: it is what
makes the dense model 1.45 GOP, the figure the paper's Table 2 normalizes
throughput against).
"""

from __future__ import annotations

from .arch import (
    Architecture,
    ConvDef,
    DropoutDef,
    FCDef,
    FlattenDef,
    LRNDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)


def alexnet_architecture(num_classes: int = 1000) -> Architecture:
    """The AlexNet architecture description."""
    return Architecture(
        name="alexnet",
        input_channels=3,
        input_rows=227,
        input_cols=227,
        defs=[
            ConvDef("conv1", 96, kernel=11, stride=4),
            ReLUDef("relu1"),
            LRNDef("norm1"),
            PoolDef("pool1", kernel=3, stride=2),
            ConvDef("conv2", 256, kernel=5, padding=2, groups=2),
            ReLUDef("relu2"),
            LRNDef("norm2"),
            PoolDef("pool2", kernel=3, stride=2),
            ConvDef("conv3", 384, kernel=3, padding=1),
            ReLUDef("relu3"),
            ConvDef("conv4", 384, kernel=3, padding=1, groups=2),
            ReLUDef("relu4"),
            ConvDef("conv5", 256, kernel=3, padding=1, groups=2),
            ReLUDef("relu5"),
            PoolDef("pool5", kernel=3, stride=2),
            FlattenDef("flatten"),
            FCDef("fc6", 4096),
            ReLUDef("relu6"),
            DropoutDef("drop6"),
            FCDef("fc7", 4096),
            ReLUDef("relu7"),
            DropoutDef("drop7"),
            FCDef("fc8", num_classes, scale_output=False),
            SoftmaxDef("prob"),
        ],
    )
