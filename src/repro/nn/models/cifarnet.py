"""CifarNet — a small CIFAR-10 CNN runnable end-to-end at full size.

Modeled on Caffe's ``cifar10_quick``: three 5x5 convolutions with pooling
(max then average, as in the original), a small FC head. At 24.7 MFLOPs it
executes the complete prune/quantize/ABM pipeline in well under a second,
which makes it the workhorse of the functional examples and tests.
"""

from __future__ import annotations

from .arch import (
    Architecture,
    ConvDef,
    FCDef,
    FlattenDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)


def cifarnet_architecture(num_classes: int = 10) -> Architecture:
    """The cifar10_quick-style architecture description."""
    return Architecture(
        name="cifarnet",
        input_channels=3,
        input_rows=32,
        input_cols=32,
        defs=[
            ConvDef("conv1", 32, kernel=5, padding=2),
            PoolDef("pool1", kernel=3, stride=2),
            ReLUDef("relu1"),
            ConvDef("conv2", 32, kernel=5, padding=2),
            ReLUDef("relu2"),
            PoolDef("pool2", kernel=3, stride=2, kind="avg"),
            ConvDef("conv3", 64, kernel=5, padding=2),
            ReLUDef("relu3"),
            PoolDef("pool3", kernel=3, stride=2, kind="avg"),
            FlattenDef("flatten"),
            FCDef("fc4", 64),
            FCDef("fc5", num_classes, scale_output=False),
            SoftmaxDef("prob"),
        ],
    )
