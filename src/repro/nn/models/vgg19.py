"""VGG19 (configuration E) — a natural extension benchmark.

The paper evaluates VGG16; VGG19 adds one 3x3 convolution to each of the
last three blocks (39.3 GOP dense). Useful for checking that the DSE flow
and the accelerator model generalize beyond the two published workloads.
"""

from __future__ import annotations

from .arch import (
    Architecture,
    ConvDef,
    DropoutDef,
    FCDef,
    FlattenDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)

#: Channel widths and conv counts of the five VGG19 blocks.
_BLOCKS = [
    (1, 64, 2),
    (2, 128, 2),
    (3, 256, 4),
    (4, 512, 4),
    (5, 512, 4),
]


def vgg19_architecture(num_classes: int = 1000) -> Architecture:
    """The VGG19-E architecture description."""
    defs = []
    for block, channels, repeats in _BLOCKS:
        for i in range(1, repeats + 1):
            defs.append(ConvDef(f"conv{block}_{i}", channels, kernel=3, padding=1))
            defs.append(ReLUDef(f"relu{block}_{i}"))
        defs.append(PoolDef(f"pool{block}", kernel=2, stride=2))
    defs.extend(
        [
            FlattenDef("flatten"),
            FCDef("fc6", 4096),
            ReLUDef("relu6"),
            DropoutDef("drop6"),
            FCDef("fc7", 4096),
            ReLUDef("relu7"),
            DropoutDef("drop7"),
            FCDef("fc8", num_classes, scale_output=False),
            SoftmaxDef("prob"),
        ]
    )
    return Architecture(
        name="vgg19",
        input_channels=3,
        input_rows=224,
        input_cols=224,
        defs=defs,
    )
