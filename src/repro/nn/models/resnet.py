"""A small residual network built on the DAG container.

Not a paper benchmark — it demonstrates that ABM-SpConv's workload model
covers branching topologies: every conv in the residual blocks yields a
normal :class:`~repro.core.specs.LayerSpec`, so the simulator and DSE flow
run unchanged (future-work territory for the paper, implemented here).
"""

from __future__ import annotations

import numpy as np

from ..graph import Add, GraphNetwork
from ..initializers import initialize_layer
from ..layers import Conv2D, FullyConnected, MaxPool2D, ReLU, Softmax
from ..layers.activation import Flatten
from ..tensor import FeatureShape


def _residual_block(
    network: GraphNetwork,
    name: str,
    input_node: str,
    channels: int,
    in_channels: int,
    rng: np.random.Generator,
) -> str:
    """conv-relu-conv + identity (or 1x1-projected) skip, then relu."""
    conv_a = Conv2D(f"{name}_a", in_channels, channels, kernel=3, padding=1)
    initialize_layer(conv_a, rng)
    a = network.add_layer(conv_a, [input_node])
    a_relu = network.add_layer(ReLU(f"{name}_a_relu"), [a])
    conv_b = Conv2D(f"{name}_b", channels, channels, kernel=3, padding=1)
    initialize_layer(conv_b, rng)
    b = network.add_layer(conv_b, [a_relu])
    skip = input_node
    if in_channels != channels:
        projection = Conv2D(f"{name}_proj", in_channels, channels, kernel=1)
        initialize_layer(projection, rng)
        skip = network.add_layer(projection, [input_node])
    joined = network.add_layer(Add(f"{name}_add"), [b, skip])
    return network.add_layer(ReLU(f"{name}_relu"), [joined])


def tiny_resnet(
    input_size: int = 32, num_classes: int = 10, seed: int = 0
) -> GraphNetwork:
    """A 2-block residual CNN for ``input_size`` x ``input_size`` inputs."""
    rng = np.random.default_rng(seed)
    network = GraphNetwork("tiny-resnet", FeatureShape(3, input_size, input_size))
    stem = Conv2D("stem", 3, 16, kernel=3, padding=1)
    initialize_layer(stem, rng)
    node = network.add_layer(stem)
    node = network.add_layer(ReLU("stem_relu"), [node])
    node = _residual_block(network, "block1", node, 16, 16, rng)
    node = network.add_layer(MaxPool2D("pool1", kernel=2, stride=2), [node])
    node = _residual_block(network, "block2", node, 32, 16, rng)
    node = network.add_layer(MaxPool2D("pool2", kernel=2, stride=2), [node])
    node = network.add_layer(Flatten("flatten"), [node])
    spatial = input_size // 4
    head = FullyConnected("fc", 32 * spatial * spatial, num_classes)
    initialize_layer(head, rng)
    node = network.add_layer(head, [node])
    network.add_layer(Softmax("prob"), [node])
    return network
