"""Model zoo: AlexNet and VGG16 plus the architecture DSL to add more."""

from .alexnet import alexnet_architecture
from .arch import (
    Architecture,
    ConvDef,
    DropoutDef,
    FCDef,
    FlattenDef,
    LRNDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)
from .cifarnet import cifarnet_architecture
from .lenet import lenet_architecture
from .mobilenet import mobilenet_tiny_architecture
from .registry import available_models, get_architecture, register_model
from .vgg16 import vgg16_architecture
from .vgg19 import vgg19_architecture

__all__ = [
    "Architecture",
    "ConvDef",
    "PoolDef",
    "FCDef",
    "ReLUDef",
    "LRNDef",
    "DropoutDef",
    "FlattenDef",
    "SoftmaxDef",
    "alexnet_architecture",
    "vgg16_architecture",
    "vgg19_architecture",
    "cifarnet_architecture",
    "lenet_architecture",
    "mobilenet_tiny_architecture",
    "available_models",
    "get_architecture",
    "register_model",
]
