"""LeNet-5 — the smallest zoo member, for MNIST-shaped inputs.

Exercises configurations the big models never hit: single input channel,
no padding, average pooling after every convolution and tiny FC layers —
useful boundary coverage for the encoder, tiling and pipeline.
"""

from __future__ import annotations

from .arch import (
    Architecture,
    ConvDef,
    FCDef,
    FlattenDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)


def lenet_architecture(num_classes: int = 10) -> Architecture:
    """The LeNet-5 architecture description (Caffe variant)."""
    return Architecture(
        name="lenet",
        input_channels=1,
        input_rows=28,
        input_cols=28,
        defs=[
            ConvDef("conv1", 20, kernel=5),
            PoolDef("pool1", kernel=2, stride=2),
            ConvDef("conv2", 50, kernel=5),
            PoolDef("pool2", kernel=2, stride=2),
            FlattenDef("flatten"),
            FCDef("fc3", 500),
            ReLUDef("relu3"),
            FCDef("fc4", num_classes, scale_output=False),
            SoftmaxDef("prob"),
        ],
    )
