"""VGG16 (Simonyan & Zisserman, 2014) — the paper's main benchmark.

Configuration D: thirteen 3x3/'same' convolutions in five blocks with 2x2
max pooling, then fc6/fc7/fc8. Dense op count is 30.94 GOP for a 224x224
input, the number every throughput figure in the paper is normalized to.
"""

from __future__ import annotations

from .arch import (
    Architecture,
    ConvDef,
    DropoutDef,
    FCDef,
    FlattenDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)

#: Channel widths of the five VGG16 convolution blocks.
_BLOCKS = [
    (1, 64, 2),
    (2, 128, 2),
    (3, 256, 3),
    (4, 512, 3),
    (5, 512, 3),
]


def vgg16_architecture(num_classes: int = 1000) -> Architecture:
    """The VGG16-D architecture description."""
    defs = []
    for block, channels, repeats in _BLOCKS:
        for i in range(1, repeats + 1):
            defs.append(ConvDef(f"conv{block}_{i}", channels, kernel=3, padding=1))
            defs.append(ReLUDef(f"relu{block}_{i}"))
        defs.append(PoolDef(f"pool{block}", kernel=2, stride=2))
    defs.extend(
        [
            FlattenDef("flatten"),
            FCDef("fc6", 4096),
            ReLUDef("relu6"),
            DropoutDef("drop6"),
            FCDef("fc7", 4096),
            ReLUDef("relu7"),
            DropoutDef("drop7"),
            FCDef("fc8", num_classes, scale_output=False),
            SoftmaxDef("prob"),
        ]
    )
    return Architecture(
        name="vgg16",
        input_channels=3,
        input_rows=224,
        input_cols=224,
        defs=defs,
    )
