"""A tiny MobileNetV1-style CNN: depthwise-separable convolutions.

Exercises the grouped-convolution extreme (groups == channels) through the
whole stack — encoder, ABM execution, tiling, simulator. Depthwise layers
are also the stress case for ABM's arithmetic-intensity analysis: each
kernel holds only K*K weights, so the Acc/Mult ratio is small and the
sharing factor N is bounded by these layers, not the big pointwise ones.
"""

from __future__ import annotations

from .arch import (
    Architecture,
    ConvDef,
    FCDef,
    FlattenDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)


def _ds_block(index: int, out_channels: int, stride: int = 1) -> list:
    """One depthwise-separable block: 3x3 depthwise + 1x1 pointwise."""
    return [
        ConvDef(f"dw{index}", 0, kernel=3, stride=stride, padding=1, depthwise=True),
        ReLUDef(f"dw{index}_relu"),
        ConvDef(f"pw{index}", out_channels, kernel=1),
        ReLUDef(f"pw{index}_relu"),
    ]


def mobilenet_tiny_architecture(num_classes: int = 10) -> Architecture:
    """A 4-block depthwise-separable CNN for 32x32 inputs."""
    defs = [
        ConvDef("stem", 16, kernel=3, padding=1, stride=1),
        ReLUDef("stem_relu"),
    ]
    defs += _ds_block(1, 32)
    defs += _ds_block(2, 32, stride=2)
    defs += _ds_block(3, 64)
    defs += _ds_block(4, 64, stride=2)
    defs += [
        PoolDef("pool", kernel=8, stride=8, kind="avg"),
        FlattenDef("flatten"),
        FCDef("fc", num_classes, scale_output=False),
        SoftmaxDef("prob"),
    ]
    return Architecture(
        name="mobilenet-tiny",
        input_channels=3,
        input_rows=32,
        input_cols=32,
        defs=defs,
    )
