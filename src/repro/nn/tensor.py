"""Shape bookkeeping for feature maps.

The paper indexes feature maps as (channels, rows, cols) = (N, R, C) on the
input side and (M, R', C') on the output side of a convolution. We keep that
CHW convention throughout; batch is handled by an explicit leading axis only
inside the executor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FeatureShape:
    """Shape of one feature map: channels x rows x cols."""

    channels: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if min(self.channels, self.rows, self.cols) < 1:
            raise ValueError(f"all dimensions must be positive, got {self}")

    @property
    def pixels(self) -> int:
        """Number of spatial positions (rows * cols)."""
        return self.rows * self.cols

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.channels * self.rows * self.cols

    def as_tuple(self) -> tuple:
        return (self.channels, self.rows, self.cols)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.channels}x{self.rows}x{self.cols}"


def conv_output_extent(extent: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output extent of a convolution along one axis."""
    out = (extent + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"kernel {kernel} / stride {stride} / padding {padding} "
            f"does not fit extent {extent}"
        )
    return out


def pool_output_extent(extent: int, kernel: int, stride: int) -> int:
    """Spatial output extent of a pooling window (ceil mode, AlexNet style)."""
    if extent < kernel:
        raise ValueError(f"pool kernel {kernel} larger than extent {extent}")
    return (extent - kernel + stride - 1) // stride + 1
