"""Deterministic synthetic weight initialization.

We have no trained ImageNet checkpoints offline, so model weights are
synthesized. Two aspects matter to the reproduction and are controlled here:

- the *magnitude distribution* (trained CNN weights are heavy-tailed and
  zero-centred; we use a Laplacian, which magnitude pruning then truncates
  exactly the way Deep Compression's histograms show), and
- determinism (every generator takes an explicit seed, so experiments and
  tests are bit-reproducible).
"""

from __future__ import annotations

import numpy as np

from .layers.base import Layer
from .layers.conv import Conv2D
from .layers.fc import FullyConnected
from .network import Network


def he_std(fan_in: int) -> float:
    """He-initialization standard deviation for a given fan-in."""
    if fan_in < 1:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return float(np.sqrt(2.0 / fan_in))


def laplacian_weights(
    shape: tuple, fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """Heavy-tailed synthetic weights with He-scaled variance.

    A Laplace(0, b) variate has variance 2*b^2; we pick b so the variance
    matches He initialization, which keeps activations in a realistic range
    through deep stacks.
    """
    scale = he_std(fan_in) / np.sqrt(2.0)
    return rng.laplace(0.0, scale, size=shape)


def initialize_layer(layer: Layer, rng: np.random.Generator) -> None:
    """Fill one layer's weights/bias in place (no-op for stateless layers)."""
    if isinstance(layer, Conv2D):
        fan_in = layer.weights.shape[1] * layer.kernel * layer.kernel
        layer.weights = laplacian_weights(layer.weights.shape, fan_in, rng)
        layer.bias[:] = rng.normal(0.0, 0.01, size=layer.bias.shape)
    elif isinstance(layer, FullyConnected):
        layer.weights = laplacian_weights(layer.weights.shape, layer.in_features, rng)
        layer.bias[:] = rng.normal(0.0, 0.01, size=layer.bias.shape)


def initialize_network(network: Network, seed: int = 0) -> Network:
    """Deterministically initialize every weighted layer of a network."""
    rng = np.random.default_rng(seed)
    for layer in network:
        initialize_layer(layer, rng)
    return network
