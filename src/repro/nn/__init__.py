"""Inference-only numpy CNN substrate (layers, networks, model zoo)."""

from .executor import BatchResult, Executor, LayerProfile
from .initializers import initialize_layer, initialize_network
from .layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    fold_batchnorm,
    Dropout,
    Flatten,
    FullyConnected,
    Layer,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
    im2col,
)
from .network import LayerSummary, Network
from .tensor import FeatureShape, conv_output_extent, pool_output_extent

__all__ = [
    "Layer",
    "BatchNorm",
    "fold_batchnorm",
    "Conv2D",
    "FullyConnected",
    "MaxPool2D",
    "AvgPool2D",
    "ReLU",
    "Dropout",
    "Flatten",
    "LocalResponseNorm",
    "Softmax",
    "im2col",
    "Network",
    "LayerSummary",
    "FeatureShape",
    "conv_output_extent",
    "pool_output_extent",
    "initialize_network",
    "initialize_layer",
    "Executor",
    "BatchResult",
    "LayerProfile",
]
