"""Batch inference executor with timing and classification utilities.

Batches run through :meth:`repro.nn.network.Network.forward_batch`: every
layer processes the whole (B, C, H, W) batch as one array — the software
analogue of the paper's accelerator filling its S_ec vector lanes — and
stays numerically identical to per-image execution. The executor adds the
host-side conveniences on top: timing, per-layer profiling and top-k
extraction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from .network import Network


@dataclass(frozen=True)
class LayerProfile:
    """Wall time of one layer across a profiled run."""

    name: str
    kind: str
    seconds: float
    on_accelerator: bool


@dataclass(frozen=True)
class BatchResult:
    """Outputs of a batched run, with optional profiling."""

    outputs: np.ndarray  # (batch, *output_shape)
    seconds: float
    profiles: Tuple[LayerProfile, ...] = ()

    @property
    def images_per_second(self) -> float:
        if self.seconds == 0:
            return float("inf")
        return self.outputs.shape[0] / self.seconds

    def top_k(self, k: int = 5) -> np.ndarray:
        """(batch, k) class indices, best first."""
        flat = self.outputs.reshape(self.outputs.shape[0], -1)
        if k < 1 or k > flat.shape[1]:
            raise ValueError(f"k must be in [1, {flat.shape[1]}]")
        order = np.argsort(-flat, axis=1)
        return order[:, :k]

    def top_1(self) -> np.ndarray:
        """(batch,) class indices."""
        return self.top_k(1)[:, 0]


class Executor:
    """Runs batches of CHW images through a network."""

    def __init__(self, network: Network) -> None:
        self.network = network

    def _validate_batch(self, images: np.ndarray) -> np.ndarray:
        arr = np.asarray(images)
        expected = self.network.input_shape.as_tuple()
        if arr.ndim == 3 and arr.shape == expected:
            arr = arr[None]
        if arr.ndim != 4 or arr.shape[1:] != expected:
            raise ValueError(
                f"expected a (batch, {expected[0]}, {expected[1]}, "
                f"{expected[2]}) array, got {arr.shape}"
            )
        return arr

    def run(self, images: np.ndarray) -> BatchResult:
        """Run a batch (or a single CHW image) through the network.

        The whole batch flows through :meth:`Network.forward_batch` — each
        layer sees one (B, C, H, W) array rather than a per-image loop.
        """
        batch = self._validate_batch(images)
        started = time.perf_counter()
        outputs = self.network.forward_batch(batch)
        return BatchResult(outputs=outputs, seconds=time.perf_counter() - started)

    def profile(self, images: np.ndarray) -> BatchResult:
        """Run a batch with per-layer wall-time accounting."""
        batch = self._validate_batch(images)
        timings: Dict[str, float] = {layer.name: 0.0 for layer in self.network}
        started = time.perf_counter()
        value = batch
        for layer in self.network:
            layer_start = time.perf_counter()
            value = layer.forward_batch(value)
            timings[layer.name] += time.perf_counter() - layer_start
        total = time.perf_counter() - started
        profiles = tuple(
            LayerProfile(
                name=layer.name,
                kind=type(layer).__name__,
                seconds=timings[layer.name],
                on_accelerator=layer.runs_on_accelerator,
            )
            for layer in self.network
        )
        return BatchResult(outputs=value, seconds=total, profiles=profiles)

    @staticmethod
    def accelerated_fraction(profiles: Sequence[LayerProfile]) -> float:
        """Fraction of profiled time spent in conv/FC layers.

        On a CPU this is the Amdahl ceiling of any conv/FC accelerator —
        the quantity that motivates the paper's FPGA offload split.
        """
        total = sum(p.seconds for p in profiles)
        if total == 0:
            return 0.0
        return sum(p.seconds for p in profiles if p.on_accelerator) / total
