"""DAG networks: branching/merging topologies beyond sequential stacks.

The paper's two benchmarks are sequential, but its accelerator is not
limited to chains — any CNN whose conv/FC layers can be enumerated with
shapes maps onto the same workload model. This module adds a directed
acyclic graph container (on networkx) with ``Add`` and ``Concat`` merge
nodes, enough to express residual and inception-style blocks, and extracts
the same :class:`~repro.core.specs.LayerSpec` list the DSE flow and
simulator consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from ..core.specs import LayerSpec, conv_spec, fc_spec
from .layers.base import Layer
from .layers.conv import Conv2D
from .layers.fc import FullyConnected
from .tensor import FeatureShape

INPUT_NODE = "__input__"


class MergeLayer(Layer):
    """A layer combining several parent feature maps."""

    def forward(self, features: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise TypeError(f"{type(self).__name__} needs forward_multi()")

    def forward_multi(self, features: Sequence[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def output_shape_multi(self, shapes: Sequence[FeatureShape]) -> FeatureShape:
        raise NotImplementedError

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        return self.output_shape_multi([input_shape])


class Add(MergeLayer):
    """Elementwise sum of identically-shaped parents (residual join)."""

    def output_shape_multi(self, shapes: Sequence[FeatureShape]) -> FeatureShape:
        if not shapes:
            raise ValueError(f"{self.name}: Add needs at least one input")
        first = shapes[0]
        for shape in shapes[1:]:
            if shape != first:
                raise ValueError(
                    f"{self.name}: Add inputs must match, got {first} vs {shape}"
                )
        return first

    def forward_multi(self, features: Sequence[np.ndarray]) -> np.ndarray:
        result = np.array(features[0], copy=True)
        for branch in features[1:]:
            result = result + branch
        return result


class Concat(MergeLayer):
    """Channel-axis concatenation of spatially-matching parents."""

    def output_shape_multi(self, shapes: Sequence[FeatureShape]) -> FeatureShape:
        if not shapes:
            raise ValueError(f"{self.name}: Concat needs at least one input")
        rows, cols = shapes[0].rows, shapes[0].cols
        for shape in shapes[1:]:
            if (shape.rows, shape.cols) != (rows, cols):
                raise ValueError(
                    f"{self.name}: Concat inputs must share spatial dims"
                )
        return FeatureShape(sum(s.channels for s in shapes), rows, cols)

    def forward_multi(self, features: Sequence[np.ndarray]) -> np.ndarray:
        return np.concatenate(list(features), axis=0)


class GraphNetwork:
    """A DAG of layers with shape inference and topological execution."""

    def __init__(self, name: str, input_shape: FeatureShape) -> None:
        self.name = name
        self.input_shape = input_shape
        self._graph = nx.DiGraph()
        self._graph.add_node(INPUT_NODE)
        self._layers: Dict[str, Layer] = {}
        self._shapes: Dict[str, FeatureShape] = {INPUT_NODE: input_shape}
        self._output: Optional[str] = None

    def add_layer(self, layer: Layer, inputs: Sequence[str] = (INPUT_NODE,)) -> str:
        """Attach a layer fed by the named parents; returns its name."""
        if layer.name in self._layers or layer.name == INPUT_NODE:
            raise ValueError(f"duplicate layer name {layer.name!r}")
        parent_shapes = []
        for parent in inputs:
            if parent not in self._shapes:
                raise KeyError(f"unknown input node {parent!r}")
            parent_shapes.append(self._shapes[parent])
        if isinstance(layer, MergeLayer):
            shape = layer.output_shape_multi(parent_shapes)
        else:
            if len(parent_shapes) != 1:
                raise ValueError(
                    f"{layer.name}: non-merge layers take exactly one input"
                )
            shape = layer.output_shape(parent_shapes[0])
        self._graph.add_node(layer.name)
        for parent in inputs:
            self._graph.add_edge(parent, layer.name)
        if not nx.is_directed_acyclic_graph(self._graph):  # pragma: no cover
            self._graph.remove_node(layer.name)
            raise ValueError(f"adding {layer.name!r} would create a cycle")
        self._layers[layer.name] = layer
        self._shapes[layer.name] = shape
        self._output = layer.name  # latest layer is the default output
        return layer.name

    def set_output(self, name: str) -> None:
        if name not in self._layers:
            raise KeyError(f"unknown layer {name!r}")
        self._output = name

    @property
    def output_shape(self) -> FeatureShape:
        if self._output is None:
            raise RuntimeError("network has no layers")
        return self._shapes[self._output]

    def layer(self, name: str) -> Layer:
        if name not in self._layers:
            raise KeyError(f"no layer named {name!r}")
        return self._layers[name]

    def shape_of(self, name: str) -> FeatureShape:
        return self._shapes[name]

    def topological_order(self) -> List[str]:
        """Layer names in execution order."""
        return [n for n in nx.topological_sort(self._graph) if n != INPUT_NODE]

    def forward(self, features: np.ndarray) -> np.ndarray:
        arr = np.asarray(features)
        if arr.shape != self.input_shape.as_tuple():
            raise ValueError(
                f"expected input shape {self.input_shape.as_tuple()}, got {arr.shape}"
            )
        if self._output is None:
            raise RuntimeError("network has no layers")
        values: Dict[str, np.ndarray] = {INPUT_NODE: arr}
        for name in self.topological_order():
            layer = self._layers[name]
            parents = [values[p] for p in self._graph.predecessors(name)]
            if isinstance(layer, MergeLayer):
                values[name] = layer.forward_multi(parents)
            else:
                values[name] = layer.forward(parents[0])
        return values[self._output]

    def accelerated_specs(self) -> List[LayerSpec]:
        """LayerSpecs of every conv/FC node, in topological order."""
        specs = []
        for name in self.topological_order():
            layer = self._layers[name]
            parents = list(self._graph.predecessors(name))
            in_shape = self._shapes[parents[0]]
            if isinstance(layer, Conv2D):
                specs.append(
                    conv_spec(
                        name,
                        layer.in_channels,
                        layer.out_channels,
                        layer.kernel,
                        in_shape.rows,
                        in_shape.cols,
                        stride=layer.stride,
                        padding=layer.padding,
                        groups=layer.groups,
                    )
                )
            elif isinstance(layer, FullyConnected):
                specs.append(fc_spec(name, layer.in_features, layer.out_features))
        return specs

    def parameter_count(self) -> int:
        return sum(layer.parameter_count for layer in self._layers.values())

    def __len__(self) -> int:
        return len(self._layers)
