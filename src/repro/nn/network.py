"""Sequential network container with shape inference and introspection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from .layers.base import Layer
from .layers.conv import Conv2D
from .layers.fc import FullyConnected
from .tensor import FeatureShape

ComputeLayer = Union[Conv2D, FullyConnected]


@dataclass(frozen=True)
class LayerSummary:
    """One row of :meth:`Network.summary`."""

    name: str
    kind: str
    output_shape: FeatureShape
    parameters: int
    operations: int
    on_accelerator: bool


class Network:
    """An ordered stack of layers applied to a single CHW input.

    The container validates shape compatibility at construction time so a
    mis-specified model fails fast, and exposes the conv/FC sublist that the
    paper's accelerator executes (:meth:`accelerated_layers`).
    """

    def __init__(self, name: str, input_shape: FeatureShape, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        names = [layer.name for layer in layers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate layer names: {sorted(duplicates)}")
        self.name = name
        self.input_shape = input_shape
        self.layers: List[Layer] = list(layers)
        self._shapes: List[FeatureShape] = []
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            self._shapes.append(shape)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, name: str) -> Layer:
        """Look a layer up by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    def input_shape_of(self, name: str) -> FeatureShape:
        """Input shape seen by the named layer."""
        for i, candidate in enumerate(self.layers):
            if candidate.name == name:
                return self.input_shape if i == 0 else self._shapes[i - 1]
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    def output_shape_of(self, name: str) -> FeatureShape:
        """Output shape produced by the named layer."""
        for candidate, shape in zip(self.layers, self._shapes):
            if candidate.name == name:
                return shape
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    @property
    def output_shape(self) -> FeatureShape:
        return self._shapes[-1]

    def accelerated_layers(self) -> List[ComputeLayer]:
        """Conv and FC layers, in order — what the FPGA executes."""
        return [layer for layer in self.layers if layer.runs_on_accelerator]  # type: ignore[misc]

    def parameter_count(self) -> int:
        """Total trainable parameters across all layers."""
        return sum(layer.parameter_count for layer in self.layers)

    def operation_count(self) -> int:
        """Total dense op count (2 per MAC), the paper's '#OP' for SDConv."""
        total = 0
        shape = self.input_shape
        for layer in self.layers:
            total += layer.operation_count(shape)
            shape = layer.output_shape(shape)
        return total

    def forward(self, features: np.ndarray, upto: Optional[str] = None) -> np.ndarray:
        """Run inference; optionally stop after the layer named ``upto``."""
        arr = np.asarray(features)
        if arr.shape != self.input_shape.as_tuple():
            raise ValueError(
                f"network {self.name!r} expects input shape "
                f"{self.input_shape.as_tuple()}, got {arr.shape}"
            )
        for layer in self.layers:
            arr = layer.forward(arr)
            if upto is not None and layer.name == upto:
                return arr
        if upto is not None:
            raise KeyError(f"no layer named {upto!r} in network {self.name!r}")
        return arr

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run a (B, C, H, W) batch through every layer's batched path.

        The batch genuinely flows through each layer as one array instead
        of a Python loop over images. Integer/quantized execution is
        bit-exact against per-image :meth:`forward`; float conv/FC layers
        may differ at the ulp level (BLAS summation order).
        """
        arr = np.asarray(batch)
        expected = self.input_shape.as_tuple()
        if arr.ndim != 4 or arr.shape[1:] != expected:
            raise ValueError(
                f"network {self.name!r} expects a (batch, {expected[0]}, "
                f"{expected[1]}, {expected[2]}) array, got {arr.shape}"
            )
        for layer in self.layers:
            arr = layer.forward_batch(arr)
        return arr

    def activations(self, features: np.ndarray) -> Dict[str, np.ndarray]:
        """Run inference and capture every layer's output (for calibration)."""
        arr = np.asarray(features)
        captured: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            arr = layer.forward(arr)
            captured[layer.name] = arr
        return captured

    def summary(self) -> List[LayerSummary]:
        """Per-layer table of shapes, parameters and op counts."""
        rows = []
        shape = self.input_shape
        for layer, out_shape in zip(self.layers, self._shapes):
            rows.append(
                LayerSummary(
                    name=layer.name,
                    kind=type(layer).__name__,
                    output_shape=out_shape,
                    parameters=layer.parameter_count,
                    operations=layer.operation_count(shape),
                    on_accelerator=layer.runs_on_accelerator,
                )
            )
            shape = out_shape
        return rows
