"""Fully-connected layer.

The paper folds FC computation into the convolution machinery by setting
R = C = 1 and K = 1 in Equation (1): an FC layer is a 1x1 convolution over a
1x1 feature map with N = in_features channels. :meth:`FullyConnected.as_conv`
exposes exactly that view so the ABM-SpConv encoder, op counter and
accelerator treat FC layers uniformly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import FeatureShape
from .base import Layer


class FullyConnected(Layer):
    """Dense layer computing ``y = W x + b`` with W of shape (out, in)."""

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        weights: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(name)
        self.in_features = in_features
        self.out_features = out_features
        expected = (out_features, in_features)
        if weights is None:
            weights = np.zeros(expected, dtype=np.float64)
        weights = np.asarray(weights)
        if weights.shape != expected:
            raise ValueError(f"weights must have shape {expected}, got {weights.shape}")
        self._weights = weights
        if bias is None:
            bias = np.zeros(out_features, dtype=np.float64)
        bias = np.asarray(bias)
        if bias.shape != (out_features,):
            raise ValueError(f"bias must have shape ({out_features},)")
        self._bias = bias

    @property
    def weights(self) -> np.ndarray:
        return self._weights

    @weights.setter
    def weights(self, value: np.ndarray) -> None:
        value = np.asarray(value)
        if value.shape != self._weights.shape:
            raise ValueError(
                f"weights must keep shape {self._weights.shape}, got {value.shape}"
            )
        self._weights = value

    @property
    def bias(self) -> np.ndarray:
        return self._bias

    @property
    def parameter_count(self) -> int:
        return self._weights.size + self._bias.size

    @property
    def runs_on_accelerator(self) -> bool:
        return True

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        if input_shape.size != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, "
                f"got shape {input_shape} ({input_shape.size} values)"
            )
        return FeatureShape(self.out_features, 1, 1)

    def operation_count(self, input_shape: FeatureShape) -> int:
        """Dense op count: 2 ops per MAC of the inner products."""
        self.output_shape(input_shape)
        return 2 * self.in_features * self.out_features

    def as_conv_weights(self) -> np.ndarray:
        """Weights viewed as (M, N, 1, 1) — the paper's FC-as-conv mapping."""
        return self._weights.reshape(self.out_features, self.in_features, 1, 1)

    def forward(self, features: np.ndarray) -> np.ndarray:
        flat = np.asarray(features).reshape(-1)
        if flat.size != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} inputs, got {flat.size}"
            )
        result = self._weights @ flat + self._bias
        return result.reshape(self.out_features, 1, 1)

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        arr = np.asarray(batch)
        if arr.ndim != 4:
            raise ValueError(
                f"layer {self.name!r} expects a BCHW batch, got shape {arr.shape}"
            )
        flat = arr.reshape(arr.shape[0], -1)
        if flat.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} inputs, got {flat.shape[1]}"
            )
        result = flat @ self._weights.T + self._bias
        return result.reshape(arr.shape[0], self.out_features, 1, 1)
