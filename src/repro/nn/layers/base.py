"""Layer interface for the inference-only CNN substrate.

Layers are forward-only (the paper accelerates inference; pruning and
quantization operate on already-trained weights, which we synthesize). Every
layer can infer its output shape, report parameter and operation counts, and
declare whether the paper's accelerator executes it on the FPGA (convolution
and fully-connected layers) or leaves it to the host CPU (pooling, LRN,
softmax and friends — Section 6.1).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..tensor import FeatureShape


class Layer(abc.ABC):
    """Base class of all network layers."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("layer name must be non-empty")
        self.name = name

    @abc.abstractmethod
    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        """Shape of the output feature map for a given input shape."""

    @abc.abstractmethod
    def forward(self, features: np.ndarray) -> np.ndarray:
        """Run the layer on a CHW feature map."""

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run the layer on a (B, C, H, W) batch.

        The default stacks per-image :meth:`forward` results; layers with a
        genuinely batched implementation override this. Integer layers are
        bit-exact against the per-image path; float matmul layers may
        differ by BLAS summation order (ulp-level).
        """
        arr = require_bchw(batch, self)
        return np.stack([self.forward(image) for image in arr])

    @property
    def parameter_count(self) -> int:
        """Number of trainable parameters (0 for stateless layers)."""
        return 0

    def operation_count(self, input_shape: FeatureShape) -> int:
        """Number of arithmetic operations (the paper counts 2 per MAC)."""
        return 0

    @property
    def runs_on_accelerator(self) -> bool:
        """True if the FPGA executes this layer (CONV and FC only)."""
        return False

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Weight tensor, or None for stateless layers."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


def require_chw(features: np.ndarray, layer: Layer) -> np.ndarray:
    """Validate that a feature map is a 3-D CHW array."""
    arr = np.asarray(features)
    if arr.ndim != 3:
        raise ValueError(
            f"layer {layer.name!r} expects a CHW feature map, got shape {arr.shape}"
        )
    return arr


def require_bchw(batch: np.ndarray, layer: Layer) -> np.ndarray:
    """Validate that a feature-map batch is a 4-D BCHW array."""
    arr = np.asarray(batch)
    if arr.ndim != 4:
        raise ValueError(
            f"layer {layer.name!r} expects a BCHW batch, got shape {arr.shape}"
        )
    return arr
