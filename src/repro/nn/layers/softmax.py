"""Softmax classifier head (host-CPU layer in the paper's system)."""

from __future__ import annotations

import numpy as np

from ..tensor import FeatureShape
from .base import Layer, require_bchw, require_chw


class Softmax(Layer):
    """Numerically-stable softmax over the channel axis."""

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        return input_shape

    def forward(self, features: np.ndarray) -> np.ndarray:
        features = require_chw(features, self).astype(np.float64)
        shifted = features - features.max(axis=0, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=0, keepdims=True)

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        batch = require_bchw(batch, self).astype(np.float64)
        shifted = batch - batch.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
