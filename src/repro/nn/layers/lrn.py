"""Local Response Normalization (AlexNet) — a host-CPU layer in the paper."""

from __future__ import annotations

import numpy as np

from ..tensor import FeatureShape
from .base import Layer, require_bchw, require_chw


class LocalResponseNorm(Layer):
    """Across-channel LRN as defined by Krizhevsky et al.

    ``out[c] = in[c] / (k + alpha/n * sum_{c' in window} in[c']^2)^beta``
    with a window of ``local_size`` channels centred on ``c``.
    """

    def __init__(
        self,
        name: str,
        local_size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 1.0,
    ) -> None:
        super().__init__(name)
        if local_size < 1 or local_size % 2 == 0:
            raise ValueError(f"local_size must be odd and positive, got {local_size}")
        self.local_size = local_size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        return input_shape

    def forward(self, features: np.ndarray) -> np.ndarray:
        features = require_chw(features, self).astype(np.float64)
        channels = features.shape[0]
        squared = features**2
        half = self.local_size // 2
        # Prefix sums over the channel axis give O(C) windowed sums.
        prefix = np.concatenate(
            [np.zeros((1,) + squared.shape[1:]), np.cumsum(squared, axis=0)], axis=0
        )
        lo = np.clip(np.arange(channels) - half, 0, channels)
        hi = np.clip(np.arange(channels) + half + 1, 0, channels)
        window_sums = prefix[hi] - prefix[lo]
        denom = (self.k + (self.alpha / self.local_size) * window_sums) ** self.beta
        return features / denom

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        batch = require_bchw(batch, self).astype(np.float64)
        channels = batch.shape[1]
        squared = batch**2
        half = self.local_size // 2
        prefix = np.concatenate(
            [np.zeros((batch.shape[0], 1) + squared.shape[2:]), np.cumsum(squared, axis=1)],
            axis=1,
        )
        lo = np.clip(np.arange(channels) - half, 0, channels)
        hi = np.clip(np.arange(channels) + half + 1, 0, channels)
        window_sums = prefix[:, hi] - prefix[:, lo]
        denom = (self.k + (self.alpha / self.local_size) * window_sums) ** self.beta
        return batch / denom
