"""2-D convolution layer (Equation 1 of the paper) with an im2col forward.

Supports stride, symmetric zero padding and channel groups (AlexNet's
conv2/4/5 are 2-group convolutions). The weight layout is (M, N/g, K, K)
with M output channels, matching the paper's W_{m,n,k,k'} indexing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import FeatureShape, conv_output_extent
from .base import Layer, require_bchw, require_chw


def im2col(
    features: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unfold a CHW feature map into a (out_pixels, C*K*K) patch matrix.

    Rows are ordered row-major over output positions; columns are ordered
    (channel, kernel_row, kernel_col) — exactly the (n, k, k') index order
    the paper's weight encoding uses. ``out``, when given, must be a
    C-contiguous (out_pixels, C*K*K) array; hot paths pass a reused scratch
    buffer to skip the per-call allocation.
    """
    channels, rows, cols = features.shape
    if padding:
        features = np.pad(
            features, ((0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    out_rows = conv_output_extent(rows, kernel, stride, padding)
    out_cols = conv_output_extent(cols, kernel, stride, padding)
    # Gather with stride tricks: windows[c, r', c', k, k'].
    windows = np.lib.stride_tricks.sliding_window_view(
        features, (kernel, kernel), axis=(1, 2)
    )[:, ::stride, ::stride]
    stacked = windows.transpose(1, 2, 0, 3, 4)
    if out is None:
        return np.ascontiguousarray(stacked).reshape(
            out_rows * out_cols, channels * kernel * kernel
        )
    expected = (out_rows * out_cols, channels * kernel * kernel)
    if out.shape != expected:
        raise ValueError(f"im2col out buffer must have shape {expected}, got {out.shape}")
    np.copyto(out.reshape(out_rows, out_cols, channels, kernel, kernel), stacked)
    return out


class Conv2D(Layer):
    """Spatial convolution layer.

    Parameters
    ----------
    name:
        Layer name (e.g. ``"conv4_2"``) — also the key used by the pruning
        schedule and the quantizer.
    in_channels / out_channels:
        N and M in the paper's notation.
    kernel:
        K (square kernels only, as in AlexNet/VGG16).
    stride / padding:
        S and symmetric zero padding.
    groups:
        Channel groups; weights then have shape (M, N/groups, K, K).
    """

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        weights: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(name)
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must divide evenly into groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.groups = groups
        expected = (out_channels, in_channels // groups, kernel, kernel)
        if weights is None:
            weights = np.zeros(expected, dtype=np.float64)
        weights = np.asarray(weights)
        if weights.shape != expected:
            raise ValueError(f"weights must have shape {expected}, got {weights.shape}")
        self._weights = weights
        if bias is None:
            bias = np.zeros(out_channels, dtype=np.float64)
        bias = np.asarray(bias)
        if bias.shape != (out_channels,):
            raise ValueError(f"bias must have shape ({out_channels},)")
        self._bias = bias

    @property
    def weights(self) -> np.ndarray:
        return self._weights

    @weights.setter
    def weights(self, value: np.ndarray) -> None:
        value = np.asarray(value)
        if value.shape != self._weights.shape:
            raise ValueError(
                f"weights must keep shape {self._weights.shape}, got {value.shape}"
            )
        self._weights = value

    @property
    def bias(self) -> np.ndarray:
        return self._bias

    @property
    def parameter_count(self) -> int:
        return self._weights.size + self._bias.size

    @property
    def runs_on_accelerator(self) -> bool:
        return True

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        if input_shape.channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, "
                f"got {input_shape.channels}"
            )
        return FeatureShape(
            self.out_channels,
            conv_output_extent(input_shape.rows, self.kernel, self.stride, self.padding),
            conv_output_extent(input_shape.cols, self.kernel, self.stride, self.padding),
        )

    def operation_count(self, input_shape: FeatureShape) -> int:
        """Dense spatial-convolution op count: 2 ops (mul+add) per MAC."""
        out = self.output_shape(input_shape)
        macs_per_pixel = (self.in_channels // self.groups) * self.kernel * self.kernel
        return 2 * macs_per_pixel * self.out_channels * out.pixels

    def forward(self, features: np.ndarray) -> np.ndarray:
        features = require_chw(features, self)
        out_shape = self.output_shape(FeatureShape(*features.shape))
        group_in = self.in_channels // self.groups
        group_out = self.out_channels // self.groups
        output = np.empty(out_shape.as_tuple(), dtype=np.result_type(features, self._weights))
        for g in range(self.groups):
            patches = im2col(
                features[g * group_in : (g + 1) * group_in],
                self.kernel,
                self.stride,
                self.padding,
            )
            kernels = self._weights[g * group_out : (g + 1) * group_out].reshape(
                group_out, -1
            )
            result = patches @ kernels.T + self._bias[g * group_out : (g + 1) * group_out]
            output[g * group_out : (g + 1) * group_out] = result.T.reshape(
                group_out, out_shape.rows, out_shape.cols
            )
        return output

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Batched im2col forward: one matmul per group over B*P patch rows."""
        batch = require_bchw(batch, self)
        images = batch.shape[0]
        out_shape = self.output_shape(FeatureShape(*batch.shape[1:]))
        pixels = out_shape.rows * out_shape.cols
        group_in = self.in_channels // self.groups
        group_out = self.out_channels // self.groups
        output = np.empty(
            (images,) + out_shape.as_tuple(),
            dtype=np.result_type(batch, self._weights),
        )
        for g in range(self.groups):
            patches = np.concatenate(
                [
                    im2col(
                        batch[i, g * group_in : (g + 1) * group_in],
                        self.kernel,
                        self.stride,
                        self.padding,
                    )
                    for i in range(images)
                ]
            )
            kernels = self._weights[g * group_out : (g + 1) * group_out].reshape(
                group_out, -1
            )
            result = patches @ kernels.T + self._bias[g * group_out : (g + 1) * group_out]
            output[:, g * group_out : (g + 1) * group_out] = (
                result.reshape(images, pixels, group_out)
                .transpose(0, 2, 1)
                .reshape(images, group_out, out_shape.rows, out_shape.cols)
            )
        return output
