"""Batch normalization (inference mode) and conv/FC folding.

The paper's benchmarks predate BN, but any modern CNN a user deploys
through this library has it. At inference BN is an affine per-channel
transform, and the standard deployment step — which the quantized
pipeline relies on — is to *fold* it into the preceding conv/FC weights:

    y = gamma * (w*x + b - mean) / sqrt(var + eps) + beta
      = (gamma / sigma) * w * x  +  (gamma / sigma) * (b - mean) + beta

so the folded network has no BN layers at all and quantizes like the
paper's models. :func:`fold_batchnorm` performs the transform on a
sequential network and is verified to be numerically exact.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..tensor import FeatureShape
from .base import Layer, require_chw
from .conv import Conv2D
from .fc import FullyConnected


class BatchNorm(Layer):
    """Per-channel inference-time batch normalization."""

    def __init__(
        self,
        name: str,
        channels: int,
        gamma: np.ndarray = None,
        beta: np.ndarray = None,
        running_mean: np.ndarray = None,
        running_var: np.ndarray = None,
        eps: float = 1e-5,
    ) -> None:
        super().__init__(name)
        if channels < 1:
            raise ValueError("channels must be positive")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.channels = channels
        self.eps = eps
        self.gamma = self._param(gamma, channels, 1.0)
        self.beta = self._param(beta, channels, 0.0)
        self.running_mean = self._param(running_mean, channels, 0.0)
        self.running_var = self._param(running_var, channels, 1.0)
        if np.any(self.running_var < 0):
            raise ValueError("variances cannot be negative")

    @staticmethod
    def _param(value, channels: int, default: float) -> np.ndarray:
        if value is None:
            return np.full(channels, default, dtype=np.float64)
        arr = np.asarray(value, dtype=np.float64)
        if arr.shape != (channels,):
            raise ValueError(f"parameter must have shape ({channels},)")
        return arr.copy()

    @property
    def parameter_count(self) -> int:
        return 4 * self.channels

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        if input_shape.channels != self.channels:
            raise ValueError(
                f"{self.name}: expected {self.channels} channels, "
                f"got {input_shape.channels}"
            )
        return input_shape

    def scale_and_shift(self) -> tuple:
        """The equivalent per-channel affine (scale, shift)."""
        sigma = np.sqrt(self.running_var + self.eps)
        scale = self.gamma / sigma
        shift = self.beta - scale * self.running_mean
        return scale, shift

    def forward(self, features: np.ndarray) -> np.ndarray:
        features = require_chw(features, self)
        scale, shift = self.scale_and_shift()
        return features * scale[:, None, None] + shift[:, None, None]


def fold_batchnorm(layers: List[Layer]) -> List[Layer]:
    """Fold every BN that directly follows a conv/FC layer into it.

    Returns a new layer list; the folded conv/FC layers are fresh objects
    with adjusted weights/bias. A BN with no foldable predecessor is kept
    as-is (it still executes correctly, just unfolded).
    """
    folded: List[Layer] = []
    for layer in layers:
        if isinstance(layer, BatchNorm) and folded and isinstance(
            folded[-1], (Conv2D, FullyConnected)
        ):
            previous = folded.pop()
            scale, shift = layer.scale_and_shift()
            if isinstance(previous, Conv2D):
                if previous.out_channels != layer.channels:
                    raise ValueError(
                        f"{layer.name}: channel mismatch with {previous.name}"
                    )
                replacement = Conv2D(
                    previous.name,
                    previous.in_channels,
                    previous.out_channels,
                    previous.kernel,
                    stride=previous.stride,
                    padding=previous.padding,
                    groups=previous.groups,
                    weights=previous.weights * scale[:, None, None, None],
                    bias=previous.bias * scale + shift,
                )
            else:
                if previous.out_features != layer.channels:
                    raise ValueError(
                        f"{layer.name}: feature mismatch with {previous.name}"
                    )
                replacement = FullyConnected(
                    previous.name,
                    previous.in_features,
                    previous.out_features,
                    weights=previous.weights * scale[:, None],
                    bias=previous.bias * scale + shift,
                )
            folded.append(replacement)
        else:
            folded.append(layer)
    return folded
