"""Elementwise layers: ReLU, dropout (inference no-op), flatten."""

from __future__ import annotations

import numpy as np

from ..tensor import FeatureShape
from .base import Layer, require_bchw, require_chw


class ReLU(Layer):
    """Rectified linear unit, applied elementwise."""

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        return input_shape

    def forward(self, features: np.ndarray) -> np.ndarray:
        features = require_chw(features, self)
        return np.maximum(features, 0)

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        return np.maximum(require_bchw(batch, self), 0)


class Dropout(Layer):
    """Dropout layer — identity at inference time (kept for model fidelity)."""

    def __init__(self, name: str, rate: float = 0.5) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        return input_shape

    def forward(self, features: np.ndarray) -> np.ndarray:
        return require_chw(features, self)

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        return require_bchw(batch, self)


class Flatten(Layer):
    """Reshape a CHW map to (C*H*W, 1, 1) ahead of fully-connected layers."""

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        return FeatureShape(input_shape.size, 1, 1)

    def forward(self, features: np.ndarray) -> np.ndarray:
        features = require_chw(features, self)
        return features.reshape(-1, 1, 1)

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        batch = require_bchw(batch, self)
        return batch.reshape(batch.shape[0], -1, 1, 1)
