"""Forward-only CNN layers."""

from .activation import Dropout, Flatten, ReLU
from .base import Layer
from .batchnorm import BatchNorm, fold_batchnorm
from .conv import Conv2D, im2col
from .fc import FullyConnected
from .lrn import LocalResponseNorm
from .pool import AvgPool2D, MaxPool2D
from .softmax import Softmax

__all__ = [
    "Layer",
    "BatchNorm",
    "fold_batchnorm",
    "Conv2D",
    "im2col",
    "FullyConnected",
    "MaxPool2D",
    "AvgPool2D",
    "ReLU",
    "Dropout",
    "Flatten",
    "LocalResponseNorm",
    "Softmax",
]
