"""Pooling layers (executed by the host CPU in the paper's system).

AlexNet uses overlapping 3x3/stride-2 max pooling whose windows may run past
the feature-map edge; we follow Caffe's ceil-mode semantics (pad the tail
with -inf for max pooling) so the canonical AlexNet/VGG16 shapes come out
right (55 -> 27 -> 13 -> 6 for AlexNet).
"""

from __future__ import annotations

import numpy as np

from ..tensor import FeatureShape, pool_output_extent
from .base import Layer, require_bchw, require_chw


class _Pool2D(Layer):
    """Shared machinery for max/average pooling."""

    def __init__(self, name: str, kernel: int, stride: int) -> None:
        super().__init__(name)
        if kernel < 1 or stride < 1:
            raise ValueError("kernel and stride must be positive")
        self.kernel = kernel
        self.stride = stride

    def output_shape(self, input_shape: FeatureShape) -> FeatureShape:
        return FeatureShape(
            input_shape.channels,
            pool_output_extent(input_shape.rows, self.kernel, self.stride),
            pool_output_extent(input_shape.cols, self.kernel, self.stride),
        )

    def _windows(self, features: np.ndarray, fill: float) -> np.ndarray:
        """All pooling windows as an array (C, R', C', K, K)."""
        channels, rows, cols = features.shape
        out_rows = pool_output_extent(rows, self.kernel, self.stride)
        out_cols = pool_output_extent(cols, self.kernel, self.stride)
        need_rows = (out_rows - 1) * self.stride + self.kernel
        need_cols = (out_cols - 1) * self.stride + self.kernel
        if need_rows > rows or need_cols > cols:
            features = np.pad(
                features,
                ((0, 0), (0, need_rows - rows), (0, need_cols - cols)),
                mode="constant",
                constant_values=fill,
            )
        windows = np.lib.stride_tricks.sliding_window_view(
            features, (self.kernel, self.kernel), axis=(1, 2)
        )[:, :: self.stride, :: self.stride]
        return windows[:, :out_rows, :out_cols]


class MaxPool2D(_Pool2D):
    """Max pooling over KxK windows."""

    def forward(self, features: np.ndarray) -> np.ndarray:
        features = require_chw(features, self)
        windows = self._windows(features.astype(np.float64), fill=-np.inf)
        return windows.max(axis=(3, 4))

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        # The window machinery only touches the trailing two axes, so the
        # batch folds into the channel axis and unfolds after the reduce.
        batch = require_bchw(batch, self)
        b, c, h, w = batch.shape
        windows = self._windows(
            batch.reshape(b * c, h, w).astype(np.float64), fill=-np.inf
        )
        pooled = windows.max(axis=(3, 4))
        return pooled.reshape(b, c, pooled.shape[1], pooled.shape[2])


class AvgPool2D(_Pool2D):
    """Average pooling over KxK windows (tail windows average real pixels)."""

    def forward(self, features: np.ndarray) -> np.ndarray:
        features = require_chw(features, self)
        valid = self._windows(np.ones_like(features, dtype=np.float64), fill=0.0)
        windows = self._windows(features.astype(np.float64), fill=0.0)
        return windows.sum(axis=(3, 4)) / valid.sum(axis=(3, 4))

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        batch = require_bchw(batch, self)
        b, c, h, w = batch.shape
        # Valid-pixel counts depend only on geometry: one (c, h, w) pass.
        valid = self._windows(np.ones((c, h, w), dtype=np.float64), fill=0.0)
        counts = valid.sum(axis=(3, 4))
        windows = self._windows(batch.reshape(b * c, h, w).astype(np.float64), fill=0.0)
        sums = windows.sum(axis=(3, 4))
        return sums.reshape(b, c, sums.shape[1], sums.shape[2]) / counts
