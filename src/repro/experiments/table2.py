"""Experiment: paper Table 2 — comparison with state-of-the-art accelerators.

The baseline columns are literature numbers (they are in the paper too);
the 'Proposed' columns are *regenerated* by running the calibrated
synthetic AlexNet/VGG16 workloads through the accelerator simulator at the
paper's configurations and the resource model. Derived rows — performance
density, the 1.55x headline speedup over [3], the 3.8x frequency-normalized
advantage over [13] and the >3x density advantage over [4]/[12]/[10] — are
recomputed from both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple

from ..analysis.compare import Comparison
from ..analysis.tables import render_table
from ..baselines.published import PublishedAccelerator, get_baseline
from ..dse.resources import DEFAULT_RESOURCE_MODEL, ResourceEstimate
from ..hw.accelerator import AcceleratorSimulator, ModelSimResult
from ..hw.config import PAPER_CONFIG_ALEXNET, PAPER_CONFIG_VGG16, AcceleratorConfig
from ..hw.device import STRATIX_V_GXA7
from ..workloads.paper_targets import (
    ALEXNET_SPEEDUP_VS_FDCONV,
    TABLE2_COLUMNS,
    VGG16_SPEEDUP_VS_FDCONV,
)
from ..workloads.synthetic import synthetic_model_workload


@dataclass(frozen=True)
class ProposedColumn:
    """The regenerated 'Proposed' column for one CNN."""

    cnn: str
    config: AcceleratorConfig
    simulation: ModelSimResult
    resources: ResourceEstimate

    @property
    def throughput_gops(self) -> float:
        return self.simulation.throughput_gops

    @property
    def perf_density(self) -> float:
        return self.simulation.perf_density(self.resources.dsps)


@dataclass(frozen=True)
class Table2Result:
    """Regenerated Table 2."""

    proposed: Mapping[str, ProposedColumn]
    comparisons: Tuple[Comparison, ...]

    def render(self) -> str:
        headers = (
            "design", "CNN", "FPGA", "MHz", "ALMs", "DSPs", "M20K",
            "GOP/s", "GOP/s/DSP",
        )
        rows: List[Tuple] = []
        for column in TABLE2_COLUMNS:
            if column.reference == "this work":
                continue
            rows.append(
                (
                    f"{column.reference} {column.scheme}",
                    column.cnn,
                    column.fpga,
                    column.freq_mhz,
                    column.logic_alms,
                    column.dsps,
                    column.m20k,
                    column.throughput_gops,
                    column.throughput_gops / column.dsps,
                )
            )
        for cnn, proposed in self.proposed.items():
            rows.append(
                (
                    "ABM-SpConv (measured)",
                    cnn,
                    STRATIX_V_GXA7.name,
                    proposed.config.freq_mhz,
                    proposed.resources.alms,
                    proposed.resources.dsps,
                    proposed.resources.m20ks,
                    proposed.throughput_gops,
                    proposed.perf_density,
                )
            )
        return render_table(rows=rows, headers=headers, title="Table 2 — comparison with state of the art")


def _proposed(cnn: str, config: AcceleratorConfig, seed: int) -> ProposedColumn:
    workload = synthetic_model_workload(cnn, seed=seed)
    simulator = AcceleratorSimulator(config, STRATIX_V_GXA7)
    simulation = simulator.simulate(workload)
    resources = DEFAULT_RESOURCE_MODEL.estimate(config)
    return ProposedColumn(
        cnn=cnn, config=config, simulation=simulation, resources=resources
    )


def run(seed: int = 1) -> Table2Result:
    """Regenerate Table 2's proposed columns and derived claims."""
    proposed = {
        "alexnet": _proposed("alexnet", PAPER_CONFIG_ALEXNET, seed),
        "vgg16": _proposed("vgg16", PAPER_CONFIG_VGG16, seed),
    }
    comparisons: List[Comparison] = []
    for cnn, column in proposed.items():
        paper = get_baseline(f"proposed-{cnn}").column
        comparisons.extend(
            [
                Comparison("table2", f"{cnn}.throughput_gops", paper.throughput_gops, column.throughput_gops),
                Comparison("table2", f"{cnn}.perf_density", paper.perf_density, column.perf_density),
                Comparison("table2", f"{cnn}.dsps", paper.dsps, column.resources.dsps),
                Comparison("table2", f"{cnn}.alms", paper.logic_alms, column.resources.alms),
                Comparison("table2", f"{cnn}.m20k", paper.m20k, column.resources.m20ks),
            ]
        )
    # Headline: speedup over the FDConv design [3] on the same device.
    zeng_vgg = get_baseline("zeng-vgg16")
    zeng_alex = get_baseline("zeng-alexnet")
    comparisons.append(
        Comparison(
            "table2",
            "vgg16.speedup_vs_fdconv",
            VGG16_SPEEDUP_VS_FDCONV,
            proposed["vgg16"].throughput_gops / zeng_vgg.throughput_gops,
        )
    )
    comparisons.append(
        Comparison(
            "table2",
            "alexnet.speedup_vs_fdconv",
            ALEXNET_SPEEDUP_VS_FDCONV,
            proposed["alexnet"].throughput_gops / zeng_alex.throughput_gops,
        )
    )
    # 3.8x frequency-normalized speedup over the SDConv design [13] on the
    # same device (the paper compares its VGG16 column: 1029/204 MHz vs
    # 134.1/100 MHz = 3.8x).
    suda = get_baseline("suda-alexnet")
    measured_norm = (
        proposed["vgg16"].throughput_gops / proposed["vgg16"].config.freq_mhz
    ) / (suda.throughput_gops / suda.column.freq_mhz)
    comparisons.append(
        Comparison("table2", "vgg16.norm_speedup_vs_sdconv", 3.8, measured_norm)
    )
    # >3x performance-density advantage over [4], [12], [10].
    for key in ("zhang-vgg16", "ma-vgg16", "aydonat-alexnet"):
        baseline: PublishedAccelerator = get_baseline(key)
        cnn = baseline.column.cnn
        advantage = proposed[cnn].perf_density / baseline.perf_density
        comparisons.append(
            Comparison(
                "table2",
                f"density_advantage_vs_{key}",
                get_baseline(f"proposed-{cnn}").perf_density / baseline.perf_density,
                advantage,
            )
        )
    return Table2Result(proposed=proposed, comparisons=tuple(comparisons))
