"""Experiment: paper Figure 6 — exploration for the optimal N_knl.

Sweeps N_knl at the paper's preset (N_cu=3, S_ec=20, 200 MHz) on VGG16 and
reports the normalized performance boost curve whose maximum picks the
kernel-parallelism degree. The paper lands on 14; the reproduction asserts
the optimum falls in the same feasibility-bounded plateau (the GXA7's DSPs
admit at most N_knl=15 at this preset, and the boost curve is within a few
per cent across 11-15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.ascii_plots import line_plot
from ..analysis.compare import Comparison
from ..analysis.tables import render_table
from ..dse.explorer import NknlPoint, optimal_nknl, sweep_nknl
from ..dse.performance import share_factor_from_workloads
from ..dse.resources import DEFAULT_RESOURCE_MODEL
from ..hw.device import STRATIX_V_GXA7
from ..workloads.paper_targets import OPTIMAL_N_KNL
from ..workloads.synthetic import synthetic_model_workload


@dataclass(frozen=True)
class Fig6Result:
    points: Tuple[NknlPoint, ...]
    chosen_n_knl: int
    comparisons: Tuple[Comparison, ...]

    @property
    def plateau(self) -> Tuple[int, ...]:
        """Feasible N_knl values within 5% of the best boost."""
        feasible = [p for p in self.points if p.feasible]
        best = max(p.normalized_boost for p in feasible)
        return tuple(
            p.n_knl for p in feasible if p.normalized_boost >= 0.95 * best
        )

    def render(self) -> str:
        rows = [
            (p.n_knl, p.throughput_gops, p.logic_alms, p.normalized_boost, p.feasible)
            for p in self.points
        ]
        table = render_table(
            ("N_knl", "GOP/s", "ALMs", "norm boost", "feasible"),
            rows,
            title="Figure 6 — optimal N_knl exploration (VGG16, 200 MHz)",
        )
        curve = line_plot(
            [p.n_knl for p in self.points],
            [p.normalized_boost for p in self.points],
            title="normalized performance boost vs N_knl ('|' = chosen)",
            mark_x=self.chosen_n_knl,
        )
        return table + "\n\n" + curve


def run(seed: int = 1) -> Fig6Result:
    """Regenerate the Figure 6 sweep."""
    workload = synthetic_model_workload("vgg16", seed=seed)
    n_share = share_factor_from_workloads(workload.layers)
    points = sweep_nknl(
        workload,
        DEFAULT_RESOURCE_MODEL,
        n_share,
        device=STRATIX_V_GXA7,
        n_cu=3,
        s_ec=20,
        freq_mhz=200.0,
    )
    chosen = optimal_nknl(points)
    comparisons: List[Comparison] = [
        Comparison("fig6", "optimal_n_knl", OPTIMAL_N_KNL, chosen),
        Comparison("fig6", "n_share", 4, n_share),
    ]
    return Fig6Result(
        points=tuple(points), chosen_n_knl=chosen, comparisons=tuple(comparisons)
    )
