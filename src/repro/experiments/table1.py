"""Experiment: paper Table 1 — #OP of the four convolution schemes on VGG16.

Regenerates, for the layers the paper prints and for the entire CNN, the
operation counts of SDConv, FDConv [3], SpConv [7] and ABM-SpConv
(accumulates and multiplies separately, plus the Acc./Mult. intensity
ratio), and the '#OP Saved' totals row.

The measured side comes from the calibrated synthetic pruned/quantized
model (sampled per-kernel statistics); see
:mod:`repro.workloads.codebooks` for how the distinct-value calibration
was derived from this very table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.compare import Comparison
from ..analysis.tables import render_table
from ..core.opcount import LayerOpCounts, ModelOpCounts, measured_layer_counts
from ..hw.workload import ModelWorkload
from ..workloads.paper_targets import TABLE1_ROWS, TABLE1_SAVINGS, TABLE1_TOTALS
from ..workloads.synthetic import synthetic_model_workload


@dataclass(frozen=True)
class Table1Result:
    """Regenerated Table 1."""

    counts: ModelOpCounts
    comparisons: Tuple[Comparison, ...]

    def layer(self, name: str) -> LayerOpCounts:
        for layer in self.counts.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer {name!r} in Table 1 result")

    def render(self) -> str:
        rows = []
        for layer in self.counts.layers:
            rows.append(
                (
                    layer.name,
                    layer.sdconv_ops / 1e6,
                    layer.fdconv_ops / 1e6,
                    layer.spconv_ops / 1e6,
                    layer.abm_accumulates / 1e6,
                    layer.abm_multiplies / 1e6,
                    layer.acc_to_mult_ratio,
                )
            )
        totals = self.counts
        rows.append(
            (
                "Entire CNN",
                totals.sdconv_ops / 1e6,
                totals.fdconv_ops / 1e6,
                totals.spconv_ops / 1e6,
                totals.abm_accumulates / 1e6,
                totals.abm_multiplies / 1e6,
                totals.abm_accumulates / max(totals.abm_multiplies, 1),
            )
        )
        rows.append(
            (
                "#OP Saved",
                0.0,
                totals.saved_vs_fdconv * 100,
                totals.saved_vs_spconv * 100,
                totals.saved_vs_sdconv * 100,
                None,
                None,
            )
        )
        return render_table(
            ("layer", "SDConv MOP", "FDConv MOP", "SpConv MOP", "ABM Acc", "ABM Mult", "Acc/Mult"),
            rows,
            title="Table 1 — #OP by convolution scheme (VGG16)",
        )


def _workload_counts(workload: ModelWorkload) -> ModelOpCounts:
    layers = []
    for layer_workload in workload.layers:
        # Rebuild an encoded-layer-free measurement from the statistics.
        spec = layer_workload.spec
        nnz = int(layer_workload.nonzeros_array().sum())
        distinct = int(layer_workload.distinct_array().sum())
        layers.append(
            LayerOpCounts(
                name=spec.name,
                sdconv_ops=float(spec.dense_ops),
                fdconv_ops=spec.dense_ops / (3.3 if spec.kind == "conv" else 1.0),
                spconv_ops=2.0 * nnz * spec.output_pixels,
                abm_accumulates=float(nnz * spec.output_pixels),
                abm_multiplies=float(distinct * spec.output_pixels),
            )
        )
    return ModelOpCounts(layers=tuple(layers))


def run(seed: int = 1) -> Table1Result:
    """Regenerate Table 1 from the calibrated synthetic VGG16."""
    workload = synthetic_model_workload("vgg16", seed=seed)
    counts = _workload_counts(workload)
    comparisons: List[Comparison] = []
    for name, row in TABLE1_ROWS.items():
        layer = next(l for l in counts.layers if l.name == name)
        comparisons.extend(
            [
                Comparison("table1", f"{name}.sdconv_mop", row.sdconv_mop, layer.sdconv_ops / 1e6),
                Comparison("table1", f"{name}.spconv_mop", row.spconv_mop, layer.spconv_ops / 1e6),
                Comparison("table1", f"{name}.abm_acc_mop", row.abm_acc_mop, layer.abm_accumulates / 1e6),
                Comparison("table1", f"{name}.abm_mult_mop", row.abm_mult_mop, layer.abm_multiplies / 1e6),
                Comparison("table1", f"{name}.acc_to_mult", row.acc_to_mult, layer.acc_to_mult_ratio),
            ]
        )
    comparisons.extend(
        [
            Comparison("table1", "total.sdconv_mop", TABLE1_TOTALS["sdconv"], counts.sdconv_ops / 1e6),
            Comparison("table1", "total.fdconv_mop", TABLE1_TOTALS["fdconv"], counts.fdconv_ops / 1e6),
            Comparison("table1", "total.spconv_mop", TABLE1_TOTALS["spconv"], counts.spconv_ops / 1e6),
            Comparison(
                "table1",
                "total.abm_mop",
                TABLE1_TOTALS["abm"],
                counts.abm_accumulates / 1e6,
            ),
            Comparison("table1", "saved.vs_sdconv", TABLE1_SAVINGS["abm"], counts.saved_vs_sdconv),
            Comparison("table1", "saved.fdconv_vs_sdconv", TABLE1_SAVINGS["fdconv"], 1 - counts.fdconv_ops / counts.sdconv_ops),
            Comparison("table1", "saved.spconv_vs_sdconv", TABLE1_SAVINGS["spconv"], 1 - counts.spconv_ops / counts.sdconv_ops),
        ]
    )
    return Table1Result(counts=counts, comparisons=tuple(comparisons))


def run_measured_from_encoding(seed: int = 1) -> ModelOpCounts:
    """Table 1 counts measured from *actually encoded* synthetic tensors.

    Materializes concrete weight tensors for every VGG16 layer except the
    memory-prohibitive FC blocks, encodes them, and measures. Used by the
    test suite to show the statistics path and the encoding path agree.
    """
    import numpy as np

    from ..core.encoding import encode_layer
    from ..nn.models import get_architecture
    from ..prune.schedules import deep_compression_schedule
    from ..workloads.codebooks import codebook_size
    from ..workloads.synthetic import synthesize_quantized_layer

    architecture = get_architecture("vgg16")
    schedule = deep_compression_schedule("vgg16")
    rng = np.random.default_rng(seed)
    layers = []
    for spec in architecture.accelerated_specs():
        if spec.weight_count > 3_000_000:  # skip the giant FC tensors
            continue
        codes = synthesize_quantized_layer(
            spec,
            schedule.density(spec.name),
            codebook_size("vgg16", spec.name),
            rng,
        )
        encoded = encode_layer(spec.name, codes)
        layers.append(measured_layer_counts(spec, encoded))
    return ModelOpCounts(layers=tuple(layers))
