"""Experiment: paper Figure 7 — attainable throughput over S_ec x N_cu.

Evaluates the Performance and Resource models over the S_ec x N_cu grid at
N_knl=14, N=4, 200 MHz with the paper's 75% logic constraint, and reports
the feasible region and the top design candidates. The paper implements
(S_ec=20, N_cu=3); the reproduction asserts that point is feasible, lands
within a few per cent of the measured best candidate, and that all three
resources are near their limits there (the balanced-utilization argument
of the paper's conclusion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.ascii_plots import heatmap
from ..analysis.compare import Comparison
from ..analysis.tables import render_table
from ..dse.explorer import GridPoint, best_candidates, sweep_sec_ncu
from ..dse.resources import DEFAULT_RESOURCE_MODEL
from ..hw.device import STRATIX_V_GXA7
from ..workloads.paper_targets import (
    FIG7_LOGIC_CONSTRAINT,
    OPTIMAL_N_CU,
    OPTIMAL_N_KNL,
    OPTIMAL_S_EC,
)
from ..workloads.synthetic import synthetic_model_workload


@dataclass(frozen=True)
class Fig7Result:
    grid: Tuple[GridPoint, ...]
    candidates: Tuple[GridPoint, ...]
    paper_point: Optional[GridPoint]
    comparisons: Tuple[Comparison, ...]

    def point(self, s_ec: int, n_cu: int) -> GridPoint:
        for candidate in self.grid:
            if candidate.s_ec == s_ec and candidate.n_cu == n_cu:
                return candidate
        raise KeyError(f"no grid point (S_ec={s_ec}, N_cu={n_cu})")

    def render(self) -> str:
        surface = {
            (c.s_ec, c.n_cu): c.throughput_gops for c in self.grid
        }
        mask = {(c.s_ec, c.n_cu): not c.feasible for c in self.grid}
        chart = heatmap(
            surface,
            title="attainable GOP/s over S_ec (cols) x N_cu (rows)",
            mark=(OPTIMAL_S_EC, OPTIMAL_N_CU),
            mask=mask,
        )
        rows = [
            (
                c.s_ec,
                c.n_cu,
                c.throughput_gops,
                f"{c.utilization.logic:.0%}",
                f"{c.utilization.dsp:.0%}",
                f"{c.utilization.memory:.0%}",
                c.feasible,
            )
            for c in self.candidates
        ]
        table = render_table(
            ("S_ec", "N_cu", "GOP/s", "logic", "DSP", "M20K", "feasible"),
            rows,
            title=(
                "Figure 7 — S_ec x N_cu exploration "
                f"(N_knl={OPTIMAL_N_KNL}, logic <= {FIG7_LOGIC_CONSTRAINT:.0%}), top candidates"
            ),
        )
        return chart + "\n\n" + table


def run(seed: int = 1) -> Fig7Result:
    """Regenerate the Figure 7 exploration."""
    workload = synthetic_model_workload("vgg16", seed=seed)
    grid = sweep_sec_ncu(
        workload,
        STRATIX_V_GXA7,
        DEFAULT_RESOURCE_MODEL,
        n_knl=OPTIMAL_N_KNL,
        n_share=4,
        freq_mhz=200.0,
        logic_limit=FIG7_LOGIC_CONSTRAINT,
    )
    candidates = best_candidates(grid, count=8)
    paper_point = next(
        (p for p in grid if p.s_ec == OPTIMAL_S_EC and p.n_cu == OPTIMAL_N_CU), None
    )
    comparisons: List[Comparison] = []
    if paper_point is not None and candidates:
        comparisons.append(
            Comparison(
                "fig7",
                "paper_point_vs_best_gops",
                candidates[0].throughput_gops,
                paper_point.throughput_gops,
            )
        )
        comparisons.append(
            Comparison("fig7", "paper_point_feasible", 1.0, float(paper_point.feasible))
        )
        ranked = [(p.s_ec, p.n_cu) for p in candidates]
        comparisons.append(
            Comparison(
                "fig7",
                "paper_point_rank_in_top8",
                1.0,
                float((OPTIMAL_S_EC, OPTIMAL_N_CU) in ranked),
            )
        )
    return Fig7Result(
        grid=tuple(grid),
        candidates=tuple(candidates),
        paper_point=paper_point,
        comparisons=tuple(comparisons),
    )
