"""Extension experiment: batch size vs external memory bandwidth.

The paper's Bandwidth Model amortizes encoded-weight fetches over "a
minimum batch size of S_ec" and concludes the design is compute-bound on
the GXA7. This experiment sweeps the batch size to locate the *crossover*:
how small a batch (down to single-image latency-critical inference) the
12.8 GB/s DDR3 can sustain before weight re-streaming makes the design
memory-bound — the kind of deployment question a user of the accelerator
actually faces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.tables import render_table
from ..dse.bandwidth import bandwidth_report
from ..dse.performance import MODE_QUANTIZED, estimate_model
from ..hw.config import PAPER_CONFIG_VGG16, AcceleratorConfig
from ..hw.device import STRATIX_V_GXA7, FPGADevice
from ..workloads.synthetic import synthetic_model_workload


@dataclass(frozen=True)
class BatchPoint:
    """Bandwidth picture at one batch size."""

    batch: int
    required_gbs: float
    headroom: float
    compute_bound: bool


@dataclass(frozen=True)
class BatchBandwidthResult:
    model: str
    device: FPGADevice
    points: Tuple[BatchPoint, ...]

    @property
    def crossover_batch(self) -> Optional[int]:
        """Smallest swept batch that is still compute-bound."""
        feasible = [p.batch for p in self.points if p.compute_bound]
        return min(feasible) if feasible else None

    def render(self) -> str:
        rows = [
            (p.batch, p.required_gbs, self.device.bandwidth_gbs, f"{p.headroom:.2f}x", p.compute_bound)
            for p in self.points
        ]
        table = render_table(
            ("batch", "required GB/s", "device GB/s", "headroom", "compute-bound"),
            rows,
            title=f"batch size vs bandwidth ({self.model} on {self.device.name})",
        )
        crossover = self.crossover_batch
        note = (
            f"\nsmallest compute-bound batch: {crossover}"
            if crossover is not None
            else "\nmemory-bound at every swept batch"
        )
        return table + note


def run(
    model: str = "vgg16",
    config: AcceleratorConfig = PAPER_CONFIG_VGG16,
    device: FPGADevice = STRATIX_V_GXA7,
    batches: Tuple[int, ...] = (1, 2, 4, 8, 20, 40),
    seed: int = 1,
) -> BatchBandwidthResult:
    """Sweep the weight-fetch batch size for one model/config/device."""
    workload = synthetic_model_workload(model, seed=seed)
    performance = estimate_model(workload, config, mode=MODE_QUANTIZED)
    points = []
    for batch in batches:
        report = bandwidth_report(
            workload, config, device, performance.images_per_second, batch=batch
        )
        points.append(
            BatchPoint(
                batch=batch,
                required_gbs=report.required_bandwidth_gbs,
                headroom=report.bandwidth_headroom,
                compute_bound=report.compute_bound,
            )
        )
    return BatchBandwidthResult(model=model, device=device, points=tuple(points))
