"""Extension experiment: weight bit-width ablation.

The paper's introduction motivates ABM-SpConv with the observation that a
q-bit fixed-point weight takes at most 2^q values ("16 values for a 4-bit
number"), and evaluates at q=8. This experiment sweeps q and quantifies
the trade the architecture rides:

- fewer bits -> fewer distinct values per kernel -> fewer multiplies ->
  a larger accumulate/multiply intensity ratio -> a larger sharing factor
  N -> fewer DSPs for the same accumulator count (or more accumulators for
  the same DSPs);
- fewer bits -> larger quantization error on a real (scaled) CNN, measured
  as top-1 agreement and output MSE against the float reference.

Both halves are measured, not assumed: the statistics half on the
full-size calibrated VGG16 workload, the accuracy half by executing a
scaled AlexNet through the quantized ABM pipeline at each width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis.tables import render_table
from ..dse.performance import MODE_QUANTIZED, estimate_model, share_factor_from_workloads
from ..dse.resources import DEFAULT_RESOURCE_MODEL
from ..hw.config import AcceleratorConfig
from ..hw.workload import ModelWorkload
from ..nn.models import alexnet_architecture, get_architecture
from ..pipeline import QuantizedPipeline
from ..prune.schedules import deep_compression_schedule
from ..workloads.codebooks import codebook_size
from ..workloads.synthetic import synthetic_layer_workload


@dataclass(frozen=True)
class BitwidthPoint:
    """Statistics/architecture consequences of one weight width."""

    weight_bits: int
    multiply_mop: float
    min_intensity_ratio: float
    n_share: int
    dsps: int
    throughput_gops: float


@dataclass(frozen=True)
class AccuracyPoint:
    """Functional quality of one weight width on the scaled CNN."""

    weight_bits: int
    top1_agrees: bool
    output_mse: float


@dataclass(frozen=True)
class BitwidthResult:
    points: Tuple[BitwidthPoint, ...]
    accuracy: Tuple[AccuracyPoint, ...]

    def render(self) -> str:
        stats = render_table(
            ("bits", "mult MOP", "min Acc/Mult", "N", "DSPs", "GOP/s"),
            [
                (p.weight_bits, p.multiply_mop, p.min_intensity_ratio, p.n_share, p.dsps, p.throughput_gops)
                for p in self.points
            ],
            title="weight bit-width sweep (VGG16 statistics -> architecture)",
        )
        quality = render_table(
            ("bits", "top-1 agrees", "output MSE"),
            [(a.weight_bits, a.top1_agrees, a.output_mse) for a in self.accuracy],
            title="functional quality (scaled AlexNet, ABM pipeline vs float)",
        )
        return stats + "\n\n" + quality


def _workload_at_bits(model: str, weight_bits: int, seed: int) -> ModelWorkload:
    """Synthetic workload with codebooks clamped to the 2^q - 1 nonzero codes."""
    architecture = get_architecture(model)
    schedule = deep_compression_schedule(model)
    rng = np.random.default_rng(seed)
    max_codes = (1 << weight_bits) - 1  # nonzero codes of a q-bit format
    layers = []
    for spec in architecture.accelerated_specs():
        book = min(codebook_size(model, spec.name), max_codes)
        layers.append(
            synthetic_layer_workload(spec, schedule.density(spec.name), book, rng)
        )
    return ModelWorkload(name=f"{model}-{weight_bits}b", layers=tuple(layers))


def sweep_statistics(
    bits: Tuple[int, ...] = (3, 4, 5, 6, 8), seed: int = 1
) -> List[BitwidthPoint]:
    """The architecture half of the sweep, on full-size VGG16."""
    points = []
    for weight_bits in bits:
        workload = _workload_at_bits("vgg16", weight_bits, seed)
        n_share = share_factor_from_workloads(workload.layers)
        ratios = [
            layer.accumulate_ops / layer.multiply_ops
            for layer in workload.layers
            if layer.multiply_ops
        ]
        config = AcceleratorConfig(
            n_cu=3, n_knl=14, n_share=n_share, s_ec=20, d_f=1568, freq_mhz=200.0
        )
        perf = estimate_model(workload, config, mode=MODE_QUANTIZED)
        points.append(
            BitwidthPoint(
                weight_bits=weight_bits,
                multiply_mop=workload.multiply_ops / 1e6,
                min_intensity_ratio=min(ratios),
                n_share=n_share,
                dsps=DEFAULT_RESOURCE_MODEL.dsps(config),
                throughput_gops=perf.throughput_gops,
            )
        )
    return points


def sweep_accuracy(
    bits: Tuple[int, ...] = (3, 4, 5, 6, 8), seed: int = 1
) -> List[AccuracyPoint]:
    """The functional half: execute a scaled AlexNet at each width."""
    network_factory = alexnet_architecture()
    rng = np.random.default_rng(seed)
    points = []
    for weight_bits in bits:
        network = network_factory.build(scale=0.1, spatial_scale=0.35, seed=seed)
        image = rng.normal(0.0, 1.0, size=network.input_shape.as_tuple())
        pipeline = QuantizedPipeline(network, weight_bits=weight_bits)
        pipeline.prune(deep_compression_schedule("alexnet").densities)
        pipeline.calibrate(image)
        pipeline.quantize()
        quantized = pipeline.run(image).output
        reference = pipeline.run_float(image)
        points.append(
            AccuracyPoint(
                weight_bits=weight_bits,
                top1_agrees=int(np.argmax(quantized)) == int(np.argmax(reference)),
                output_mse=float(np.mean((quantized - reference) ** 2)),
            )
        )
    return points


def run(seed: int = 1) -> BitwidthResult:
    """Run both halves of the bit-width ablation."""
    return BitwidthResult(
        points=tuple(sweep_statistics(seed=seed)),
        accuracy=tuple(sweep_accuracy(seed=seed)),
    )
