"""Extension experiment: pruning density vs throughput — the crossover.

ABM-SpConv's advantage is proportional to sparsity: accumulates scale
with the surviving weights, so the paper's 1.55x win over FDConv [3]
rests on Deep Compression's ~3x MAC reduction. This sweep varies a
*uniform* density across VGG16 and simulates the accelerator at the
paper's configuration, locating the crossover density beyond which the
fixed FDConv baseline (662.3 GOP/s on the same device) would win — the
regime boundary a deployer of moderately-prunable models needs to know.

The distinct-value side also saturates with density (a denser kernel
cannot exceed its codebook), so the sharing factor N stays valid across
the sweep; the experiment reports the multiply-bound layer count as a
check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.ascii_plots import line_plot
from ..analysis.tables import render_table
from ..baselines.published import get_baseline
from ..hw.accelerator import AcceleratorSimulator
from ..hw.config import PAPER_CONFIG_VGG16, AcceleratorConfig
from ..hw.device import STRATIX_V_GXA7
from ..nn.models import get_architecture
from ..prune.schedules import uniform_schedule
from ..workloads.synthetic import synthetic_model_workload


@dataclass(frozen=True)
class DensityPoint:
    """Simulated outcome at one uniform density."""

    density: float
    throughput_gops: float
    mac_reduction: float
    acc_to_mult_ratio: float

    def beats(self, baseline_gops: float) -> bool:
        return self.throughput_gops > baseline_gops


@dataclass(frozen=True)
class DensitySweepResult:
    model: str
    points: Tuple[DensityPoint, ...]
    baseline_gops: float
    baseline_label: str

    @property
    def crossover_density(self) -> Optional[float]:
        """Largest swept density at which ABM still beats the baseline."""
        winning = [p.density for p in self.points if p.beats(self.baseline_gops)]
        return max(winning) if winning else None

    def render(self) -> str:
        rows = [
            (
                p.density,
                p.throughput_gops,
                f"{p.mac_reduction:.2f}x",
                p.acc_to_mult_ratio,
                p.beats(self.baseline_gops),
            )
            for p in self.points
        ]
        table = render_table(
            ("density", "GOP/s", "MAC reduction", "Acc/Mult", f"beats {self.baseline_label}"),
            rows,
            title=f"uniform-density sweep ({self.model}, paper config)",
        )
        curve = line_plot(
            [p.density for p in self.points],
            [p.throughput_gops for p in self.points],
            title=f"throughput vs density (baseline {self.baseline_gops:.0f} GOP/s)",
            mark_x=self.crossover_density,
        )
        return table + "\n\n" + curve


def run(
    seed: int = 1,
    densities: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0),
    config: AcceleratorConfig = PAPER_CONFIG_VGG16,
) -> DensitySweepResult:
    """Sweep a uniform density across VGG16 and simulate each point."""
    architecture = get_architecture("vgg16")
    names = [spec.name for spec in architecture.accelerated_specs()]
    baseline = get_baseline("zeng-vgg16")
    points = []
    for density in densities:
        workload = synthetic_model_workload(
            "vgg16", seed=seed, schedule=uniform_schedule(names, density)
        )
        simulation = AcceleratorSimulator(config, STRATIX_V_GXA7).simulate(workload)
        reduction = workload.dense_ops / (2.0 * workload.accumulate_ops)
        ratio = workload.accumulate_ops / max(workload.multiply_ops, 1)
        points.append(
            DensityPoint(
                density=density,
                throughput_gops=simulation.throughput_gops,
                mac_reduction=reduction,
                acc_to_mult_ratio=ratio,
            )
        )
    return DensitySweepResult(
        model="vgg16",
        points=tuple(points),
        baseline_gops=baseline.throughput_gops,
        baseline_label="FDConv [3]",
    )
