"""Experiment: CU utilization / execution efficiency (Sections 6-7).

The paper credits the semi-synchronous CU architecture with solving the
workload-imbalance problem and reports execution efficiencies of 87%
(VGG16) and 81% (AlexNet), against 64.5% for the lockstep design of [2].

Efficiency here follows the paper's basis: achieved throughput over the
configuration's own computational roof ``2 * R_mac * N_acc * Freq`` (the
roof counts original ops, so the pruning reduction R_mac enters). The
simulator additionally reports scheduler-level CU occupancy and
within-task engine occupancy, which decompose where the loss comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple

from ..analysis.compare import Comparison
from ..analysis.tables import render_table
from ..hw.accelerator import AcceleratorSimulator, ModelSimResult
from ..hw.config import PAPER_CONFIG_ALEXNET, PAPER_CONFIG_VGG16
from ..hw.device import STRATIX_V_GXA7
from ..hw.scheduler import POLICY_BALANCED, POLICY_NATURAL
from ..workloads.paper_targets import BASELINE_LI_EFFICIENCY, CU_EFFICIENCY
from ..workloads.synthetic import synthetic_model_workload


@dataclass(frozen=True)
class UtilizationRow:
    """Efficiency figures for one model."""

    model: str
    simulation: ModelSimResult
    mac_reduction: float

    @property
    def roof_gops(self) -> float:
        """2 * R_mac * N_acc * Freq on the original-op basis."""
        config = self.simulation.config
        return (
            2.0
            * self.mac_reduction
            * config.total_accumulators
            * config.freq_mhz
            / 1e3
        )

    @property
    def execution_efficiency(self) -> float:
        return self.simulation.throughput_gops / self.roof_gops

    @property
    def cu_utilization(self) -> float:
        return self.simulation.cu_utilization

    @property
    def engine_utilization(self) -> float:
        return self.simulation.engine_utilization


@dataclass(frozen=True)
class UtilizationResult:
    rows: Mapping[str, UtilizationRow]
    comparisons: Tuple[Comparison, ...]

    def render(self) -> str:
        table = []
        for model, row in self.rows.items():
            table.append(
                (
                    model,
                    row.simulation.throughput_gops,
                    row.roof_gops,
                    f"{row.execution_efficiency:.1%}",
                    f"{row.cu_utilization:.1%}",
                    f"{row.engine_utilization:.1%}",
                    f"{CU_EFFICIENCY[model]:.0%}",
                )
            )
        table.append(
            ("[2] lockstep", None, None, f"{BASELINE_LI_EFFICIENCY:.1%}", None, None, "64.5%")
        )
        return render_table(
            ("model", "GOP/s", "roof GOP/s", "efficiency", "CU occ", "engine occ", "paper"),
            table,
            title="Execution efficiency (semi-synchronous CUs)",
        )


def run(seed: int = 1, policy: str = POLICY_BALANCED) -> UtilizationResult:
    """Measure execution efficiency for both models."""
    rows = {}
    comparisons: List[Comparison] = []
    for model, config in (
        ("vgg16", PAPER_CONFIG_VGG16),
        ("alexnet", PAPER_CONFIG_ALEXNET),
    ):
        workload = synthetic_model_workload(model, seed=seed)
        simulation = AcceleratorSimulator(config, STRATIX_V_GXA7, policy=policy).simulate(
            workload
        )
        mac_reduction = workload.dense_ops / (2.0 * workload.accumulate_ops)
        row = UtilizationRow(
            model=model, simulation=simulation, mac_reduction=mac_reduction
        )
        rows[model] = row
        comparisons.append(
            Comparison(
                "utilization",
                f"{model}.execution_efficiency",
                CU_EFFICIENCY[model],
                row.execution_efficiency,
            )
        )
        comparisons.append(
            Comparison(
                "utilization",
                f"{model}.beats_lockstep_baseline",
                1.0,
                float(row.execution_efficiency > BASELINE_LI_EFFICIENCY),
            )
        )
    return UtilizationResult(rows=rows, comparisons=tuple(comparisons))


def scheduling_ablation(seed: int = 1) -> Mapping[str, Mapping[str, float]]:
    """Efficiency with and without balanced kernel grouping (design ablation)."""
    results: dict = {}
    for policy in (POLICY_NATURAL, POLICY_BALANCED):
        outcome = run(seed=seed, policy=policy)
        results[policy] = {
            model: row.execution_efficiency for model, row in outcome.rows.items()
        }
    return results
