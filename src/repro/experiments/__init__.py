"""One module per paper artifact; each exposes ``run() -> <Result>``.

- :mod:`~repro.experiments.table1` — #OP by convolution scheme (Table 1)
- :mod:`~repro.experiments.table2` — state-of-the-art comparison (Table 2)
- :mod:`~repro.experiments.table3` — design parameters & weight sizes (Table 3)
- :mod:`~repro.experiments.fig1` — roofline design spaces (Figure 1)
- :mod:`~repro.experiments.fig6` — optimal N_knl sweep (Figure 6)
- :mod:`~repro.experiments.fig7` — S_ec x N_cu exploration (Figure 7)
- :mod:`~repro.experiments.utilization` — CU execution efficiency (Sec. 6-7)
"""

from . import (
    batch_bandwidth,
    bitwidth,
    density_sweep,
    fig1,
    fig6,
    fig7,
    table1,
    table2,
    table3,
    utilization,
)

__all__ = [
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig6",
    "fig7",
    "utilization",
    "bitwidth",
    "batch_bandwidth",
    "density_sweep",
]
