"""Experiment: paper Figure 1 — roofline comparison of the design spaces.

Regenerates the three computational roofs on the Stratix-V GXA7 at 200 MHz
(SDConv 204.8, FDConv 675, ABM-SpConv 1046 GOP/s) and places the achieved
designs — [3]'s 669.1 GOP/s and the proposed accelerator's simulated
throughput — under them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.compare import Comparison
from ..baselines.published import get_baseline
from ..core.schemes import ConvScheme
from ..dse.roofline import DesignPoint, RooflineModel
from ..hw.accelerator import AcceleratorSimulator
from ..hw.config import PAPER_CONFIG_VGG16
from ..hw.device import STRATIX_V_GXA7
from ..workloads.paper_targets import FIG1_ROOFS
from ..workloads.synthetic import synthetic_model_workload


@dataclass(frozen=True)
class Fig1Result:
    roofline: RooflineModel
    points: Tuple[DesignPoint, ...]
    comparisons: Tuple[Comparison, ...]

    def render(self) -> str:
        return self.roofline.render(self.points)


def run(seed: int = 1) -> Fig1Result:
    """Regenerate Figure 1's roofs and design points."""
    roofline = RooflineModel(STRATIX_V_GXA7, freq_mhz=200.0)
    roofs = {roof.scheme: roof for roof in roofline.roofs()}
    workload = synthetic_model_workload("vgg16", seed=seed)
    simulated = AcceleratorSimulator(PAPER_CONFIG_VGG16, STRATIX_V_GXA7).simulate(
        workload
    )
    points = (
        DesignPoint("Zeng FDConv [3] (VGG16)", ConvScheme.FDCONV, get_baseline("zeng-vgg16").throughput_gops),
        DesignPoint("ABM-SpConv (simulated)", ConvScheme.ABM_SPCONV, simulated.throughput_gops),
    )
    comparisons: List[Comparison] = [
        Comparison("fig1", "sdconv_roof_gops", FIG1_ROOFS["sdconv"], roofs[ConvScheme.SDCONV].gops),
        Comparison("fig1", "fdconv_roof_gops", FIG1_ROOFS["fdconv"], roofs[ConvScheme.FDCONV].gops),
        Comparison("fig1", "abm_roof_gops", FIG1_ROOFS["abm"], roofs[ConvScheme.ABM_SPCONV].gops),
    ]
    return Fig1Result(roofline=roofline, points=points, comparisons=tuple(comparisons))
