"""Resource Requirement Model (paper Section 5.1).

The paper estimates logic, DSP and on-chip memory from the design
parameters through platform constants C0..C7, obtained by characterizing
the target FPGA with a few fast compiles. The only equation that survives
in the available text is the memory one,

    C_mem = C5 + (C6 * S_ec + C7 * N_knl) * N_cu,

whose structure (a fixed term plus per-CU terms linear in the vector width
and the engine count) we extend to logic and DSPs:

    C_logic = C0 + (C1 * N_knl * S_ec + C2 * N_knl) * N_cu
    C_dsp   = C3 + C4 * ceil(N_knl * S_ec / N) * N_cu

- logic scales with the accumulator lanes (C1 per lane: adder, mux,
  FIFO slice) plus per-engine control (C2);
- DSPs are the shared multipliers plus a fixed memory-interface pool (C3).

The default constants are calibrated so the paper's final configuration
reproduces Table 2's resource columns on the Stratix-V GXA7 (170K/160K
ALMs, 243/240 DSPs, 2460/2435 M20Ks); :mod:`repro.dse.calibration` shows
how they are recovered from characterization samples, as the flow of
Figure 5 prescribes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice


@dataclass(frozen=True)
class ResourceEstimate:
    """Predicted resource usage of one configuration."""

    alms: int
    dsps: int
    m20ks: int

    def utilization(self, device: FPGADevice) -> "ResourceUtilization":
        return ResourceUtilization(
            logic=self.alms / device.alms,
            dsp=self.dsps / device.dsps,
            memory=self.m20ks / device.m20k_blocks,
        )


@dataclass(frozen=True)
class ResourceUtilization:
    """Fractional utilization of each resource class."""

    logic: float
    dsp: float
    memory: float

    def fits(self, logic_limit: float = 1.0) -> bool:
        """Feasibility under a logic constraint (DSP/memory are hard)."""
        return self.logic <= logic_limit and self.dsp <= 1.0 and self.memory <= 1.0

    @property
    def binding(self) -> str:
        """Which resource is closest to its limit."""
        pairs = (("logic", self.logic), ("dsp", self.dsp), ("memory", self.memory))
        return max(pairs, key=lambda item: item[1])[0]


@dataclass(frozen=True)
class ResourceModel:
    """The C0..C7 platform constants and the estimation equations."""

    c0: float = 20_000.0  # base logic: fetch/store, scheduler, host interface
    c1: float = 160.0  # ALMs per accumulator lane (adder+mux+FIFO slice)
    c2: float = 250.0  # ALMs per kernel engine (loop counter, decode)
    c3: float = 30.0  # DSPs for the memory interface / address generators
    c4: float = 1.0  # DSPs per shared multiplier
    c5: float = 300.0  # M20Ks: interface FIFOs and the host-visible cache
    c6: float = 25.0  # M20Ks per vector lane per CU (FT-Buffer banks)
    c7: float = 15.0  # M20Ks per kernel engine per CU (WT/Q/partial FIFOs)

    def logic(self, config: AcceleratorConfig) -> int:
        per_cu = self.c1 * config.n_knl * config.s_ec + self.c2 * config.n_knl
        return int(round(self.c0 + per_cu * config.n_cu))

    def dsps(self, config: AcceleratorConfig) -> int:
        return int(round(self.c3 + self.c4 * config.multipliers_per_cu * config.n_cu))

    def m20ks(self, config: AcceleratorConfig) -> int:
        per_cu = self.c6 * config.s_ec + self.c7 * config.n_knl
        return int(round(self.c5 + per_cu * config.n_cu))

    def estimate(self, config: AcceleratorConfig) -> ResourceEstimate:
        return ResourceEstimate(
            alms=self.logic(config),
            dsps=self.dsps(config),
            m20ks=self.m20ks(config),
        )

    def estimate_arrays(
        self,
        n_knl: np.ndarray,
        s_ec: np.ndarray,
        n_cu: np.ndarray,
        n_share: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized (alms, dsps, m20ks) over broadcastable parameter arrays.

        Replicates :meth:`logic` / :meth:`dsps` / :meth:`m20ks` operation for
        operation (same association order, same float division before the
        ceiling, same round-half-even) so every element is bit-identical to
        the scalar estimate of the corresponding configuration. This is the
        resource half of the compiled DSE grid (:mod:`repro.dse.compiled`).
        """
        n_knl = np.asarray(n_knl, dtype=np.int64)
        s_ec = np.asarray(s_ec, dtype=np.int64)
        n_cu = np.asarray(n_cu, dtype=np.int64)
        per_cu_logic = (self.c1 * n_knl) * s_ec + self.c2 * n_knl
        alms = np.rint(self.c0 + per_cu_logic * n_cu).astype(np.int64)
        # math.ceil(int / int) in the scalar path is a *float* division; the
        # true_divide below reproduces it exactly.
        mult_per_cu = np.ceil((n_knl * s_ec) / n_share)
        dsps = np.rint(self.c3 + (self.c4 * mult_per_cu) * n_cu).astype(np.int64)
        per_cu_mem = self.c6 * s_ec + self.c7 * n_knl
        m20ks = np.rint(self.c5 + per_cu_mem * n_cu).astype(np.int64)
        return alms, dsps, m20ks

    def max_accumulators(self, device: FPGADevice, logic_limit: float = 0.8) -> int:
        """Accumulator lanes an *implementable* design can host.

        Uses the full per-lane datapath cost C1 (adder + mux + FIFO slice),
        i.e. the budget a real compile would see. Figure 1's design-space
        roof instead uses the bare-accumulator cost
        (``device.alms_per_accumulator``), since the roof bounds what any
        accumulator-centric architecture could reach — see
        :mod:`repro.dse.roofline`.
        """
        budget = device.alms * logic_limit - self.c0
        if budget <= 0:
            return 0
        return int(budget // self.c1)


#: Constants calibrated against paper Table 2 (see module docstring).
DEFAULT_RESOURCE_MODEL = ResourceModel()


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= value (buffer depths are powers of two)."""
    if value < 1:
        return 1
    return 1 << math.ceil(math.log2(value))
