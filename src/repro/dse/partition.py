"""Partition search: co-optimizing cuts, devices and shard configs.

The paper's flow picks one configuration for one device. This module
searches *pipelined deployments* over a heterogeneous device catalog
(HPIPE's regime, see PAPERS.md): contiguous layer cuts split the model
into shards, every shard gets its own device and its own best
accelerator configuration (buffer depths sized to *its* layers only —
a conv-only shard needs a fraction of the whole model's D_f, which frees
M20K blocks for more compute units), and inter-shard activation traffic
is priced through a :class:`repro.shard.link.LinkModel`.

Pipeline timing is the deterministic tandem-line law pinned by
:mod:`repro.shard.pipeline_sim`: steady-state throughput is the
bottleneck stage's (or link's) rate, latency is the fill sum. The
replication baseline the search must beat runs the whole model solo on
every catalog device — a device that cannot fit the whole model
contributes zero there, but can still carry a light shard in a pipeline,
which is exactly where partitioned deployments win.

Two search modes share one memoized evaluator (telemetry cache family
``dse.partition``):

- :func:`search_partitions` — exhaustive over contiguous cuts and
  injective device assignments, exact for small shard counts;
- :func:`partition_study` — the joint (cuts x assignment) space wired
  into the adaptive TPE/study machinery of :mod:`repro.dse.study`, for
  catalogs and depths where exhaustion stops being free.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.workload import ModelWorkload
from ..shard.link import DEFAULT_LINK, LinkModel
from ..shard.plan import ModelPartition, ShardPlan, ShardSpec
from ..telemetry.caches import CacheStats, register_cache
from .adaptive import make_sampler
from .compiled import compile_workload
from .performance import share_factor_from_workloads
from .resources import DEFAULT_RESOURCE_MODEL, ResourceModel
from .study import (
    ORIGIN_SAMPLED,
    Objective,
    SearchSpace,
    Study,
    StudySpec,
    TrialRecord,
)

__all__ = [
    "PARTITION_CACHE_CAPACITY",
    "PartitionSearchResult",
    "PartitionStudyResult",
    "ReplicationBaseline",
    "clear_partition_cache",
    "partition_cache_stats",
    "partition_space",
    "partition_study",
    "replication_baseline",
    "search_partitions",
]

#: Default exploration grid per shard — the paper's Figure 7 axes.
_S_EC_RANGE = tuple(range(4, 33, 2))
_N_CU_RANGE = tuple(range(1, 7))


# ---------------------------------------------------------------------------
# Memoized per-(layer slice, device) shard evaluation.
# ---------------------------------------------------------------------------

#: Memoized shard evaluations. Every cut set re-uses O(L^2) contiguous
#: slices, so the memo turns the cut x assignment product into one grid
#: evaluation per (slice, device).
PARTITION_CACHE_CAPACITY = 4096

_partition_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_partition_lock = threading.Lock()
_partition_hits = 0
_partition_misses = 0
_partition_evictions = 0


def clear_partition_cache() -> None:
    """Drop every memoized shard evaluation."""
    global _partition_hits, _partition_misses, _partition_evictions
    with _partition_lock:
        _partition_cache.clear()
        _partition_hits = 0
        _partition_misses = 0
        _partition_evictions = 0


def partition_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the shard-evaluation memo."""
    with _partition_lock:
        return CacheStats(
            hits=_partition_hits,
            misses=_partition_misses,
            evictions=_partition_evictions,
            size=len(_partition_cache),
            capacity=PARTITION_CACHE_CAPACITY,
            name="dse.partition",
        )


register_cache("dse.partition", partition_cache_stats)


@dataclass(frozen=True)
class _ShardEval:
    """Best feasible configuration of one layer slice on one device."""

    config: AcceleratorConfig
    seconds_per_image: float
    throughput_gops: float


def _best_shard_config(
    workload: ModelWorkload,
    start: int,
    end: int,
    device: FPGADevice,
    resources: ResourceModel,
    n_knl: int,
    freq_mhz: float,
    logic_limit: float,
) -> Optional[_ShardEval]:
    """Best feasible config for layers ``[start, end)`` on ``device``.

    ``None`` when no grid point fits the device — the slice (or whole
    model, for the replication baseline) is infeasible there. Memoized;
    entries pin the workload so its ``id`` cannot be recycled while live.
    """
    global _partition_hits, _partition_misses, _partition_evictions
    key = (
        id(workload),
        start,
        end,
        device.name,
        n_knl,
        freq_mhz,
        logic_limit,
        id(resources),
    )
    with _partition_lock:
        hit = _partition_cache.get(key)
        if hit is not None:
            _partition_cache.move_to_end(key)
            _partition_hits += 1
            return hit[2]
        _partition_misses += 1
    layers = workload.layers[start:end]
    shard = ModelWorkload(
        name=f"{workload.name}[{start}:{end}]", layers=layers
    )
    n_share = share_factor_from_workloads(layers)
    evaluation = compile_workload(shard, n_share).evaluate_grid(
        resources,
        device=device,
        n_knl_values=(n_knl,),
        s_ec_values=_S_EC_RANGE,
        n_cu_values=_N_CU_RANGE,
        freq_mhz=freq_mhz,
        logic_limit=logic_limit,
    )
    result: Optional[_ShardEval] = None
    if evaluation.feasible.any():
        cycles = np.where(evaluation.feasible, evaluation.cycles_per_image, np.inf)
        idx = np.unravel_index(int(np.argmin(cycles)), cycles.shape)
        result = _ShardEval(
            config=evaluation.config_at(*idx),
            seconds_per_image=float(cycles[idx]) / (freq_mhz * 1e6),
            throughput_gops=float(evaluation.throughput_gops[idx]),
        )
    with _partition_lock:
        _partition_cache[key] = (workload, resources, result)
        while len(_partition_cache) > PARTITION_CACHE_CAPACITY:
            _partition_cache.popitem(last=False)
            _partition_evictions += 1
    return result


# ---------------------------------------------------------------------------
# Replication baseline.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicationBaseline:
    """The whole catalog running whole-model replicas (no pipelining).

    Each device serves complete requests with its own best whole-model
    configuration; devices that cannot fit the whole model contribute
    zero — they idle, which is the waste pipelining recovers.
    """

    model: str
    per_device_ips: Mapping[str, float]

    @property
    def total_ips(self) -> float:
        return sum(self.per_device_ips.values())

    @property
    def feasible_devices(self) -> Tuple[str, ...]:
        return tuple(
            sorted(n for n, ips in self.per_device_ips.items() if ips > 0)
        )


def replication_baseline(
    workload: ModelWorkload,
    devices: Sequence[FPGADevice],
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    n_knl: int = 14,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
) -> ReplicationBaseline:
    """Aggregate throughput of whole-model replicas across the catalog."""
    if not devices:
        raise ValueError("need at least one device")
    per_device: Dict[str, float] = {}
    for device in devices:
        best = _best_shard_config(
            workload, 0, len(workload.layers), device, resources,
            n_knl, freq_mhz, logic_limit,
        )
        per_device[device.name] = (
            1.0 / best.seconds_per_image if best is not None else 0.0
        )
    return ReplicationBaseline(model=workload.name, per_device_ips=per_device)


# ---------------------------------------------------------------------------
# Exhaustive search.
# ---------------------------------------------------------------------------


def _plan_for(
    workload: ModelWorkload,
    cuts: Tuple[int, ...],
    assignment: Sequence[FPGADevice],
    resources: ResourceModel,
    n_knl: int,
    freq_mhz: float,
    logic_limit: float,
    link: LinkModel,
) -> Optional[ShardPlan]:
    """Price one (cuts, device assignment) point; None when infeasible."""
    partition = ModelPartition(workload=workload, cuts=cuts)
    bounds = partition.boundaries
    shards: List[ShardSpec] = []
    for i, device in enumerate(assignment):
        best = _best_shard_config(
            workload, bounds[i], bounds[i + 1], device, resources,
            n_knl, freq_mhz, logic_limit,
        )
        if best is None:
            return None
        slice_layers = workload.layers[bounds[i] : bounds[i + 1]]
        shards.append(
            ShardSpec(
                index=i,
                layers=tuple(l.spec.name for l in slice_layers),
                device=device,
                config=best.config,
                seconds_per_image=best.seconds_per_image,
                dense_ops_per_image=sum(
                    l.spec.dense_ops for l in slice_layers
                ),
            )
        )
    transfers = tuple(
        link.transfer(elements) for elements in partition.cut_elements()
    )
    return ShardPlan(
        model=workload.name,
        shards=tuple(shards),
        transfers=transfers,
        dense_ops_per_image=workload.dense_ops,
    )


def _rank_key(plan: ShardPlan) -> Tuple[float, float, int]:
    """Deterministic ranking: rate first, then fill, then fewer shards."""
    return (-plan.throughput_ips, plan.fill_latency_s, plan.n_shards)


@dataclass(frozen=True)
class PartitionSearchResult:
    """Outcome of one partition search over a device catalog."""

    model: str
    devices: Tuple[FPGADevice, ...]
    link: LinkModel
    best: ShardPlan
    candidates: Tuple[ShardPlan, ...]
    replication: ReplicationBaseline
    evaluated: int
    space_size: int
    sampler: str = "exhaustive"
    seed: Optional[int] = None

    @property
    def speedup_vs_replication(self) -> float:
        """Pipelined best over the replicated catalog (images/s ratio)."""
        total = self.replication.total_ips
        return self.best.throughput_ips / total if total > 0 else float("inf")

    def render(self) -> str:
        lines = [
            f"partition search for {self.model} over "
            f"{', '.join(d.name for d in self.devices)} "
            f"({self.evaluated}/{self.space_size} points, {self.sampler})",
            f"best: {self.best.describe()}",
            f"replication baseline: {self.replication.total_ips:.1f} img/s "
            f"({', '.join(self.replication.feasible_devices) or 'no feasible device'})",
            f"pipelined vs replicated: {self.speedup_vs_replication:.2f}x",
        ]
        for plan in self.candidates[1:4]:
            lines.append(f"  alt: {plan.describe()}")
        return "\n".join(lines)


def search_partitions(
    workload: ModelWorkload,
    devices: Sequence[FPGADevice],
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    max_shards: Optional[int] = None,
    n_knl: int = 14,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    link: LinkModel = DEFAULT_LINK,
    candidates: int = 5,
    seed: Optional[int] = None,
) -> PartitionSearchResult:
    """Exhaustive search over contiguous cuts and device assignments.

    Every shard count up to ``max_shards`` (default: the catalog size,
    capped at 3), every strictly increasing cut set, and every injective
    device assignment is priced; the per-slice evaluations are memoized,
    so the combinatorial product collapses to one compiled grid per
    (slice, device). Ranking is bottleneck rate, then fill latency.

    ``seed`` is pure provenance (the exhaustive search has no internal
    randomness), mirroring :class:`repro.dse.explorer.ExplorationResult`.
    """
    if not devices:
        raise ValueError("need at least one device")
    names = [d.name for d in devices]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate devices in catalog: {names}")
    n_layers = len(workload.layers)
    if n_layers < 1:
        raise ValueError("workload has no layers")
    if max_shards is None:
        max_shards = min(len(devices), 3)
    max_shards = min(max_shards, len(devices), n_layers)
    if max_shards < 1:
        raise ValueError("max_shards must be >= 1")

    plans: List[ShardPlan] = []
    evaluated = 0
    space_size = 0
    for k in range(1, max_shards + 1):
        for cuts in combinations(range(1, n_layers), k - 1):
            for assignment in permutations(devices, k):
                space_size += 1
                plan = _plan_for(
                    workload, cuts, assignment, resources,
                    n_knl, freq_mhz, logic_limit, link,
                )
                evaluated += 1
                if plan is not None:
                    plans.append(plan)
    if not plans:
        raise RuntimeError(
            f"no feasible deployment of {workload.name!r} on "
            f"{', '.join(names)}"
        )
    plans.sort(key=_rank_key)
    baseline = replication_baseline(
        workload, devices, resources, n_knl, freq_mhz, logic_limit
    )
    return PartitionSearchResult(
        model=workload.name,
        devices=tuple(devices),
        link=link,
        best=plans[0],
        candidates=tuple(plans[:candidates]),
        replication=baseline,
        evaluated=evaluated,
        space_size=space_size,
        sampler="exhaustive",
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Adaptive study over the joint (cuts x assignment) space.
# ---------------------------------------------------------------------------


def partition_space(n_layers: int, n_devices: int, n_shards: int) -> SearchSpace:
    """The joint categorical space of a fixed-shard-count partition study.

    Axes ``cut1..cut{K-1}`` hold layer indices; ``device0..device{K-1}``
    hold catalog indices. Orderings that are not strictly increasing (or
    assignments that reuse a board) are scored infeasible rather than
    excluded, keeping the space a plain product the samplers understand.
    """
    if n_shards < 2:
        raise ValueError("a partition study needs at least 2 shards")
    if n_shards > min(n_layers, n_devices):
        raise ValueError(
            f"{n_shards} shards do not fit {n_layers} layers on "
            f"{n_devices} devices"
        )
    axes: List[Tuple[str, Tuple[float, ...]]] = []
    cut_values = tuple(float(c) for c in range(1, n_layers))
    for i in range(1, n_shards):
        axes.append((f"cut{i}", cut_values))
    device_values = tuple(float(d) for d in range(n_devices))
    for i in range(n_shards):
        axes.append((f"device{i}", device_values))
    return SearchSpace(axes=tuple(axes))


@dataclass(frozen=True)
class PartitionStudyResult:
    """Outcome of a sampled partition study."""

    study: Study
    best: Optional[ShardPlan]
    replication: ReplicationBaseline
    sampled_trials: int
    space_size: int


def partition_study(
    workload: ModelWorkload,
    devices: Sequence[FPGADevice],
    n_shards: int = 2,
    trials: int = 64,
    sampler: str = "tpe",
    seed: int = 1,
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    n_knl: int = 14,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    link: LinkModel = DEFAULT_LINK,
    batch: int = 8,
    path: Optional[str] = None,
    resume: bool = False,
) -> PartitionStudyResult:
    """Sample the joint (cuts x assignment) space with the study machinery.

    Objectives are pipeline throughput (primary, maximized) and fill
    latency (minimized); the Pareto front and every trial persist through
    the same append-only JSONL format as :func:`repro.dse.adaptive.run_study`,
    with the same ``default_rng([seed, round])`` determinism, so studies
    can be killed and resumed byte-identically.
    """
    n_layers = len(workload.layers)
    space = partition_space(n_layers, len(devices), n_shards)
    objectives = (
        Objective("throughput_ips", "max"),
        Objective("fill_latency_s", "min"),
    )
    spec = StudySpec(
        name=f"partition:{workload.name}",
        models=(workload.name,),
        device="+".join(d.name for d in devices),
        sampler=sampler,
        seed=seed,
        objectives=objectives,
        space=space,
        batch=batch,
    )
    if resume and path is not None:
        study = Study.load(path, spec=spec)
    else:
        study = Study.create(spec, path)
    sampler_obj = make_sampler(sampler)
    seen: Set[Tuple[float, ...]] = {space.key(t.params) for t in study.trials}

    def _evaluate(params: Mapping[str, float]) -> Tuple[Dict[str, float], bool]:
        cuts = tuple(int(params[f"cut{i}"]) for i in range(1, n_shards))
        picks = tuple(int(params[f"device{i}"]) for i in range(n_shards))
        ordered = all(b > a for a, b in zip(cuts, cuts[1:]))
        if not ordered or len(set(picks)) != len(picks):
            return {}, False
        plan = _plan_for(
            workload, cuts, [devices[p] for p in picks], resources,
            n_knl, freq_mhz, logic_limit, link,
        )
        if plan is None:
            return {}, False
        return (
            {
                "throughput_ips": plan.throughput_ips,
                "fill_latency_s": plan.fill_latency_s,
            },
            True,
        )

    round_index = study.rounds_complete
    while study.sampled_count() < trials:
        rng = np.random.default_rng([seed, round_index])
        count = min(batch, trials - study.sampled_count())
        proposals = sampler_obj.propose(
            space, study.trials, spec.primary, rng, count, seen
        )
        if not proposals:
            break  # space exhausted
        for params in proposals:
            seen.add(space.key(params))
            values, feasible = _evaluate(params)
            study.append_trial(
                TrialRecord(
                    number=len(study.trials),
                    round=round_index,
                    origin=ORIGIN_SAMPLED,
                    params=dict(params),
                    values=values,
                    feasible=feasible,
                )
            )
        study.end_round(round_index, len(seen))
        round_index += 1

    best_trial = study.best("throughput_ips")
    best_plan: Optional[ShardPlan] = None
    if best_trial is not None:
        cuts = tuple(
            int(best_trial.params[f"cut{i}"]) for i in range(1, n_shards)
        )
        picks = [
            devices[int(best_trial.params[f"device{i}"])]
            for i in range(n_shards)
        ]
        best_plan = _plan_for(
            workload, cuts, picks, resources, n_knl, freq_mhz, logic_limit, link
        )
    baseline = replication_baseline(
        workload, devices, resources, n_knl, freq_mhz, logic_limit
    )
    return PartitionStudyResult(
        study=study,
        best=best_plan,
        replication=baseline,
        sampled_trials=study.sampled_count(),
        space_size=space.size,
    )
