"""Roofline model of the accelerator design spaces (paper Figure 1).

Figure 1 plots CNN inference throughput (GOP/s, counted on the original
dense op count) against the throughput-to-communication ratio, with three
computational roofs on the Stratix-V GXA7 at 200 MHz:

- SDConv (MAC arrays):     2 * N_mac * Freq            = 204.8 GOP/s
- FDConv / SpConv:         2 * R_mac * N_mac * Freq    =   675 GOP/s (R=3.3)
- ABM-SpConv (this work):  2 * N_acc * Freq            =  1046 GOP/s

where the ABM roof's N_acc is the accumulator population the device's
*logic* can host (~2,600 slices at ~72 ALMs each on the GXA7) — the roof is
bound by ALMs, not DSPs, which is the paper's central design-space
transformation. The bandwidth roof is ``BW * intensity``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.schemes import (
    ComputationalRoof,
    ConvScheme,
    abm_roof,
    reduced_mac_roof,
    sdconv_roof,
)
from ..hw.device import FPGADevice


@dataclass(frozen=True)
class DesignPoint:
    """An achieved design plotted under the roofs."""

    label: str
    scheme: ConvScheme
    gops: float
    intensity_gops_per_byte: Optional[float] = None


@dataclass(frozen=True)
class RooflineModel:
    """Roofs and bandwidth limit for one device/frequency pair."""

    device: FPGADevice
    freq_mhz: float
    fdconv_reduction: float = 3.3

    def roofs(self) -> Tuple[ComputationalRoof, ...]:
        """The three computational roofs of Figure 1."""
        return (
            sdconv_roof(self.device.mac_count, self.freq_mhz),
            reduced_mac_roof(
                self.device.mac_count, self.freq_mhz, self.fdconv_reduction
            ),
            abm_roof(self.device.max_accumulators, self.freq_mhz),
        )

    def roof_for(self, scheme: ConvScheme) -> ComputationalRoof:
        for roof in self.roofs():
            if roof.scheme is scheme:
                return roof
        # SpConv shares the FDConv roof (same 2*R*N_mac*Freq form).
        if scheme is ConvScheme.SPCONV:
            return reduced_mac_roof(
                self.device.mac_count,
                self.freq_mhz,
                self.fdconv_reduction,
                scheme=ConvScheme.SPCONV,
            )
        raise KeyError(f"no roof for scheme {scheme}")

    def bandwidth_roof(self, intensity_gops_per_byte: float) -> float:
        """Attainable GOP/s at a given throughput-to-communication ratio."""
        if intensity_gops_per_byte <= 0:
            raise ValueError("arithmetic intensity must be positive")
        return self.device.bandwidth_gbs * intensity_gops_per_byte

    def attainable(
        self, scheme: ConvScheme, intensity_gops_per_byte: float
    ) -> float:
        """min(computational roof, bandwidth roof) — the roofline."""
        return min(
            self.roof_for(scheme).gops,
            self.bandwidth_roof(intensity_gops_per_byte),
        )

    def headroom(self, point: DesignPoint) -> float:
        """Fraction of the scheme's computational roof a design achieves."""
        return point.gops / self.roof_for(point.scheme).gops

    def render(self, points: Tuple[DesignPoint, ...] = ()) -> str:
        """ASCII rendering of the roofs and any design points."""
        lines: List[str] = [
            f"Roofline — {self.device.name} @ {self.freq_mhz:g} MHz "
            f"(BW {self.device.bandwidth_gbs:g} GB/s)"
        ]
        for roof in self.roofs():
            lines.append(
                f"  {roof.scheme.value:<12} roof {roof.gops:8.1f} GOP/s   "
                f"[{roof.formula}]"
            )
        for point in points:
            mark = f"  * {point.label:<20} {point.gops:8.1f} GOP/s "
            mark += f"({self.headroom(point):.0%} of {point.scheme.value} roof)"
            lines.append(mark)
        return "\n".join(lines)
