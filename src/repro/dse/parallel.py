"""Opt-in process parallelism for DSE sweeps.

The exploration flow evaluates hundreds of independent (config, workload)
points — the Figure 6/7 sweeps, Pareto dominance checks and joint
multi-model grids. Every point is a pure function of picklable frozen
dataclasses, so they fan out cleanly over a process pool.

Parallelism is strictly opt-in: ``workers=None`` (the default everywhere)
keeps the exact serial code path, and any ``workers`` value produces the
same results in the same order — ``ProcessPoolExecutor.map`` preserves
input ordering, and each job is deterministic.

Since the sweeps compile to whole-grid array evaluation by default
(:mod:`repro.dse.compiled`), ``workers=`` only matters on the per-point
*reference* path (``compiled=False`` on the sweeps, or
``pareto_frontier_reference``) — the compiled path is single-process
numpy and ignores the argument. It remains useful for the simulator's
parallel multi-layer runs (``repro.hw``), which still fan out through
:func:`map_jobs`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

_Job = TypeVar("_Job")
_Result = TypeVar("_Result")


def map_jobs(
    fn: Callable[[_Job], _Result],
    jobs: Sequence[_Job],
    workers: Optional[int],
) -> List[_Result]:
    """Apply ``fn`` to every job, optionally across a process pool.

    ``workers=None`` or ``workers<=1`` runs serially in-process (no pool,
    no pickling). Otherwise jobs are distributed over ``workers``
    processes; results come back in input order either way. ``fn`` must be
    a module-level function and jobs must be picklable.
    """
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers is None or workers <= 1 or len(jobs) <= 1:
        return [fn(job) for job in jobs]
    chunksize = max(1, len(jobs) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, jobs, chunksize=chunksize))
