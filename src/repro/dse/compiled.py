"""Compiled whole-grid evaluation of the analytic DSE models.

The exploration flow of paper Figure 5 exists so thousands of design
points can be scored *analytically* instead of simulated — but the
per-point evaluators (`estimate_model` in ``MODE_QUANTIZED`` plus the
scalar resource equations) defeat that by re-sorting every layer's kernel
arrays and walking every prefetch window in Python for each configuration.
This module compiles the per-layer invariants once per (workload, N) and
then scores the full ``N_knl x S_ec x N_cu`` space with array operations:

- **Engine vectors.** The quantized model's per-kernel engine cost
  ``max(nonzeros, distinct * N)`` does not depend on the grid axes, so each
  layer's vector is built and descending-sorted exactly once. Because the
  vector is sorted, the balanced grouping's per-group maximum for *any*
  ``N_knl`` is simply the first element of each chunk — ``sum(group_max)``
  for every ``N_knl`` is the strided sum ``engine[::N_knl].sum()``, no
  re-sort, no reshape, no padding.
- **Window steps.** The per-window vector-step loop has a closed form:
  a layer's prefetch grid contains at most four distinct window shapes
  (interior, right edge, bottom edge, corner), so the exact sum of
  ``ceil(rows * cols / S_ec)`` over all ``G_r x G_c`` windows is four
  integer terms built from the cached :func:`plan_layer_windows` geometry.
- **Resources.** :meth:`ResourceModel.estimate_arrays` evaluates the
  C0..C7 equations over broadcast parameter arrays, operation-for-operation
  identical to the scalar path.

Every element of the resulting grid is **float-identical** to what the
per-point reference path (`sweep_nknl_reference`, `sweep_sec_ncu_reference`,
`estimate_model`) produces for the corresponding configuration — the
differential suite in ``tests/test_dse_compiled.py`` pins this point for
point. The reference evaluators stay available for differential testing
and for callers that want process-pool parallelism (``workers=`` is only
useful on the reference path; the compiled path is array code).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.specs import LayerSpec
from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.power import EnergyModel, PowerReport, analytic_energy_per_image
from ..hw.tiling import plan_layer_windows
from ..hw.workload import ModelWorkload
from ..telemetry.caches import CacheStats, register_cache
from .performance import MODE_QUANTIZED, _MODES
from .resources import ResourceEstimate, ResourceModel, ResourceUtilization


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def steps_total_closed_form(spec: LayerSpec, d_f: int, s_ec: int) -> Tuple[int, int]:
    """Exact (vector steps, batch images) for one layer without a window loop.

    Matches the quantized reference model's per-window accumulation: the
    ``G_r x G_c`` prefetch grid has full-size interior windows and (at most)
    one ragged edge row/column, so the sum of ``ceil(rows * cols / S_ec)``
    collapses to four terms. FC layers are a single window batched over
    ``S_ec`` images.
    """
    plan = plan_layer_windows(spec, d_f, s_ec)
    r_full, c_full = plan.window_rows, plan.window_cols
    r_edge = spec.out_rows - (plan.g_r - 1) * r_full
    c_edge = spec.out_cols - (plan.g_c - 1) * c_full
    steps = (
        (plan.g_r - 1) * (plan.g_c - 1) * _ceil_div(r_full * c_full, s_ec)
        + (plan.g_r - 1) * _ceil_div(r_full * c_edge, s_ec)
        + (plan.g_c - 1) * _ceil_div(r_edge * c_full, s_ec)
        + _ceil_div(r_edge * c_edge, s_ec)
    )
    return steps, plan.batch_images


@dataclass(frozen=True)
class _CompiledLayer:
    """Grid-invariant figures of one layer for one sharing factor N."""

    spec: LayerSpec
    #: Descending-sorted per-kernel engine cost max(nonzeros, distinct * N).
    engine_desc: np.ndarray
    accumulate_ops: int
    #: multiply_ops * N — the multiplier-bound threshold of the model.
    multiply_share: int
    bound: str


@dataclass(frozen=True)
class GridEvaluation:
    """Dense evaluation of the ``N_knl x S_ec x N_cu`` design space.

    Every array is indexed ``[i_knl, i_sec, i_ncu]``. Buffer depths vary
    only along the ``S_ec`` axis (they are derived per ``size_buffers``),
    and per-layer bound labels do not vary at all (they depend only on the
    sharing factor N), exactly as in the per-point model.
    """

    n_knl_values: Tuple[int, ...]
    s_ec_values: Tuple[int, ...]
    n_cu_values: Tuple[int, ...]
    freq_mhz: float
    logic_limit: float
    #: Per-S_ec buffer sizing (``repro.dse.explorer.BufferSizing``).
    buffers: Tuple[object, ...]
    cycles_per_image: np.ndarray
    throughput_gops: np.ndarray
    alms: np.ndarray
    dsps: np.ndarray
    m20ks: np.ndarray
    #: None when no device was given (then every point is feasible).
    logic_util: Optional[np.ndarray]
    dsp_util: Optional[np.ndarray]
    mem_util: Optional[np.ndarray]
    feasible: np.ndarray
    #: Per-layer bound labels ('accumulate' / 'multiply'), grid-invariant.
    layer_bounds: Tuple[str, ...]
    n_share: int
    #: Total power and efficiency per grid point, float-identical to the
    #: per-point :func:`repro.hw.power.abm_power_analytic` report.
    power_w: np.ndarray
    gops_per_watt: np.ndarray
    #: Dynamic energy per image per ``S_ec`` column (it depends only on the
    #: (d_f, s_ec) geometry, not on the engine/CU axes).
    energy_per_image_j: Tuple[float, ...]
    dense_ops: int
    static_w: float

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.cycles_per_image.shape

    def config_at(self, i_knl: int, i_sec: int, i_ncu: int) -> AcceleratorConfig:
        """The full configuration of one grid point (with sized buffers)."""
        buffers = self.buffers[i_sec]
        return AcceleratorConfig(
            n_cu=self.n_cu_values[i_ncu],
            n_knl=self.n_knl_values[i_knl],
            n_share=self.n_share,
            s_ec=self.s_ec_values[i_sec],
            d_f=buffers.d_f,
            d_w=buffers.d_w,
            d_q=buffers.d_q,
            freq_mhz=self.freq_mhz,
        )

    def estimate_at(self, i_knl: int, i_sec: int, i_ncu: int) -> ResourceEstimate:
        idx = (i_knl, i_sec, i_ncu)
        return ResourceEstimate(
            alms=int(self.alms[idx]),
            dsps=int(self.dsps[idx]),
            m20ks=int(self.m20ks[idx]),
        )

    def utilization_at(
        self, i_knl: int, i_sec: int, i_ncu: int
    ) -> Optional[ResourceUtilization]:
        if self.logic_util is None:
            return None
        idx = (i_knl, i_sec, i_ncu)
        return ResourceUtilization(
            logic=float(self.logic_util[idx]),
            dsp=float(self.dsp_util[idx]),
            memory=float(self.mem_util[idx]),
        )

    def power_report_at(
        self, i_knl: int, i_sec: int, i_ncu: int, label: str = "abm-spconv"
    ) -> PowerReport:
        """Scalar :class:`PowerReport` of one grid point.

        ``report.total_power_w`` / ``report.gops_per_watt`` equal the
        ``power_w`` / ``gops_per_watt`` array elements exactly.
        """
        idx = (i_knl, i_sec, i_ncu)
        seconds = float(self.cycles_per_image[idx]) / (self.freq_mhz * 1e6)
        return PowerReport(
            label=label,
            energy_per_image_j=self.energy_per_image_j[i_sec],
            seconds_per_image=seconds,
            static_w=self.static_w,
            dense_ops=self.dense_ops,
        )


class CompiledWorkload:
    """Per-(workload, N) invariants for compile-once/evaluate-many DSE.

    Use :func:`compile_workload` rather than constructing directly — it
    memoizes instances per workload identity, which is what makes repeated
    sweeps (``explore``, ``explore_joint``, benchmarks) pay compilation
    once.
    """

    def __init__(self, workload: ModelWorkload, n_share: int) -> None:
        if n_share < 1:
            raise ValueError("n_share must be >= 1")
        self.workload = workload
        self.n_share = n_share
        self.dense_ops = workload.dense_ops
        layers: List[_CompiledLayer] = []
        for layer in workload.layers:
            engine = np.maximum(
                layer.nonzeros_array(), layer.distinct_array() * n_share
            )
            engine_desc = np.ascontiguousarray(np.sort(engine)[::-1])
            acc = layer.accumulate_ops
            mult = layer.multiply_ops * n_share
            layers.append(
                _CompiledLayer(
                    spec=layer.spec,
                    engine_desc=engine_desc,
                    accumulate_ops=acc,
                    multiply_share=mult,
                    bound="accumulate" if acc >= mult else "multiply",
                )
            )
        self._layers: Tuple[_CompiledLayer, ...] = tuple(layers)
        #: group-max sums per n_knl, memoized: n_knl -> (L,) float64 array.
        self._gm_cache: Dict[int, np.ndarray] = {}
        self._gm_lock = threading.Lock()

    @property
    def layer_bounds(self) -> Tuple[str, ...]:
        return tuple(layer.bound for layer in self._layers)

    def group_max_sums(self, n_knl: int) -> np.ndarray:
        """``sum(group_max)`` of every layer for one engine count.

        The balanced grouping sorts kernels by load before chunking into
        groups of ``n_knl``; on the descending-sorted engine vector each
        group's maximum is its first element, so the sum over groups is a
        strided slice sum — identical to the reference's pad/sort/reshape
        reduction, without doing any of it per design point.
        """
        with self._gm_lock:
            cached = self._gm_cache.get(n_knl)
        if cached is not None:
            return cached
        sums = np.array(
            [float(layer.engine_desc[::n_knl].sum()) for layer in self._layers],
            dtype=np.float64,
        )
        with self._gm_lock:
            self._gm_cache[n_knl] = sums
        return sums

    def evaluate_grid(
        self,
        resources: ResourceModel,
        device: Optional[FPGADevice] = None,
        *,
        n_knl_values: Sequence[int],
        s_ec_values: Sequence[int],
        n_cu_values: Sequence[int],
        freq_mhz: float = 200.0,
        logic_limit: float = 0.75,
        mode: str = MODE_QUANTIZED,
        buffers: Optional[Sequence[object]] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> GridEvaluation:
        """Score the full cartesian grid in one batch of array operations.

        Returns cycles/throughput, resource estimates, utilization, power
        and the feasibility mask for every ``(N_knl, S_ec, N_cu)``
        combination — each element float-identical to the per-point
        reference evaluators on the corresponding configuration. Layer
        cycles accumulate in layer order (matching
        ``ModelPerformance.cycles_per_image``'s sequential sum bit for
        bit).

        ``buffers`` overrides the per-``S_ec`` buffer sizing (one
        :class:`~repro.dse.explorer.BufferSizing` per ``s_ec_values``
        entry) — the adaptive joint search uses this to sample ``d_f`` /
        ``d_w`` as free axes instead of deriving them. ``energy_model``
        selects the power coefficients (default
        :class:`~repro.hw.power.EnergyModel`).
        """
        if mode not in _MODES:
            raise ValueError(f"unknown performance-model mode {mode!r}")
        from .explorer import size_buffers  # late import: explorer imports us

        n_knl = tuple(int(v) for v in n_knl_values)
        s_ec = tuple(int(v) for v in s_ec_values)
        n_cu = tuple(int(v) for v in n_cu_values)
        if buffers is None:
            buffers = tuple(size_buffers(self.workload, s) for s in s_ec)
        else:
            buffers = tuple(buffers)
            if len(buffers) != len(s_ec):
                raise ValueError(
                    f"{len(buffers)} buffer sizings for {len(s_ec)} S_ec values"
                )
        model = energy_model if energy_model is not None else EnergyModel()
        shape = (len(n_knl), len(s_ec), len(n_cu))
        knl = np.asarray(n_knl, dtype=np.int64)[:, None, None]
        sec = np.asarray(s_ec, dtype=np.int64)[None, :, None]
        ncu = np.asarray(n_cu, dtype=np.int64)[None, None, :]

        total = np.zeros(shape, dtype=np.float64)
        if mode == MODE_QUANTIZED:
            ncu_b = np.asarray(n_cu, dtype=np.int64)[None, None, :]
            for index, layer in enumerate(self._layers):
                steps = np.empty(len(s_ec), dtype=np.int64)
                batch = np.empty(len(s_ec), dtype=np.int64)
                for j, (s, sized) in enumerate(zip(s_ec, buffers)):
                    steps[j], batch[j] = steps_total_closed_form(
                        layer.spec, sized.d_f, s
                    )
                gm = np.empty(len(n_knl), dtype=np.float64)
                for i, n in enumerate(n_knl):
                    gm[i] = self.group_max_sums(n)[index]
                cycles = (
                    gm[:, None, None] * steps[None, :, None]
                ) / ncu_b / batch[None, :, None]
                total = total + cycles
        else:
            accumulators = ncu * (knl * sec)
            for layer in self._layers:
                peak = max(layer.accumulate_ops, layer.multiply_share)
                total = total + peak / accumulators

        with np.errstate(divide="ignore", invalid="ignore"):
            seconds = total / (freq_mhz * 1e6)
            throughput = self.dense_ops / seconds / 1e9

        # Dynamic energy depends only on the (d_f, s_ec) column geometry, so
        # one scalar evaluation per column — the same function the per-point
        # path calls — keeps the whole power grid float-identical to it.
        energy_col = np.empty(len(s_ec), dtype=np.float64)
        for j, (s, sized) in enumerate(zip(s_ec, buffers)):
            # Energy ignores the CU/kernel counts, so degenerate empty
            # axes just borrow a placeholder to satisfy config validation.
            column_config = AcceleratorConfig(
                n_cu=n_cu[0] if n_cu else 1,
                n_knl=n_knl[0] if n_knl else 1,
                n_share=self.n_share,
                s_ec=s,
                d_f=sized.d_f,
                d_w=sized.d_w,
                d_q=sized.d_q,
                freq_mhz=freq_mhz,
            )
            energy_col[j] = analytic_energy_per_image(
                self.workload, column_config, model
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            power_w = energy_col[None, :, None] / seconds + model.static_w
            gops_per_watt = throughput / power_w

        alms, dsps, m20ks = resources.estimate_arrays(knl, sec, ncu, self.n_share)
        alms = np.broadcast_to(alms, shape).copy()
        dsps = np.broadcast_to(dsps, shape).copy()
        m20ks = np.broadcast_to(m20ks, shape).copy()
        if device is not None:
            logic_util = alms / device.alms
            dsp_util = dsps / device.dsps
            mem_util = m20ks / device.m20k_blocks
            feasible = (
                (logic_util <= logic_limit)
                & (dsp_util <= 1.0)
                & (mem_util <= 1.0)
            )
        else:
            logic_util = dsp_util = mem_util = None
            feasible = np.ones(shape, dtype=bool)
        return GridEvaluation(
            n_knl_values=n_knl,
            s_ec_values=s_ec,
            n_cu_values=n_cu,
            freq_mhz=freq_mhz,
            logic_limit=logic_limit,
            buffers=buffers,
            cycles_per_image=total,
            throughput_gops=throughput,
            alms=alms,
            dsps=dsps,
            m20ks=m20ks,
            logic_util=logic_util,
            dsp_util=dsp_util,
            mem_util=mem_util,
            feasible=feasible,
            layer_bounds=self.layer_bounds,
            n_share=self.n_share,
            power_w=power_w,
            gops_per_watt=gops_per_watt,
            energy_per_image_j=tuple(float(e) for e in energy_col),
            dense_ops=self.dense_ops,
            static_w=model.static_w,
        )


#: Compiled workloads are memoized per (workload identity, N). Entries hold
#: a strong reference to the workload, so an id() can never be recycled
#: while its key is live; eviction is purely LRU.
COMPILED_CACHE_CAPACITY = 64

_compiled_cache: "OrderedDict[Tuple[int, int], CompiledWorkload]" = OrderedDict()
_compiled_lock = threading.Lock()
_compiled_hits = 0
_compiled_misses = 0
_compiled_evictions = 0


def compile_workload(workload: ModelWorkload, n_share: int) -> CompiledWorkload:
    """Memoized compilation of a workload's grid-invariant figures."""
    global _compiled_hits, _compiled_misses, _compiled_evictions
    key = (id(workload), n_share)
    with _compiled_lock:
        hit = _compiled_cache.get(key)
        if hit is not None:
            _compiled_cache.move_to_end(key)
            _compiled_hits += 1
            return hit
        _compiled_misses += 1
    compiled = CompiledWorkload(workload, n_share)
    with _compiled_lock:
        _compiled_cache[key] = compiled
        while len(_compiled_cache) > COMPILED_CACHE_CAPACITY:
            _compiled_cache.popitem(last=False)
            _compiled_evictions += 1
    return compiled


def clear_compiled_cache() -> None:
    """Drop every memoized :class:`CompiledWorkload`."""
    global _compiled_hits, _compiled_misses, _compiled_evictions
    with _compiled_lock:
        _compiled_cache.clear()
        _compiled_hits = 0
        _compiled_misses = 0
        _compiled_evictions = 0


def compiled_cache_size() -> int:
    with _compiled_lock:
        return len(_compiled_cache)


def compiled_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the compiled-workload memo."""
    with _compiled_lock:
        return CacheStats(
            hits=_compiled_hits,
            misses=_compiled_misses,
            evictions=_compiled_evictions,
            size=len(_compiled_cache),
            capacity=COMPILED_CACHE_CAPACITY,
            name="dse.compiled",
        )


register_cache("dse.compiled", compiled_cache_stats)
