"""Design space exploration: performance / bandwidth / resource models.

Implements the paper's Section 5: the three estimation models, the
constant-calibration stage (with a synthetic stand-in for the FPGA
compiler), the roofline view of Figure 1 and the exploration flow of
Figures 5-7.
"""

from .bandwidth import BandwidthReport, LayerTraffic, bandwidth_report, layer_traffic
from .calibration import (
    CompileSample,
    SyntheticCompiler,
    characterization_suite,
    fit_constants,
)
from .compiled import (
    CompiledWorkload,
    GridEvaluation,
    clear_compiled_cache,
    compiled_cache_stats,
    compile_workload,
    compiled_cache_size,
    steps_total_closed_form,
)
from .explorer import (
    BufferSizing,
    ExplorationResult,
    GridPoint,
    NknlPoint,
    best_candidates,
    buffer_cache_size,
    buffer_cache_stats,
    clear_buffer_cache,
    explore,
    optimal_nknl,
    size_buffers,
    sweep_nknl,
    sweep_nknl_reference,
    sweep_sec_ncu,
    sweep_sec_ncu_reference,
)
from .frequency import (
    DEFAULT_FREQUENCY_MODEL,
    FrequencyModel,
    RefinedPoint,
    refine_with_frequency,
)
from .multi import (
    JointExplorationResult,
    JointPoint,
    co_deployment_objectives,
    explore_joint,
)
from .parallel import map_jobs
from .pareto import (
    FrontierSummary,
    nondominated_mask,
    pareto_frontier,
    pareto_frontier_reference,
)
from .performance import (
    MODE_IDEAL,
    MODE_QUANTIZED,
    LayerPerformance,
    ModelPerformance,
    estimate_layer,
    estimate_model,
    share_factor_from_workloads,
)
from .resources import (
    DEFAULT_RESOURCE_MODEL,
    ResourceEstimate,
    ResourceModel,
    ResourceUtilization,
    next_power_of_two,
)
from .roofline import DesignPoint, RooflineModel
from .sensitivity import (
    SensitivityEntry,
    SensitivityResult,
    resource_sensitivity,
)

# The study/adaptive layer sits above everything else in this package
# (and repro.hw.power reaches back into repro.dse.bandwidth), so these
# imports must come last to keep the import graph acyclic.
from .study import (
    Objective,
    ParetoFront,
    SearchSpace,
    Study,
    StudyError,
    StudySpec,
    TrialRecord,
    parse_objectives,
)
from .adaptive import (
    DEFAULT_OBJECTIVES,
    JointEvaluator,
    OBJECTIVE_DIRECTIONS,
    RandomSampler,
    StudyResult,
    TPESampler,
    default_joint_space,
    exhaustive_search,
    make_sampler,
    run_study,
)

# Partition search builds on both the compiled grid and the study layer.
from .partition import (
    PartitionSearchResult,
    PartitionStudyResult,
    ReplicationBaseline,
    clear_partition_cache,
    partition_cache_stats,
    partition_space,
    partition_study,
    replication_baseline,
    search_partitions,
)

__all__ = [
    "BandwidthReport",
    "LayerTraffic",
    "bandwidth_report",
    "layer_traffic",
    "CompileSample",
    "SyntheticCompiler",
    "characterization_suite",
    "fit_constants",
    "BufferSizing",
    "CompiledWorkload",
    "ExplorationResult",
    "GridEvaluation",
    "GridPoint",
    "NknlPoint",
    "best_candidates",
    "buffer_cache_size",
    "buffer_cache_stats",
    "clear_buffer_cache",
    "clear_compiled_cache",
    "compile_workload",
    "compiled_cache_size",
    "compiled_cache_stats",
    "explore",
    "optimal_nknl",
    "size_buffers",
    "steps_total_closed_form",
    "sweep_nknl",
    "sweep_nknl_reference",
    "sweep_sec_ncu",
    "sweep_sec_ncu_reference",
    "MODE_IDEAL",
    "MODE_QUANTIZED",
    "LayerPerformance",
    "ModelPerformance",
    "estimate_layer",
    "estimate_model",
    "share_factor_from_workloads",
    "DEFAULT_RESOURCE_MODEL",
    "ResourceEstimate",
    "ResourceModel",
    "ResourceUtilization",
    "next_power_of_two",
    "DesignPoint",
    "RooflineModel",
    "FrequencyModel",
    "DEFAULT_FREQUENCY_MODEL",
    "RefinedPoint",
    "refine_with_frequency",
    "SensitivityEntry",
    "SensitivityResult",
    "resource_sensitivity",
    "map_jobs",
    "FrontierSummary",
    "pareto_frontier",
    "pareto_frontier_reference",
    "JointExplorationResult",
    "JointPoint",
    "co_deployment_objectives",
    "explore_joint",
    "nondominated_mask",
    "Objective",
    "ParetoFront",
    "SearchSpace",
    "Study",
    "StudyError",
    "StudySpec",
    "TrialRecord",
    "parse_objectives",
    "DEFAULT_OBJECTIVES",
    "JointEvaluator",
    "OBJECTIVE_DIRECTIONS",
    "RandomSampler",
    "StudyResult",
    "TPESampler",
    "default_joint_space",
    "exhaustive_search",
    "make_sampler",
    "run_study",
    "PartitionSearchResult",
    "PartitionStudyResult",
    "ReplicationBaseline",
    "clear_partition_cache",
    "partition_cache_stats",
    "partition_space",
    "partition_study",
    "replication_baseline",
    "search_partitions",
]
