"""Operating-frequency model vs. logic congestion.

Paper Section 5.2: "a strict budget on logic resource (such as 70%) may
lead to failure in FPGA compilation or large degradation in operating
frequency. Therefore, several design candidates with close logic
utilization ratio are selected for final implementation."

This model captures that effect so the exploration can rank candidates by
*delivered* throughput rather than nominal 200 MHz: achievable Fmax is
flat until a congestion knee, degrades linearly beyond it, and compilation
fails outright near full logic. Constants are calibrated to the paper's
own data point — the implemented design closed timing at 202-204 MHz with
68-73% logic on the Stratix-V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .explorer import GridPoint


@dataclass(frozen=True)
class FrequencyModel:
    """Fmax as a function of logic utilization."""

    base_mhz: float = 250.0  # uncongested Fmax of the datapath
    knee: float = 0.50  # utilization where routing pressure starts
    slope_mhz: float = 235.0  # MHz lost per unit utilization past the knee
    fail_utilization: float = 0.92  # compilation failure threshold

    def __post_init__(self) -> None:
        if not 0.0 < self.knee < self.fail_utilization <= 1.0:
            raise ValueError("need 0 < knee < fail_utilization <= 1")
        if self.base_mhz <= 0 or self.slope_mhz < 0:
            raise ValueError("frequencies must be positive")

    def compiles(self, logic_utilization: float) -> bool:
        """Whether the design closes at all."""
        return logic_utilization < self.fail_utilization

    def fmax_mhz(self, logic_utilization: float) -> float:
        """Achievable clock at a given logic utilization."""
        if not self.compiles(logic_utilization):
            return 0.0
        if logic_utilization <= self.knee:
            return self.base_mhz
        return max(
            1.0, self.base_mhz - self.slope_mhz * (logic_utilization - self.knee)
        )

    def fmax_mhz_array(self, logic_utilization: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fmax_mhz` over a utilization array.

        Element-for-element identical to the scalar method; the adaptive
        joint search uses it to gate sampled clock frequencies against
        congestion across whole evaluation grids at once.
        """
        util = np.asarray(logic_utilization, dtype=np.float64)
        decayed = np.maximum(1.0, self.base_mhz - self.slope_mhz * (util - self.knee))
        fmax = np.where(util <= self.knee, self.base_mhz, decayed)
        return np.where(util < self.fail_utilization, fmax, 0.0)


#: Calibrated to the paper's achieved 202-204 MHz at 68-73% ALMs.
DEFAULT_FREQUENCY_MODEL = FrequencyModel()


@dataclass(frozen=True)
class RefinedPoint:
    """A grid point re-evaluated at its congestion-limited frequency."""

    point: GridPoint
    fmax_mhz: float
    delivered_gops: float

    @property
    def compiles(self) -> bool:
        return self.fmax_mhz > 0.0


def refine_with_frequency(
    grid: Sequence[GridPoint],
    model: FrequencyModel = DEFAULT_FREQUENCY_MODEL,
) -> List[RefinedPoint]:
    """Re-rank exploration candidates by congestion-limited throughput.

    Throughput scales linearly with the clock in the compute-bound regime,
    so each point's nominal figure is rescaled by fmax / nominal.
    """
    refined = []
    for point in grid:
        fmax = model.fmax_mhz(point.utilization.logic)
        scale = fmax / point.config.freq_mhz if point.config.freq_mhz else 0.0
        refined.append(
            RefinedPoint(
                point=point,
                fmax_mhz=fmax,
                delivered_gops=point.throughput_gops * scale,
            )
        )
    refined.sort(key=lambda r: -r.delivered_gops)
    return refined
