"""Per-layer heterogeneous scheme planning.

HPIPE-style layer heterogeneity for the ABM accelerator: every layer gets
the convolution scheme that is best *for its shape*, chosen among the
registered :class:`~repro.core.schemes.SchemeModel` implementations under
a shared device-resource constraint. Two ranking bases exist because the
two questions differ:

- ``execution`` (default) ranks on :meth:`SchemeModel.execution_cost`, the
  predicted work of each scheme's software fast path — the quantity the
  streaming runtime's measured wall time tracks, and the basis
  ``BENCH_schemes.json`` validates against. Winograd wins 3x3 stride-1
  layers here (~2.25x fewer elementwise flops than the dense GEMM).
- ``cycles`` ranks on :meth:`SchemeModel.layer_cycles`, the accelerator
  cycle prediction. On paper-scale configurations ABM dominates this view
  — the whole point of Figure 1: 840 logic accumulators outrun 210 shared
  multipliers even after a 2.25-4x multiply reduction — so a cycles-basis
  plan is typically homogeneous ABM, which is itself a faithful
  reproduction of the paper's claim.

Resource coupling: a non-ABM scheme may only be *enabled* (made available
to any layer) if the base configuration's fabric estimate plus the scheme
unit's modeled overhead still fits the device. Enablement is greedy by
total predicted benefit, so the highest-value units claim the remaining
fabric first — this is the shared constraint that makes scheme-per-layer
a joint dimension of the DSE rather than a free post-processing step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.schemes import (
    SchemeModel,
    SchemeResources,
    get_scheme_model,
    scheme_models,
)
from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.workload import LayerWorkload, ModelWorkload
from .resources import DEFAULT_RESOURCE_MODEL, ResourceEstimate, ResourceModel

__all__ = [
    "BASIS_CYCLES",
    "BASIS_EXECUTION",
    "ModelSchemePlan",
    "SchemeDecision",
    "plan_model_schemes",
]

BASIS_EXECUTION = "execution"
BASIS_CYCLES = "cycles"

#: A challenger must beat ABM by this relative margin to displace it: the
#: cost models are predictions, and flapping a layer onto a scheme for a
#: 2% predicted win is how planners lose measured benchmarks.
DEFAULT_MARGIN = 0.1


@dataclass(frozen=True)
class SchemeDecision:
    """One layer's scheme choice with the evidence behind it."""

    layer: str
    scheme: str
    #: Basis cost of every candidate that supports the layer (always
    #: includes ``abm``); lower is better.
    costs: Mapping[str, float]
    #: Predicted accelerator cycles per image of the same candidates.
    cycles: Mapping[str, float]
    reason: str

    @property
    def abm_cost(self) -> float:
        return self.costs["abm"]

    @property
    def chosen_cost(self) -> float:
        return self.costs[self.scheme]

    @property
    def speedup(self) -> float:
        """Predicted layer speedup of the choice over ABM (1.0 = kept ABM)."""
        if self.chosen_cost <= 0:
            return 1.0
        return self.abm_cost / self.chosen_cost


@dataclass(frozen=True)
class ModelSchemePlan:
    """A per-layer scheme assignment for one model on one configuration."""

    model: str
    basis: str
    margin: float
    decisions: Tuple[SchemeDecision, ...]
    #: Non-ABM schemes whose datapath units fit the fabric next to the
    #: base design (and were worth enabling).
    enabled: Tuple[str, ...]
    #: Total modeled fabric overhead of the enabled units.
    overhead: SchemeResources
    #: Schemes that earned a slot on merit but were rejected because their
    #: unit did not fit the remaining fabric.
    rejected: Tuple[str, ...] = ()

    def assignment(self) -> Dict[str, str]:
        """Layer -> scheme for every non-ABM choice (run_batch format)."""
        return {d.layer: d.scheme for d in self.decisions if d.scheme != "abm"}

    @property
    def heterogeneous(self) -> bool:
        return any(d.scheme != "abm" for d in self.decisions)

    @property
    def predicted_speedup(self) -> float:
        """Whole-model predicted speedup over ABM-only on the plan basis."""
        abm = sum(d.abm_cost for d in self.decisions)
        chosen = sum(d.chosen_cost for d in self.decisions)
        if chosen <= 0:
            return 1.0
        return abm / chosen

    def summary(self) -> str:
        mix: Dict[str, int] = {}
        for decision in self.decisions:
            mix[decision.scheme] = mix.get(decision.scheme, 0) + 1
        joined = ", ".join(f"{k}: {v}" for k, v in sorted(mix.items()))
        return (
            f"{self.model}: {joined} (basis={self.basis}, predicted "
            f"{self.predicted_speedup:.2f}x vs ABM-only)"
        )


def _candidate_cost(
    model: SchemeModel,
    layer: LayerWorkload,
    config: AcceleratorConfig,
    basis: str,
) -> float:
    if basis == BASIS_EXECUTION:
        return float(model.execution_cost(layer))
    if basis == BASIS_CYCLES:
        return float(model.layer_cycles(layer, config))
    raise ValueError(
        f"unknown planning basis {basis!r}; use {BASIS_EXECUTION!r} or "
        f"{BASIS_CYCLES!r}"
    )


def plan_model_schemes(
    workload: ModelWorkload,
    config: AcceleratorConfig,
    *,
    device: Optional[FPGADevice] = None,
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    logic_limit: float = 0.75,
    basis: str = BASIS_EXECUTION,
    margin: float = DEFAULT_MARGIN,
    executable_only: bool = True,
    schemes: Optional[Sequence[str]] = None,
) -> ModelSchemePlan:
    """Choose the best scheme per layer under shared resource constraints.

    Parameters
    ----------
    workload:
        The model's layer workloads (real encoded statistics or synthetic).
    config:
        The accelerator configuration the plan targets (cycle predictions
        and the base-fabric estimate both come from it).
    device:
        When given, non-ABM schemes are gated by fabric: the base estimate
        plus each enabled unit's overhead must keep fitting
        ``(logic <= logic_limit, dsp <= 1, memory <= 1)``. Without a
        device, every profitable scheme is enabled (pure software view).
    basis:
        ``execution`` ranks on software fast-path cost (default),
        ``cycles`` on accelerator cycle predictions.
    margin:
        Relative margin a challenger must beat ABM by per layer.
    executable_only:
        Restrict candidates to schemes the fused runtime can dispatch
        (model-only schemes like ``sdconv``/``fdconv``/``spconv`` are then
        prediction rows, never choices).
    schemes:
        Optional explicit candidate-name allowlist (``abm`` is implicit).
    """
    abm = get_scheme_model("abm")
    candidates: List[SchemeModel] = []
    for model in scheme_models():
        if model.name == "abm":
            continue
        if schemes is not None and model.name not in schemes:
            continue
        if executable_only and not model.executable:
            continue
        candidates.append(model)

    # Pass 1: per-layer costs of every supporting candidate.
    layer_costs: List[Dict[str, float]] = []
    layer_cycles: List[Dict[str, float]] = []
    for layer in workload.layers:
        costs = {"abm": _candidate_cost(abm, layer, config, basis)}
        cycles = {"abm": float(abm.layer_cycles(layer, config))}
        for model in candidates:
            if not model.supports(layer.spec):
                continue
            cost = _candidate_cost(model, layer, config, basis)
            if not math.isfinite(cost):
                continue
            costs[model.name] = cost
            cycles[model.name] = float(model.layer_cycles(layer, config))
        layer_costs.append(costs)
        layer_cycles.append(cycles)

    # Pass 2: greedy enablement by total benefit under the fabric budget.
    # Each round, every not-yet-decided scheme is credited with the cost it
    # would save over the *current* best (ABM plus already-enabled schemes)
    # on layers where it also clears the margin against ABM; the biggest
    # saver is enabled if its unit fits the remaining fabric, otherwise
    # rejected — and the next round lets runner-up schemes claim the layers
    # a rejected unit would have taken.
    enabled: List[str] = []
    rejected: List[str] = []
    total = SchemeResources()
    base: Optional[ResourceEstimate] = (
        resources.estimate(config) if device is not None else None
    )
    by_name = {model.name: model for model in candidates}
    undecided = set(by_name)
    while undecided:
        benefit: Dict[str, float] = {}
        for costs in layer_costs:
            abm_cost = costs["abm"]
            current = min(
                [abm_cost] + [costs[n] for n in enabled if n in costs]
            )
            pool = {n: costs[n] for n in undecided if n in costs}
            if not pool:
                continue
            best = min(pool, key=pool.get)
            if pool[best] * (1.0 + margin) < abm_cost and pool[best] < current:
                benefit[best] = benefit.get(best, 0.0) + (
                    current - pool[best]
                )
        if not benefit:
            break
        name = max(benefit, key=benefit.get)
        undecided.discard(name)
        overhead = by_name[name].resource_overhead(config)
        if base is not None:
            trial = ResourceEstimate(
                alms=base.alms + total.alms + overhead.alms,
                dsps=base.dsps + total.dsps + overhead.dsps,
                m20ks=base.m20ks + total.m20ks + overhead.m20ks,
            )
            if not trial.utilization(device).fits(logic_limit):
                rejected.append(name)
                continue
        enabled.append(name)
        total = SchemeResources(
            alms=total.alms + overhead.alms,
            dsps=total.dsps + overhead.dsps,
            m20ks=total.m20ks + overhead.m20ks,
        )

    # Pass 3: final per-layer choice among ABM + enabled schemes.
    decisions: List[SchemeDecision] = []
    for layer, costs, cycles in zip(workload.layers, layer_costs, layer_cycles):
        abm_cost = costs["abm"]
        available = {
            name: cost for name, cost in costs.items() if name in enabled
        }
        chosen = "abm"
        if available:
            best = min(available, key=available.get)
            if available[best] * (1.0 + margin) < abm_cost:
                chosen = best
        if chosen == "abm":
            blocked = [
                name
                for name in rejected
                if name in costs and costs[name] * (1.0 + margin) < abm_cost
            ]
            if blocked:
                reason = (
                    f"kept abm: {'/'.join(sorted(blocked))} would win but "
                    "its unit does not fit the fabric"
                )
            else:
                reason = (
                    f"kept abm: no enabled scheme beats it by the "
                    f"{margin:.0%} margin"
                )
        else:
            reason = (
                f"{chosen}: {abm_cost / costs[chosen]:.2f}x lower predicted "
                f"{basis} cost than abm"
            )
        decisions.append(
            SchemeDecision(
                layer=layer.spec.name,
                scheme=chosen,
                costs=dict(costs),
                cycles=dict(cycles),
                reason=reason,
            )
        )

    return ModelSchemePlan(
        model=workload.name,
        basis=basis,
        margin=margin,
        decisions=tuple(decisions),
        enabled=tuple(enabled),
        overhead=total,
        rejected=tuple(rejected),
    )
