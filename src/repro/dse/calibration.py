"""Design-constant calibration (the fast-compile stage of paper Figure 5).

The paper's flow runs "several rounds of fast compilation of the design
code (OpenCL kernels)" on the target device, collects the reported logic /
DSP / memory utilization, and solves for the platform constants C0..C7 of
the Resource Requirement Model.

Offline we have no Intel OpenCL compiler, so a :class:`SyntheticCompiler`
plays its role: it reports resources from a hidden ground-truth constant
set (calibrated against Table 2) plus deterministic pseudo-random
measurement noise, mimicking the fitter's real input. :func:`fit_constants`
then recovers a :class:`ResourceModel` by linear least squares — the same
computation the flow performs — and the test suite checks the recovered
constants reproduce the ground truth within the noise level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from .resources import ResourceModel


@dataclass(frozen=True)
class CompileSample:
    """One characterization compile: a configuration and its resource report."""

    config: AcceleratorConfig
    alms: int
    dsps: int
    m20ks: int


class SyntheticCompiler:
    """Stand-in for the FPGA compiler's resource reports.

    Parameters
    ----------
    model:
        Hidden ground-truth constants.
    noise:
        Relative 1-sigma measurement noise (placement variability between
        compiles); 0 gives exact reports.
    """

    def __init__(
        self,
        device: FPGADevice,
        model: ResourceModel = ResourceModel(),
        noise: float = 0.02,
        seed: int = 2019,
    ) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.device = device
        self.model = model
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def compile(self, config: AcceleratorConfig) -> CompileSample:
        """Report (noisy) resources for one configuration."""
        estimate = self.model.estimate(config)

        def jitter(value: int) -> int:
            if self.noise == 0:
                return value
            return max(0, int(round(value * (1.0 + self._rng.normal(0, self.noise)))))

        return CompileSample(
            config=config,
            alms=jitter(estimate.alms),
            dsps=estimate.dsps,  # DSP counts are exact (discrete instantiation)
            m20ks=jitter(estimate.m20ks),
        )

    def characterize(
        self, configs: Sequence[AcceleratorConfig]
    ) -> Tuple[CompileSample, ...]:
        """Run the whole characterization suite."""
        return tuple(self.compile(config) for config in configs)


def characterization_suite(base: AcceleratorConfig) -> Tuple[AcceleratorConfig, ...]:
    """A small spread of configurations that makes the fit well-posed.

    Varies each design parameter independently around ``base`` so the
    least-squares system for C0..C7 has full rank.
    """
    configs = [base]
    for n_cu in (1, 2):
        configs.append(AcceleratorConfig(n_cu, base.n_knl, base.n_share, base.s_ec))
    for n_knl in (6, 10, 18):
        configs.append(AcceleratorConfig(base.n_cu, n_knl, base.n_share, base.s_ec))
    for s_ec in (8, 14, 26):
        configs.append(AcceleratorConfig(base.n_cu, base.n_knl, base.n_share, s_ec))
    for n_share in (2, 8):
        configs.append(AcceleratorConfig(base.n_cu, base.n_knl, n_share, base.s_ec))
    return tuple(configs)


def fit_constants(samples: Sequence[CompileSample]) -> ResourceModel:
    """Recover the platform constants from characterization samples.

    Logic and memory fit by linear least squares on their model structure;
    the DSP constants come from the two-parameter exact system.
    """
    if len(samples) < 4:
        raise ValueError("need at least four samples for a well-posed fit")
    # Logic: alms = c0 + c1 * (n_knl*s_ec*n_cu) + c2 * (n_knl*n_cu)
    logic_rows = np.array(
        [
            [1.0, s.config.n_knl * s.config.s_ec * s.config.n_cu, s.config.n_knl * s.config.n_cu]
            for s in samples
        ]
    )
    logic_rhs = np.array([s.alms for s in samples], dtype=np.float64)
    (c0, c1, c2), *_ = np.linalg.lstsq(logic_rows, logic_rhs, rcond=None)
    # Memory: m20k = c5 + c6 * (s_ec*n_cu) + c7 * (n_knl*n_cu)
    mem_rows = np.array(
        [
            [1.0, s.config.s_ec * s.config.n_cu, s.config.n_knl * s.config.n_cu]
            for s in samples
        ]
    )
    mem_rhs = np.array([s.m20ks for s in samples], dtype=np.float64)
    (c5, c6, c7), *_ = np.linalg.lstsq(mem_rows, mem_rhs, rcond=None)
    # DSPs: dsps = c3 + c4 * multipliers; exact, so two samples pin it down.
    dsp_rows = np.array(
        [[1.0, s.config.multipliers_per_cu * s.config.n_cu] for s in samples]
    )
    dsp_rhs = np.array([s.dsps for s in samples], dtype=np.float64)
    (c3, c4), *_ = np.linalg.lstsq(dsp_rows, dsp_rhs, rcond=None)
    return ResourceModel(
        c0=float(c0),
        c1=float(c1),
        c2=float(c2),
        c3=float(c3),
        c4=float(c4),
        c5=float(c5),
        c6=float(c6),
        c7=float(c7),
    )
