"""Bandwidth Model (paper Section 5.1).

Each layer's input is streamed in ``G_r x G_c`` prefetch windows; the
feature traffic per image is the sum of the window transfers (halo overlap
included), the weight traffic is the encoded model re-streamed per window
and amortized over the minimum batch of ``S_ec`` images, and the output
traffic is the store of the produced feature map. The required average
bandwidth at a target frame rate is compared against the device's DDR
bandwidth to verify the design is compute-bound — the conclusion the paper
reaches for "most FPGA devices" thanks to the small encoded weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.tiling import plan_windows
from ..hw.workload import LayerWorkload, ModelWorkload


@dataclass(frozen=True)
class LayerTraffic:
    """Per-image DDR traffic of one layer, in bytes."""

    layer: str
    feature_in_bytes: int
    feature_out_bytes: int
    weight_bytes: float
    windows: int

    @property
    def total_bytes(self) -> float:
        return self.feature_in_bytes + self.feature_out_bytes + self.weight_bytes


@dataclass(frozen=True)
class BandwidthReport:
    """Whole-model traffic and the compute-bound verdict."""

    model: str
    layers: Tuple[LayerTraffic, ...]
    images_per_second: float
    device_bandwidth_gbs: float

    @property
    def bytes_per_image(self) -> float:
        return float(sum(layer.total_bytes for layer in self.layers))

    @property
    def required_bandwidth_gbs(self) -> float:
        """Average bandwidth needed to sustain the target frame rate."""
        return self.bytes_per_image * self.images_per_second / 1e9

    @property
    def compute_bound(self) -> bool:
        """True when DDR keeps up with the accelerator (paper's check)."""
        return self.required_bandwidth_gbs <= self.device_bandwidth_gbs

    @property
    def bandwidth_headroom(self) -> float:
        """device / required; > 1 means compute-bound."""
        required = self.required_bandwidth_gbs
        if required == 0:
            return float("inf")
        return self.device_bandwidth_gbs / required


def layer_traffic(
    workload: LayerWorkload,
    config: AcceleratorConfig,
    batch: Optional[int] = None,
) -> LayerTraffic:
    """Per-image traffic of one layer under the prefetch-window model.

    ``batch`` overrides the number of images sharing each weight fetch;
    the default is the paper's minimum batch of ``S_ec`` images.
    """
    if batch is None:
        batch = config.s_ec
    if batch < 1:
        raise ValueError("batch must be at least one image")
    plan = plan_windows(workload.spec, config)
    # Conv weights are re-streamed for every prefetch window; FC weights are
    # streamed once per pass. Either way the batch shares each fetch
    # (paper: "assuming a minimum batch size of S_ec").
    streams = 1 if workload.spec.is_fc else plan.windows
    weight_bytes = workload.encoded_bytes * streams / batch
    return LayerTraffic(
        layer=workload.spec.name,
        feature_in_bytes=plan.input_bytes_per_image,
        feature_out_bytes=plan.output_bytes_per_image,
        weight_bytes=weight_bytes,
        windows=plan.windows,
    )


def bandwidth_report(
    workload: ModelWorkload,
    config: AcceleratorConfig,
    device: FPGADevice,
    images_per_second: float,
    batch: Optional[int] = None,
) -> BandwidthReport:
    """Assemble the Bandwidth Model's verdict for a model/config pair."""
    if images_per_second <= 0:
        raise ValueError("frame rate must be positive")
    layers = tuple(
        layer_traffic(layer, config, batch=batch) for layer in workload.layers
    )
    return BandwidthReport(
        model=workload.name,
        layers=layers,
        images_per_second=images_per_second,
        device_bandwidth_gbs=device.bandwidth_gbs,
    )
