"""Pareto analysis of the exploration grid.

The Figure 7 sweep picks one winner, but a practitioner porting the
design to another device (or leaving headroom for other logic on the
FPGA) wants the whole throughput-vs-resources frontier. A grid point is
Pareto-optimal when no other feasible point delivers more throughput with
no more of *any* resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .explorer import GridPoint
from .parallel import map_jobs


def _dominates(a: GridPoint, b: GridPoint) -> bool:
    """True when a is at least as good as b everywhere and better somewhere."""
    no_worse = (
        a.throughput_gops >= b.throughput_gops
        and a.resources.alms <= b.resources.alms
        and a.resources.dsps <= b.resources.dsps
        and a.resources.m20ks <= b.resources.m20ks
    )
    strictly_better = (
        a.throughput_gops > b.throughput_gops
        or a.resources.alms < b.resources.alms
        or a.resources.dsps < b.resources.dsps
        or a.resources.m20ks < b.resources.m20ks
    )
    return no_worse and strictly_better


def _survivors_chunk(
    job: Tuple[Sequence[GridPoint], Sequence[GridPoint]]
) -> List[bool]:
    """Dominance mask for one chunk of points against the full feasible set.

    Module-level so :func:`repro.dse.parallel.map_jobs` can ship the O(n^2)
    pairwise checks to a process pool chunk by chunk.
    """
    chunk, feasible = job
    return [
        not any(_dominates(other, point) for other in feasible)
        for point in chunk
    ]


def pareto_frontier(
    grid: Sequence[GridPoint], workers: Optional[int] = None
) -> List[GridPoint]:
    """Feasible, non-dominated points, sorted by throughput descending.

    ``workers`` distributes the pairwise dominance checks over a process
    pool; the frontier is identical for any worker count.
    """
    feasible = [point for point in grid if point.feasible]
    if workers is None or workers <= 1:
        survives = _survivors_chunk((feasible, feasible))
    else:
        chunk_size = max(1, -(-len(feasible) // (workers * 4)))
        jobs = [
            (feasible[lo : lo + chunk_size], feasible)
            for lo in range(0, len(feasible), chunk_size)
        ]
        survives = [
            keep for mask in map_jobs(_survivors_chunk, jobs, workers) for keep in mask
        ]
    frontier = [point for point, keep in zip(feasible, survives) if keep]
    return sorted(frontier, key=lambda p: -p.throughput_gops)


@dataclass(frozen=True)
class FrontierSummary:
    """Compact description of the frontier for reports."""

    points: Sequence[GridPoint]

    @property
    def knee(self) -> GridPoint:
        """The point with the best throughput per ALM (the 'knee' pick)."""
        if not self.points:
            raise ValueError("empty frontier")
        return max(self.points, key=lambda p: p.throughput_gops / p.resources.alms)

    def render(self) -> str:
        lines = [
            f"{'S_ec':>4} {'N_cu':>4} {'GOP/s':>8} {'ALMs':>8} {'DSPs':>5} {'M20K':>5}"
        ]
        for point in self.points:
            lines.append(
                f"{point.s_ec:>4} {point.n_cu:>4} {point.throughput_gops:>8.1f} "
                f"{point.resources.alms:>8} {point.resources.dsps:>5} "
                f"{point.resources.m20ks:>5}"
            )
        return "\n".join(lines)
