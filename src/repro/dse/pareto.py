"""Pareto analysis of the exploration grid.

The Figure 7 sweep picks one winner, but a practitioner porting the
design to another device (or leaving headroom for other logic on the
FPGA) wants the whole throughput-vs-resources frontier. A grid point is
Pareto-optimal when no other feasible point delivers more throughput with
no more of *any* resource.

The dominance test runs as one numpy broadcast per chunk of points
(objective and resource matrices, a ≤/< mask reduction) — the pairwise
Python path survives as :func:`pareto_frontier_reference` for
differential testing and for the opt-in ``workers=`` process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .explorer import GridPoint
from .parallel import map_jobs


def _dominates(a: GridPoint, b: GridPoint) -> bool:
    """True when a is at least as good as b everywhere and better somewhere."""
    no_worse = (
        a.throughput_gops >= b.throughput_gops
        and a.resources.alms <= b.resources.alms
        and a.resources.dsps <= b.resources.dsps
        and a.resources.m20ks <= b.resources.m20ks
    )
    strictly_better = (
        a.throughput_gops > b.throughput_gops
        or a.resources.alms < b.resources.alms
        or a.resources.dsps < b.resources.dsps
        or a.resources.m20ks < b.resources.m20ks
    )
    return no_worse and strictly_better


def _survivors_chunk(
    job: Tuple[Sequence[GridPoint], Sequence[GridPoint]]
) -> List[bool]:
    """Dominance mask for one chunk of points against the full feasible set.

    Module-level so :func:`repro.dse.parallel.map_jobs` can ship the O(n^2)
    pairwise checks to a process pool chunk by chunk.
    """
    chunk, feasible = job
    return [
        not any(_dominates(other, point) for other in feasible)
        for point in chunk
    ]


def nondominated_mask(
    columns: Sequence[np.ndarray], directions: Sequence[str]
) -> np.ndarray:
    """Non-dominated mask over N points scored on arbitrary objectives.

    ``columns`` holds one value array per objective (all the same length);
    ``directions`` gives each objective's sense (``'max'`` or ``'min'``).
    A point survives when no other point is at least as good on every
    column and strictly better on one. Dominance is tested with one
    (candidates x chunk) mask reduction per chunk of points, so the
    pairwise matrices stay ~a few MB even on grids with tens of thousands
    of points. The grid frontier (:func:`pareto_frontier`) and the
    adaptive study front (:mod:`repro.dse.study`) share this test.
    """
    if len(columns) != len(directions):
        raise ValueError("need one direction per objective column")
    if not columns:
        raise ValueError("need at least one objective column")
    for direction in directions:
        if direction not in ("max", "min"):
            raise ValueError(f"direction must be 'max' or 'min', got {direction!r}")
    arrays = [np.asarray(column) for column in columns]
    n = len(arrays[0])
    if any(len(array) != n for array in arrays):
        raise ValueError("objective columns must share one length")
    survives = np.empty(n, dtype=bool)
    chunk = max(1, min(n, 4_000_000 // max(n, 1)))
    for lo in range(0, n, chunk):
        sl = slice(lo, min(lo + chunk, n))
        no_worse: Optional[np.ndarray] = None
        strictly: Optional[np.ndarray] = None
        for array, direction in zip(arrays, directions):
            if direction == "max":
                nw = array[:, None] >= array[None, sl]
                st = array[:, None] > array[None, sl]
            else:
                nw = array[:, None] <= array[None, sl]
                st = array[:, None] < array[None, sl]
            no_worse = nw if no_worse is None else (no_worse & nw)
            strictly = st if strictly is None else (strictly | st)
        survives[sl] = ~(no_worse & strictly).any(axis=0)
    return survives


def _survivors_vectorized(feasible: Sequence[GridPoint]) -> np.ndarray:
    """Non-dominated mask over the feasible set via numpy broadcasting.

    Builds the objective/resource vectors once and delegates the chunked
    dominance reduction to :func:`nondominated_mask` — identical
    comparisons to :func:`_dominates`, so the surviving set is exactly
    the reference's.
    """
    throughput = np.array([p.throughput_gops for p in feasible], dtype=np.float64)
    alms = np.array([p.resources.alms for p in feasible], dtype=np.int64)
    dsps = np.array([p.resources.dsps for p in feasible], dtype=np.int64)
    m20ks = np.array([p.resources.m20ks for p in feasible], dtype=np.int64)
    return nondominated_mask(
        (throughput, alms, dsps, m20ks), ("max", "min", "min", "min")
    )


def pareto_frontier_reference(
    grid: Sequence[GridPoint], workers: Optional[int] = None
) -> List[GridPoint]:
    """Pairwise-Python reference for :func:`pareto_frontier`.

    ``workers`` distributes the dominance checks over a process pool; the
    frontier is identical for any worker count.
    """
    feasible = [point for point in grid if point.feasible]
    if workers is None or workers <= 1:
        survives = _survivors_chunk((feasible, feasible))
    else:
        chunk_size = max(1, -(-len(feasible) // (workers * 4)))
        jobs = [
            (feasible[lo : lo + chunk_size], feasible)
            for lo in range(0, len(feasible), chunk_size)
        ]
        survives = [
            keep for mask in map_jobs(_survivors_chunk, jobs, workers) for keep in mask
        ]
    frontier = [point for point, keep in zip(feasible, survives) if keep]
    return sorted(frontier, key=lambda p: -p.throughput_gops)


def pareto_frontier(
    grid: Sequence[GridPoint],
    workers: Optional[int] = None,
    compiled: bool = True,
) -> List[GridPoint]:
    """Feasible, non-dominated points, sorted by throughput descending.

    Dominance runs as a numpy broadcast by default, identical to the
    pairwise reference for any grid; ``compiled=False`` selects
    :func:`pareto_frontier_reference`, where ``workers`` distributes the
    checks over a process pool (the vectorized path ignores it).
    """
    if not compiled:
        return pareto_frontier_reference(grid, workers=workers)
    feasible = [point for point in grid if point.feasible]
    if not feasible:
        return []
    survives = _survivors_vectorized(feasible)
    frontier = [point for point, keep in zip(feasible, survives) if keep]
    return sorted(frontier, key=lambda p: -p.throughput_gops)


@dataclass(frozen=True)
class FrontierSummary:
    """Compact description of the frontier for reports."""

    points: Sequence[GridPoint]

    @property
    def knee(self) -> GridPoint:
        """The point with the best throughput per ALM (the 'knee' pick)."""
        if not self.points:
            raise ValueError("empty frontier")
        return max(self.points, key=lambda p: p.throughput_gops / p.resources.alms)

    def render(self) -> str:
        lines = [
            f"{'S_ec':>4} {'N_cu':>4} {'GOP/s':>8} {'ALMs':>8} {'DSPs':>5} {'M20K':>5}"
        ]
        for point in self.points:
            lines.append(
                f"{point.s_ec:>4} {point.n_cu:>4} {point.throughput_gops:>8.1f} "
                f"{point.resources.alms:>8} {point.resources.dsps:>5} "
                f"{point.resources.m20ks:>5}"
            )
        return "\n".join(lines)
