"""Study persistence for the adaptive DSE: trials, fronts, JSONL resume.

An adaptive search (:mod:`repro.dse.adaptive`) produces a *study*: an
ordered sequence of trials, each a point of the joint design space scored
against the configured objectives, plus the incremental Pareto front over
the feasible trials. This module owns everything about that record:

- :class:`SearchSpace` — the named, ordered candidate axes of the joint
  space. Axes are finite and ordered, so every point has a mixed-radix
  flat index (used for deterministic de-duplication fallback scans) and
  the space round-trips losslessly through JSON.
- :class:`TrialRecord` — one evaluated point: params, objective values,
  feasibility, provenance (``sampled`` by the sampler or ``harvest``\\ ed
  from an evaluated sub-grid batch).
- :class:`ParetoFront` — incremental non-dominated set over the feasible
  trials, direction-aware per objective; the generic dominance test is
  shared with :mod:`repro.dse.pareto`.
- :class:`Study` — the append-only JSONL persistence. One schema-validated
  record per trial, a header record pinning the study's configuration
  (space, sampler, seed, objectives) and one ``round_end`` marker per
  sampler round. Because every source of randomness is keyed on
  ``(seed, round)`` and the sampler only consumes recorded history,
  **resuming a killed study reproduces the exact trial sequence and front
  an uninterrupted run would have produced** — a partially-written final
  round is trimmed and deterministically re-run.

Corruption is loud: an interior line that fails to parse or validate
raises :class:`StudyError` naming the file and line; only an *incomplete
tail* (the signature of a killed process: a partial final line, or trials
past the last ``round_end`` marker) is silently trimmed on resume.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Schema tag written into every study file; bumped on breaking changes.
STUDY_SCHEMA = "dse.study/1"

#: Objective directions understood by the front and the samplers.
DIRECTION_MAX = "max"
DIRECTION_MIN = "min"
_DIRECTIONS = (DIRECTION_MAX, DIRECTION_MIN)


class StudyError(ValueError):
    """A study file (or resume request) is invalid; message says why."""


@dataclass(frozen=True)
class Objective:
    """One optimization objective: a named value and its direction."""

    name: str
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise StudyError(
                f"objective {self.name!r}: direction must be one of "
                f"{_DIRECTIONS}, got {self.direction!r}"
            )

    def better(self, a: float, b: float) -> bool:
        """True when value ``a`` is strictly better than ``b``."""
        return a > b if self.direction == DIRECTION_MAX else a < b


@dataclass(frozen=True)
class SearchSpace:
    """Ordered categorical axes of the joint design space.

    ``axes`` maps axis name -> ordered tuple of candidate values. Order
    matters twice: the tuple order defines each axis's mixed radix, and
    the axis order defines the flat-index layout (first axis is the most
    significant digit).
    """

    axes: Tuple[Tuple[str, Tuple[float, ...]], ...]

    def __post_init__(self) -> None:
        seen = set()
        for name, values in self.axes:
            if name in seen:
                raise StudyError(f"duplicate axis {name!r} in search space")
            seen.add(name)
            if not values:
                raise StudyError(f"axis {name!r} has no candidate values")
            if len(set(values)) != len(values):
                raise StudyError(f"axis {name!r} has duplicate candidates")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def values(self, name: str) -> Tuple[float, ...]:
        for axis, candidates in self.axes:
            if axis == name:
                return candidates
        raise KeyError(f"no axis named {name!r}")

    @property
    def size(self) -> int:
        """Total number of joint configurations."""
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    def key(self, params: Mapping[str, float]) -> Tuple[float, ...]:
        """Canonical hashable identity of a point (axis order)."""
        return tuple(params[name] for name in self.names)

    def flatten(self, params: Mapping[str, float]) -> int:
        """Mixed-radix flat index of a point."""
        index = 0
        for name, values in self.axes:
            index = index * len(values) + values.index(params[name])
        return index

    def unflatten(self, index: int) -> Dict[str, float]:
        """Inverse of :meth:`flatten`."""
        if not 0 <= index < self.size:
            raise IndexError(f"flat index {index} outside space of {self.size}")
        params: Dict[str, float] = {}
        for name, values in reversed(self.axes):
            index, digit = divmod(index, len(values))
            params[name] = values[digit]
        return {name: params[name] for name in self.names}

    def to_json(self) -> Dict[str, List[float]]:
        return {name: list(values) for name, values in self.axes}

    @classmethod
    def from_json(cls, data: Mapping[str, Sequence[float]]) -> "SearchSpace":
        return cls(tuple((name, tuple(values)) for name, values in data.items()))


#: Provenance of a trial: proposed by the sampler, or the best point
#: harvested from an evaluated sub-grid batch.
ORIGIN_SAMPLED = "sampled"
ORIGIN_HARVEST = "harvest"
_ORIGINS = (ORIGIN_SAMPLED, ORIGIN_HARVEST)


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated design point of a study."""

    number: int
    round: int
    origin: str
    params: Dict[str, float]
    #: Objective name -> value; empty when the point could not be planned.
    values: Dict[str, float]
    feasible: bool

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": "trial",
            "number": self.number,
            "round": self.round,
            "origin": self.origin,
            "params": self.params,
            "values": self.values,
            "feasible": self.feasible,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "TrialRecord":
        for key in ("number", "round", "origin", "params", "values", "feasible"):
            if key not in data:
                raise StudyError(f"trial record missing {key!r}")
        if data["origin"] not in _ORIGINS:
            raise StudyError(f"trial origin must be one of {_ORIGINS}")
        if not isinstance(data["params"], dict) or not isinstance(
            data["values"], dict
        ):
            raise StudyError("trial params/values must be objects")
        if not isinstance(data["feasible"], bool):
            raise StudyError("trial feasible must be a boolean")
        return cls(
            number=int(data["number"]),
            round=int(data["round"]),
            origin=str(data["origin"]),
            params={str(k): v for k, v in data["params"].items()},
            values={str(k): float(v) for k, v in data["values"].items()},
            feasible=bool(data["feasible"]),
        )


def dominates(
    a: Mapping[str, float],
    b: Mapping[str, float],
    objectives: Sequence[Objective],
) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere."""
    strictly_better = False
    for objective in objectives:
        va, vb = a[objective.name], b[objective.name]
        if objective.better(vb, va):
            return False
        if objective.better(va, vb):
            strictly_better = True
    return strictly_better


class ParetoFront:
    """Incremental non-dominated set over feasible trials.

    Invariant (pinned by ``tests/test_dse_adaptive.py``): after any
    sequence of :meth:`consider` calls, no member dominates another, and
    every feasible considered trial is either a member or dominated by
    one.
    """

    def __init__(self, objectives: Sequence[Objective]) -> None:
        self.objectives = tuple(objectives)
        self._members: List[TrialRecord] = []

    def consider(self, trial: TrialRecord) -> bool:
        """Offer a trial; returns True when it enters the front."""
        if not trial.feasible:
            return False
        if any(objective.name not in trial.values for objective in self.objectives):
            return False
        for member in self._members:
            if dominates(member.values, trial.values, self.objectives):
                return False
        self._members = [
            member
            for member in self._members
            if not dominates(trial.values, member.values, self.objectives)
        ]
        self._members.append(trial)
        return True

    @property
    def members(self) -> Tuple[TrialRecord, ...]:
        """Front members, ordered by trial number (deterministic)."""
        return tuple(sorted(self._members, key=lambda t: t.number))

    def __len__(self) -> int:
        return len(self._members)


@dataclass(frozen=True)
class StudySpec:
    """Everything that pins a study's identity (written into the header).

    Resume refuses to continue a file whose header disagrees with the
    requested spec — silently mixing sampler settings or seeds would
    destroy the reproducibility contract.
    """

    name: str
    models: Tuple[str, ...]
    device: str
    sampler: str
    seed: int
    objectives: Tuple[Objective, ...]
    space: SearchSpace
    batch: int = 8
    #: A sub-grid batch may evaluate at most ``subgrid_cap * len(group)``
    #: grid points; larger cross products fall back to per-trial points.
    subgrid_cap: int = 8

    def __post_init__(self) -> None:
        if not self.objectives:
            raise StudyError("a study needs at least one objective")
        if self.batch < 1 or self.subgrid_cap < 1:
            raise StudyError("batch and subgrid_cap must be >= 1")

    @property
    def primary(self) -> Objective:
        """The first objective drives the TPE good/bad split."""
        return self.objectives[0]

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": "header",
            "schema": STUDY_SCHEMA,
            "name": self.name,
            "models": list(self.models),
            "device": self.device,
            "sampler": self.sampler,
            "seed": self.seed,
            "objectives": [[o.name, o.direction] for o in self.objectives],
            "space": self.space.to_json(),
            "batch": self.batch,
            "subgrid_cap": self.subgrid_cap,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "StudySpec":
        if data.get("schema") != STUDY_SCHEMA:
            raise StudyError(
                f"unsupported study schema {data.get('schema')!r} "
                f"(expected {STUDY_SCHEMA!r})"
            )
        for key in ("name", "models", "device", "sampler", "seed", "objectives",
                    "space", "batch", "subgrid_cap"):
            if key not in data:
                raise StudyError(f"study header missing {key!r}")
        return cls(
            name=str(data["name"]),
            models=tuple(str(m) for m in data["models"]),
            device=str(data["device"]),
            sampler=str(data["sampler"]),
            seed=int(data["seed"]),
            objectives=tuple(
                Objective(str(name), str(direction))
                for name, direction in data["objectives"]
            ),
            space=SearchSpace.from_json(data["space"]),
            batch=int(data["batch"]),
            subgrid_cap=int(data["subgrid_cap"]),
        )


class Study:
    """A persisted (or in-memory) adaptive-DSE study.

    The on-disk format is JSON lines, append-only during a run:

    - line 1: the header (:meth:`StudySpec.to_json`);
    - one record per trial, in trial order;
    - one ``round_end`` marker after each completed sampler round, carrying
      the cumulative unique-evaluated-point count as an integrity
      cross-check.

    Pass ``path=None`` for a purely in-memory study (tests, quick CLI
    runs without persistence).
    """

    def __init__(self, spec: StudySpec, path: Optional[str] = None) -> None:
        self.spec = spec
        self.path = path
        self.trials: List[TrialRecord] = []
        self.front = ParetoFront(spec.objectives)
        #: Cumulative count of unique grid points evaluated (set by the
        #: search loop; persisted in round_end markers).
        self.evaluated_points = 0
        self.rounds_complete = 0

    # ---- creation / loading -------------------------------------------

    @classmethod
    def create(cls, spec: StudySpec, path: Optional[str] = None) -> "Study":
        """Start a fresh study; refuses to overwrite an existing file."""
        study = cls(spec, path)
        if path is not None:
            if os.path.exists(path):
                raise StudyError(
                    f"{path}: study file already exists (pass resume=True "
                    f"to continue it, or remove the file)"
                )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(spec.to_json()) + "\n")
        return study

    @classmethod
    def load(
        cls,
        path: str,
        spec: Optional[StudySpec] = None,
        trim_partial: bool = True,
    ) -> "Study":
        """Load a study file, trimming a killed run's incomplete tail.

        Interior corruption (a malformed or invalid record before the last
        complete round) raises :class:`StudyError` naming the line. A
        partial *final* line or trials past the last ``round_end`` marker
        are the footprint of a killed process; with ``trim_partial`` they
        are dropped (and the file rewritten without them) so the next
        round re-runs deterministically. When ``spec`` is given, the file
        header must match it exactly.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as error:
            raise StudyError(f"{path}: cannot read study file: {error}")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise StudyError(f"{path}: empty study file (no header record)")

        def _parse(lineno: int, line: str) -> Mapping[str, object]:
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise _Partial(lineno, f"{path}:{lineno}: malformed JSON: {error}")
            if not isinstance(data, dict) or "kind" not in data:
                raise StudyError(
                    f"{path}:{lineno}: record is not an object with a 'kind'"
                )
            return data

        class _Partial(Exception):
            def __init__(self, lineno: int, message: str) -> None:
                self.lineno = lineno
                self.message = message

        try:
            header = _parse(1, lines[0])
        except _Partial as partial:
            raise StudyError(partial.message)
        if header.get("kind") != "header":
            raise StudyError(f"{path}:1: first record must be the study header")
        file_spec = StudySpec.from_json(header)
        if spec is not None and file_spec != spec:
            raise StudyError(
                f"{path}: study header does not match the requested "
                f"configuration — refusing to resume (same space, sampler, "
                f"seed and objectives are required for reproducible resume)"
            )

        study = cls(file_spec, path)
        pending: List[TrialRecord] = []
        keep_lines = 1  # header
        next_number = 0
        partial_reason: Optional[str] = None
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                data = _parse(lineno, line)
            except _Partial as partial:
                if lineno == len(lines):
                    partial_reason = partial.message
                    break
                raise StudyError(partial.message)
            kind = data["kind"]
            if kind == "trial":
                record = TrialRecord.from_json(data)
                if record.number != next_number:
                    raise StudyError(
                        f"{path}:{lineno}: trial number {record.number} out of "
                        f"sequence (expected {next_number})"
                    )
                _validate_params(file_spec.space, record, path, lineno)
                next_number += 1
                pending.append(record)
            elif kind == "round_end":
                for key in ("round", "evaluated_points"):
                    if key not in data:
                        raise StudyError(f"{path}:{lineno}: round_end missing {key!r}")
                if int(data["round"]) != study.rounds_complete:
                    raise StudyError(
                        f"{path}:{lineno}: round_end for round {data['round']} "
                        f"out of sequence (expected {study.rounds_complete})"
                    )
                for record in pending:
                    study._admit(record)
                pending = []
                study.rounds_complete = int(data["round"]) + 1
                study.evaluated_points = int(data["evaluated_points"])
                keep_lines = lineno
            else:
                raise StudyError(f"{path}:{lineno}: unknown record kind {kind!r}")

        trimmed = len(lines) - keep_lines
        if trimmed and not trim_partial:
            reason = partial_reason or (
                f"{path}: {trimmed} record(s) past the last complete round"
            )
            raise StudyError(reason)
        if trimmed:
            # Rewrite without the incomplete tail; the next round re-runs
            # deterministically and regenerates identical records.
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines[:keep_lines]) + "\n")
        return study

    # ---- appending ----------------------------------------------------

    def _admit(self, record: TrialRecord) -> None:
        self.trials.append(record)
        self.front.consider(record)

    def append_trial(self, record: TrialRecord) -> None:
        """Record one evaluated trial (and persist it immediately)."""
        if record.number != len(self.trials):
            raise StudyError(
                f"trial number {record.number} out of sequence "
                f"(expected {len(self.trials)})"
            )
        self._admit(record)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record.to_json()) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def end_round(self, round_index: int, evaluated_points: int) -> None:
        """Mark a sampler round complete (the resume cut point)."""
        self.rounds_complete = round_index + 1
        self.evaluated_points = evaluated_points
        if self.path is not None:
            marker = {
                "kind": "round_end",
                "round": round_index,
                "evaluated_points": evaluated_points,
            }
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(marker) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    # ---- queries ------------------------------------------------------

    def best(self, objective: Optional[str] = None) -> Optional[TrialRecord]:
        """The best feasible trial on one objective (default: primary)."""
        name = objective or self.spec.primary.name
        direction = next(
            (o for o in self.spec.objectives if o.name == name), None
        )
        if direction is None:
            raise KeyError(f"study has no objective named {name!r}")
        candidates = [
            t for t in self.trials if t.feasible and name in t.values
        ]
        if not candidates:
            return None
        best = candidates[0]
        for trial in candidates[1:]:
            if direction.better(trial.values[name], best.values[name]):
                best = trial
        return best

    def sampled_count(self) -> int:
        return sum(1 for t in self.trials if t.origin == ORIGIN_SAMPLED)


def _validate_params(
    space: SearchSpace, record: TrialRecord, path: str, lineno: int
) -> None:
    if tuple(record.params.keys()) != space.names:
        raise StudyError(
            f"{path}:{lineno}: trial {record.number} params do not cover the "
            f"space axes {space.names}"
        )
    for name, value in record.params.items():
        if value not in space.values(name):
            raise StudyError(
                f"{path}:{lineno}: trial {record.number} param {name}={value!r} "
                f"is not a candidate of that axis"
            )


def parse_objectives(
    text: str, known: Mapping[str, str]
) -> Tuple[Objective, ...]:
    """Parse a CLI ``--objectives a,b,c`` list against known directions."""
    names = [name.strip() for name in text.split(",") if name.strip()]
    if not names:
        raise StudyError("empty objective list")
    unknown = [name for name in names if name not in known]
    if unknown:
        raise StudyError(
            f"unknown objective(s) {unknown}; choose from {sorted(known)}"
        )
    if len(set(names)) != len(names):
        raise StudyError("duplicate objectives")
    return tuple(Objective(name, known[name]) for name in names)
