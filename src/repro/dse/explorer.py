"""Design space exploration flow (paper Section 5.2, Figures 5-7).

The flow mirrors the paper's stages:

1. **Network analysis** — encode (or synthesize statistics for) the pruned
   quantized model; derive the buffer depths D_w / D_q from the deepest
   kernel streams and the sharing factor N from the minimum
   accumulate/multiply intensity ratio (Table 1's last column).
2. **N_knl sweep** (Figure 6) — with preset S_ec and N_cu, evaluate the
   Performance Model across N_knl and maximize the *normalized performance
   boost*: throughput gain per logic gain, which peaks where the fixed
   per-accelerator overhead has amortized but quantization/imbalance losses
   have not yet taken over.
3. **Characterization** — fast compiles (synthetic here) fit the resource
   constants C0..C7.
4. **S_ec x N_cu sweep** (Figure 7) — evaluate attainable throughput over
   the grid under full DSP/memory utilization constraints and a logic
   budget (75% in the paper); several near-tied candidates are returned,
   exactly as the paper carries "several design candidates with close
   logic utilization ratio" into final implementation.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.workload import ModelWorkload
from ..telemetry.caches import CacheStats, register_cache
from .bandwidth import BandwidthReport, bandwidth_report
from .compiled import compile_workload
from .parallel import map_jobs
from .performance import (
    MODE_QUANTIZED,
    ModelPerformance,
    estimate_model,
    share_factor_from_workloads,
)
from .resources import (
    DEFAULT_RESOURCE_MODEL,
    ResourceEstimate,
    ResourceModel,
    ResourceUtilization,
    next_power_of_two,
)
from .schemes import ModelSchemePlan, plan_model_schemes


@dataclass(frozen=True)
class BufferSizing:
    """Derived on-chip buffer depths (stage 1 of the flow)."""

    d_f: int
    d_w: int
    d_q: int


#: ``size_buffers`` results are memoized per (workload identity, s_ec):
#: ``sweep_sec_ncu`` and ``explore_joint`` ask for the same sizing once per
#: grid column instead of once per grid point. Entries keep a strong
#: reference to the workload so an ``id()`` can never be recycled while its
#: key is live; eviction is purely LRU.
BUFFER_CACHE_CAPACITY = 1024

_buffer_cache: "OrderedDict[Tuple[int, int], Tuple[ModelWorkload, BufferSizing]]" = (
    OrderedDict()
)
_buffer_lock = threading.Lock()
_buffer_hits = 0
_buffer_misses = 0
_buffer_evictions = 0


def size_buffers(workload: ModelWorkload, s_ec: int) -> BufferSizing:
    """Derive buffer depths from the encoded model's statistics (memoized).

    - D_w covers the deepest single-kernel index stream (power of two);
    - D_q covers the deepest per-kernel Q-Table with 2x margin for the
      count-field splits of heavy value groups;
    - D_f covers the larger of the deepest FC input vector and the
      steady-state conv prefetch window (in S_ec-wide entries), with an 8%
      allocation margin, rounded to a multiple of 32.

    Results are cached per (workload identity, s_ec); the full layer scan
    runs once per distinct S_ec even across repeated sweeps.
    """
    global _buffer_hits, _buffer_misses, _buffer_evictions
    key = (id(workload), s_ec)
    with _buffer_lock:
        hit = _buffer_cache.get(key)
        if hit is not None:
            _buffer_cache.move_to_end(key)
            _buffer_hits += 1
            return hit[1]
        _buffer_misses += 1
    sizing = _size_buffers_uncached(workload, s_ec)
    with _buffer_lock:
        _buffer_cache[key] = (workload, sizing)
        while len(_buffer_cache) > BUFFER_CACHE_CAPACITY:
            _buffer_cache.popitem(last=False)
            _buffer_evictions += 1
    return sizing


def clear_buffer_cache() -> None:
    """Drop every memoized :func:`size_buffers` result."""
    global _buffer_hits, _buffer_misses, _buffer_evictions
    with _buffer_lock:
        _buffer_cache.clear()
        _buffer_hits = 0
        _buffer_misses = 0
        _buffer_evictions = 0


def buffer_cache_size() -> int:
    with _buffer_lock:
        return len(_buffer_cache)


def buffer_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the buffer-sizing memo."""
    with _buffer_lock:
        return CacheStats(
            hits=_buffer_hits,
            misses=_buffer_misses,
            evictions=_buffer_evictions,
            size=len(_buffer_cache),
            capacity=BUFFER_CACHE_CAPACITY,
            name="dse.buffers",
        )


register_cache("dse.buffers", buffer_cache_stats)


def _size_buffers_uncached(workload: ModelWorkload, s_ec: int) -> BufferSizing:
    max_nnz = max(
        (max((k.nonzeros for k in layer.kernels), default=0) for layer in workload.layers),
        default=0,
    )
    max_distinct = max(
        (max((k.distinct_values for k in layer.kernels), default=0) for layer in workload.layers),
        default=0,
    )
    entries_needed = 1
    for layer in workload.layers:
        spec = layer.spec
        if spec.is_fc:
            need = math.ceil(spec.input_size / s_ec)
        else:
            # Two output rows of steady-state stripe (double-buffer halves).
            cols_in = (spec.out_cols - 1) * spec.stride + spec.kernel
            need = math.ceil(spec.in_channels * 2 * spec.stride * cols_in / s_ec)
        entries_needed = max(entries_needed, need)
    d_f = int(math.ceil(entries_needed * 1.08 / 32)) * 32
    return BufferSizing(
        d_f=d_f,
        d_w=next_power_of_two(max_nnz),
        d_q=next_power_of_two(max(2 * max_distinct, 2)),
    )


@dataclass(frozen=True)
class NknlPoint:
    """One point of the Figure 6 sweep."""

    n_knl: int
    throughput_gops: float
    logic_alms: int
    normalized_boost: float
    feasible: bool


def _eval_nknl_point(job) -> Tuple[int, float, int, bool]:
    """Evaluate one N_knl sweep point: (n_knl, perf, logic, feasible).

    Module-level so :func:`repro.dse.parallel.map_jobs` can ship it to a
    process pool; the relative boost is derived afterwards because it
    depends on the sweep's first point.
    """
    workload, resources, config, device, logic_limit = job
    perf = estimate_model(workload, config, mode=MODE_QUANTIZED).throughput_gops
    estimate = resources.estimate(config)
    feasible = True
    if device is not None:
        feasible = estimate.utilization(device).fits(logic_limit)
    return config.n_knl, perf, estimate.alms, feasible


def sweep_nknl_reference(
    workload: ModelWorkload,
    resources: ResourceModel,
    n_share: int,
    device: Optional[FPGADevice] = None,
    n_cu: int = 3,
    s_ec: int = 20,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    n_knl_range: Sequence[int] = tuple(range(2, 25)),
    workers: Optional[int] = None,
) -> List[NknlPoint]:
    """Per-point reference for :func:`sweep_nknl` (differential baseline).

    Evaluates every N_knl with the scalar `estimate_model` path. ``workers``
    fans the point evaluations out over a process pool; results are
    identical and identically ordered for any worker count.
    """
    buffers = size_buffers(workload, s_ec)
    jobs = []
    for n_knl in n_knl_range:
        config = AcceleratorConfig(
            n_cu=n_cu,
            n_knl=n_knl,
            n_share=n_share,
            s_ec=s_ec,
            d_f=buffers.d_f,
            d_w=buffers.d_w,
            d_q=buffers.d_q,
            freq_mhz=freq_mhz,
        )
        jobs.append((workload, resources, config, device, logic_limit))
    raw = map_jobs(_eval_nknl_point, jobs, workers)
    return _nknl_points_from_raw(raw)


def _nknl_points_from_raw(raw) -> List[NknlPoint]:
    """Derive normalized boosts (relative to the sweep's first point)."""
    points = []
    base_perf: Optional[float] = None
    base_logic: Optional[float] = None
    for n_knl, perf, logic, feasible in raw:
        if base_perf is None:
            base_perf, base_logic = perf, float(logic)
        boost = (perf / base_perf) / (logic / base_logic)
        points.append(
            NknlPoint(
                n_knl=n_knl,
                throughput_gops=perf,
                logic_alms=logic,
                normalized_boost=boost,
                feasible=feasible,
            )
        )
    return points


def sweep_nknl(
    workload: ModelWorkload,
    resources: ResourceModel,
    n_share: int,
    device: Optional[FPGADevice] = None,
    n_cu: int = 3,
    s_ec: int = 20,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    n_knl_range: Sequence[int] = tuple(range(2, 25)),
    workers: Optional[int] = None,
    compiled: bool = True,
) -> List[NknlPoint]:
    """Figure 6: normalized performance boost across N_knl.

    Boost is (throughput gain) / (logic gain), both relative to the first
    point of the sweep. Points whose DSP/memory/logic demand exceeds the
    device (when given) are marked infeasible, which is what bounds the
    sweep from above: at S_ec=20, N=4, N_cu=3 the GXA7's 256 DSPs admit at
    most N_knl=15.

    The sweep runs on the compiled whole-grid evaluator by default
    (:mod:`repro.dse.compiled`), point-for-point float-identical to the
    per-point path; ``compiled=False`` selects
    :func:`sweep_nknl_reference`, where ``workers`` fans points over a
    process pool (the compiled path is array code and ignores it).
    """
    if not compiled:
        return sweep_nknl_reference(
            workload,
            resources,
            n_share,
            device=device,
            n_cu=n_cu,
            s_ec=s_ec,
            freq_mhz=freq_mhz,
            logic_limit=logic_limit,
            n_knl_range=n_knl_range,
            workers=workers,
        )
    evaluation = compile_workload(workload, n_share).evaluate_grid(
        resources,
        device=device,
        n_knl_values=tuple(n_knl_range),
        s_ec_values=(s_ec,),
        n_cu_values=(n_cu,),
        freq_mhz=freq_mhz,
        logic_limit=logic_limit,
    )
    raw = [
        (
            n_knl,
            float(evaluation.throughput_gops[i, 0, 0]),
            int(evaluation.alms[i, 0, 0]),
            bool(evaluation.feasible[i, 0, 0]),
        )
        for i, n_knl in enumerate(evaluation.n_knl_values)
    ]
    return _nknl_points_from_raw(raw)


def optimal_nknl(points: Sequence[NknlPoint]) -> int:
    """The feasible N_knl maximizing normalized boost (paper: 14)."""
    feasible = [p for p in points if p.feasible]
    if not feasible:
        raise ValueError("no feasible point in the N_knl sweep")
    return max(feasible, key=lambda p: p.normalized_boost).n_knl


@dataclass(frozen=True)
class GridPoint:
    """One point of the Figure 7 S_ec x N_cu exploration."""

    config: AcceleratorConfig
    throughput_gops: float
    resources: ResourceEstimate
    utilization: ResourceUtilization
    feasible: bool

    @property
    def s_ec(self) -> int:
        return self.config.s_ec

    @property
    def n_cu(self) -> int:
        return self.config.n_cu


def _eval_grid_point(job) -> GridPoint:
    """Evaluate one (S_ec, N_cu) grid point (module-level for map_jobs)."""
    workload, device, resources, config, logic_limit = job
    estimate = resources.estimate(config)
    utilization = estimate.utilization(device)
    feasible = utilization.fits(logic_limit)
    perf = estimate_model(workload, config, mode=MODE_QUANTIZED)
    return GridPoint(
        config=config,
        throughput_gops=perf.throughput_gops,
        resources=estimate,
        utilization=utilization,
        feasible=feasible,
    )


def sweep_sec_ncu_reference(
    workload: ModelWorkload,
    device: FPGADevice,
    resources: ResourceModel,
    n_knl: int,
    n_share: int,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    s_ec_range: Sequence[int] = tuple(range(4, 33, 2)),
    n_cu_range: Sequence[int] = tuple(range(1, 7)),
    workers: Optional[int] = None,
) -> List[GridPoint]:
    """Per-point reference for :func:`sweep_sec_ncu` (differential baseline).

    ``workers`` fans the grid out over a process pool; point order (N_cu
    outer, S_ec inner) and values are identical for any worker count.
    """
    jobs = []
    for n_cu in n_cu_range:
        for s_ec in s_ec_range:
            buffers = size_buffers(workload, s_ec)
            config = AcceleratorConfig(
                n_cu=n_cu,
                n_knl=n_knl,
                n_share=n_share,
                s_ec=s_ec,
                d_f=buffers.d_f,
                d_w=buffers.d_w,
                d_q=buffers.d_q,
                freq_mhz=freq_mhz,
            )
            jobs.append((workload, device, resources, config, logic_limit))
    return map_jobs(_eval_grid_point, jobs, workers)


def sweep_sec_ncu(
    workload: ModelWorkload,
    device: FPGADevice,
    resources: ResourceModel,
    n_knl: int,
    n_share: int,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    s_ec_range: Sequence[int] = tuple(range(4, 33, 2)),
    n_cu_range: Sequence[int] = tuple(range(1, 7)),
    workers: Optional[int] = None,
    compiled: bool = True,
) -> List[GridPoint]:
    """Figure 7: attainable throughput across the S_ec x N_cu grid.

    Point order is N_cu outer, S_ec inner. The grid is scored by the
    compiled whole-grid evaluator by default (float-identical to the
    per-point path); ``compiled=False`` selects
    :func:`sweep_sec_ncu_reference`, where ``workers`` fans points over a
    process pool (the compiled path ignores it).
    """
    if not compiled:
        return sweep_sec_ncu_reference(
            workload,
            device,
            resources,
            n_knl=n_knl,
            n_share=n_share,
            freq_mhz=freq_mhz,
            logic_limit=logic_limit,
            s_ec_range=s_ec_range,
            n_cu_range=n_cu_range,
            workers=workers,
        )
    evaluation = compile_workload(workload, n_share).evaluate_grid(
        resources,
        device=device,
        n_knl_values=(n_knl,),
        s_ec_values=tuple(s_ec_range),
        n_cu_values=tuple(n_cu_range),
        freq_mhz=freq_mhz,
        logic_limit=logic_limit,
    )
    points = []
    for k, _ in enumerate(evaluation.n_cu_values):
        for j, _ in enumerate(evaluation.s_ec_values):
            points.append(
                GridPoint(
                    config=evaluation.config_at(0, j, k),
                    throughput_gops=float(evaluation.throughput_gops[0, j, k]),
                    resources=evaluation.estimate_at(0, j, k),
                    utilization=evaluation.utilization_at(0, j, k),
                    feasible=bool(evaluation.feasible[0, j, k]),
                )
            )
    return points


def best_candidates(grid: Sequence[GridPoint], count: int = 5) -> List[GridPoint]:
    """Top feasible grid points by throughput (the paper's candidate set)."""
    feasible = [point for point in grid if point.feasible]
    return sorted(feasible, key=lambda p: -p.throughput_gops)[:count]


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of the complete flow for one model on one device."""

    model: str
    device: FPGADevice
    n_share: int
    buffers: BufferSizing
    nknl_sweep: Tuple[NknlPoint, ...]
    chosen_n_knl: int
    grid: Tuple[GridPoint, ...]
    candidates: Tuple[GridPoint, ...]
    chosen: AcceleratorConfig
    performance: ModelPerformance
    bandwidth: BandwidthReport
    #: How the space was searched ('exhaustive' here; the adaptive flow
    #: reports 'tpe' / 'random') and the seed that pins any randomness.
    sampler: str = "exhaustive"
    seed: Optional[int] = None
    #: Per-layer heterogeneous scheme assignment for the chosen
    #: configuration (:func:`repro.dse.schemes.plan_model_schemes` on the
    #: execution basis), sharing the device's resource budget with the
    #: chosen design point.
    scheme_plan: Optional["ModelSchemePlan"] = None


def explore(
    workload: ModelWorkload,
    device: FPGADevice,
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    preset_n_cu: int = 3,
    preset_s_ec: int = 20,
    workers: Optional[int] = None,
    compiled: bool = True,
    seed: Optional[int] = None,
) -> ExplorationResult:
    """Run the full exploration flow of Figure 5.

    Both sweeps run on the compiled whole-grid evaluator by default;
    ``compiled=False`` selects the per-point reference path, where
    ``workers`` parallelizes the sweeps over a process pool. The chosen
    configuration and every reported point are identical for any
    combination of the two knobs.

    The exhaustive flow has no internal randomness; ``seed`` records the
    provenance of the (upstream-synthesized) workload in the result so
    downstream reports can reproduce the run bit for bit.
    """
    n_share = share_factor_from_workloads(workload.layers)
    nknl_points = sweep_nknl(
        workload,
        resources,
        n_share,
        device=device,
        n_cu=preset_n_cu,
        s_ec=preset_s_ec,
        freq_mhz=freq_mhz,
        logic_limit=logic_limit,
        workers=workers,
        compiled=compiled,
    )
    n_knl = optimal_nknl(nknl_points)
    grid = sweep_sec_ncu(
        workload,
        device,
        resources,
        n_knl=n_knl,
        n_share=n_share,
        freq_mhz=freq_mhz,
        logic_limit=logic_limit,
        workers=workers,
        compiled=compiled,
    )
    candidates = best_candidates(grid)
    if not candidates:
        raise RuntimeError(
            f"no feasible configuration for {workload.name!r} on {device.name}"
        )
    best = candidates[0].config
    buffers = size_buffers(workload, best.s_ec)
    chosen = AcceleratorConfig(
        n_cu=best.n_cu,
        n_knl=n_knl,
        n_share=n_share,
        s_ec=best.s_ec,
        d_f=buffers.d_f,
        d_w=buffers.d_w,
        d_q=buffers.d_q,
        freq_mhz=freq_mhz,
    )
    performance = estimate_model(workload, chosen, mode=MODE_QUANTIZED)
    bandwidth = bandwidth_report(
        workload, chosen, device, performance.images_per_second
    )
    scheme_plan = plan_model_schemes(
        workload,
        chosen,
        device=device,
        resources=resources,
        logic_limit=logic_limit,
    )
    return ExplorationResult(
        model=workload.name,
        device=device,
        n_share=n_share,
        buffers=buffers,
        nknl_sweep=tuple(nknl_points),
        chosen_n_knl=n_knl,
        grid=tuple(grid),
        candidates=tuple(candidates),
        chosen=chosen,
        performance=performance,
        bandwidth=bandwidth,
        sampler="exhaustive",
        seed=seed,
        scheme_plan=scheme_plan,
    )
