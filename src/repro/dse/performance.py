"""Performance Model (paper Section 5.1).

The paper's theoretical execution time for convolution layer *l* is driven
by the number of accumulations: the accumulator array retires
``N_cu * N_knl * S_ec`` accumulates per cycle, so

    T_l = max(#ACC_l, N * #MULT_l) / (N_acc * Freq)

(the ``N * #MULT`` term captures layers whose accumulate/multiply intensity
ratio falls below the sharing factor N — they become multiplier-bound, the
effect the flow's choice of N is meant to avoid). The average performance
in image/s is ``1 / sum_l T_l``, and throughput in GOP/s follows the
paper's convention of dividing the *original dense* op count by the
inference time.

Two fidelity levels:

- ``ideal`` — the closed-form above, what the exploration flow of Figure 5
  uses (fast enough for thousands of design points);
- ``quantized`` — adds the discrete losses the event simulator exhibits:
  kernel-group ceiling (M may not divide N_knl * N_cu), vector-step
  ceiling on the prefetch windows, and per-group engine imbalance taken
  from the actual kernel statistics.

This module is the *per-point reference* implementation: it scores one
(workload, config) pair at a time, re-deriving the kernel statistics and
walking the prefetch windows in Python. The DSE sweeps score the whole
``N_knl x S_ec x N_cu`` space at once through the float-identical compiled
evaluator in :mod:`repro.dse.compiled`; this path remains the differential
baseline (``tests/test_dse_compiled.py``) and the single-point scorer used
once a configuration is chosen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..hw.config import AcceleratorConfig
from ..hw.tiling import plan_windows
from ..hw.workload import LayerWorkload, ModelWorkload

MODE_IDEAL = "ideal"
MODE_QUANTIZED = "quantized"
_MODES = (MODE_IDEAL, MODE_QUANTIZED)


@dataclass(frozen=True)
class LayerPerformance:
    """Predicted cycles for one layer."""

    layer: str
    cycles_per_image: float
    bound: str  # 'accumulate' or 'multiply'

    def seconds_per_image(self, freq_mhz: float) -> float:
        return self.cycles_per_image / (freq_mhz * 1e6)


@dataclass(frozen=True)
class ModelPerformance:
    """Predicted whole-model performance."""

    model: str
    config: AcceleratorConfig
    layers: Tuple[LayerPerformance, ...]
    dense_ops: int

    @property
    def cycles_per_image(self) -> float:
        return float(sum(layer.cycles_per_image for layer in self.layers))

    @property
    def seconds_per_image(self) -> float:
        return self.cycles_per_image / (self.config.freq_mhz * 1e6)

    @property
    def images_per_second(self) -> float:
        return 1.0 / self.seconds_per_image

    @property
    def throughput_gops(self) -> float:
        """GOP/s on the paper's dense-op basis."""
        return self.dense_ops / self.seconds_per_image / 1e9

    @property
    def multiplier_bound_layers(self) -> Tuple[str, ...]:
        return tuple(l.layer for l in self.layers if l.bound == "multiply")


def _ideal_layer_cycles(
    workload: LayerWorkload, config: AcceleratorConfig
) -> Tuple[float, str]:
    acc = workload.accumulate_ops
    mult = workload.multiply_ops * config.n_share
    cycles = max(acc, mult) / config.total_accumulators
    return cycles, ("accumulate" if acc >= mult else "multiply")


def _quantized_layer_cycles(
    workload: LayerWorkload, config: AcceleratorConfig
) -> Tuple[float, str]:
    spec = workload.spec
    plan = plan_windows(spec, config)
    # Exact vector steps, window by window (edge windows are smaller).
    steps_total = 0
    for window_index in range(plan.windows):
        row_tile, col_tile = divmod(window_index, plan.g_c)
        rows = min(plan.window_rows, spec.out_rows - row_tile * plan.window_rows)
        cols = min(plan.window_cols, spec.out_cols - col_tile * plan.window_cols)
        steps_total += math.ceil(rows * cols / config.s_ec)
    nonzeros = workload.nonzeros_array()
    distinct = workload.distinct_array()
    # Engine cycles per window step group: slower of the two stages.
    engine = np.maximum(nonzeros, distinct * config.n_share)
    groups = math.ceil(len(engine) / config.n_knl)
    pad = groups * config.n_knl - len(engine)
    if pad:
        engine = np.concatenate([engine, np.zeros(pad, dtype=engine.dtype)])
    # Balanced grouping (the scheduler's default) sorts kernels by load
    # before chunking, which is what bounds intra-group imbalance.
    order = np.sort(engine)[::-1]
    group_max = order.reshape(groups, config.n_knl).max(axis=1)
    # The double-buffered (ping-pong) scheduler packs tasks of consecutive
    # windows onto idle CUs, so cross-CU packing is near-perfect and the
    # remaining losses are intra-group engine imbalance (the max() above)
    # and vector-step quantization (the ceil in `steps_total`).
    cycles = float(group_max.sum()) * steps_total / config.n_cu / plan.batch_images
    acc = workload.accumulate_ops
    mult = workload.multiply_ops * config.n_share
    return cycles, ("accumulate" if acc >= mult else "multiply")


def estimate_layer(
    workload: LayerWorkload, config: AcceleratorConfig, mode: str = MODE_IDEAL
) -> LayerPerformance:
    """Predict one layer's per-image cycles."""
    if mode not in _MODES:
        raise ValueError(f"unknown performance-model mode {mode!r}")
    if mode == MODE_IDEAL:
        cycles, bound = _ideal_layer_cycles(workload, config)
    else:
        cycles, bound = _quantized_layer_cycles(workload, config)
    return LayerPerformance(
        layer=workload.spec.name, cycles_per_image=cycles, bound=bound
    )


def estimate_model(
    workload: ModelWorkload, config: AcceleratorConfig, mode: str = MODE_IDEAL
) -> ModelPerformance:
    """Predict whole-model performance (paper Performance Model)."""
    layers = tuple(estimate_layer(layer, config, mode) for layer in workload.layers)
    return ModelPerformance(
        model=workload.name,
        config=config,
        layers=layers,
        dense_ops=workload.dense_ops,
    )


def share_factor_from_workloads(layers: Sequence[LayerWorkload]) -> int:
    """Choose N from the minimum accumulate/multiply intensity ratio.

    Paper Section 5.2: "the ratio of the arithmetic intensity between
    accumulate and multiply operations is analyzed and N is determined to
    fit the minimum ratio". Table 1's minimum ratio is CONV1_2's 3.4 and
    the paper's chosen N is 4: the sharing factor is the smallest integer
    covering the ratio (ceiling), which maximizes accumulators per DSP at
    the cost of making only the minimum-ratio layer marginally
    multiplier-bound. A ratio below 1 degenerates to N=1.
    """
    ratios = []
    for layer in layers:
        if layer.multiply_ops:
            ratios.append(layer.accumulate_ops / layer.multiply_ops)
    if not ratios:
        return 1
    return max(1, math.ceil(min(ratios)))
