"""Sensitivity of the exploration outcome to the platform constants.

The C0..C7 constants come from fitting a handful of characterization
compiles (plus measurement noise), so a natural question about the flow of
Figure 5 is how robust its *decision* is to calibration error. This module
perturbs each constant by ±X% and re-runs the S_ec x N_cu exploration,
recording how the best candidate and its throughput move — a tornado
analysis over the Resource Requirement Model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..hw.device import FPGADevice
from ..hw.workload import ModelWorkload
from .explorer import best_candidates, sweep_sec_ncu
from .resources import DEFAULT_RESOURCE_MODEL, ResourceModel

#: The constants the analysis perturbs.
CONSTANT_NAMES = ("c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7")


@dataclass(frozen=True)
class SensitivityEntry:
    """Exploration outcome under one constant's low/high perturbation."""

    constant: str
    low_gops: float
    high_gops: float
    low_choice: Tuple[int, int]  # (s_ec, n_cu)
    high_choice: Tuple[int, int]

    @property
    def swing_gops(self) -> float:
        """Throughput swing across the perturbation band."""
        return abs(self.high_gops - self.low_gops)

    @property
    def decision_stable(self) -> bool:
        """True when both perturbations pick the same design point."""
        return self.low_choice == self.high_choice


@dataclass(frozen=True)
class SensitivityResult:
    baseline_gops: float
    baseline_choice: Tuple[int, int]
    entries: Tuple[SensitivityEntry, ...]

    def ranked(self) -> List[SensitivityEntry]:
        """Entries sorted by throughput swing, largest first (tornado)."""
        return sorted(self.entries, key=lambda e: -e.swing_gops)

    def render(self) -> str:
        lines = [
            "resource-constant sensitivity (±20% tornado)",
            f"baseline: {self.baseline_gops:.1f} GOP/s at "
            f"S_ec={self.baseline_choice[0]}, N_cu={self.baseline_choice[1]}",
            f"{'constant':<9} {'low GOP/s':>10} {'high GOP/s':>11} "
            f"{'swing':>7} {'stable choice':>14}",
        ]
        for entry in self.ranked():
            lines.append(
                f"{entry.constant:<9} {entry.low_gops:>10.1f} "
                f"{entry.high_gops:>11.1f} {entry.swing_gops:>7.1f} "
                f"{'yes' if entry.decision_stable else 'no':>14}"
            )
        return "\n".join(lines)


def _best(workload: ModelWorkload, device: FPGADevice, model: ResourceModel):
    grid = sweep_sec_ncu(workload, device, model, n_knl=14, n_share=4)
    candidates = best_candidates(grid, count=1)
    if not candidates:
        return 0.0, (0, 0)
    best = candidates[0]
    return best.throughput_gops, (best.s_ec, best.n_cu)


def resource_sensitivity(
    workload: ModelWorkload,
    device: FPGADevice,
    perturbation: float = 0.2,
    base: ResourceModel = DEFAULT_RESOURCE_MODEL,
) -> SensitivityResult:
    """Tornado analysis: perturb each constant by ±perturbation."""
    if not 0.0 < perturbation < 1.0:
        raise ValueError("perturbation must be a fraction in (0, 1)")
    baseline_gops, baseline_choice = _best(workload, device, base)
    entries = []
    for name in CONSTANT_NAMES:
        value = getattr(base, name)
        low_model = replace(base, **{name: value * (1 - perturbation)})
        high_model = replace(base, **{name: value * (1 + perturbation)})
        low_gops, low_choice = _best(workload, device, low_model)
        high_gops, high_choice = _best(workload, device, high_model)
        entries.append(
            SensitivityEntry(
                constant=name,
                low_gops=low_gops,
                high_gops=high_gops,
                low_choice=low_choice,
                high_choice=high_choice,
            )
        )
    return SensitivityResult(
        baseline_gops=baseline_gops,
        baseline_choice=baseline_choice,
        entries=tuple(entries),
    )
