"""Joint exploration across several workloads.

The paper ships one bitstream per model (Table 3: AlexNet and VGG16 get
separate configurations differing only in buffer depths and achieved
clock). A deployment that must serve *both* without reconfiguration wants
a single design point that is good everywhere — the natural objective is
the worst-case normalized throughput across workloads (max-min fairness
against each workload's own best).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.workload import ModelWorkload
from .compiled import GridEvaluation, compile_workload
from .explorer import size_buffers, sweep_sec_ncu_reference
from .performance import MODE_QUANTIZED, estimate_model, share_factor_from_workloads
from .resources import DEFAULT_RESOURCE_MODEL, ResourceModel

#: The S_ec x N_cu exploration grid of Figure 7 (same axes as
#: :func:`repro.dse.explorer.sweep_sec_ncu`).
_S_EC_VALUES = tuple(range(4, 33, 2))
_N_CU_VALUES = tuple(range(1, 7))


@dataclass(frozen=True)
class JointPoint:
    """One configuration evaluated against every workload."""

    config: AcceleratorConfig
    throughput: Mapping[str, float]
    normalized: Mapping[str, float]
    feasible: bool

    @property
    def worst_normalized(self) -> float:
        """Max-min objective: the worst workload's fraction of its best."""
        return min(self.normalized.values())


@dataclass(frozen=True)
class JointExplorationResult:
    device: FPGADevice
    models: Tuple[str, ...]
    best_single: Mapping[str, float]
    chosen: JointPoint
    candidates: Tuple[JointPoint, ...]
    #: Provenance, mirroring :class:`repro.dse.explorer.ExplorationResult`:
    #: how the joint grid was enumerated, and the seed if a sampler was
    #: involved (the exhaustive sweep has none).
    sampler: str = "exhaustive"
    seed: Optional[int] = None

    def render(self) -> str:
        lines = [
            f"joint exploration on {self.device.name} for {', '.join(self.models)}",
            f"chosen: {self.chosen.config.describe()}",
        ]
        for model in self.models:
            lines.append(
                f"  {model:<10} {self.chosen.throughput[model]:7.1f} GOP/s "
                f"({self.chosen.normalized[model]:.1%} of its solo best "
                f"{self.best_single[model]:.1f})"
            )
        return "\n".join(lines)


def co_deployment_objectives(
    evaluations: Sequence[GridEvaluation],
) -> Dict[str, np.ndarray]:
    """Combine same-shape per-workload grids into co-deployment objectives.

    A single bitstream serving every workload is only as good as its
    worst case, so the combination is conservative elementwise:
    throughput is the minimum across workloads, power/utilization the
    maximum, efficiency the minimum, and a point is feasible only when it
    is feasible for *every* workload. The adaptive joint search
    (:mod:`repro.dse.adaptive`) scores multi-model studies through this
    seam.
    """
    if not evaluations:
        raise ValueError("need at least one grid evaluation")
    shape = evaluations[0].shape
    if any(e.shape != shape for e in evaluations):
        raise ValueError("grid evaluations must share one shape")
    combined: Dict[str, np.ndarray] = {
        "throughput_gops": np.minimum.reduce(
            [e.throughput_gops for e in evaluations]
        ),
        "total_power_w": np.maximum.reduce([e.power_w for e in evaluations]),
        "gops_per_watt": np.minimum.reduce(
            [e.gops_per_watt for e in evaluations]
        ),
        "feasible": np.logical_and.reduce([e.feasible for e in evaluations]),
    }
    if all(e.logic_util is not None for e in evaluations):
        combined["logic_util"] = np.maximum.reduce(
            [e.logic_util for e in evaluations]
        )
        combined["dsp_util"] = np.maximum.reduce(
            [e.dsp_util for e in evaluations]
        )
        combined["mem_util"] = np.maximum.reduce(
            [e.mem_util for e in evaluations]
        )
    return combined


def _joint_grids(
    workloads: Sequence[ModelWorkload],
    device: FPGADevice,
    resources: ResourceModel,
    n_share: int,
    n_knl: int,
    freq_mhz: float,
    logic_limit: float,
    workers: Optional[int],
    compiled: bool,
) -> Tuple[List[AcceleratorConfig], List[np.ndarray], List[np.ndarray], np.ndarray]:
    """Per-model grids in sweep order (N_cu outer, S_ec inner).

    Returns the candidate configs (buffer depths sized for the *first*
    workload — the covering re-derivation happens after selection), one
    flat throughput array per model, one per-model feasibility array
    (for solo bests), and the joint feasibility mask.

    The compiled path runs the whole-grid evaluator per workload and
    combines them through :func:`co_deployment_objectives`; the reference
    path scores every point individually (``workers`` fans it over a
    process pool) and reduces feasibility the same way — the differential
    tests pin the two float-identical.
    """
    flat = [
        (k, j)
        for k in range(len(_N_CU_VALUES))
        for j in range(len(_S_EC_VALUES))
    ]
    if compiled:
        evaluations = [
            compile_workload(workload, n_share).evaluate_grid(
                resources,
                device=device,
                n_knl_values=(n_knl,),
                s_ec_values=_S_EC_VALUES,
                n_cu_values=_N_CU_VALUES,
                freq_mhz=freq_mhz,
                logic_limit=logic_limit,
            )
            for workload in workloads
        ]
        combined = co_deployment_objectives(evaluations)
        configs = [evaluations[0].config_at(0, j, k) for k, j in flat]
        throughput = [
            np.array([float(e.throughput_gops[0, j, k]) for k, j in flat])
            for e in evaluations
        ]
        per_model = [
            np.array([bool(e.feasible[0, j, k]) for k, j in flat])
            for e in evaluations
        ]
        joint = np.array([bool(combined["feasible"][0, j, k]) for k, j in flat])
        return configs, throughput, per_model, joint
    grids = [
        sweep_sec_ncu_reference(
            workload,
            device,
            resources,
            n_knl=n_knl,
            n_share=n_share,
            freq_mhz=freq_mhz,
            logic_limit=logic_limit,
            workers=workers,
        )
        for workload in workloads
    ]
    configs = [point.config for point in grids[0]]
    throughput = [
        np.array([point.throughput_gops for point in grid]) for grid in grids
    ]
    per_model = [
        np.array([point.feasible for point in grid]) for grid in grids
    ]
    # Same reduction co_deployment_objectives applies to compiled grids.
    joint = np.logical_and.reduce(per_model)
    return configs, throughput, per_model, joint


def explore_joint(
    workloads: Sequence[ModelWorkload],
    device: FPGADevice,
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    n_knl: int = 14,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    candidates: int = 5,
    workers: Optional[int] = None,
    compiled: bool = True,
    seed: Optional[int] = None,
) -> JointExplorationResult:
    """Pick one configuration serving every workload (max-min normalized).

    The sharing factor N is set by the most multiply-intensive workload
    (smallest intensity ratio), since an under-provisioned multiplier
    array hurts everyone.

    The S_ec x N_cu grid is scored per workload by the compiled
    whole-grid evaluator and combined through
    :func:`co_deployment_objectives` by default; ``compiled=False``
    selects the per-point reference path, where ``workers`` parallelizes
    each grid over a process pool. The chosen point and candidate
    ranking are identical either way. ``seed`` is pure provenance (the
    exhaustive sweep has no randomness), mirroring
    :class:`repro.dse.explorer.ExplorationResult`.
    """
    if not workloads:
        raise ValueError("need at least one workload")
    # The joint N must fit the smallest intensity ratio across *all*
    # workloads — the most multiply-intensive model dictates the
    # multiplier provisioning.
    n_share = min(
        share_factor_from_workloads(workload.layers) for workload in workloads
    )
    models = tuple(workload.name for workload in workloads)
    # Buffer depths differ per model, so every config is evaluated against
    # each workload with that workload's own buffer sizing.
    configs, throughput_arrays, feasible_arrays, feasible_mask = _joint_grids(
        workloads, device, resources, n_share, n_knl, freq_mhz,
        logic_limit, workers, compiled,
    )
    best_single = {
        name: float(
            max(
                (
                    t
                    for t, ok in zip(throughput_arrays[m], feasible_arrays[m])
                    if ok
                ),
                default=0.0,
            )
        )
        for m, name in enumerate(models)
    }
    joint: List[JointPoint] = []
    for index, config in enumerate(configs):
        throughput = {
            name: float(throughput_arrays[m][index])
            for m, name in enumerate(models)
        }
        normalized = {
            name: (throughput[name] / best_single[name] if best_single[name] else 0.0)
            for name in models
        }
        joint.append(
            JointPoint(
                config=config,
                throughput=throughput,
                normalized=normalized,
                feasible=bool(feasible_mask[index]),
            )
        )
    feasible_points = [point for point in joint if point.feasible]
    if not feasible_points:
        raise RuntimeError("no jointly feasible configuration")
    ranked = sorted(feasible_points, key=lambda p: -p.worst_normalized)
    chosen = ranked[0]
    # Re-derive buffer depths covering every workload at the chosen S_ec.
    d_f = d_w = d_q = 1
    for workload in workloads:
        buffers = size_buffers(workload, chosen.config.s_ec)
        d_f, d_w, d_q = max(d_f, buffers.d_f), max(d_w, buffers.d_w), max(d_q, buffers.d_q)
    final_config = AcceleratorConfig(
        n_cu=chosen.config.n_cu,
        n_knl=n_knl,
        n_share=n_share,
        s_ec=chosen.config.s_ec,
        d_f=d_f,
        d_w=d_w,
        d_q=d_q,
        freq_mhz=freq_mhz,
    )
    throughput = {
        workload.name: estimate_model(
            workload, final_config, mode=MODE_QUANTIZED
        ).throughput_gops
        for workload in workloads
    }
    normalized = {
        name: throughput[name] / best_single[name] if best_single[name] else 0.0
        for name in models
    }
    chosen = JointPoint(
        config=final_config,
        throughput=throughput,
        normalized=normalized,
        feasible=True,
    )
    return JointExplorationResult(
        device=device,
        models=models,
        best_single=best_single,
        chosen=chosen,
        candidates=tuple(ranked[:candidates]),
        sampler="exhaustive",
        seed=seed,
    )
