"""Joint exploration across several workloads.

The paper ships one bitstream per model (Table 3: AlexNet and VGG16 get
separate configurations differing only in buffer depths and achieved
clock). A deployment that must serve *both* without reconfiguration wants
a single design point that is good everywhere — the natural objective is
the worst-case normalized throughput across workloads (max-min fairness
against each workload's own best).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.workload import ModelWorkload
from .compiled import GridEvaluation
from .explorer import GridPoint, size_buffers, sweep_sec_ncu
from .performance import MODE_QUANTIZED, estimate_model, share_factor_from_workloads
from .resources import DEFAULT_RESOURCE_MODEL, ResourceModel


@dataclass(frozen=True)
class JointPoint:
    """One configuration evaluated against every workload."""

    config: AcceleratorConfig
    throughput: Mapping[str, float]
    normalized: Mapping[str, float]
    feasible: bool

    @property
    def worst_normalized(self) -> float:
        """Max-min objective: the worst workload's fraction of its best."""
        return min(self.normalized.values())


@dataclass(frozen=True)
class JointExplorationResult:
    device: FPGADevice
    models: Tuple[str, ...]
    best_single: Mapping[str, float]
    chosen: JointPoint
    candidates: Tuple[JointPoint, ...]

    def render(self) -> str:
        lines = [
            f"joint exploration on {self.device.name} for {', '.join(self.models)}",
            f"chosen: {self.chosen.config.describe()}",
        ]
        for model in self.models:
            lines.append(
                f"  {model:<10} {self.chosen.throughput[model]:7.1f} GOP/s "
                f"({self.chosen.normalized[model]:.1%} of its solo best "
                f"{self.best_single[model]:.1f})"
            )
        return "\n".join(lines)


def co_deployment_objectives(
    evaluations: Sequence[GridEvaluation],
) -> Dict[str, np.ndarray]:
    """Combine same-shape per-workload grids into co-deployment objectives.

    A single bitstream serving every workload is only as good as its
    worst case, so the combination is conservative elementwise:
    throughput is the minimum across workloads, power/utilization the
    maximum, efficiency the minimum, and a point is feasible only when it
    is feasible for *every* workload. The adaptive joint search
    (:mod:`repro.dse.adaptive`) scores multi-model studies through this
    seam.
    """
    if not evaluations:
        raise ValueError("need at least one grid evaluation")
    shape = evaluations[0].shape
    if any(e.shape != shape for e in evaluations):
        raise ValueError("grid evaluations must share one shape")
    combined: Dict[str, np.ndarray] = {
        "throughput_gops": np.minimum.reduce(
            [e.throughput_gops for e in evaluations]
        ),
        "total_power_w": np.maximum.reduce([e.power_w for e in evaluations]),
        "gops_per_watt": np.minimum.reduce(
            [e.gops_per_watt for e in evaluations]
        ),
        "feasible": np.logical_and.reduce([e.feasible for e in evaluations]),
    }
    if all(e.logic_util is not None for e in evaluations):
        combined["logic_util"] = np.maximum.reduce(
            [e.logic_util for e in evaluations]
        )
        combined["dsp_util"] = np.maximum.reduce(
            [e.dsp_util for e in evaluations]
        )
        combined["mem_util"] = np.maximum.reduce(
            [e.mem_util for e in evaluations]
        )
    return combined


def explore_joint(
    workloads: Sequence[ModelWorkload],
    device: FPGADevice,
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    n_knl: int = 14,
    freq_mhz: float = 200.0,
    logic_limit: float = 0.75,
    candidates: int = 5,
    workers: Optional[int] = None,
    compiled: bool = True,
) -> JointExplorationResult:
    """Pick one configuration serving every workload (max-min normalized).

    The sharing factor N is set by the most multiply-intensive workload
    (smallest intensity ratio), since an under-provisioned multiplier
    array hurts everyone.

    Each workload's S_ec x N_cu grid runs on the compiled whole-grid
    evaluator by default (and the shared ``size_buffers`` memo means the
    per-model buffer scans run once per S_ec, not once per grid point);
    ``compiled=False`` selects the per-point reference path, where
    ``workers`` parallelizes each grid over a process pool. The chosen
    point and candidate ranking are identical either way.
    """
    if not workloads:
        raise ValueError("need at least one workload")
    # The joint N must fit the smallest intensity ratio across *all*
    # workloads — the most multiply-intensive model dictates the
    # multiplier provisioning.
    n_share = min(
        share_factor_from_workloads(workload.layers) for workload in workloads
    )
    # Per-model grids share the (s_ec, n_cu) axes; collect feasible points
    # present for every model (buffer depths differ per model, so evaluate
    # each config against each workload with its own buffer sizing).
    per_model_grid: Dict[str, Dict[Tuple[int, int], GridPoint]] = {}
    for workload in workloads:
        grid = sweep_sec_ncu(
            workload,
            device,
            resources,
            n_knl=n_knl,
            n_share=n_share,
            freq_mhz=freq_mhz,
            logic_limit=logic_limit,
            workers=workers,
            compiled=compiled,
        )
        per_model_grid[workload.name] = {
            (point.s_ec, point.n_cu): point for point in grid
        }
    models = tuple(workload.name for workload in workloads)
    best_single = {
        name: max(
            (p.throughput_gops for p in grid.values() if p.feasible), default=0.0
        )
        for name, grid in per_model_grid.items()
    }
    joint: List[JointPoint] = []
    first_grid = per_model_grid[models[0]]
    for key, first_point in first_grid.items():
        throughput = {}
        feasible = True
        for name in models:
            point = per_model_grid[name].get(key)
            if point is None:
                feasible = False
                break
            throughput[name] = point.throughput_gops
            feasible = feasible and point.feasible
        if len(throughput) != len(models):
            continue
        normalized = {
            name: (throughput[name] / best_single[name] if best_single[name] else 0.0)
            for name in models
        }
        joint.append(
            JointPoint(
                config=first_point.config,
                throughput=throughput,
                normalized=normalized,
                feasible=feasible,
            )
        )
    feasible_points = [point for point in joint if point.feasible]
    if not feasible_points:
        raise RuntimeError("no jointly feasible configuration")
    ranked = sorted(feasible_points, key=lambda p: -p.worst_normalized)
    chosen = ranked[0]
    # Re-derive buffer depths covering every workload at the chosen S_ec.
    d_f = d_w = d_q = 1
    for workload in workloads:
        buffers = size_buffers(workload, chosen.config.s_ec)
        d_f, d_w, d_q = max(d_f, buffers.d_f), max(d_w, buffers.d_w), max(d_q, buffers.d_q)
    final_config = AcceleratorConfig(
        n_cu=chosen.config.n_cu,
        n_knl=n_knl,
        n_share=n_share,
        s_ec=chosen.config.s_ec,
        d_f=d_f,
        d_w=d_w,
        d_q=d_q,
        freq_mhz=freq_mhz,
    )
    throughput = {
        workload.name: estimate_model(
            workload, final_config, mode=MODE_QUANTIZED
        ).throughput_gops
        for workload in workloads
    }
    normalized = {
        name: throughput[name] / best_single[name] if best_single[name] else 0.0
        for name in models
    }
    chosen = JointPoint(
        config=final_config,
        throughput=throughput,
        normalized=normalized,
        feasible=True,
    )
    return JointExplorationResult(
        device=device,
        models=models,
        best_single=best_single,
        chosen=chosen,
        candidates=tuple(ranked[:candidates]),
    )
