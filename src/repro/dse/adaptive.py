"""Adaptive multi-objective DSE: TPE-guided search of the joint space.

The compiled grid evaluator made the fixed three-axis ``(N_knl, S_ec,
N_cu)`` sweep nearly free, but the paper's *real* design space is joint —
add ``(N, d_f, d_w, freq_mhz)`` and exhaustive enumeration stops scaling
exactly where the interesting trade-offs live. This module searches that
joint space adaptively:

- :class:`TPESampler` — a seeded, dependency-free Tree-structured Parzen
  Estimator over the categorical axes: observed trials split into a
  *good* fraction (top ``gamma`` by the primary objective) and the rest,
  per-axis smoothed categorical densities ``l(x)`` / ``g(x)`` are fit to
  the two groups, and each proposal is the best of ``n_candidates`` draws
  from ``l`` scored by ``sum(log l - log g)``. :class:`RandomSampler` is
  the baseline the benchmarks compare against.
- :class:`JointEvaluator` — scores whole sub-grids per sampler round
  through :meth:`CompiledWorkload.evaluate_grid` (with sampled ``d_f`` /
  ``d_w`` buffer overrides), then layers the joint-space feasibility the
  three-axis grid cannot see: sampled clocks are gated by the congestion
  model's Fmax, sampled ``d_w`` must cover the deepest kernel stream, and
  over- or under-provisioned buffers adjust the M20K budget through the
  same width×depth block mapping as :mod:`repro.hw.buffers`. Multi-model
  studies combine per-workload grids through
  :func:`repro.dse.multi.co_deployment_objectives`.
- :func:`run_study` — the round loop: sample a batch, group it by the
  outer ``(N, d_f, d_w, freq)`` axes, evaluate each group as one
  vectorized sub-grid (or per-point when the cross product would blow the
  ``subgrid_cap`` budget), *harvest* the best feasible sub-grid point as a
  bonus trial, and append everything to the :class:`~repro.dse.study.Study`.

Determinism contract: every random draw comes from
``np.random.default_rng([seed, round_index])`` and the sampler consumes
only completed-round history, so a killed-and-resumed study replays the
exact trial sequence and Pareto front of an uninterrupted run —
``tests/test_dse_adaptive.py`` pins this, plus the headline claim that
TPE reaches ≥99% of the exhaustive-best throughput while touching ≤10%
of the joint grid.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..hw.buffers import BufferRequirement
from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.power import EnergyModel
from ..hw.tiling import plan_layer_windows
from ..hw.workload import ModelWorkload
from ..telemetry import get_active
from .compiled import compile_workload
from .explorer import BufferSizing, size_buffers
from .frequency import DEFAULT_FREQUENCY_MODEL, FrequencyModel
from .multi import co_deployment_objectives
from .performance import share_factor_from_workloads
from .resources import DEFAULT_RESOURCE_MODEL, ResourceModel
from .schemes import ModelSchemePlan, plan_model_schemes
from .study import (
    ORIGIN_HARVEST,
    ORIGIN_SAMPLED,
    Objective,
    SearchSpace,
    Study,
    StudyError,
    StudySpec,
    TrialRecord,
)

#: Every objective the joint evaluator can score, with its direction.
OBJECTIVE_DIRECTIONS: Dict[str, str] = {
    "throughput_gops": "max",
    "logic_util": "min",
    "dsp_util": "min",
    "mem_util": "min",
    "total_power_w": "min",
    "gops_per_watt": "max",
}

#: Default study objectives: the paper's throughput target plus the
#: resource/power Pareto axes. The first entry is the primary objective
#: driving the TPE good/bad split.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("throughput_gops", "max"),
    Objective("logic_util", "min"),
    Objective("dsp_util", "min"),
    Objective("mem_util", "min"),
    Objective("total_power_w", "min"),
)

#: The grid axes evaluated in one vectorized batch per sub-grid...
INNER_AXES: Tuple[str, ...] = ("n_knl", "s_ec", "n_cu")
#: ...and the axes that pin one compiled-evaluation cell.
OUTER_AXES: Tuple[str, ...] = ("n_share", "d_f", "d_w", "freq_mhz")
JOINT_AXES: Tuple[str, ...] = INNER_AXES + OUTER_AXES

#: Histogram buckets for the primary-objective distribution (GOP/s scale).
_PRIMARY_BUCKETS = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0)


def default_joint_space(
    workloads: Sequence[ModelWorkload],
    *,
    n_knl_values: Sequence[int] = tuple(range(2, 25)),
    s_ec_values: Sequence[int] = tuple(range(4, 33, 2)),
    n_cu_values: Sequence[int] = tuple(range(1, 7)),
    freq_values: Sequence[float] = (150.0, 175.0, 200.0, 225.0, 250.0),
) -> SearchSpace:
    """The seven-axis joint space for a workload set.

    The grid axes come straight from the paper's sweeps; the joint axes
    are anchored on the derived sizing so every candidate is *plausible*:
    sharing factors bracket the intensity-ratio N, ``d_f`` spans the
    sizing rule's requirement from the widest to the narrowest ``S_ec``
    (smaller depths trade BRAM for extra prefetch windows), and ``d_w``
    brackets the deepest-kernel requirement (the half-depth candidate is
    deliberately infeasible — it exercises the coverage gate).
    """
    workloads = tuple(workloads)
    if not workloads:
        raise ValueError("need at least one workload")
    derived_share = min(
        share_factor_from_workloads(w.layers) for w in workloads
    )
    shares = tuple(
        sorted({max(1, derived_share - 1), derived_share, derived_share + 1})
    )
    ordered_sec = sorted(int(s) for s in s_ec_values)
    s_lo, s_hi = ordered_sec[0], ordered_sec[-1]
    s_mid = ordered_sec[len(ordered_sec) // 2]
    d_f_candidates = tuple(
        sorted(
            {
                max(size_buffers(w, s).d_f for w in workloads)
                for s in (s_hi, s_mid, s_lo)
            }
        )
    )
    required_dw = max(size_buffers(w, s_lo).d_w for w in workloads)
    d_w_candidates = tuple(
        sorted({max(1, required_dw // 2), required_dw, required_dw * 2})
    )
    return SearchSpace(
        (
            ("n_knl", tuple(int(v) for v in n_knl_values)),
            ("s_ec", tuple(ordered_sec)),
            ("n_cu", tuple(int(v) for v in n_cu_values)),
            ("n_share", shares),
            ("d_f", d_f_candidates),
            ("d_w", d_w_candidates),
            ("freq_mhz", tuple(float(v) for v in freq_values)),
        )
    )


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------


def _uniform_draw(space: SearchSpace, rng: np.random.Generator) -> Dict[str, float]:
    """One uniform draw; consumes rng once per axis, in axis order."""
    return {
        name: values[int(rng.integers(len(values)))]
        for name, values in space.axes
    }


def _probe_unseen(
    space: SearchSpace, rng: np.random.Generator, taken: Set[Tuple[float, ...]]
) -> Optional[Dict[str, float]]:
    """Deterministic linear probe for any unseen point (dedup fallback).

    Walks flat indices from an rng-chosen start; returns ``None`` only
    when the whole space is exhausted.
    """
    start = int(rng.integers(space.size))
    for offset in range(space.size):
        params = space.unflatten((start + offset) % space.size)
        if space.key(params) not in taken:
            return params
    return None


def _draw_batch(
    space: SearchSpace,
    rng: np.random.Generator,
    count: int,
    seen: Set[Tuple[float, ...]],
    draw_one: Callable[[SearchSpace, np.random.Generator], Dict[str, float]],
) -> List[Dict[str, float]]:
    """Draw ``count`` distinct unseen points via ``draw_one`` + dedup.

    Redraws duplicates up to 32 times, then falls back to the linear
    probe; returns fewer than ``count`` only when the space runs dry.
    """
    taken = set(seen)
    proposals: List[Dict[str, float]] = []
    for _ in range(count):
        params: Optional[Dict[str, float]] = None
        for _attempt in range(32):
            candidate = draw_one(space, rng)
            if space.key(candidate) not in taken:
                params = candidate
                break
        if params is None:
            params = _probe_unseen(space, rng, taken)
            if params is None:
                break
        taken.add(space.key(params))
        proposals.append(params)
    return proposals


class RandomSampler:
    """Uniform-over-the-space baseline (still seeded and deduplicated)."""

    name = "random"

    def propose(
        self,
        space: SearchSpace,
        history: Sequence[TrialRecord],
        primary: Objective,
        rng: np.random.Generator,
        count: int,
        seen: Set[Tuple[float, ...]],
    ) -> List[Dict[str, float]]:
        return _draw_batch(space, rng, count, seen, _uniform_draw)


class TPESampler:
    """Tree-structured Parzen Estimator over the categorical joint axes.

    Observed trials are split into *good* (top ``gamma`` fraction of
    feasible trials by the primary objective) and *bad* (the rest, plus
    every infeasible trial); per axis, smoothed categorical densities
    ``l`` / ``g`` are fit to the two groups and each proposal is the best
    of ``n_candidates`` draws from ``l`` under the acquisition score
    ``sum(log l(x) - log g(x))`` — the standard EI-equivalent for TPE.
    Until ``n_startup`` feasible trials exist the sampler draws uniformly.
    """

    name = "tpe"

    def __init__(
        self,
        n_startup: int = 10,
        gamma: float = 0.25,
        n_candidates: int = 24,
        prior_weight: float = 1.0,
        explore_fraction: float = 0.25,
    ) -> None:
        if n_startup < 1 or n_candidates < 1:
            raise ValueError("n_startup and n_candidates must be >= 1")
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        if prior_weight <= 0.0:
            raise ValueError("prior_weight must be positive")
        if not 0.0 <= explore_fraction < 1.0:
            raise ValueError("explore_fraction must be in [0, 1)")
        self.n_startup = n_startup
        self.gamma = gamma
        self.n_candidates = n_candidates
        self.prior_weight = prior_weight
        self.explore_fraction = explore_fraction

    def propose(
        self,
        space: SearchSpace,
        history: Sequence[TrialRecord],
        primary: Objective,
        rng: np.random.Generator,
        count: int,
        seen: Set[Tuple[float, ...]],
    ) -> List[Dict[str, float]]:
        scored = [
            t for t in history if t.feasible and primary.name in t.values
        ]
        # Startup counts *all* observations: infeasible trials still teach
        # g(x) where not to look, and feasible regions can be rare enough
        # that waiting for n_startup scored trials would never end startup.
        if len(history) < self.n_startup or not scored:
            return _draw_batch(space, rng, count, seen, _uniform_draw)
        ordered = sorted(
            scored,
            key=lambda t: t.values[primary.name],
            reverse=(primary.direction == "max"),
        )
        n_good = max(1, math.ceil(self.gamma * len(scored)))
        good = ordered[:n_good]
        bad = ordered[n_good:] + [
            t
            for t in history
            if not (t.feasible and primary.name in t.values)
        ]
        l_probs: Dict[str, np.ndarray] = {}
        g_probs: Dict[str, np.ndarray] = {}
        for name, values in space.axes:
            index = {value: i for i, value in enumerate(values)}
            l_w = np.full(len(values), self.prior_weight, dtype=np.float64)
            g_w = np.full(len(values), self.prior_weight, dtype=np.float64)
            for trial in good:
                l_w[index[trial.params[name]]] += 1.0
            for trial in bad:
                g_w[index[trial.params[name]]] += 1.0
            l_probs[name] = l_w / l_w.sum()
            g_probs[name] = g_w / g_w.sum()

        def draw_one(
            space: SearchSpace, rng: np.random.Generator
        ) -> Dict[str, float]:
            best_params: Optional[Dict[str, float]] = None
            best_score = -math.inf
            for _ in range(self.n_candidates):
                params: Dict[str, float] = {}
                score = 0.0
                for name, values in space.axes:
                    i = int(rng.choice(len(values), p=l_probs[name]))
                    params[name] = values[i]
                    score += math.log(l_probs[name][i]) - math.log(
                        g_probs[name][i]
                    )
                if score > best_score:
                    best_params, best_score = params, score
            return best_params  # type: ignore[return-value]

        n_explore = int(self.explore_fraction * count)
        exploited = _draw_batch(
            space, rng, count - n_explore, seen, draw_one
        )
        if n_explore:
            taken = set(seen)
            taken.update(space.key(p) for p in exploited)
            # A uniform tail in every batch keeps the categorical
            # densities from collapsing onto an early local optimum.
            exploited.extend(
                _draw_batch(space, rng, n_explore, taken, _uniform_draw)
            )
        return exploited


def make_sampler(name: str):
    """Sampler registry for the CLI / run_study ``sampler=`` string."""
    if name == "tpe":
        return TPESampler()
    if name == "random":
        return RandomSampler()
    raise StudyError(f"unknown sampler {name!r}; choose from ('tpe', 'random')")


# ---------------------------------------------------------------------------
# Joint evaluation
# ---------------------------------------------------------------------------


def _ft_blocks(d_f: int, s_ec: int) -> int:
    """M20K blocks of one FT-Buffer at a given depth/vector width."""
    return BufferRequirement(
        name="FT-Buffer",
        required_depth=d_f,
        provisioned_depth=d_f,
        entry_bits=8 * s_ec,
    ).m20k_blocks


def _wt_blocks(d_w: int) -> int:
    """M20K blocks of one kernel engine's WT-Buffer slice."""
    return BufferRequirement(
        name="WT-Buffer",
        required_depth=d_w,
        provisioned_depth=d_w,
        entry_bits=16,
    ).m20k_blocks


@dataclass(frozen=True)
class CellEvaluation:
    """One evaluated ``(N, d_f, d_w, freq)`` cell over a 3-axis sub-grid.

    ``values`` maps every objective of :data:`OBJECTIVE_DIRECTIONS` to an
    array indexed ``[i_knl, i_sec, i_ncu]``; ``plannable`` marks the
    ``S_ec`` columns where every workload's window plan fits the sampled
    ``d_f`` (unplannable columns score NaN and are infeasible).
    """

    n_knl_values: Tuple[int, ...]
    s_ec_values: Tuple[int, ...]
    n_cu_values: Tuple[int, ...]
    values: Mapping[str, np.ndarray]
    feasible: np.ndarray
    plannable: np.ndarray

    def point(
        self, i_knl: int, i_sec: int, i_ncu: int, names: Sequence[str]
    ) -> Tuple[Dict[str, float], bool]:
        """(objective values, feasibility) of one sub-grid point."""
        if not bool(self.plannable[i_sec]):
            return {}, False
        out: Dict[str, float] = {}
        for name in names:
            value = float(self.values[name][i_knl, i_sec, i_ncu])
            if math.isfinite(value):
                out[name] = value
        feasible = bool(self.feasible[i_knl, i_sec, i_ncu]) and len(out) == len(
            names
        )
        return out, feasible

    def best_feasible(self, primary: Objective) -> Optional[Tuple[int, int, int]]:
        """Index of the best feasible point on the primary objective.

        Ties break to the first point in C order — deterministic, which
        the resume contract depends on.
        """
        if not self.feasible.any():
            return None
        array = self.values[primary.name]
        if primary.direction == "max":
            masked = np.where(self.feasible, array, -np.inf)
            flat = int(np.argmax(masked))
        else:
            masked = np.where(self.feasible, array, np.inf)
            flat = int(np.argmin(masked))
        return tuple(int(i) for i in np.unravel_index(flat, self.feasible.shape))


class JointEvaluator:
    """Scores joint-space cells for one or more co-deployed workloads.

    On top of the compiled grid's logic/DSP/memory feasibility this adds
    the joint-space gates: the sampled clock must not exceed the
    congestion model's Fmax at the point's logic utilization, the sampled
    ``d_w`` must cover every workload's deepest kernel stream, and the
    delta between sampled and derived buffer sizing adjusts the M20K
    estimate through the same block mapping as :mod:`repro.hw.buffers`
    (so undersized buffers *save* BRAM and oversized ones must still fit
    the device).
    """

    def __init__(
        self,
        workloads: Sequence[ModelWorkload],
        device: FPGADevice,
        *,
        resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
        logic_limit: float = 0.75,
        energy_model: Optional[EnergyModel] = None,
        frequency_model: FrequencyModel = DEFAULT_FREQUENCY_MODEL,
    ) -> None:
        self.workloads = tuple(workloads)
        if not self.workloads:
            raise ValueError("need at least one workload")
        self.device = device
        self.resources = resources
        self.logic_limit = logic_limit
        self.energy_model = (
            energy_model if energy_model is not None else EnergyModel()
        )
        self.frequency_model = frequency_model

    def _plannable_columns(
        self, workload: ModelWorkload, d_f: int, s_ec_values: Sequence[int]
    ) -> Set[int]:
        columns: Set[int] = set()
        for j, s_ec in enumerate(s_ec_values):
            try:
                for layer in workload.layers:
                    plan_layer_windows(layer.spec, d_f, s_ec)
            except ValueError:
                continue
            columns.add(j)
        return columns

    def evaluate_cell(
        self,
        outer: Mapping[str, float],
        n_knl_values: Sequence[int],
        s_ec_values: Sequence[int],
        n_cu_values: Sequence[int],
    ) -> CellEvaluation:
        """Evaluate one outer cell across a full inner sub-grid."""
        knl = tuple(int(v) for v in n_knl_values)
        sec = tuple(int(v) for v in s_ec_values)
        ncu = tuple(int(v) for v in n_cu_values)
        n_share = int(outer["n_share"])
        d_f = int(outer["d_f"])
        d_w = int(outer["d_w"])
        freq_mhz = float(outer["freq_mhz"])
        shape = (len(knl), len(sec), len(ncu))
        values = {
            name: np.full(shape, np.nan) for name in OBJECTIVE_DIRECTIONS
        }
        feasible = np.zeros(shape, dtype=bool)
        plannable = np.zeros(len(sec), dtype=bool)

        common: Optional[Set[int]] = None
        for workload in self.workloads:
            columns = self._plannable_columns(workload, d_f, sec)
            common = columns if common is None else (common & columns)
        ordered_columns = sorted(common or ())
        if not ordered_columns:
            return CellEvaluation(knl, sec, ncu, values, feasible, plannable)

        sub_sec = tuple(sec[j] for j in ordered_columns)
        knl_arr = np.asarray(knl, dtype=np.float64)[:, None, None]
        ncu_arr = np.asarray(ncu, dtype=np.float64)[None, None, :]
        evaluations = []
        mem_adjusted = []
        extra_gates = []
        for workload in self.workloads:
            derived = [size_buffers(workload, s) for s in sub_sec]
            override = [
                BufferSizing(d_f=d_f, d_w=d_w, d_q=sizing.d_q)
                for sizing in derived
            ]
            evaluation = compile_workload(workload, n_share).evaluate_grid(
                self.resources,
                self.device,
                n_knl_values=knl,
                s_ec_values=sub_sec,
                n_cu_values=ncu,
                freq_mhz=freq_mhz,
                logic_limit=self.logic_limit,
                buffers=override,
                energy_model=self.energy_model,
            )
            # Sampled-vs-derived buffer sizing shifts the M20K budget: one
            # FT-Buffer per CU, one WT-Buffer slice per kernel engine.
            ft_delta = np.array(
                [
                    _ft_blocks(d_f, s) - _ft_blocks(sizing.d_f, s)
                    for s, sizing in zip(sub_sec, derived)
                ],
                dtype=np.float64,
            )
            wt_delta = float(_wt_blocks(d_w) - _wt_blocks(derived[0].d_w))
            extra = (
                ncu_arr * ft_delta[None, :, None]
                + knl_arr * ncu_arr * wt_delta
            )
            mem_util = (evaluation.m20ks + extra) / self.device.m20k_blocks
            fmax = self.frequency_model.fmax_mhz_array(evaluation.logic_util)
            gate = (
                (mem_util <= 1.0)
                & (freq_mhz <= fmax)
                & (d_w >= derived[0].d_w)
            )
            evaluations.append(evaluation)
            mem_adjusted.append(mem_util)
            extra_gates.append(gate)

        base = co_deployment_objectives(evaluations)
        sub_values = {
            "throughput_gops": base["throughput_gops"],
            "logic_util": base["logic_util"],
            "dsp_util": base["dsp_util"],
            "mem_util": np.maximum.reduce(mem_adjusted),
            "total_power_w": base["total_power_w"],
            "gops_per_watt": base["gops_per_watt"],
        }
        sub_feasible = base["feasible"] & np.logical_and.reduce(extra_gates)
        for j_sub, j in enumerate(ordered_columns):
            plannable[j] = True
            feasible[:, j, :] = sub_feasible[:, j_sub, :]
            for name, array in values.items():
                array[:, j, :] = sub_values[name][:, j_sub, :]
        return CellEvaluation(knl, sec, ncu, values, feasible, plannable)


# ---------------------------------------------------------------------------
# The study loop
# ---------------------------------------------------------------------------


def _ordered_params(
    space: SearchSpace, mapping: Mapping[str, float]
) -> Dict[str, float]:
    """Normalize a params dict to the space's canonical axis order."""
    return {name: mapping[name] for name in space.names}


def _round_groups(
    proposals: Sequence[Mapping[str, float]]
) -> "OrderedDict[Tuple[float, ...], List[Mapping[str, float]]]":
    """Group a round's proposals by outer cell, first-appearance order."""
    groups: "OrderedDict[Tuple[float, ...], List[Mapping[str, float]]]" = (
        OrderedDict()
    )
    for params in proposals:
        key = tuple(params[axis] for axis in OUTER_AXES)
        groups.setdefault(key, []).append(params)
    return groups


def _neighbor_values(
    space: SearchSpace, axis: str, member_values: Set[int], radius: int
) -> Tuple[int, ...]:
    """Member values of one inner axis plus their ±radius grid neighbors."""
    values = space.values(axis)
    expanded: Set[int] = set()
    for value in member_values:
        i = values.index(value)
        for j in range(max(0, i - radius), min(len(values), i + radius + 1)):
            expanded.add(int(values[j]))
    return tuple(sorted(expanded))


def _group_axes(
    members: Sequence[Mapping[str, float]],
    space: SearchSpace,
    subgrid_cap: int,
    anchor: Optional[Mapping[str, float]] = None,
) -> Tuple[Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]], bool]:
    """Inner sub-grid axes for one group, and whether to grid at all.

    Each sampled point anchors a local sub-grid: the members' inner-axis
    values — plus the incumbent-best trial's inner point (``anchor``), so
    a good inner region found in one outer cell transfers to every newly
    sampled cell — expanded by grid neighbors at the largest radius whose
    cross product still fits the ``subgrid_cap * len(members)`` point
    budget. No radius fits → fall back to the members' own values; still
    too big → evaluate members point-by-point. Pure function of the group
    and the round-start incumbent, so resume replays the same decision.
    """
    budget = subgrid_cap * len(members)
    member_values = {
        axis: {int(p[axis]) for p in members} for axis in INNER_AXES
    }
    if anchor is not None:
        for axis in INNER_AXES:
            member_values[axis].add(int(anchor[axis]))
    best: Optional[Tuple[Tuple[int, ...], ...]] = None
    radius = 1
    while True:
        expanded = tuple(
            _neighbor_values(space, axis, member_values[axis], radius)
            for axis in INNER_AXES
        )
        if math.prod(len(v) for v in expanded) > budget:
            break
        if best is not None and expanded == best:
            break  # axes saturated; no point growing the radius further
        best = expanded
        radius += 1
    if best is not None:
        return best, True
    base = tuple(
        tuple(sorted(member_values[axis])) for axis in INNER_AXES
    )
    if math.prod(len(v) for v in base) <= budget:
        return base, True
    return base, False


def _group_tuples(
    members: Sequence[Mapping[str, float]],
    space: SearchSpace,
    subgrid_cap: int,
    anchor: Optional[Mapping[str, float]] = None,
) -> Tuple[List[Tuple[float, ...]], bool]:
    """The joint-space tuples one group's evaluation touches.

    Returns ``(tuples, use_subgrid)``: the local sub-grid's cross product
    when one is evaluated, else the members alone. The resume path
    replays this to reconstruct the evaluated-point set exactly.
    """
    outer = tuple(members[0][axis] for axis in OUTER_AXES)
    (knl, sec, ncu), use_subgrid = _group_axes(
        members, space, subgrid_cap, anchor
    )
    if use_subgrid:
        tuples = [
            (k, s, c) + outer for k in knl for s in sec for c in ncu
        ]
        return tuples, True
    tuples = [
        tuple(int(p[axis]) for axis in INNER_AXES) + outer for p in members
    ]
    return tuples, False


def _outer_neighbor_cells(
    space: SearchSpace, params: Mapping[str, float]
) -> List[Tuple[float, ...]]:
    """Outer cells one axis step away from a point, in axis order."""
    base = tuple(params[axis] for axis in OUTER_AXES)
    cells: List[Tuple[float, ...]] = []
    for position, axis in enumerate(OUTER_AXES):
        values = space.values(axis)
        i = values.index(params[axis])
        for delta in (-1, 1):
            j = i + delta
            if 0 <= j < len(values):
                cell = list(base)
                cell[position] = values[j]
                cells.append(tuple(cell))
    return cells


def _probe_cap(subgrid_cap: int) -> int:
    """Point budget for one incumbent-neighborhood probe cell."""
    return max(1, subgrid_cap // 4)


def _probe_member(
    space: SearchSpace,
    incumbent_params: Mapping[str, float],
    cell: Tuple[float, ...],
) -> Dict[str, float]:
    """Synthetic group member: incumbent inner point in a neighbor cell."""
    merged = dict(zip(OUTER_AXES, cell))
    merged.update(
        {axis: incumbent_params[axis] for axis in INNER_AXES}
    )
    return _ordered_params(space, merged)


def _replay_evaluated(
    study: Study,
) -> Tuple[Set[Tuple[float, ...]], Optional[int]]:
    """Reconstruct the evaluated-point set of a loaded study.

    Replays each completed round's group structure — and the incumbent
    neighborhood probes — from the recorded trials (both are pure
    functions of the history prefix), then cross-checks the count against
    the last ``round_end`` marker. Returns the set and the trial number
    of the last probed incumbent, so a resumed run continues the pattern
    search exactly where the file left off.
    """
    evaluated: Set[Tuple[float, ...]] = set()
    primary = study.spec.primary
    space = study.spec.space
    rounds: Dict[int, List[Mapping[str, float]]] = {}
    for trial in study.trials:
        if trial.origin == ORIGIN_SAMPLED:
            rounds.setdefault(trial.round, []).append(trial.params)
    incumbent: Optional[TrialRecord] = None
    last_probed: Optional[int] = None
    cursor = 0
    for round_index in sorted(rounds):
        # Re-derive the round-start incumbent (same scan as Study.best).
        while (
            cursor < len(study.trials)
            and study.trials[cursor].round < round_index
        ):
            trial = study.trials[cursor]
            if (
                trial.feasible
                and primary.name in trial.values
                and (
                    incumbent is None
                    or primary.better(
                        trial.values[primary.name],
                        incumbent.values[primary.name],
                    )
                )
            ):
                incumbent = trial
            cursor += 1
        anchor = incumbent.params if incumbent is not None else None
        for members in _round_groups(rounds[round_index]).values():
            tuples, _ = _group_tuples(
                members, space, study.spec.subgrid_cap, anchor
            )
            evaluated.update(tuples)
        if incumbent is not None and incumbent.number != last_probed:
            for cell in _outer_neighbor_cells(space, incumbent.params):
                member = _probe_member(space, incumbent.params, cell)
                tuples, _ = _group_tuples(
                    [member], space, _probe_cap(study.spec.subgrid_cap)
                )
                evaluated.update(tuples)
            last_probed = incumbent.number
    if study.trials and len(evaluated) != study.evaluated_points:
        raise StudyError(
            f"study {study.path or '<memory>'}: replayed evaluated-point "
            f"count {len(evaluated)} does not match the recorded "
            f"{study.evaluated_points} — the file was not produced by this "
            f"search procedure"
        )
    return evaluated, last_probed


@dataclass(frozen=True)
class StudyResult:
    """Outcome of :func:`run_study`."""

    study: Study
    best: Optional[TrialRecord]
    front: Tuple[TrialRecord, ...]
    evaluated_points: int
    space_size: int
    sampled_trials: int
    #: Per-layer heterogeneous scheme assignment for the best configuration,
    #: one plan per study workload (empty when no point was feasible) —
    #: the scheme axis is resolved per incumbent rather than sampled, since
    #: the greedy planner is exact given a configuration.
    scheme_plans: Tuple["ModelSchemePlan", ...] = ()

    @property
    def evaluated_fraction(self) -> float:
        return self.evaluated_points / self.space_size

    @property
    def scheme_plan(self) -> Optional["ModelSchemePlan"]:
        """The first workload's scheme plan (single-model studies)."""
        return self.scheme_plans[0] if self.scheme_plans else None


def _config_from_params(
    params: Mapping[str, float], workloads: Sequence[ModelWorkload]
) -> AcceleratorConfig:
    """Materialize a joint-space point as a full accelerator configuration.

    ``d_q`` is not a search axis; it is derived to cover every workload at
    the point's vector width, the same covering rule the multi-model flow
    applies.
    """
    s_ec = int(params["s_ec"])
    d_q = max(size_buffers(workload, s_ec).d_q for workload in workloads)
    return AcceleratorConfig(
        n_cu=int(params["n_cu"]),
        n_knl=int(params["n_knl"]),
        n_share=int(params["n_share"]),
        s_ec=s_ec,
        d_f=int(params["d_f"]),
        d_w=int(params["d_w"]),
        d_q=d_q,
        freq_mhz=float(params["freq_mhz"]),
    )


def _validate_space(space: SearchSpace) -> None:
    if set(space.names) != set(JOINT_AXES):
        raise StudyError(
            f"joint search space must define exactly the axes {JOINT_AXES}, "
            f"got {space.names}"
        )


def run_study(
    workloads: Sequence[ModelWorkload],
    device: FPGADevice,
    *,
    trials: int,
    sampler: str = "tpe",
    seed: int = 1,
    objectives: Optional[Sequence[Objective]] = None,
    space: Optional[SearchSpace] = None,
    path: Optional[str] = None,
    resume: bool = False,
    batch: int = 8,
    subgrid_cap: int = 320,
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    logic_limit: float = 0.75,
    energy_model: Optional[EnergyModel] = None,
    frequency_model: FrequencyModel = DEFAULT_FREQUENCY_MODEL,
    name: Optional[str] = None,
) -> StudyResult:
    """Run (or resume) an adaptive study until ``trials`` sampled trials.

    ``trials`` counts *sampled* trials; harvested sub-grid optima ride
    along for free. With ``path`` the study persists as append-only JSONL
    after every trial; ``resume=True`` continues an existing file (and
    must be invoked with the same configuration — the header is checked).
    A fresh run and a killed-and-resumed run with the same seed produce
    identical trial sequences, fronts and evaluated-point counts.
    """
    import os

    workloads = tuple(workloads)
    chosen_objectives = (
        tuple(objectives) if objectives else DEFAULT_OBJECTIVES
    )
    for objective in chosen_objectives:
        if objective.name not in OBJECTIVE_DIRECTIONS:
            raise StudyError(
                f"unknown objective {objective.name!r}; choose from "
                f"{sorted(OBJECTIVE_DIRECTIONS)}"
            )
    joint_space = space if space is not None else default_joint_space(workloads)
    _validate_space(joint_space)
    spec = StudySpec(
        name=name
        or "-".join(w.name for w in workloads) + f"-{sampler}",
        models=tuple(w.name for w in workloads),
        device=device.name,
        sampler=sampler,
        seed=seed,
        objectives=chosen_objectives,
        space=joint_space,
        batch=batch,
        subgrid_cap=subgrid_cap,
    )
    if path is not None and resume and os.path.exists(path):
        study = Study.load(path, spec)
    elif path is not None:
        study = Study.create(spec, path)
    else:
        study = Study(spec)

    sampler_obj = make_sampler(sampler)
    evaluator = JointEvaluator(
        workloads,
        device,
        resources=resources,
        logic_limit=logic_limit,
        energy_model=energy_model,
        frequency_model=frequency_model,
    )
    seen = {joint_space.key(t.params) for t in study.trials}
    evaluated, last_probed = _replay_evaluated(study)
    telemetry = get_active()
    primary = spec.primary
    objective_names = tuple(o.name for o in chosen_objectives)

    def record(
        params: Mapping[str, float],
        values: Dict[str, float],
        feasible: bool,
        round_index: int,
        origin: str,
    ) -> None:
        ordered = _ordered_params(joint_space, params)
        trial = TrialRecord(
            number=len(study.trials),
            round=round_index,
            origin=origin,
            params=ordered,
            values=values,
            feasible=feasible,
        )
        study.append_trial(trial)
        seen.add(joint_space.key(ordered))
        if telemetry is not None:
            with telemetry.span(
                "dse.trial", number=trial.number, origin=origin
            ):
                pass
            telemetry.registry.counter("dse.study/trials", origin=origin).inc()
            if feasible and primary.name in values:
                telemetry.registry.histogram(
                    "dse.study/primary", buckets=_PRIMARY_BUCKETS
                ).observe(values[primary.name])

    study_span = (
        telemetry.span(
            "dse.study",
            sampler=sampler,
            models=",".join(spec.models),
            seed=seed,
        )
        if telemetry is not None
        else nullcontext()
    )
    with study_span:
        while study.sampled_count() < trials:
            round_index = study.rounds_complete
            rng = np.random.default_rng([seed, round_index])
            want = min(batch, trials - study.sampled_count())
            proposals = sampler_obj.propose(
                joint_space, list(study.trials), primary, rng, want, seen
            )
            if not proposals:
                break  # space exhausted
            round_span = (
                telemetry.span(
                    "dse.round", round=round_index, proposals=len(proposals)
                )
                if telemetry is not None
                else nullcontext()
            )
            with round_span:
                points_before = len(evaluated)
                incumbent = study.best()
                anchor = incumbent.params if incumbent is not None else None
                for members in _round_groups(proposals).values():
                    tuples, use_subgrid = _group_tuples(
                        members, joint_space, subgrid_cap, anchor
                    )
                    evaluated.update(tuples)
                    outer = {
                        axis: members[0][axis] for axis in OUTER_AXES
                    }
                    if use_subgrid:
                        (knl, sec, ncu), _ = _group_axes(
                            members, joint_space, subgrid_cap, anchor
                        )
                        cell = evaluator.evaluate_cell(outer, knl, sec, ncu)
                        for params in members:
                            index = (
                                knl.index(int(params["n_knl"])),
                                sec.index(int(params["s_ec"])),
                                ncu.index(int(params["n_cu"])),
                            )
                            values, feasible = cell.point(
                                *index, objective_names
                            )
                            record(
                                params, values, feasible, round_index,
                                ORIGIN_SAMPLED,
                            )
                        best_index = cell.best_feasible(primary)
                        if best_index is not None:
                            bi, bj, bk = best_index
                            harvest = _ordered_params(
                                joint_space,
                                {
                                    **outer,
                                    "n_knl": knl[bi],
                                    "s_ec": sec[bj],
                                    "n_cu": ncu[bk],
                                },
                            )
                            if joint_space.key(harvest) not in seen:
                                values, feasible = cell.point(
                                    bi, bj, bk, objective_names
                                )
                                record(
                                    harvest, values, feasible, round_index,
                                    ORIGIN_HARVEST,
                                )
                    else:
                        for params in members:
                            cell = evaluator.evaluate_cell(
                                outer,
                                (int(params["n_knl"]),),
                                (int(params["s_ec"]),),
                                (int(params["n_cu"]),),
                            )
                            values, feasible = cell.point(
                                0, 0, 0, objective_names
                            )
                            record(
                                params, values, feasible, round_index,
                                ORIGIN_SAMPLED,
                            )
                # Pattern-search probe: each time the incumbent improves,
                # score its single-step outer-neighbor cells on a small
                # sub-grid around its inner point — TPE rarely flips one
                # outer axis of an already-good cell on its own.
                if incumbent is not None and incumbent.number != last_probed:
                    for cell_key in _outer_neighbor_cells(
                        joint_space, incumbent.params
                    ):
                        member = _probe_member(
                            joint_space, incumbent.params, cell_key
                        )
                        tuples, _ = _group_tuples(
                            [member], joint_space, _probe_cap(subgrid_cap)
                        )
                        evaluated.update(tuples)
                        (knl, sec, ncu), _ = _group_axes(
                            [member], joint_space, _probe_cap(subgrid_cap)
                        )
                        cell = evaluator.evaluate_cell(
                            dict(zip(OUTER_AXES, cell_key)), knl, sec, ncu
                        )
                        best_index = cell.best_feasible(primary)
                        if best_index is None:
                            continue
                        bi, bj, bk = best_index
                        harvest = _ordered_params(
                            joint_space,
                            {
                                **dict(zip(OUTER_AXES, cell_key)),
                                "n_knl": knl[bi],
                                "s_ec": sec[bj],
                                "n_cu": ncu[bk],
                            },
                        )
                        if joint_space.key(harvest) not in seen:
                            values, feasible = cell.point(
                                bi, bj, bk, objective_names
                            )
                            record(
                                harvest, values, feasible, round_index,
                                ORIGIN_HARVEST,
                            )
                    last_probed = incumbent.number
                study.end_round(round_index, len(evaluated))
                if telemetry is not None:
                    telemetry.registry.counter("dse.study/points").inc(
                        len(evaluated) - points_before
                    )
                    telemetry.registry.gauge("dse.study/front_size").set(
                        len(study.front)
                    )
    best = study.best()
    scheme_plans: Tuple[ModelSchemePlan, ...] = ()
    if best is not None:
        best_config = _config_from_params(best.params, workloads)
        scheme_plans = tuple(
            plan_model_schemes(
                workload,
                best_config,
                device=device,
                resources=resources,
                logic_limit=logic_limit,
            )
            for workload in workloads
        )
    return StudyResult(
        study=study,
        best=best,
        front=study.front.members,
        evaluated_points=len(evaluated),
        space_size=joint_space.size,
        sampled_trials=study.sampled_count(),
        scheme_plans=scheme_plans,
    )


@dataclass(frozen=True)
class ExhaustiveResult:
    """Best point of a full joint-space enumeration (the oracle)."""

    params: Dict[str, float]
    values: Dict[str, float]
    evaluated_points: int


def exhaustive_search(
    workloads: Sequence[ModelWorkload],
    device: FPGADevice,
    *,
    space: SearchSpace,
    objectives: Optional[Sequence[Objective]] = None,
    resources: ResourceModel = DEFAULT_RESOURCE_MODEL,
    logic_limit: float = 0.75,
    energy_model: Optional[EnergyModel] = None,
    frequency_model: FrequencyModel = DEFAULT_FREQUENCY_MODEL,
) -> ExhaustiveResult:
    """Enumerate the whole joint space and return the primary-best point.

    One vectorized inner-grid evaluation per outer cell — this is the
    oracle the adaptive benchmarks measure search quality against, and it
    touches every single configuration (``evaluated_points ==
    space.size``).
    """
    _validate_space(space)
    chosen_objectives = tuple(objectives) if objectives else DEFAULT_OBJECTIVES
    primary = chosen_objectives[0]
    objective_names = tuple(o.name for o in chosen_objectives)
    evaluator = JointEvaluator(
        workloads,
        device,
        resources=resources,
        logic_limit=logic_limit,
        energy_model=energy_model,
        frequency_model=frequency_model,
    )
    knl = tuple(int(v) for v in space.values("n_knl"))
    sec = tuple(int(v) for v in space.values("s_ec"))
    ncu = tuple(int(v) for v in space.values("n_cu"))
    best: Optional[Tuple[float, Dict[str, float], Dict[str, float]]] = None
    for n_share in space.values("n_share"):
        for d_f in space.values("d_f"):
            for d_w in space.values("d_w"):
                for freq_mhz in space.values("freq_mhz"):
                    outer = {
                        "n_share": n_share,
                        "d_f": d_f,
                        "d_w": d_w,
                        "freq_mhz": freq_mhz,
                    }
                    cell = evaluator.evaluate_cell(outer, knl, sec, ncu)
                    index = cell.best_feasible(primary)
                    if index is None:
                        continue
                    values, feasible = cell.point(*index, objective_names)
                    if not feasible:
                        continue
                    score = values[primary.name]
                    if best is None or primary.better(score, best[0]):
                        params = _ordered_params(
                            space,
                            {
                                **outer,
                                "n_knl": knl[index[0]],
                                "s_ec": sec[index[1]],
                                "n_cu": ncu[index[2]],
                            },
                        )
                        best = (score, params, values)
    if best is None:
        raise RuntimeError("no feasible point anywhere in the joint space")
    return ExhaustiveResult(
        params=best[1], values=best[2], evaluated_points=space.size
    )
