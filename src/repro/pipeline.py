"""End-to-end quantized inference pipeline.

Reproduces the paper's deployment flow on a CNN: prune (Deep Compression
schedule) -> quantize to 8-bit dynamic fixed point (Ristretto) -> encode the
sparse weights (Figure 4) -> execute convolution/FC layers with ABM-SpConv
exactly as the accelerator's datapath would (16-bit exact arithmetic, one
rounding at write-back), while pooling / LRN / softmax run on the "host"
in floating point, mirroring the paper's CPU/FPGA split (Section 6.1).

The pipeline also doubles as the measurement harness: every accelerated
layer reports its exact accumulate/multiply counts, which is how the
Table 1 'measured' columns are produced for small models.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .core.abm import ABMConvBatchResult, ABMConvResult, ConvGeometry, abm_conv2d, abm_conv2d_batch
from .telemetry.context import get_active
from .core.encoding import EncodedLayer, encode_layer
from .nn.layers import (
    AvgPool2D,
    Conv2D,
    Dropout,
    Flatten,
    FullyConnected,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from .nn.network import Network
from .prune.magnitude import prune_network
from .quant.fixed_point import QFormat, fit_qformat
from .quant.quantizer import QuantizedTensor


@dataclass(frozen=True)
class CompiledLayer:
    """One accelerated layer ready for ABM execution."""

    name: str
    encoded: EncodedLayer
    geometry: ConvGeometry
    weight_fmt: QFormat
    output_fmt: QFormat
    bias_codes: np.ndarray  # quantized to the datapath format
    is_fc: bool


@dataclass
class LayerRunStats:
    """Exact op counts observed while executing one layer."""

    name: str
    accumulate_ops: int
    multiply_ops: int

    @property
    def total_ops(self) -> int:
        return self.accumulate_ops + self.multiply_ops


@dataclass
class InferenceResult:
    """Output of a quantized inference pass."""

    output: np.ndarray
    layer_stats: List[LayerRunStats] = field(default_factory=list)

    @property
    def accumulate_ops(self) -> int:
        return sum(stats.accumulate_ops for stats in self.layer_stats)

    @property
    def multiply_ops(self) -> int:
        return sum(stats.multiply_ops for stats in self.layer_stats)

    @property
    def total_ops(self) -> int:
        return self.accumulate_ops + self.multiply_ops


class QuantizedPipeline:
    """Prune -> quantize -> encode -> execute a network with ABM-SpConv."""

    def __init__(
        self,
        network: Network,
        weight_bits: int = 8,
        feature_bits: int = 8,
        weight_clusters: Optional[int] = None,
    ) -> None:
        """``weight_clusters`` enables Deep-Compression weight sharing:
        each layer's surviving weights are k-means-clustered to at most
        that many shared values before fixed-point encoding, which is the
        mechanism that concentrates kernels onto few distinct values."""
        self.network = network
        self.weight_bits = weight_bits
        self.feature_bits = feature_bits
        self.weight_clusters = weight_clusters
        self.input_fmt: Optional[QFormat] = None
        self.output_fmts: Dict[str, QFormat] = {}
        self.compiled: Dict[str, CompiledLayer] = {}
        self._calibrated = False
        self._quantization_token = 0

    @property
    def quantization_token(self) -> int:
        """Monotonic counter bumped by every prune/calibrate/quantize.

        The fused model-plan cache keys on (pipeline identity, this token,
        batch geometry), so re-quantizing a pipeline invalidates its fused
        plans without any explicit cache management.
        """
        return self._quantization_token

    def _check_ready(self, action: str) -> None:
        """Raise a step-specific error when the flow is incomplete."""
        if self.input_fmt is None:
            raise RuntimeError(
                f"pipeline is not calibrated: call calibrate() before {action}"
            )
        if not self.compiled:
            raise RuntimeError(
                f"pipeline is not quantized: call quantize() before {action}"
            )

    # ---- flow stages ---------------------------------------------------

    def prune(self, densities: Mapping[str, float]) -> "QuantizedPipeline":
        """Magnitude-prune the float network in place."""
        prune_network(self.network, densities)
        self.compiled.clear()  # stale encodings, if any
        self._quantization_token += 1
        return self

    def calibrate(
        self,
        sample_input: np.ndarray,
        strategy: str = "max",
        percentile: float = 99.9,
    ) -> "QuantizedPipeline":
        """Fit per-layer dynamic fixed-point formats from a sample run.

        ``strategy='percentile'`` clips the top activation tail instead of
        covering the absolute maximum — finer LSBs at the cost of rare
        saturation (see :mod:`repro.quant.activation_calibration`).
        """
        from .quant.activation_calibration import fit_with_strategy

        self.input_fmt = fit_with_strategy(
            np.asarray(sample_input), self.feature_bits, strategy, percentile
        )
        activations = self.network.activations(np.asarray(sample_input))
        shape = self.network.input_shape
        for layer in self.network:
            # Conv/FC outputs feed the Sum/Round stage; every layer output
            # that is stored as a feature map gets a calibrated format.
            self.output_fmts[layer.name] = fit_with_strategy(
                activations[layer.name], self.feature_bits, strategy, percentile
            )
            shape = layer.output_shape(shape)
        self._calibrated = True
        self._quantization_token += 1
        return self

    def quantize(self) -> "QuantizedPipeline":
        """Quantize weights and encode every accelerated layer."""
        if not self._calibrated:
            raise RuntimeError("calibrate() must run before quantize()")
        for layer in self.network:
            if isinstance(layer, Conv2D):
                weights = self._shared_weights(layer.weights)
                weight_fmt = fit_qformat(weights, self.weight_bits)
                codes = weight_fmt.quantize(weights)
                geometry = ConvGeometry(
                    kernel=layer.kernel,
                    stride=layer.stride,
                    padding=layer.padding,
                    groups=layer.groups,
                )
                self._compile(layer.name, codes, geometry, weight_fmt, layer.bias, False)
            elif isinstance(layer, FullyConnected):
                weights = self._shared_weights(layer.weights)
                weight_fmt = fit_qformat(weights, self.weight_bits)
                codes = weight_fmt.quantize(
                    weights.reshape(layer.out_features, layer.in_features, 1, 1)
                )
                self._compile(
                    layer.name, codes, ConvGeometry(kernel=1), weight_fmt, layer.bias, True
                )
        self._quantization_token += 1
        return self

    def _shared_weights(self, weights: np.ndarray) -> np.ndarray:
        """Apply optional k-means weight sharing before fixed-point coding."""
        if self.weight_clusters is None:
            return np.asarray(weights)
        from .quant.clustering import cluster_weights

        return cluster_weights(weights, self.weight_clusters).dense()

    def _compile(
        self,
        name: str,
        weight_codes: np.ndarray,
        geometry: ConvGeometry,
        weight_fmt: QFormat,
        bias: np.ndarray,
        is_fc: bool,
    ) -> None:
        if self.input_fmt is None:
            raise RuntimeError("pipeline is not calibrated")
        encoded = encode_layer(name, weight_codes)
        self.compiled[name] = CompiledLayer(
            name=name,
            encoded=encoded,
            geometry=geometry,
            weight_fmt=weight_fmt,
            output_fmt=self.output_fmts[name],
            # Bias enters at the datapath scale of the *incoming* feature
            # format times the weight format; resolved at run time because
            # the input format of each layer depends on its predecessor.
            bias_codes=np.asarray(bias, dtype=np.float64),
            is_fc=is_fc,
        )

    # ---- execution -----------------------------------------------------

    def run(self, image: np.ndarray) -> InferenceResult:
        """Quantized inference with ABM-SpConv on all conv/FC layers."""
        self._check_ready("run()")
        codes = self.input_fmt.quantize(np.asarray(image))
        fmt = self.input_fmt
        stats: List[LayerRunStats] = []
        telemetry = get_active()
        for layer in self.network:
            scope = (
                telemetry.span("layer", layer=layer.name)
                if telemetry is not None
                else nullcontext()
            )
            with scope:
                codes, fmt, layer_stats = self._run_layer(layer, codes, fmt)
            if layer_stats is not None:
                stats.append(layer_stats)
        return InferenceResult(output=fmt.dequantize(codes), layer_stats=stats)

    def _run_layer(
        self, layer, codes: np.ndarray, fmt: QFormat
    ) -> Tuple[np.ndarray, QFormat, Optional[LayerRunStats]]:
        name = layer.name
        if name in self.compiled:
            compiled = self.compiled[name]
            # Datapath format: product of input and weight scales, exact.
            datapath_fmt = QFormat(32, fmt.frac_bits + compiled.weight_fmt.frac_bits)
            bias_codes = datapath_fmt.quantize(compiled.bias_codes)
            if compiled.is_fc:
                flat = codes.reshape(-1, 1, 1)
                result: ABMConvResult = abm_conv2d(
                    flat, compiled.encoded, compiled.geometry, bias_codes=bias_codes
                )
            else:
                result = abm_conv2d(
                    codes, compiled.encoded, compiled.geometry, bias_codes=bias_codes
                )
            # Sum/Round: single rounding into the 8-bit feature format.
            out_fmt = compiled.output_fmt
            out_codes = out_fmt.quantize(datapath_fmt.dequantize(result.output))
            return (
                out_codes,
                out_fmt,
                LayerRunStats(
                    name=name,
                    accumulate_ops=result.accumulate_ops,
                    multiply_ops=result.multiply_ops,
                ),
            )
        if isinstance(layer, (ReLU,)):
            return np.maximum(codes, 0), fmt, None
        if isinstance(layer, MaxPool2D):
            # Max of codes == code of max: exact in integer domain.
            return layer.forward(codes).astype(np.int64), fmt, None
        if isinstance(layer, (Flatten, Dropout)):
            return layer.forward(codes).astype(np.int64), fmt, None
        if isinstance(layer, (AvgPool2D, LocalResponseNorm, Softmax)):
            # Host layers: dequantize, run float, requantize.
            real = layer.forward(fmt.dequantize(codes))
            out_fmt = self.output_fmts.get(layer.name, fmt)
            return out_fmt.quantize(real), out_fmt, None
        raise TypeError(f"pipeline cannot execute layer {layer!r}")

    def _as_bchw(self, images: np.ndarray) -> np.ndarray:
        batch = np.asarray(images)
        if batch.ndim == 3:
            batch = batch[None]
        if batch.ndim != 4:
            raise ValueError(f"expected a BCHW batch, got shape {batch.shape}")
        return batch

    def run_batch(
        self,
        images: np.ndarray,
        schemes: "Optional[Mapping[str, str]]" = None,
    ) -> List[InferenceResult]:
        """Batched quantized inference through the fused model plan.

        ``images`` is a (B, C, H, W) array or a sequence of CHW images.
        The network is compiled (once per batch geometry, LRU-cached) into
        a streaming :class:`repro.core.model_plan.ModelPlan` that fuses
        each conv/FC with its epilogue and threads activations through two
        preallocated ping-pong buffers — bit-exact against
        :meth:`run_batch_reference`, the retained per-layer path (outputs
        *and* op counts; the differential suite in
        ``tests/test_model_fused.py`` pins this).  The result is one
        :class:`InferenceResult` per image, each carrying its exact
        per-image share of the layer op counts (counts are per-pixel
        constants, so the share is exact).

        ``schemes`` optionally maps layer names to per-layer convolution
        schemes (``winograd2``/``winograd4``/``spectral``); unnamed layers
        keep the default ABM datapath, outputs stay bit-exact either way.
        The per-layer planner (:func:`repro.dse.schemes.plan_model_schemes`)
        produces such assignments.
        """
        from .core.model_plan import compile_model_plan

        self._check_ready("run_batch()")
        batch = self._as_bchw(images)
        b = batch.shape[0]
        plan = compile_model_plan(self, batch.shape, schemes=schemes)
        codes = self.input_fmt.quantize(batch)
        out_codes, out_fmt = plan.run(codes)
        outputs = out_fmt.dequantize(out_codes)
        return [
            InferenceResult(
                output=outputs[i],
                layer_stats=[
                    LayerRunStats(
                        name=name,
                        accumulate_ops=acc // b,
                        multiply_ops=mult // b,
                    )
                    for name, acc, mult in plan.layer_ops
                ],
            )
            for i in range(b)
        ]

    def run_batch_reference(self, images: np.ndarray) -> List[InferenceResult]:
        """Batched inference through the retained per-layer path.

        The pre-fusion implementation: the whole batch flows layer by
        layer, each accelerated layer stacking the batch into its ABM
        plan's pixel axis.  Kept as the differential oracle for the fused
        :meth:`run_batch` and for callers that want per-layer telemetry
        spans.  Bit-exact, image-for-image, against per-image :meth:`run`.
        """
        self._check_ready("run_batch_reference()")
        batch = self._as_bchw(images)
        b = batch.shape[0]
        codes = self.input_fmt.quantize(batch)
        fmt = self.input_fmt
        stats: List[LayerRunStats] = []
        telemetry = get_active()
        for layer in self.network:
            scope = (
                telemetry.span("layer", layer=layer.name, batch=b)
                if telemetry is not None
                else nullcontext()
            )
            with scope:
                codes, fmt, layer_stats = self._run_layer_batch(layer, codes, fmt)
            if layer_stats is not None:
                stats.append(layer_stats)
        outputs = fmt.dequantize(codes)
        return [
            InferenceResult(
                output=outputs[i],
                layer_stats=[
                    LayerRunStats(
                        name=s.name,
                        accumulate_ops=s.accumulate_ops // b,
                        multiply_ops=s.multiply_ops // b,
                    )
                    for s in stats
                ],
            )
            for i in range(b)
        ]

    def _run_layer_batch(
        self, layer, codes: np.ndarray, fmt: QFormat
    ) -> Tuple[np.ndarray, QFormat, Optional[LayerRunStats]]:
        """Batched twin of :meth:`_run_layer`; op counts are batch totals."""
        name = layer.name
        if name in self.compiled:
            compiled = self.compiled[name]
            datapath_fmt = QFormat(32, fmt.frac_bits + compiled.weight_fmt.frac_bits)
            bias_codes = datapath_fmt.quantize(compiled.bias_codes)
            if compiled.is_fc:
                flat = codes.reshape(codes.shape[0], -1, 1, 1)
                result: ABMConvBatchResult = abm_conv2d_batch(
                    flat, compiled.encoded, compiled.geometry, bias_codes=bias_codes
                )
            else:
                result = abm_conv2d_batch(
                    codes, compiled.encoded, compiled.geometry, bias_codes=bias_codes
                )
            out_fmt = compiled.output_fmt
            out_codes = out_fmt.quantize(datapath_fmt.dequantize(result.output))
            return (
                out_codes,
                out_fmt,
                LayerRunStats(
                    name=name,
                    accumulate_ops=result.accumulate_ops,
                    multiply_ops=result.multiply_ops,
                ),
            )
        if isinstance(layer, (ReLU,)):
            return np.maximum(codes, 0), fmt, None
        if isinstance(layer, MaxPool2D):
            return layer.forward_batch(codes).astype(np.int64), fmt, None
        if isinstance(layer, (Flatten, Dropout)):
            return layer.forward_batch(codes).astype(np.int64), fmt, None
        if isinstance(layer, (AvgPool2D, LocalResponseNorm, Softmax)):
            real = layer.forward_batch(fmt.dequantize(codes))
            out_fmt = self.output_fmts.get(layer.name, fmt)
            return out_fmt.quantize(real), out_fmt, None
        raise TypeError(f"pipeline cannot execute layer {layer!r}")

    def run_float(self, image: np.ndarray) -> np.ndarray:
        """Reference float inference of the (pruned) network."""
        return self.network.forward(np.asarray(image))

    # ---- reporting -----------------------------------------------------

    def encoded_layers(self) -> List[EncodedLayer]:
        """Encoded form of every accelerated layer, in network order."""
        return [
            self.compiled[layer.name].encoded
            for layer in self.network
            if layer.name in self.compiled
        ]

    def encoded_bytes(self) -> int:
        """Total encoded weight footprint (paper Table 3's 'Encoded')."""
        return sum(encoded.encoded_bytes for encoded in self.encoded_layers())

    def quantized_weights(self, name: str) -> QuantizedTensor:
        """A layer's quantized weight tensor (decoded view)."""
        from .core.encoding import decode_layer

        compiled = self.compiled[name]
        return QuantizedTensor(decode_layer(compiled.encoded), compiled.weight_fmt)
