"""Uniform cache observability: one namespace for every LRU in the repo.

Before this module, cache visibility was fragmented: a bare ``(hits,
misses)`` tuple from the simulator cache, private counters inside the
plan/encode caches, a ``CacheInfo`` dataclass in serving, and nothing at
all from the DSE memos. Here every cache family registers a *stats
provider* — a zero-argument callable returning a :class:`CacheStats` —
under a dotted name (``core.plan``, ``hw.sim``, ``serve.deploy``, ...).

Providers are pulled only at snapshot time, so registration adds zero
overhead to cache hot paths; a provider may return ``None`` to mean "no
live cache right now" (used by weakref-registered per-instance caches),
and such entries are skipped. Modules register their process-wide caches
at import time; instance caches register through
:func:`register_cache_object`, which holds only a weak reference.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional

__all__ = [
    "CacheStats",
    "cache_snapshot",
    "cache_stats",
    "register_cache",
    "register_cache_object",
    "registered_caches",
    "unregister_cache",
]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction accounting of one cache.

    Field order keeps keyword construction compatible with the historical
    ``repro.serve.cache.CacheInfo`` (now a deprecated alias of this class).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: Optional[int] = None
    name: str = ""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["hit_rate"] = self.hit_rate
        return data


_providers: Dict[str, Callable[[], Optional[CacheStats]]] = {}
_lock = threading.Lock()


def register_cache(
    name: str, provider: Callable[[], Optional[CacheStats]]
) -> None:
    """Register (or replace) the stats provider of one cache family.

    ``name`` is the family's dotted namespace entry; re-registering
    replaces the previous provider, which is what per-run instance caches
    (the serve deployment cache) want.
    """
    if not name:
        raise ValueError("cache family needs a name")
    with _lock:
        _providers[name] = provider


def register_cache_object(name: str, obj: object, stats: Callable[[object], CacheStats]) -> None:
    """Register an instance-owned cache through a weak reference.

    ``stats(obj)`` produces the CacheStats; once the object is garbage
    collected the provider yields ``None`` and the family drops out of
    snapshots instead of pinning the instance alive.
    """
    ref = weakref.ref(obj)

    def provider() -> Optional[CacheStats]:
        live = ref()
        return stats(live) if live is not None else None

    register_cache(name, provider)


def unregister_cache(name: str) -> None:
    with _lock:
        _providers.pop(name, None)


def registered_caches() -> List[str]:
    """Registered family names, sorted (providers may still yield None)."""
    with _lock:
        return sorted(_providers)


def cache_stats() -> Dict[str, CacheStats]:
    """Live stats of every registered family, keyed by family name."""
    with _lock:
        providers = dict(_providers)
    stats: Dict[str, CacheStats] = {}
    for name in sorted(providers):
        result = providers[name]()
        if result is not None:
            stats[name] = result
    return stats


def cache_snapshot() -> Dict[str, Dict[str, object]]:
    """JSON-serializable view of :func:`cache_stats`."""
    return {name: stats.as_dict() for name, stats in cache_stats().items()}
