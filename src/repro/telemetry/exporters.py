"""Snapshot exporters: JSON-lines and Prometheus-style text.

The JSONL format is the durable artifact: one self-describing record per
line (``{"kind": "counter", ...}``), round-trippable —
``parse_jsonl(export_jsonl(s)) == s`` exactly — and trivially streamable
into log pipelines. The Prometheus text format is the scrape-friendly
view for dashboards; it is one-way (histograms flatten into cumulative
``_bucket`` series).

:func:`validate_snapshot` is the schema check the CI smoke job runs
against exported files: structural (required keys, types) plus internal
consistency (bucket counts sum to the observation count, min <= max).
It deliberately uses no external schema library.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from .context import SCHEMA

__all__ = [
    "export_jsonl",
    "parse_jsonl",
    "prometheus_text",
    "validate_snapshot",
    "write_jsonl",
]


def export_jsonl(snapshot: Dict[str, object]) -> str:
    """Serialize one snapshot to JSON-lines text (ends with a newline)."""
    lines = [json.dumps({"kind": "meta", "schema": snapshot.get("schema", SCHEMA)})]
    for name, value in snapshot.get("counters", {}).items():
        lines.append(json.dumps({"kind": "counter", "name": name, "value": value}))
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(json.dumps({"kind": "gauge", "name": name, "value": value}))
    for name, data in snapshot.get("histograms", {}).items():
        lines.append(json.dumps({"kind": "histogram", "name": name, "data": data}))
    for name, data in snapshot.get("caches", {}).items():
        lines.append(json.dumps({"kind": "cache", "name": name, "data": data}))
    for span in snapshot.get("spans", []):
        lines.append(json.dumps({"kind": "span", "data": span}))
    for name, data in snapshot.get("span_totals", {}).items():
        lines.append(json.dumps({"kind": "span_total", "name": name, "data": data}))
    return "\n".join(lines) + "\n"


def write_jsonl(snapshot: Dict[str, object], path: str) -> int:
    """Write the JSONL export to ``path``; returns bytes written."""
    text = export_jsonl(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(text.encode("utf-8"))


def parse_jsonl(text: str) -> Dict[str, object]:
    """Rebuild a snapshot dict from its JSONL export (exact round-trip)."""
    snapshot: Dict[str, object] = {
        "schema": SCHEMA,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "caches": {},
        "spans": [],
        "span_totals": {},
    }
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {line_number}: invalid JSON: {error}") from None
        kind = record.get("kind")
        if kind == "meta":
            snapshot["schema"] = record.get("schema", SCHEMA)
        elif kind in ("counter", "gauge"):
            snapshot[kind + "s"][record["name"]] = record["value"]
        elif kind == "histogram":
            snapshot["histograms"][record["name"]] = record["data"]
        elif kind == "cache":
            snapshot["caches"][record["name"]] = record["data"]
        elif kind == "span":
            snapshot["spans"].append(record["data"])
        elif kind == "span_total":
            snapshot["span_totals"][record["name"]] = record["data"]
        else:
            raise ValueError(f"line {line_number}: unknown record kind {kind!r}")
    return snapshot


# ---- Prometheus-style text ---------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _prom_name(name: str, prefix: str = "repro_") -> str:
    return prefix + _NAME_RE.sub("_", name)


def _split_key(key: str):
    """('name', 'labels-inner-or-empty') of one flat snapshot key."""
    match = _KEY_RE.match(key)
    if match is None:  # pragma: no cover - keys are generated, not typed
        return key, ""
    return match.group("name"), match.group("labels") or ""


def _merge_labels(inner: str, extra: str) -> str:
    parts = [p for p in (inner, extra) if p]
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(snapshot: Dict[str, object]) -> str:
    """Prometheus exposition-format view of a snapshot (one-way)."""
    lines: List[str] = []

    for key, value in snapshot.get("counters", {}).items():
        name, labels = _split_key(key)
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}{_merge_labels(labels, '')} {value}")

    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _split_key(key)
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom}{_merge_labels(labels, '')} {value}")

    for key, data in snapshot.get("histograms", {}).items():
        name, labels = _split_key(key)
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for le, count in zip(data["bucket_le"], data["bucket_counts"]):
            cumulative += count
            le_label = 'le="%s"' % le
            lines.append(
                f"{prom}_bucket{_merge_labels(labels, le_label)} {cumulative}"
            )
        cumulative += data.get("overflow", 0)
        inf_label = 'le="+Inf"'
        lines.append(
            f"{prom}_bucket{_merge_labels(labels, inf_label)} {cumulative}"
        )
        lines.append(f"{prom}_sum{_merge_labels(labels, '')} {data['sum']}")
        lines.append(f"{prom}_count{_merge_labels(labels, '')} {data['count']}")

    for family, data in snapshot.get("caches", {}).items():
        for field in ("hits", "misses", "evictions"):
            prom = _prom_name(f"cache.{field}")
            lines.append(f'{prom}{{cache="{family}"}} {data[field]}')
        prom = _prom_name("cache.size")
        lines.append(f'{prom}{{cache="{family}"}} {data["size"]}')

    for name, data in snapshot.get("span_totals", {}).items():
        prom = _prom_name(f"span.{name}.total_seconds")
        lines.append(f"{prom} {data['total_s']}")
        prom = _prom_name(f"span.{name}.count")
        lines.append(f"{prom} {data['count']}")

    return "\n".join(lines) + "\n"


# ---- schema validation ---------------------------------------------------


def _check_histogram(name: str, data: object, problems: List[str]) -> None:
    if not isinstance(data, dict):
        problems.append(f"histogram {name!r}: not an object")
        return
    for field in ("count", "sum", "bucket_le", "bucket_counts", "overflow"):
        if field not in data:
            problems.append(f"histogram {name!r}: missing field {field!r}")
            return
    if len(data["bucket_le"]) != len(data["bucket_counts"]):
        problems.append(f"histogram {name!r}: bucket bound/count length mismatch")
        return
    bounds = data["bucket_le"]
    if list(bounds) != sorted(bounds):
        problems.append(f"histogram {name!r}: bucket bounds not ascending")
    total = sum(data["bucket_counts"]) + data["overflow"]
    if total != data["count"]:
        problems.append(
            f"histogram {name!r}: bucket counts sum to {total}, count is "
            f"{data['count']}"
        )
    low, high = data.get("min"), data.get("max")
    if low is not None and high is not None and low > high:
        problems.append(f"histogram {name!r}: min {low} > max {high}")
    if data["count"] > 0 and data.get("p50") is None:
        problems.append(f"histogram {name!r}: non-empty but p50 is null")


def _check_span(span: object, problems: List[str], path: str = "span") -> None:
    if not isinstance(span, dict):
        problems.append(f"{path}: not an object")
        return
    for field in ("name", "start_s", "end_s", "attrs", "children"):
        if field not in span:
            problems.append(f"{path}: missing field {field!r}")
            return
    if span["end_s"] is not None and span["end_s"] < span["start_s"]:
        problems.append(f"{path} {span['name']!r}: ends before it starts")
    for i, child in enumerate(span["children"]):
        _check_span(child, problems, path=f"{path}.{span['name']}[{i}]")


def validate_snapshot(snapshot: object) -> List[str]:
    """Structural + consistency check; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot is not an object"]
    if snapshot.get("schema") != SCHEMA:
        problems.append(
            f"schema is {snapshot.get('schema')!r}, expected {SCHEMA!r}"
        )
    for section in ("counters", "gauges", "histograms", "caches", "span_totals"):
        if not isinstance(snapshot.get(section), dict):
            problems.append(f"section {section!r} missing or not an object")
    if not isinstance(snapshot.get("spans"), list):
        problems.append("section 'spans' missing or not a list")
    if problems:
        return problems
    for name, value in snapshot["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"counter {name!r}: not a non-negative number")
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)):
            problems.append(f"gauge {name!r}: not a number")
    for name, data in snapshot["histograms"].items():
        _check_histogram(name, data, problems)
    for name, data in snapshot["caches"].items():
        if not isinstance(data, dict):
            problems.append(f"cache {name!r}: not an object")
            continue
        for field in ("hits", "misses", "evictions", "size"):
            if not isinstance(data.get(field), int) or data[field] < 0:
                problems.append(
                    f"cache {name!r}: field {field!r} not a non-negative int"
                )
    for i, span in enumerate(snapshot["spans"]):
        _check_span(span, problems, path=f"spans[{i}]")
    for name, data in snapshot["span_totals"].items():
        if not isinstance(data, dict) or "count" not in data or "total_s" not in data:
            problems.append(f"span_total {name!r}: missing count/total_s")
    return problems
