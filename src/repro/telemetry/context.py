"""The :class:`Telemetry` facade and the process-wide activation point.

A :class:`Telemetry` bundles one metrics registry and one tracer — the
observability context of a run. Components accept it explicitly
(``SystemRuntime(telemetry=...)``, ``ServingSimulator(...,
telemetry=...)``); deep hot paths that cannot thread a parameter through
(the compiled kernel, the pipeline's layer loop) consult the *active*
telemetry instead:

    telemetry = get_active()
    if telemetry is not None:
        with telemetry.span("kernel", layer=name):
            ...

``get_active()`` is a single module-global read returning ``None`` by
default, so uninstrumented runs — the hot-path default — pay one ``is
None`` check and nothing else. :func:`activate` installs a context for a
``with`` scope; nesting restores the previous context on exit.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .caches import cache_snapshot
from .registry import MetricsRegistry
from .spans import Tracer

__all__ = ["SCHEMA", "Telemetry", "activate", "get_active"]

#: Schema tag stamped into every snapshot; bump on incompatible changes.
SCHEMA = "repro.telemetry.v1"


class Telemetry:
    """One run's observability context: metrics + spans + cache view."""

    def __init__(self, enabled: bool = True, clock=time.perf_counter) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(clock=clock, enabled=enabled)

    def span(self, name: str, **attrs: object):
        """Shorthand for ``self.tracer.span`` (still a context manager)."""
        return self.tracer.span(name, **attrs)

    def snapshot(self, include_spans: bool = True) -> Dict[str, object]:
        """Everything observable right now, as one JSON-serializable dict.

        Combines the registry's metric families, the global cache
        namespace (hit/miss/eviction counters of every registered LRU)
        and, optionally, the full span forest plus per-name span totals.
        """
        snapshot: Dict[str, object] = {"schema": SCHEMA}
        snapshot.update(self.registry.snapshot())
        snapshot["caches"] = cache_snapshot()
        if include_spans:
            snapshot["spans"] = [root.to_dict() for root in self.tracer.roots]
            snapshot["span_totals"] = self.tracer.totals()
        else:
            snapshot["spans"] = []
            snapshot["span_totals"] = {}
        return snapshot

    def clear(self) -> None:
        """Reset metrics and spans (not the global cache counters)."""
        self.registry.clear()
        self.tracer.clear()


_active: Optional[Telemetry] = None


def get_active() -> Optional[Telemetry]:
    """The currently activated telemetry context, or ``None``.

    ``None`` is the default and the fast path: instrumentation sites do
    nothing beyond this lookup when telemetry is off.
    """
    return _active


@contextmanager
def activate(telemetry: Optional[Telemetry]) -> Iterator[Optional[Telemetry]]:
    """Install ``telemetry`` as the active context for a ``with`` scope.

    Nests: the previous context (usually ``None``) is restored on exit.
    Passing ``None`` — or a disabled instance — deactivates for the scope.
    """
    global _active
    previous = _active
    _active = (
        telemetry if telemetry is not None and telemetry.enabled else None
    )
    try:
        yield _active
    finally:
        _active = previous
