"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

The registry is the single metrics substrate for the whole repo — serving,
the system runtime, the accelerator simulator and the DSE flow all report
through one :class:`MetricsRegistry` so a snapshot tells the complete
story of a run. Design constraints, in order:

- **Deterministic.** Histograms keep their raw samples and compute
  nearest-rank percentiles with exactly the arithmetic of
  :meth:`repro.serve.stats.ServeStats.latency_percentile_s`, so every
  figure is hand-pinnable and the differential tests can assert equality
  against the legacy stats surfaces, not approximate agreement.
- **Cheap when disabled.** A disabled registry hands out shared null
  instruments whose operations are single-dispatch no-ops; hot paths pay
  one attribute lookup, nothing else.
- **Labeled families.** ``registry.counter("serve.requests",
  model="lenet")`` creates one child per label set, serialized into the
  snapshot as ``serve.requests{model="lenet"}`` — flat string keys keep
  the exported JSON trivially greppable.

Snapshots are plain JSON-serializable dicts; the exporters
(:mod:`repro.telemetry.exporters`) round-trip them losslessly.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS_S",
    "metric_key",
]

#: Default histogram buckets for virtual/wall times in seconds: geometric
#: decades from 1 microsecond to 10 seconds. Fixed and hand-enumerable so
#: bucket counts are pinnable in tests.
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0
)


def metric_key(name: str, labels: Dict[str, str]) -> str:
    """Flat snapshot key of one instrument: ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with exact nearest-rank percentiles.

    ``buckets`` are finite upper bounds (inclusive, ascending); samples
    above the last bound land in ``overflow``. Raw samples are retained so
    ``percentile`` can use the same nearest-rank arithmetic as
    :class:`repro.serve.stats.ServeStats` — the snapshots of the two
    surfaces are therefore *equal*, not merely close. Retention is fine at
    simulation scale (bounded request streams); production-scale callers
    can pass ``max_samples`` to cap the reservoir, which degrades
    percentiles to bucket-boundary precision once truncated.
    """

    __slots__ = ("_lock", "buckets", "bucket_counts", "overflow", "count",
                 "sum", "_min", "_max", "max_samples", "_samples", "truncated")

    def __init__(
        self,
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
        max_samples: Optional[int] = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly ascending")
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._lock = lock
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self.max_samples = max_samples
        self._samples: List[float] = []
        self.truncated = False

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break
            else:
                self.overflow += 1
            if self.max_samples is None or len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self.truncated = True

    def observe_many(self, values: Sequence[float]) -> None:
        """Bulk :meth:`observe` — one vectorized pass over ``values``.

        Semantically identical to observing each value in order (same
        bucket counts, same retained-sample prefix under ``max_samples``);
        the event-driven serving engine uses it to land millions of
        virtual latencies without a Python-level loop.
        """
        import numpy as np

        array = np.asarray(values, dtype=float)
        if array.ndim != 1:
            raise ValueError("observe_many takes a 1-D value sequence")
        if array.size == 0:
            return
        indices = np.searchsorted(self.buckets, array, side="left")
        counts = np.bincount(indices, minlength=len(self.buckets) + 1)
        with self._lock:
            self.count += int(array.size)
            self.sum += float(array.sum())
            low = float(array.min())
            high = float(array.max())
            self._min = low if self._min is None else min(self._min, low)
            self._max = high if self._max is None else max(self._max, high)
            for i in range(len(self.buckets)):
                self.bucket_counts[i] += int(counts[i])
            self.overflow += int(counts[len(self.buckets)])
            if self.max_samples is None:
                self._samples.extend(array.tolist())
            else:
                room = self.max_samples - len(self._samples)
                if room < array.size:
                    self.truncated = True
                if room > 0:
                    self._samples.extend(array[:room].tolist())

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def mean(self) -> Optional[float]:
        with self._lock:
            return self.sum / self.count if self.count else None

    def percentile(self, percentile: float) -> float:
        """Nearest-rank percentile over the retained samples.

        Identical formula to ``ServeStats.latency_percentile_s``:
        ``rank = ceil(p/100 * n) - 1`` over the sorted samples.
        """
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        with self._lock:
            if not self._samples:
                raise ValueError("histogram has no samples")
            ordered = sorted(self._samples)
        rank = math.ceil(percentile / 100 * len(ordered)) - 1
        return ordered[max(rank, 0)]

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view (percentiles are None when empty)."""
        with self._lock:
            data: Dict[str, object] = {
                "count": self.count,
                "sum": self.sum,
                "min": self._min,
                "max": self._max,
                "mean": self.sum / self.count if self.count else None,
                "bucket_le": list(self.buckets),
                "bucket_counts": list(self.bucket_counts),
                "overflow": self.overflow,
                "truncated": self.truncated,
            }
            has_samples = bool(self._samples)
        for label, p in (("p50", 50), ("p95", 95), ("p99", 99)):
            data[label] = self.percentile(p) if has_samples else None
        return data


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Sequence[float]) -> None:
        pass

    @property
    def value(self) -> float:
        return 0


_NULL = _NullInstrument()


class MetricsRegistry:
    """Thread-safe home of every metric family in one process/run.

    Instruments are created on first use and identified by (kind, name,
    sorted labels). ``enabled=False`` turns every accessor into a handout
    of the shared null instrument — the no-op mode hot paths rely on.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ---- instrument accessors -----------------------------------------

    def counter(self, name: str, **labels: str):
        if not self.enabled:
            return _NULL
        key = metric_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(self._lock)
                self._counters[key] = instrument
            return instrument

    def gauge(self, name: str, **labels: str):
        if not self.enabled:
            return _NULL
        key = metric_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(self._lock)
                self._gauges[key] = instrument
            return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
        max_samples: Optional[int] = None,
        **labels: str,
    ):
        if not self.enabled:
            return _NULL
        key = metric_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(
                    self._lock, buckets=buckets, max_samples=max_samples
                )
                self._histograms[key] = instrument
            return instrument

    # ---- snapshot ------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metric families as one JSON-serializable dict."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.snapshot() for k, h in sorted(self._histograms.items())
                },
            }

    def clear(self) -> None:
        """Drop every instrument (tests, run boundaries)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
