"""Unified telemetry: metrics, spans, and cache observability.

One substrate for everything the repo previously scattered across
``ServeStats``, the simulator cache's bare tuple, private plan/encode
counters and unaggregated trace events:

- :class:`MetricsRegistry` — thread-safe counters, gauges and fixed-bucket
  histograms with deterministic nearest-rank percentiles, labeled
  families, and a cheap no-op mode when disabled.
- :class:`Tracer` / :class:`Span` — request-scoped span trees with
  virtual-clock support, so serve-sim (virtual seconds), the system
  runtime, the accelerator simulator and the compiled kernel all nest
  into one trace.
- :class:`CacheStats` + the cache registry — every LRU in the codebase
  (plan, encode, layer-sim, deployment, DSE memos, window plans) reports
  hit/miss/eviction counters under one dotted namespace.
- Exporters — lossless JSON-lines round-trip and Prometheus-style text —
  plus :func:`validate_snapshot` for the CI schema check.
- :class:`Telemetry` — the facade bundling one registry + tracer, passed
  to runtimes explicitly or installed process-wide via :func:`activate`.

See ``docs/observability.md`` for the full tour and overhead numbers.
"""

from .caches import (
    CacheStats,
    cache_snapshot,
    cache_stats,
    register_cache,
    register_cache_object,
    registered_caches,
    unregister_cache,
)
from .context import SCHEMA, Telemetry, activate, get_active
from .exporters import (
    export_jsonl,
    parse_jsonl,
    prometheus_text,
    validate_snapshot,
    write_jsonl,
)
from .registry import (
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from .spans import Span, Tracer, VirtualClock

__all__ = [
    "SCHEMA",
    "CacheStats",
    "Counter",
    "DEFAULT_TIME_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "Tracer",
    "VirtualClock",
    "activate",
    "cache_snapshot",
    "cache_stats",
    "export_jsonl",
    "get_active",
    "metric_key",
    "parse_jsonl",
    "prometheus_text",
    "register_cache",
    "register_cache_object",
    "registered_caches",
    "unregister_cache",
    "validate_snapshot",
    "write_jsonl",
]
