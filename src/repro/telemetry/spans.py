"""Span-based tracing with virtual-clock support.

One :class:`Tracer` holds the request-scoped trace of a run: spans nest
through a thread-local stack (``with tracer.span("infer"):``), worker
threads can adopt a parent from another thread (:meth:`Tracer.attach`),
and simulated components can record spans with *explicit* virtual times
(:meth:`Tracer.record_span`) so discrete-event simulations — serve-sim's
virtual seconds — and wall-clock instrumentation coexist in one tree.

The clock is injectable: production uses ``time.perf_counter``; tests use
a :class:`VirtualClock` for fully deterministic, hand-pinnable span times.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "VirtualClock"]


class VirtualClock:
    """A manually advanced clock for deterministic traces.

    Pass ``VirtualClock().now`` as a tracer's clock; ``advance()`` moves
    time forward explicitly, which makes span durations exact constants in
    tests and lets simulators drive traces in virtual seconds.
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = float(start_s)
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("virtual time cannot go backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, target_s: float) -> float:
        """Advance to an absolute time, exactly (no-op if already past).

        ``advance(t - now())`` lands on ``now + (t - now)``, which float
        rounding can leave a few ULP off ``t``; event-driven simulators
        need the clock to sit *exactly* on each event's timestamp.
        """
        with self._lock:
            if target_s > self._now:
                self._now = float(target_s)
            return self._now


class Span:
    """One named, timed interval with attributes and child spans."""

    __slots__ = ("name", "attrs", "start_s", "end_s", "children")

    def __init__(
        self,
        name: str,
        attrs: Dict[str, object],
        start_s: float,
        end_s: Optional[float] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.end_s = end_s
        self.children: List["Span"] = []

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with the given name, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def path_names(self) -> List[str]:
        """Span names along one leftmost root-to-leaf path (test helper)."""
        names = [self.name]
        node = self
        while node.children:
            node = node.children[0]
            names.append(node.name)
        return names

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.start_s}..{self.end_s}, {self.attrs})"


class Tracer:
    """Collects a forest of spans across threads.

    Each thread keeps its own active-span stack; closing a span attaches
    it to its parent (or the shared root list) under a lock, so concurrent
    workers never corrupt the tree. ``enabled=False`` makes ``span()``
    yield a shared detached span and record nothing.
    """

    def __init__(self, clock=time.perf_counter, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ---- the active-span stack ----------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # ---- recording -----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a child span of this thread's current span."""
        if not self.enabled:
            yield _DETACHED
            return
        opened = Span(name, attrs, start_s=self.clock())
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(opened)
        try:
            yield opened
        finally:
            opened.end_s = self.clock()
            stack.pop()
            self._adopt(parent, opened)

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        **attrs: object,
    ) -> Optional[Span]:
        """Record an already-timed span (e.g. a virtual-time interval).

        The span nests under this thread's current span like any other,
        but its times are the caller's — this is how discrete-event
        simulators place events on their own virtual clock.
        """
        if not self.enabled:
            return None
        if end_s < start_s:
            raise ValueError("span ends before it starts")
        closed = Span(name, attrs, start_s=start_s, end_s=end_s)
        self._adopt(self.current, closed)
        return closed

    def _adopt(self, parent: Optional[Span], span: Span) -> None:
        with self._lock:
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    @contextmanager
    def attach(self, parent: Span) -> Iterator[None]:
        """Adopt ``parent`` as this thread's current span.

        Lets worker threads contribute children to a span opened on
        another thread. The parent may close before its cross-thread
        children do; children keep their own times either way.
        """
        stack = self._stack()
        stack.append(parent)
        try:
            yield
        finally:
            stack.pop()

    # ---- aggregation ---------------------------------------------------

    def all_spans(self) -> List[Span]:
        with self._lock:
            roots = list(self.roots)
        spans: List[Span] = []
        for root in roots:
            spans.extend(root.walk())
        return spans

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate: {"name": {"count": n, "total_s": t}}."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.all_spans():
            if span.end_s is None:
                continue
            entry = totals.setdefault(span.name, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += span.duration_s
        return totals

    def clear(self) -> None:
        with self._lock:
            self.roots.clear()

    def render(self) -> str:
        """Indented ASCII view of the span forest."""
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            duration = (
                f"{span.duration_s * 1e3:9.3f} ms" if span.end_s is not None
                else "     open"
            )
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            lines.append(f"{'  ' * depth}{span.name:<12} {duration}  {attrs}".rstrip())
            for child in span.children:
                emit(child, depth + 1)

        with self._lock:
            roots = list(self.roots)
        for root in roots:
            emit(root, 0)
        return "\n".join(lines) if lines else "(no spans)"


#: Shared span handed out by disabled tracers; never attached to anything.
_DETACHED = Span("disabled", {}, start_s=0.0, end_s=0.0)
