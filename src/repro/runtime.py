"""System runtime: co-simulation of numerics and timing.

Plays the role of the paper's OpenCL host program: it owns a deployed
model (encoded weights + accelerator configuration), executes inference
*functionally* through the quantized ABM pipeline, and attributes *time*
from the accelerator simulator's per-layer cycle estimates plus the host
model for the CPU layers — the two-stage pipelined system of Section 6.1.

    runtime = SystemRuntime.from_pipeline(pipeline, specs, device)
    outcome = runtime.infer(image)
    outcome.top1, outcome.fpga_ms, outcome.host_ms, outcome.effective_gops
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core.specs import LayerSpec
from .deploy import DeployedModel, deploy
from .hw.accelerator import ModelSimResult
from .hw.config import AcceleratorConfig
from .hw.device import STRATIX_V_GXA7, FPGADevice
from .pipeline import InferenceResult, QuantizedPipeline
from .system.host import DEFAULT_HOST_OPS_PER_SECOND, HostModel
from .telemetry.context import Telemetry, activate


@dataclass(frozen=True)
class RuntimeOutcome:
    """One inference: outputs plus the attributed time budget."""

    output: np.ndarray
    layer_cycles: Dict[str, float]
    fpga_seconds: float
    host_seconds: float
    executed_ops: int
    dense_ops: int

    @property
    def top1(self) -> int:
        return int(np.argmax(self.output))

    @property
    def fpga_ms(self) -> float:
        return self.fpga_seconds * 1e3

    @property
    def host_ms(self) -> float:
        return self.host_seconds * 1e3

    @property
    def pipelined_seconds(self) -> float:
        """Steady-state per-image time of the CPU/FPGA pipeline."""
        return max(self.fpga_seconds, self.host_seconds)

    @property
    def throughput_gops(self) -> float:
        """Paper-basis throughput of this deployment."""
        return self.dense_ops / self.pipelined_seconds / 1e9

    @property
    def effective_gops(self) -> float:
        """Executed (acc+mult) operation rate on the FPGA."""
        return self.executed_ops / self.fpga_seconds / 1e9


class SystemRuntime:
    """Executes a deployed model functionally with simulated timing."""

    def __init__(
        self,
        pipeline: QuantizedPipeline,
        deployed: DeployedModel,
        device: FPGADevice = STRATIX_V_GXA7,
        host_ops_per_second: float = DEFAULT_HOST_OPS_PER_SECOND,
        sim_cache: bool = True,
        sim_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        """``telemetry``, when given, makes every :meth:`infer` /
        :meth:`infer_batch` call open an ``infer`` span (with nested
        ``layer`` and ``kernel`` spans from the pipeline and compiled
        plans) and record per-inference metrics into its registry."""
        self.pipeline = pipeline
        self.deployed = deployed
        self.device = device
        self.host_model = HostModel(ops_per_second=host_ops_per_second)
        self.sim_cache = sim_cache
        self.sim_workers = sim_workers
        self.telemetry = telemetry
        self._simulation: Optional[ModelSimResult] = None

    @classmethod
    def from_pipeline(
        cls,
        pipeline: QuantizedPipeline,
        specs: Sequence[LayerSpec],
        device: FPGADevice = STRATIX_V_GXA7,
        config: Optional[AcceleratorConfig] = None,
        host_ops_per_second: float = DEFAULT_HOST_OPS_PER_SECOND,
    ) -> "SystemRuntime":
        """Deploy a quantized pipeline and wrap it in a runtime."""
        deployed = deploy(pipeline, specs, config=config, device=device)
        return cls(
            pipeline,
            deployed,
            device=device,
            host_ops_per_second=host_ops_per_second,
        )

    @property
    def simulation(self) -> ModelSimResult:
        """Lazily-run (and cached) timing simulation of the deployment.

        Backed by the process-wide layer result cache, so sibling runtimes
        serving the same deployment (serve worker pools) share one
        simulation instead of re-running it per instance.
        """
        if self._simulation is None:
            self._simulation = self.deployed.simulate(
                self.device, cache=self.sim_cache, workers=self.sim_workers
            )
        return self._simulation

    def infer(self, image: np.ndarray) -> RuntimeOutcome:
        """Run one image: ABM numerics + simulated per-layer timing."""
        if self.telemetry is not None:
            with activate(self.telemetry):
                with self.telemetry.span(
                    "infer", model=self.pipeline.network.name
                ):
                    functional: InferenceResult = self.pipeline.run(image)
            self.telemetry.registry.counter("runtime/images").inc()
        else:
            functional = self.pipeline.run(image)
        simulation = self.simulation
        layer_cycles = {
            layer.layer: layer.cycles_per_image for layer in simulation.layers
        }
        host_seconds = self.host_model.seconds_per_image(self.pipeline.network)
        return RuntimeOutcome(
            output=functional.output,
            layer_cycles=layer_cycles,
            fpga_seconds=simulation.seconds_per_image,
            host_seconds=host_seconds,
            executed_ops=functional.total_ops,
            dense_ops=simulation.dense_ops,
        )

    def infer_batch(self, images: Sequence[np.ndarray]) -> List[RuntimeOutcome]:
        """Run a batch through the pipeline's fused streaming path in one pass.

        Numerically identical, image-for-image, to calling :meth:`infer` on
        each image — the batch flows through the fused
        :class:`repro.core.model_plan.ModelPlan` (conv/FC + epilogue stages
        over ping-pong activation buffers) instead of looping layers
        Python-side. Timing attribution per image is the same as
        :meth:`infer` (the simulator's per-image estimate).
        """
        if len(images) == 0:
            raise ValueError("batch must contain at least one image")
        batch = np.stack([np.asarray(image) for image in images])
        if self.telemetry is not None:
            with activate(self.telemetry):
                with self.telemetry.span(
                    "infer",
                    model=self.pipeline.network.name,
                    batch=len(images),
                ):
                    functional = self.pipeline.run_batch(batch)
            self.telemetry.registry.counter("runtime/images").inc(len(images))
        else:
            functional = self.pipeline.run_batch(batch)
        simulation = self.simulation
        layer_cycles = {
            layer.layer: layer.cycles_per_image for layer in simulation.layers
        }
        host_seconds = self.host_model.seconds_per_image(self.pipeline.network)
        return [
            RuntimeOutcome(
                output=result.output,
                layer_cycles=layer_cycles,
                fpga_seconds=simulation.seconds_per_image,
                host_seconds=host_seconds,
                executed_ops=result.total_ops,
                dense_ops=simulation.dense_ops,
            )
            for result in functional
        ]

    def batch_seconds(self, batch_size: int) -> float:
        """Simulated service time of one batch on this accelerator.

        Generalizes the paper's two-stage CPU/FPGA pipeline (Section 6.1)
        to a batch of B images: the first image fills both stages, the
        remaining B-1 stream at the slower stage's rate, and the last
        image's host stage drains after its FPGA stage —

            T(B) = fpga + host + (B - 1) * max(fpga, host)

        so T(1) is the sequential per-image time and the marginal cost of
        an extra batched image is the pipelined per-image time.

        :meth:`repro.serve.fleet.ServiceProfile.batch_seconds` copies this
        expression verbatim — keep the two in sync, the event-driven
        serving engine's differential pinning depends on float equality.
        """
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        fpga = self.simulation.seconds_per_image
        host = self.host_model.seconds_per_image(self.pipeline.network)
        return fpga + host + (batch_size - 1) * max(fpga, host)

    def latency_breakdown(self) -> Tuple[Tuple[str, float], ...]:
        """(layer, milliseconds) for every accelerated layer, in order."""
        simulation = self.simulation
        freq_hz = self.deployed.config.freq_mhz * 1e6
        return tuple(
            (layer.layer, layer.cycles_per_image / freq_hz * 1e3)
            for layer in simulation.layers
        )
