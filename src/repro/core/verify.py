"""Randomized differential verification of the convolution schemes.

A reusable harness (also wired to ``abm-spconv verify``) that generates
random quantized sparse layers across the geometry space — kernel sizes,
strides, paddings, groups, densities, codebooks — and checks that every
executable scheme agrees:

- ABM-SpConv (vectorized) == direct integer convolution, bit-exact;
- ABM-SpConv (reference loop) == vectorized, including op counts;
- zero-skipping SpConv == dense, bit-exact;
- FDConv (float FFT) == dense within float tolerance;
- Winograd F(2x2,3x3)/F(4x4,3x3) == dense, bit-exact after the integer
  snap (on 3x3 stride-1 geometries);
- spectral (batched FFT) == dense, bit-exact after the integer snap;
- encode/decode round-trips the weights.

This is the library's own continuous differential tester — the kind of
harness an accelerator bring-up team runs against RTL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .abm import ConvGeometry, abm_conv2d, abm_conv2d_reference, direct_conv2d_codes
from .encoding import decode_layer, encode_layer


@dataclass(frozen=True)
class TrialConfig:
    """Geometry of one randomized trial."""

    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    padding: int
    groups: int
    size: int
    density: float
    value_range: int


@dataclass
class VerificationReport:
    """Outcome of a verification run."""

    trials: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"differential verification: {status} ({self.trials} trials)"]
        lines.extend(f"  FAILURE: {failure}" for failure in self.failures)
        return "\n".join(lines)


def random_trial_config(rng: np.random.Generator) -> TrialConfig:
    """Draw one geometry, biased toward awkward corners."""
    groups = int(rng.choice([1, 1, 1, 2, 4]))
    group_in = int(rng.integers(1, 5))
    group_out = int(rng.integers(1, 4))
    kernel = int(rng.choice([1, 2, 3, 5]))
    stride = int(rng.integers(1, 3))
    padding = int(rng.integers(0, kernel))
    size = int(rng.integers(kernel + stride, 14))
    return TrialConfig(
        in_channels=groups * group_in,
        out_channels=groups * group_out,
        kernel=kernel,
        stride=stride,
        padding=padding,
        groups=groups,
        size=size,
        density=float(rng.uniform(0.0, 1.0)),
        value_range=int(rng.choice([2, 8, 127])),
    )


def run_trial(config: TrialConfig, rng: np.random.Generator) -> Optional[str]:
    """Run one trial; returns a failure description or None."""
    # Imported here, not at module scope: repro.core must not depend on
    # repro.baselines at import time (baselines itself builds on core).
    from ..baselines.fdconv import fdconv2d
    from ..baselines.spconv import spconv2d
    from ..baselines.spectral import spectral_conv2d
    from ..baselines.winograd import winograd_conv2d

    shape = (
        config.out_channels,
        config.in_channels // config.groups,
        config.kernel,
        config.kernel,
    )
    weights = rng.integers(-config.value_range, config.value_range + 1, size=shape)
    weights = (weights * (rng.random(shape) < config.density)).astype(np.int64)
    features = rng.integers(-128, 128, size=(config.in_channels, config.size, config.size))
    geometry = ConvGeometry(
        kernel=config.kernel,
        stride=config.stride,
        padding=config.padding,
        groups=config.groups,
    )
    encoded = encode_layer("trial", weights)
    if not np.array_equal(decode_layer(encoded), weights):
        return f"encode/decode mismatch at {config}"
    expected = direct_conv2d_codes(features, weights, geometry)
    fast = abm_conv2d(features, encoded, geometry)
    if not np.array_equal(fast.output, expected):
        return f"ABM != direct at {config}"
    reference = abm_conv2d_reference(features, encoded, geometry)
    if not np.array_equal(reference.output, expected):
        return f"ABM reference != direct at {config}"
    if (
        reference.accumulate_ops != fast.accumulate_ops
        or reference.multiply_ops != fast.multiply_ops
    ):
        return f"ABM op-count mismatch at {config}"
    sparse = spconv2d(features, weights, geometry)
    if not np.array_equal(sparse.output, expected):
        return f"SpConv != direct at {config}"
    if config.kernel == 3 and config.stride == 1:
        for tile in (2, 4):
            wino = winograd_conv2d(features, weights, geometry, tile=tile)
            if not np.array_equal(wino.output, expected):
                return f"Winograd F({tile}) != direct at {config}"
    if config.kernel > 1:
        spectral = spectral_conv2d(features, weights, geometry)
        if not np.array_equal(spectral.output, expected):
            return f"spectral != direct at {config}"
    if config.groups == 1:
        freq = fdconv2d(
            features.astype(float),
            weights.astype(float),
            stride=config.stride,
            padding=config.padding,
        )
        if not np.allclose(freq, expected, atol=1e-5 * max(1, config.value_range)):
            return f"FDConv != direct at {config}"
    return None


def verify_schemes(trials: int = 100, seed: int = 0) -> VerificationReport:
    """Run the full differential verification campaign."""
    if trials < 1:
        raise ValueError("need at least one trial")
    rng = np.random.default_rng(seed)
    report = VerificationReport()
    for _ in range(trials):
        config = random_trial_config(rng)
        failure = run_trial(config, rng)
        report.trials += 1
        if failure is not None:
            report.failures.append(failure)
    return report
