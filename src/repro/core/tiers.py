"""Execution-tier selection for the compiled ABM kernels.

The repo ships two tiers for the plan's inner loops:

- ``numpy`` — the portable tier: scipy's sparse selection product when
  scipy is installed, the chunked gather + ``np.add.reduceat`` fallback
  otherwise.  Always available; the correctness baseline.
- ``numba`` — an optional JIT tier that compiles the per-group
  accumulate-before-multiply walk (the gather + two segmented reductions)
  into one fused native loop nest.  Used only when numba is importable
  *and* its kernel compiles; any failure silently resolves back to the
  numpy tier, so the ``fast`` extra stays optional.

Selection is process-wide: the ``ABM_SPCONV_TIER`` environment variable
(``auto`` / ``numpy`` / ``numba``) seeds the choice at import, the CLI's
``--tier`` flag and :func:`set_tier` override it at run time, and
:func:`resolve_tier` answers what will actually execute.  ``auto`` means
"numba when it works, numpy otherwise".

The numba kernel is numerically identical to the numpy paths: all three
compute the same exact integer sums (addition is associative and
commutative on ints; no rounding happens before the Sum/Round stage), a
property pinned by the differential suites in ``tests/test_abm_compiled.py``
and ``tests/test_model_fused.py``.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

TIERS = ("auto", "numpy", "numba")

try:  # numba is optional: the pure-numpy tier is always available.
    import numba as _numba
except ImportError:  # pragma: no cover - exercised on numba-less installs
    _numba = None

_requested = "auto"
_group_kernel = None
_kernel_failed = False


def numba_available() -> bool:
    """True when the numba package is importable."""
    return _numba is not None


def set_tier(tier: str) -> str:
    """Select the execution tier; returns the previous request.

    Requesting ``numba`` without numba installed is not an error — the
    request sticks but :func:`resolve_tier` keeps answering ``numpy`` (the
    fallback is mandatory), with a one-time warning.
    """
    global _requested
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
    previous = _requested
    if tier == "numba" and _numba is None:
        warnings.warn(
            "ABM_SPCONV_TIER=numba requested but numba is not installed; "
            "falling back to the numpy tier",
            RuntimeWarning,
            stacklevel=2,
        )
    _requested = tier
    return previous


def get_tier() -> str:
    """The requested tier (``auto`` / ``numpy`` / ``numba``)."""
    return _requested


def resolve_tier() -> str:
    """The tier that will actually execute: ``numpy`` or ``numba``."""
    if _requested == "numpy" or _numba is None or _kernel_failed:
        return "numpy"
    return "numba" if group_kernel() is not None else "numpy"


def numba_active() -> bool:
    """True when plan execution should dispatch to the numba kernel."""
    return resolve_tier() == "numba"


def _build_group_kernel():  # pragma: no cover - needs numba installed
    """Compile the per-group ABM kernel (once per process).

    Semantics mirror :meth:`repro.core.plan.LayerPlan._execute_group_gather`
    exactly: for every kernel's run of Q-Table segments, accumulate the
    WT-Buffer-indexed feature rows and weight each segment's partial sum by
    its VAL.  ``sum_c v * x_c == v * sum_c x_c`` holds exactly in integer
    arithmetic, and the int64 accumulator bounds every prefix sum by the
    plan's worst-case datapath value, so fusing the multiply into the walk
    changes nothing numerically.
    """

    @_numba.njit(parallel=True, nogil=True, cache=False)
    def group_kernel(patches_t, columns, seg_bounds, seg_values, kseg_bounds, kernel_rows, out):
        pixels = patches_t.shape[1]
        n_kernels = kernel_rows.shape[0]
        for k in _numba.prange(n_kernels):
            row = kernel_rows[k]
            for s in range(kseg_bounds[k], kseg_bounds[k + 1]):
                value = seg_values[s]
                for c in range(seg_bounds[s], seg_bounds[s + 1]):
                    col = columns[c]
                    for p in range(pixels):
                        out[row, p] += value * patches_t[col, p]

    return group_kernel


def group_kernel():
    """The compiled numba group kernel, or ``None`` when unavailable.

    Compilation happens lazily on first use; a failure (old numba, broken
    toolchain) is recorded so every later call resolves to the numpy tier
    without retrying.
    """
    global _group_kernel, _kernel_failed
    if _numba is None or _kernel_failed:
        return None
    if _group_kernel is None:
        try:  # pragma: no cover - needs numba installed
            _group_kernel = _build_group_kernel()
        except Exception:  # pragma: no cover - defensive: fallback mandatory
            _kernel_failed = True
            warnings.warn(
                "numba group-kernel compilation failed; using the numpy tier",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
    return _group_kernel


def _tier_from_env() -> Optional[str]:
    value = os.environ.get("ABM_SPCONV_TIER")
    if value is None:
        return None
    value = value.strip().lower()
    if value not in TIERS:
        warnings.warn(
            f"ignoring unknown ABM_SPCONV_TIER={value!r} "
            f"(expected one of {TIERS})",
            RuntimeWarning,
        )
        return None
    return value


_env_tier = _tier_from_env()
if _env_tier is not None:
    set_tier(_env_tier)
