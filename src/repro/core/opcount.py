"""Operation-count analysis of the four convolution schemes (paper Table 1).

The paper compares, per layer and for whole models, the number of arithmetic
operations required by:

- **SDConv** — dense spatial convolution: 2 ops per MAC.
- **FDConv** — frequency-domain convolution as implemented by Zeng et
  al. [3]: the paper credits it a uniform 3.3x MAC reduction on convolution
  layers (FC layers gain nothing; Table 1 shows FC6 unchanged at 205 MOP).
- **SpConv** — zero-skipping sparse convolution: 2 ops per surviving MAC.
- **ABM-SpConv** — accumulates equal to the surviving weight count (1 op
  per accumulated pixel) and multiplies equal to the number of *distinct
  nonzero values* per kernel per output pixel.

Counts come in two flavours: *analytic* (from a :class:`LayerSpec` plus a
density and distinct-value figure — no weights needed, used for full-size
models) and *measured* (from an actual encoded weight tensor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from .encoding import EncodedLayer
from .specs import LayerSpec

#: MAC reduction the paper credits the FDConv baseline [3] on conv layers.
FDCONV_REDUCTION = 3.3


@dataclass(frozen=True)
class LayerOpCounts:
    """All four schemes' op counts for one layer."""

    name: str
    sdconv_ops: float
    fdconv_ops: float
    spconv_ops: float
    abm_accumulates: float
    abm_multiplies: float

    @property
    def abm_ops(self) -> float:
        return self.abm_accumulates + self.abm_multiplies

    @property
    def acc_to_mult_ratio(self) -> float:
        """Table 1's last column (Acc./Mult.)."""
        if self.abm_multiplies == 0:
            return 0.0
        return self.abm_accumulates / self.abm_multiplies

    def saved_vs(self, other_ops: float) -> float:
        """Fraction of ops ABM saves against another scheme's count."""
        if other_ops == 0:
            return 0.0
        return 1.0 - self.abm_ops / other_ops


@dataclass(frozen=True)
class ModelOpCounts:
    """Whole-model totals (Table 1 'Entire CNN' row)."""

    layers: Sequence[LayerOpCounts]

    def _total(self, attr: str) -> float:
        return float(sum(getattr(layer, attr) for layer in self.layers))

    @property
    def sdconv_ops(self) -> float:
        return self._total("sdconv_ops")

    @property
    def fdconv_ops(self) -> float:
        return self._total("fdconv_ops")

    @property
    def spconv_ops(self) -> float:
        return self._total("spconv_ops")

    @property
    def abm_accumulates(self) -> float:
        return self._total("abm_accumulates")

    @property
    def abm_multiplies(self) -> float:
        return self._total("abm_multiplies")

    @property
    def abm_ops(self) -> float:
        return self.abm_accumulates + self.abm_multiplies

    @property
    def saved_vs_sdconv(self) -> float:
        """'#OP Saved' vs dense (paper: 83.6% for VGG16)."""
        return 1.0 - self.abm_ops / self.sdconv_ops

    @property
    def saved_vs_fdconv(self) -> float:
        """Reduction over FDConv [3] (paper: 47.1%)."""
        return 1.0 - self.abm_ops / self.fdconv_ops

    @property
    def saved_vs_spconv(self) -> float:
        """Reduction over SpConv [7] (paper: 50%)."""
        return 1.0 - self.abm_ops / self.spconv_ops


def analytic_layer_counts(
    spec: LayerSpec,
    density: float,
    distinct_values_per_kernel: float,
    fdconv_reduction: float = FDCONV_REDUCTION,
) -> LayerOpCounts:
    """Op counts from dimensions + sparsity statistics (no weights).

    Parameters
    ----------
    density:
        Fraction of weights surviving pruning (1 - pruning ratio).
    distinct_values_per_kernel:
        Mean number of distinct nonzero quantized values in one kernel —
        the per-output-pixel multiply count of ABM-SpConv.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if distinct_values_per_kernel < 0:
        raise ValueError("distinct value count cannot be negative")
    surviving_macs = spec.macs * density
    reduction = fdconv_reduction if spec.kind == "conv" else 1.0
    return LayerOpCounts(
        name=spec.name,
        sdconv_ops=float(spec.dense_ops),
        fdconv_ops=spec.dense_ops / reduction,
        spconv_ops=2.0 * surviving_macs,
        abm_accumulates=surviving_macs,
        abm_multiplies=distinct_values_per_kernel * spec.kernel_count,
    )


def measured_layer_counts(
    spec: LayerSpec,
    encoded: EncodedLayer,
    fdconv_reduction: float = FDCONV_REDUCTION,
) -> LayerOpCounts:
    """Op counts measured from an actual encoded weight tensor."""
    if len(encoded.kernels) != spec.out_channels:
        raise ValueError(
            f"{spec.name}: encoded layer has {len(encoded.kernels)} kernels, "
            f"spec expects {spec.out_channels}"
        )
    nnz = encoded.nonzero_count
    distinct_total = sum(kernel.distinct_values for kernel in encoded.kernels)
    reduction = fdconv_reduction if spec.kind == "conv" else 1.0
    return LayerOpCounts(
        name=spec.name,
        sdconv_ops=float(spec.dense_ops),
        fdconv_ops=spec.dense_ops / reduction,
        spconv_ops=2.0 * nnz * spec.output_pixels,
        abm_accumulates=float(nnz * spec.output_pixels),
        abm_multiplies=float(distinct_total * spec.output_pixels),
    )


def analytic_model_counts(
    specs: Sequence[LayerSpec],
    densities: Mapping[str, float],
    distinct_values: Mapping[str, float],
    fdconv_reduction: float = FDCONV_REDUCTION,
) -> ModelOpCounts:
    """Whole-model analytic counts from per-layer statistics."""
    layers = []
    for spec in specs:
        if spec.name not in densities:
            raise KeyError(f"no density for layer {spec.name!r}")
        if spec.name not in distinct_values:
            raise KeyError(f"no distinct-value figure for layer {spec.name!r}")
        layers.append(
            analytic_layer_counts(
                spec,
                densities[spec.name],
                distinct_values[spec.name],
                fdconv_reduction=fdconv_reduction,
            )
        )
    return ModelOpCounts(layers=tuple(layers))


def expected_distinct_values(
    nnz_per_kernel: float, codebook_size: int, concentration: Optional[np.ndarray] = None
) -> float:
    """Expected distinct values when drawing nnz weights from a codebook.

    With a uniform codebook of V values, drawing n weights independently
    gives ``V * (1 - (1 - 1/V)**n)`` distinct values in expectation; a
    non-uniform ``concentration`` distribution replaces the uniform term.
    Used to calibrate synthetic weights against Table 1's Mult column.
    """
    if codebook_size < 1:
        raise ValueError("codebook must have at least one value")
    if nnz_per_kernel < 0:
        raise ValueError("nnz cannot be negative")
    if concentration is None:
        probabilities = np.full(codebook_size, 1.0 / codebook_size)
    else:
        probabilities = np.asarray(concentration, dtype=np.float64)
        if probabilities.size != codebook_size or probabilities.min() < 0:
            raise ValueError("concentration must be a distribution over the codebook")
        probabilities = probabilities / probabilities.sum()
    return float(np.sum(1.0 - (1.0 - probabilities) ** nnz_per_kernel))
