"""ABM-SpConv: accumulate-before-multiply sparse convolution (Equation 2).

Because a q-bit quantized weight can only take ``Q = 2**q`` distinct values,
the inner product of a convolution kernel factors by value::

    sum_i w_i * x_i  ==  sum_p Wp * (sum_{i : w_i == Wp} x_i)

The two-stage flow is: (1) for every distinct nonzero value Wp, *accumulate*
the feature pixels it touches; (2) *multiply* each partial sum by Wp once
and sum the products. Stage 1 is pure addition — cheap ALM logic on an FPGA
— while stage 2 needs only one multiplier per several accumulators, which is
the whole architectural point of the paper.

All arithmetic here is exact integer arithmetic on fixed-point codes, so the
factorization is bit-exact against direct convolution (a property test).
Rounding to the 8-bit feature format happens once, after the kernel sum, as
in the hardware's Sum/Round stage.

Three implementations are provided: a literal reference loop
(:func:`abm_conv2d_reference`) used as the test oracle; a vectorized
version (:func:`abm_conv2d_vectorized`) that batches all output pixels of
a channel through numpy but still loops (kernel, distinct-value) pairs in
Python; and the default fast path (:func:`abm_conv2d`), which executes a
compile-once layer-wide CSR plan (:mod:`repro.core.plan`) — one gather,
one segmented accumulate, one segment multiply — and is bit-exact against
both with identical operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn.layers.conv import im2col
from .encoding import EncodedLayer, encode_layer_cached
from .plan import compile_layer_plan


@dataclass(frozen=True)
class ConvGeometry:
    """Spatial parameters of a convolution (K, S, padding, groups)."""

    kernel: int
    stride: int = 1
    padding: int = 0
    groups: int = 1


@dataclass(frozen=True)
class ABMConvResult:
    """Output of an ABM-SpConv execution plus its exact operation counts."""

    output: np.ndarray
    accumulate_ops: int
    multiply_ops: int

    @property
    def total_ops(self) -> int:
        """Accumulates + multiplies, the paper's ABM '#OP'."""
        return self.accumulate_ops + self.multiply_ops

    @property
    def acc_to_mult_ratio(self) -> float:
        """Arithmetic-intensity ratio that sizes the sharing factor N."""
        if self.multiply_ops == 0:
            return 0.0
        return self.accumulate_ops / self.multiply_ops


def _conv_output_hw(
    rows: int, cols: int, geometry: ConvGeometry
) -> Tuple[int, int]:
    out_rows = (rows + 2 * geometry.padding - geometry.kernel) // geometry.stride + 1
    out_cols = (cols + 2 * geometry.padding - geometry.kernel) // geometry.stride + 1
    if out_rows < 1 or out_cols < 1:
        raise ValueError("convolution geometry does not fit the input")
    return out_rows, out_cols


def _check_feature_codes(features: np.ndarray) -> np.ndarray:
    arr = np.asarray(features)
    if arr.ndim != 3:
        raise ValueError(f"feature codes must be CHW, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError("ABM-SpConv operates on integer feature codes")
    return arr.astype(np.int64)


def abm_conv2d_reference(
    feature_codes: np.ndarray,
    encoded: EncodedLayer,
    geometry: ConvGeometry,
    bias_codes: Optional[np.ndarray] = None,
) -> ABMConvResult:
    """Literal two-stage ABM-SpConv (slow; the test oracle).

    Walks every output pixel of every kernel, accumulates feature pixels per
    distinct weight value, then multiplies each partial sum once — exactly
    the loop structure of paper Section 3 steps (1)-(2).
    """
    features = _check_feature_codes(feature_codes)
    channels, rows, cols = features.shape
    out_rows, out_cols = _conv_output_hw(rows, cols, geometry)
    kernels = len(encoded.kernels)
    if kernels % geometry.groups:
        raise ValueError("output channels must divide into groups")
    padded = np.pad(
        features,
        ((0, 0), (geometry.padding,) * 2, (geometry.padding,) * 2),
        mode="constant",
    )
    group_in = channels // geometry.groups
    group_out = kernels // geometry.groups
    output = np.zeros((kernels, out_rows, out_cols), dtype=np.int64)
    acc_ops = 0
    mult_ops = 0
    k = geometry.kernel
    for m, kernel in enumerate(encoded.kernels):
        base_channel = (m // group_out) * group_in
        for r in range(out_rows):
            for c in range(out_cols):
                r0 = r * geometry.stride
                c0 = c * geometry.stride
                window = padded[
                    base_channel : base_channel + group_in, r0 : r0 + k, c0 : c0 + k
                ].reshape(-1)
                total = 0
                for value, block in kernel.value_groups():
                    # Stage 1: accumulate all pixels sharing this value.
                    partial = int(window[block].sum())
                    acc_ops += block.size
                    # Stage 2: one multiply + final accumulation.
                    total += value * partial
                    mult_ops += 1
                if bias_codes is not None:
                    total += int(bias_codes[m])
                output[m, r, c] = total
    return ABMConvResult(output=output, accumulate_ops=acc_ops, multiply_ops=mult_ops)


def abm_conv2d_vectorized(
    feature_codes: np.ndarray,
    encoded: EncodedLayer,
    geometry: ConvGeometry,
    bias_codes: Optional[np.ndarray] = None,
) -> ABMConvResult:
    """Vectorized ABM-SpConv (the pre-plan implementation, kept as a
    mid-fidelity baseline for benchmarks and differential tests).

    The value-grouped structure is identical to the reference; numpy batches
    the accumulate stage over all output pixels of a kernel at once, but the
    (kernel, distinct-value) loop still runs in Python — one fancy-indexed
    gather and one reduction per pair.
    """
    features = _check_feature_codes(feature_codes)
    channels, rows, cols = features.shape
    out_rows, out_cols = _conv_output_hw(rows, cols, geometry)
    kernels = len(encoded.kernels)
    if kernels % geometry.groups:
        raise ValueError("output channels must divide into groups")
    group_in = channels // geometry.groups
    group_out = kernels // geometry.groups
    output = np.zeros((kernels, out_rows * out_cols), dtype=np.int64)
    acc_ops = 0
    mult_ops = 0
    for g in range(geometry.groups):
        patches = im2col(
            features[g * group_in : (g + 1) * group_in],
            geometry.kernel,
            geometry.stride,
            geometry.padding,
        )
        pixels = patches.shape[0]
        for m in range(g * group_out, (g + 1) * group_out):
            kernel = encoded.kernels[m]
            totals = np.zeros(pixels, dtype=np.int64)
            for value, block in kernel.value_groups():
                partial = patches[:, block].sum(axis=1)
                totals += value * partial
                acc_ops += block.size * pixels
                mult_ops += pixels
            if bias_codes is not None:
                totals += int(bias_codes[m])
            output[m] = totals
    return ABMConvResult(
        output=output.reshape(kernels, out_rows, out_cols),
        accumulate_ops=acc_ops,
        multiply_ops=mult_ops,
    )


def abm_conv2d(
    feature_codes: np.ndarray,
    encoded: EncodedLayer,
    geometry: ConvGeometry,
    bias_codes: Optional[np.ndarray] = None,
) -> ABMConvResult:
    """ABM-SpConv through the compiled CSR fast path (the default).

    Compiles (and caches) a layer-wide execution plan on first use — see
    :mod:`repro.core.plan` — then runs the whole layer as one gather plus
    two segmented reductions. Bit-exact against
    :func:`abm_conv2d_reference` with identical operation counts.
    """
    features = _check_feature_codes(feature_codes)
    plan = compile_layer_plan(encoded, geometry)
    output, acc_ops, mult_ops = plan.execute(features, bias_codes=bias_codes)
    return ABMConvResult(output=output, accumulate_ops=acc_ops, multiply_ops=mult_ops)


@dataclass(frozen=True)
class ABMConvBatchResult:
    """Output of one batched ABM execution, with batch-total op counts."""

    output: np.ndarray  # (batch, M, R', C')
    accumulate_ops: int
    multiply_ops: int

    @property
    def batch_size(self) -> int:
        return self.output.shape[0]

    @property
    def total_ops(self) -> int:
        return self.accumulate_ops + self.multiply_ops

    def per_image_ops(self) -> Tuple[int, int]:
        """(accumulate, multiply) counts of each image — exact, since every
        image of a batch executes the identical encoded layer."""
        batch = self.batch_size
        return self.accumulate_ops // batch, self.multiply_ops // batch


def abm_conv2d_batch(
    feature_codes: np.ndarray,
    encoded: EncodedLayer,
    geometry: ConvGeometry,
    bias_codes: Optional[np.ndarray] = None,
) -> ABMConvBatchResult:
    """Batched ABM-SpConv: a (B, C, H, W) batch stacked into the pixel axis.

    All B images run through one compiled-plan pass — the gather and the
    segmented reductions see B x out_pixels rows — instead of looping
    images in Python. Numerically identical to running each image through
    :func:`abm_conv2d`.
    """
    batch = np.asarray(feature_codes)
    if batch.ndim != 4:
        raise ValueError(f"batched feature codes must be BCHW, got {batch.shape}")
    if not np.issubdtype(batch.dtype, np.integer):
        raise TypeError("ABM-SpConv operates on integer feature codes")
    batch = batch.astype(np.int64)
    plan = compile_layer_plan(encoded, geometry)
    output, acc_ops, mult_ops = plan.execute_batch(batch, bias_codes=bias_codes)
    return ABMConvBatchResult(
        output=output, accumulate_ops=acc_ops, multiply_ops=mult_ops
    )


def abm_fc(
    feature_codes: np.ndarray,
    encoded: EncodedLayer,
    bias_codes: Optional[np.ndarray] = None,
) -> ABMConvResult:
    """ABM execution of a fully-connected layer (R=C=K=1 view of Eq. 1)."""
    flat = np.asarray(feature_codes).reshape(-1, 1, 1)
    return abm_conv2d(flat, encoded, ConvGeometry(kernel=1), bias_codes=bias_codes)


def abm_fc_batch(
    feature_codes: np.ndarray,
    encoded: EncodedLayer,
    bias_codes: Optional[np.ndarray] = None,
) -> ABMConvBatchResult:
    """Batched FC execution: a (B, in_features) matrix in one plan pass.

    The batch dimension becomes the pixel axis — exactly how the paper's
    accelerator fills its S_ec vector lanes with a batch of images on FC
    layers. Output shape is (B, out_features, 1, 1).
    """
    flat = np.asarray(feature_codes)
    if flat.ndim != 2:
        raise ValueError(f"batched FC codes must be (B, features), got {flat.shape}")
    batch = flat.reshape(flat.shape[0], flat.shape[1], 1, 1)
    return abm_conv2d_batch(
        batch, encoded, ConvGeometry(kernel=1), bias_codes=bias_codes
    )


def abm_conv2d_from_codes(
    feature_codes: np.ndarray,
    weight_codes: np.ndarray,
    geometry: ConvGeometry,
    bias_codes: Optional[np.ndarray] = None,
    name: str = "layer",
) -> ABMConvResult:
    """Convenience wrapper: encode dense integer weights, then run ABM.

    The encoding is memoized on (name, weight content), so calling this
    per-inference no longer re-runs :func:`repro.core.encoding.encode_layer`
    on every invocation.
    """
    encoded = encode_layer_cached(name, np.asarray(weight_codes))
    return abm_conv2d(feature_codes, encoded, geometry, bias_codes=bias_codes)


def direct_conv2d_codes(
    feature_codes: np.ndarray,
    weight_codes: np.ndarray,
    geometry: ConvGeometry,
    bias_codes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact integer spatial convolution — the equivalence oracle for ABM."""
    features = _check_feature_codes(feature_codes)
    weights = np.asarray(weight_codes)
    if weights.ndim != 4:
        raise ValueError(f"weight codes must be (M, N, K, K), got {weights.shape}")
    channels = features.shape[0]
    kernels = weights.shape[0]
    group_in = weights.shape[1]
    if channels % group_in:
        raise ValueError("input channels incompatible with weight shape")
    groups = channels // group_in
    if kernels % groups:
        raise ValueError("output channels must divide into groups")
    out_rows, out_cols = _conv_output_hw(features.shape[1], features.shape[2], geometry)
    group_out = kernels // groups
    output = np.zeros((kernels, out_rows * out_cols), dtype=np.int64)
    for g in range(groups):
        patches = im2col(
            features[g * group_in : (g + 1) * group_in],
            geometry.kernel,
            geometry.stride,
            geometry.padding,
        )
        block = weights[g * group_out : (g + 1) * group_out].reshape(group_out, -1)
        output[g * group_out : (g + 1) * group_out] = (
            patches.astype(np.int64) @ block.astype(np.int64).T
        ).T
    if bias_codes is not None:
        output += np.asarray(bias_codes, dtype=np.int64)[:, None]
    return output.reshape(kernels, out_rows, out_cols)
