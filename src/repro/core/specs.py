"""Analytic layer specifications.

Tables 1-3 and the DSE flow need the *dimensions* of every accelerated layer
of full-size AlexNet/VGG16 without materializing hundred-megabyte weight
tensors. A :class:`LayerSpec` captures exactly the parameters of Equation (1)
— (N, R, C) input, (M, R', C') output, K, S, padding and channel groups —
and derives operation and weight counts from them. Fully-connected layers
are specs with R' = C' = K = 1, the paper's FC-as-convolution view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

CONV = "conv"
FC = "fc"


@dataclass(frozen=True)
class LayerSpec:
    """Dimensions of one accelerated (conv or FC) layer."""

    name: str
    kind: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    padding: int
    groups: int
    in_rows: int
    in_cols: int
    out_rows: int
    out_cols: int

    def __post_init__(self) -> None:
        if self.kind not in (CONV, FC):
            raise ValueError(f"kind must be 'conv' or 'fc', got {self.kind!r}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(f"{self.name}: channels must divide into groups")
        dims = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
            self.groups,
            self.in_rows,
            self.in_cols,
            self.out_rows,
            self.out_cols,
        )
        if min(dims) < 1 or self.padding < 0:
            raise ValueError(f"{self.name}: dimensions must be positive")

    # ---- derived dimension counts -------------------------------------

    @property
    def weights_per_kernel(self) -> int:
        """Weights feeding one output pixel: (N/groups) * K * K."""
        return (self.in_channels // self.groups) * self.kernel * self.kernel

    @property
    def kernel_count(self) -> int:
        """Number of convolution kernels evaluated: M * R' * C'."""
        return self.out_channels * self.out_rows * self.out_cols

    @property
    def output_pixels(self) -> int:
        """Spatial output positions R' * C'."""
        return self.out_rows * self.out_cols

    @property
    def weight_count(self) -> int:
        """Total weights of the layer (M * (N/groups) * K * K)."""
        return self.out_channels * self.weights_per_kernel

    @property
    def macs(self) -> int:
        """Dense multiply-accumulate count."""
        return self.kernel_count * self.weights_per_kernel

    @property
    def dense_ops(self) -> int:
        """The paper's '#OP' convention: 2 operations per MAC."""
        return 2 * self.macs

    @property
    def input_size(self) -> int:
        """Input feature-map elements N * R * C."""
        return self.in_channels * self.in_rows * self.in_cols

    @property
    def output_size(self) -> int:
        """Output feature-map elements M * R' * C'."""
        return self.out_channels * self.out_rows * self.out_cols

    @property
    def is_fc(self) -> bool:
        return self.kind == FC

    def weight_shape(self) -> Tuple[int, int, int, int]:
        """Shape of the weight tensor: (M, N/groups, K, K)."""
        return (
            self.out_channels,
            self.in_channels // self.groups,
            self.kernel,
            self.kernel,
        )


def conv_spec(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    in_rows: int,
    in_cols: int,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> LayerSpec:
    """Build a convolution spec, deriving the output extent."""
    out_rows = (in_rows + 2 * padding - kernel) // stride + 1
    out_cols = (in_cols + 2 * padding - kernel) // stride + 1
    return LayerSpec(
        name=name,
        kind=CONV,
        in_channels=in_channels,
        out_channels=out_channels,
        kernel=kernel,
        stride=stride,
        padding=padding,
        groups=groups,
        in_rows=in_rows,
        in_cols=in_cols,
        out_rows=out_rows,
        out_cols=out_cols,
    )


def fc_spec(name: str, in_features: int, out_features: int) -> LayerSpec:
    """Build an FC spec as a 1x1 convolution over a 1x1 map (paper Sec. 2)."""
    return LayerSpec(
        name=name,
        kind=FC,
        in_channels=in_features,
        out_channels=out_features,
        kernel=1,
        stride=1,
        padding=0,
        groups=1,
        in_rows=1,
        in_cols=1,
        out_rows=1,
        out_cols=1,
    )
