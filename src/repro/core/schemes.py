"""Convolution-scheme taxonomy, computational roofs, and scheme models.

The paper classifies FPGA CNN accelerators by how they implement
convolution, and assigns each class a computational roof (Figure 1):

- SDConv (spatial, MAC arrays):      ``2 * N_mac * Freq``
- FDConv / SpConv (reduced MACs):    ``2 * R_mac * N_mac * Freq``
- ABM-SpConv (this paper):           ``2 * N_acc * Freq``

where ``N_mac`` is the MAC count the DSP blocks provide, ``R_mac`` the MAC
reduction rate, and ``N_acc`` the (much larger) number of logic-built
accumulators. On a Stratix-V GXA7 at 200 MHz those roofs are 204.8, 675 and
1046 GOP/s respectively — the three horizontal lines of Figure 1.

Beyond the roofs, this module defines the :class:`SchemeModel` protocol
that promotes each taxonomy class to a first-class *scheme* the per-layer
planner (:mod:`repro.dse.schemes`) can compare and the fused model plan
(:mod:`repro.core.model_plan`) can dispatch to. A scheme model answers, per
layer:

- ``layer_ops``       — analytic multiply/accumulate counts (Table 1 axis);
- ``layer_cycles``    — predicted accelerator cycles under a configuration
  (ABM uses the quantized Performance Model; MAC-array schemes retire one
  MAC per shared multiplier per cycle, scaled by their reduction rate);
- ``execution_cost``  — predicted work of the *software* fast path in
  float-op equivalents, the quantity the streaming runtime's measured wall
  time tracks (this is what per-layer execution planning ranks on);
- ``resource_overhead`` — extra fabric the scheme's datapath needs next to
  the base ABM design (transform adder trees, FFT butterflies), the shared
  constraint the DSE charges before enabling a scheme.

Implementations live with their executables: ``repro.baselines.sdconv`` /
``fdconv`` / ``spconv`` / ``winograd`` / ``spectral``; the ABM model is
defined here. Models self-register into a process-wide registry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only, no import cycles
    from ..hw.config import AcceleratorConfig
    from ..hw.workload import LayerWorkload
    from .specs import LayerSpec


class ConvScheme(enum.Enum):
    """The four convolution implementation classes of the paper."""

    SDCONV = "sdconv"
    FDCONV = "fdconv"
    SPCONV = "spconv"
    ABM_SPCONV = "abm-spconv"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ComputationalRoof:
    """A throughput roof in GOP/s with the formula that produced it."""

    scheme: ConvScheme
    gops: float
    formula: str


def sdconv_roof(n_mac: int, freq_mhz: float) -> ComputationalRoof:
    """MAC-array roof: every DSP performs one MAC (2 ops) per cycle."""
    gops = 2.0 * n_mac * freq_mhz / 1e3
    return ComputationalRoof(ConvScheme.SDCONV, gops, "2 * N_mac * Freq")


def reduced_mac_roof(
    n_mac: int, freq_mhz: float, r_mac: float, scheme: ConvScheme = ConvScheme.FDCONV
) -> ComputationalRoof:
    """FDConv/SpConv roof: MAC reduction raises the effective throughput."""
    if r_mac < 1.0:
        raise ValueError(f"MAC reduction rate must be >= 1, got {r_mac}")
    gops = 2.0 * r_mac * n_mac * freq_mhz / 1e3
    return ComputationalRoof(scheme, gops, "2 * R_mac * N_mac * Freq")


def abm_roof(n_acc: int, freq_mhz: float) -> ComputationalRoof:
    """ABM-SpConv roof: bound by accumulators, not multipliers."""
    gops = 2.0 * n_acc * freq_mhz / 1e3
    return ComputationalRoof(ConvScheme.ABM_SPCONV, gops, "2 * N_acc * Freq")


# ---------------------------------------------------------------------------
# Scheme models: executable schemes with symmetric op/cycle/resource models.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemeOps:
    """Analytic per-image operation counts of one layer under one scheme."""

    multiplies: float
    accumulates: float

    @property
    def total_ops(self) -> float:
        return self.multiplies + self.accumulates


@dataclass(frozen=True)
class SchemeResources:
    """Fabric a scheme's datapath needs *in addition to* the base design.

    The base ABM design already pays for the accumulator array and the
    shared multipliers; alternative schemes bolt their unit onto the same
    CUs (Winograd transform adder trees, FFT butterfly pipelines), and the
    DSE charges this overhead against the device before it may assign the
    scheme to any layer — the shared resource constraint of the joint
    search.
    """

    alms: int = 0
    dsps: int = 0
    m20ks: int = 0


class SchemeModel(Protocol):
    """What every convolution scheme must predict about a layer.

    ``name`` is the registry key (``abm``, ``sdconv``, ``spconv``,
    ``fdconv``, ``winograd2``, ``winograd4``, ``spectral``); ``taxonomy``
    maps it back to the Figure 1 class; ``executable`` says whether the
    fused model plan has a real datapath for it (model-only schemes still
    show up in predictions and tables).
    """

    name: str
    taxonomy: ConvScheme
    executable: bool

    def supports(self, spec: "LayerSpec") -> bool:
        """Whether the scheme can execute this layer geometry at all."""
        ...

    def layer_ops(self, workload: "LayerWorkload") -> SchemeOps:
        """Analytic per-image multiply/accumulate counts."""
        ...

    def layer_cycles(self, workload: "LayerWorkload", config: "AcceleratorConfig") -> float:
        """Predicted accelerator cycles per image under ``config``."""
        ...

    def execution_cost(self, workload: "LayerWorkload") -> float:
        """Predicted software fast-path work per image (float-op units)."""
        ...

    def resource_overhead(self, config: "AcceleratorConfig") -> SchemeResources:
        """Extra fabric the scheme's unit needs next to the base design."""
        ...


_SCHEME_MODELS: Dict[str, SchemeModel] = {}


def register_scheme_model(model: SchemeModel) -> SchemeModel:
    """Register a scheme model under its ``name`` (last writer wins)."""
    _SCHEME_MODELS[model.name] = model
    return model


def _ensure_builtin_models() -> None:
    # The baseline modules register their models at import time; core must
    # not depend on baselines at *module* import (baselines builds on core),
    # so the registry pulls them in lazily on first use.
    from .. import baselines  # noqa: F401


def get_scheme_model(name: str) -> SchemeModel:
    """Look up a registered scheme model by name."""
    _ensure_builtin_models()
    try:
        return _SCHEME_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; registered: {sorted(_SCHEME_MODELS)}"
        ) from None


def scheme_model_names() -> List[str]:
    """Registered scheme names, registration order."""
    _ensure_builtin_models()
    return list(_SCHEME_MODELS)


def scheme_models() -> List[SchemeModel]:
    """All registered scheme models, registration order."""
    _ensure_builtin_models()
    return list(_SCHEME_MODELS.values())


class ABMSchemeModel:
    """The paper's own scheme, as a :class:`SchemeModel`.

    Op counts come straight from the encoded kernel statistics (Table 1's
    measured columns), cycles from the quantized Performance Model, and the
    software execution cost from the fused plan's dense float64 GEMM
    datapath (2 float ops per dense MAC — the GEMM multiplies pruned zeros
    too; that is precisely the headroom reduced-MAC schemes attack).
    ABM is the base design, so its resource overhead is zero by definition.
    """

    name = "abm"
    taxonomy = ConvScheme.ABM_SPCONV
    executable = True

    def supports(self, spec: "LayerSpec") -> bool:
        return True

    def layer_ops(self, workload: "LayerWorkload") -> SchemeOps:
        return SchemeOps(
            multiplies=float(workload.multiply_ops),
            accumulates=float(workload.accumulate_ops),
        )

    def layer_cycles(self, workload: "LayerWorkload", config: "AcceleratorConfig") -> float:
        from ..dse.performance import MODE_QUANTIZED, estimate_layer

        return estimate_layer(workload, config, mode=MODE_QUANTIZED).cycles_per_image

    def execution_cost(self, workload: "LayerWorkload") -> float:
        return 2.0 * workload.spec.macs

    def resource_overhead(self, config: "AcceleratorConfig") -> SchemeResources:
        return SchemeResources()


register_scheme_model(ABMSchemeModel())
