"""Convolution-scheme taxonomy and computational roofs (paper Figure 1).

The paper classifies FPGA CNN accelerators by how they implement
convolution, and assigns each class a computational roof:

- SDConv (spatial, MAC arrays):      ``2 * N_mac * Freq``
- FDConv / SpConv (reduced MACs):    ``2 * R_mac * N_mac * Freq``
- ABM-SpConv (this paper):           ``2 * N_acc * Freq``

where ``N_mac`` is the MAC count the DSP blocks provide, ``R_mac`` the MAC
reduction rate, and ``N_acc`` the (much larger) number of logic-built
accumulators. On a Stratix-V GXA7 at 200 MHz those roofs are 204.8, 675 and
1046 GOP/s respectively — the three horizontal lines of Figure 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ConvScheme(enum.Enum):
    """The four convolution implementation classes of the paper."""

    SDCONV = "sdconv"
    FDCONV = "fdconv"
    SPCONV = "spconv"
    ABM_SPCONV = "abm-spconv"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ComputationalRoof:
    """A throughput roof in GOP/s with the formula that produced it."""

    scheme: ConvScheme
    gops: float
    formula: str


def sdconv_roof(n_mac: int, freq_mhz: float) -> ComputationalRoof:
    """MAC-array roof: every DSP performs one MAC (2 ops) per cycle."""
    gops = 2.0 * n_mac * freq_mhz / 1e3
    return ComputationalRoof(ConvScheme.SDCONV, gops, "2 * N_mac * Freq")


def reduced_mac_roof(
    n_mac: int, freq_mhz: float, r_mac: float, scheme: ConvScheme = ConvScheme.FDCONV
) -> ComputationalRoof:
    """FDConv/SpConv roof: MAC reduction raises the effective throughput."""
    if r_mac < 1.0:
        raise ValueError(f"MAC reduction rate must be >= 1, got {r_mac}")
    gops = 2.0 * r_mac * n_mac * freq_mhz / 1e3
    return ComputationalRoof(scheme, gops, "2 * R_mac * N_mac * Freq")


def abm_roof(n_acc: int, freq_mhz: float) -> ComputationalRoof:
    """ABM-SpConv roof: bound by accumulators, not multipliers."""
    gops = 2.0 * n_acc * freq_mhz / 1e3
    return ComputationalRoof(ConvScheme.ABM_SPCONV, gops, "2 * N_acc * Freq")
