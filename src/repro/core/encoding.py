"""Index-based sparse weight encoding (paper Figure 4).

The accelerator never stores the dense weight tensor. Each convolution
kernel (the N*K*K weight block of one output channel) is encoded as:

- **WT-Buffer stream** — one 16-bit entry per *nonzero* weight, holding the
  packed position index ``n*K*K + k*K + k'``. Entries are grouped by weight
  value: all positions sharing the first distinct value Wp come first, then
  the next value's positions, and so on. The accumulate stage walks this
  stream linearly, which is what turns the algorithm's "random" access into
  sequential reads of an on-chip buffer.
- **Q-Table** — one 16-bit entry per distinct nonzero value: the 8-bit
  fixed-point VAL and the 8-bit NUM of index entries that belong to it. The
  loop counter uses NUM to know when to cut a partial sum, and the
  multiplier uses VAL as its constant operand. A count larger than 255 is
  legal in the model: the encoder splits it across several entries with the
  same VAL, exactly what the hardware's 8-bit NUM field forces.

Decoding is exact: ``decode_kernel(encode_kernel(w)) == w`` for any kernel
whose values fit the 8-bit weight format, a property test in the suite.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..telemetry.caches import CacheStats, register_cache

#: Bytes per WT-Buffer entry (16-bit packed index).
WT_ENTRY_BYTES = 2
#: Bytes per Q-Table entry (8-bit VAL + 8-bit NUM).
QT_ENTRY_BYTES = 2
#: Bytes of per-kernel header (total occurrence count used by the loop counter).
KERNEL_HEADER_BYTES = 2
#: Largest NUM representable in a Q-Table entry's 8-bit count field.
MAX_ENTRY_COUNT = 255
#: Largest packed index representable in a 16-bit WT-Buffer entry.
MAX_PACKED_INDEX = (1 << 16) - 1


@dataclass(frozen=True)
class QTableEntry:
    """One Q-Table row: a distinct quantized value and its occurrence count."""

    value: int
    count: int

    def __post_init__(self) -> None:
        if self.value == 0:
            raise ValueError("zero weights are never encoded")
        if not 1 <= self.count <= MAX_ENTRY_COUNT:
            raise ValueError(f"count must be in [1, {MAX_ENTRY_COUNT}], got {self.count}")


@dataclass(frozen=True)
class EncodedKernel:
    """One kernel's encoded form: Q-Table rows plus the packed index stream.

    ``indices[i]`` belongs to the Q-Table entry whose cumulative counts
    cover position ``i``; indices are sorted within each value group.
    """

    qtable: Tuple[QTableEntry, ...]
    indices: np.ndarray
    kernel_shape: Tuple[int, int, int]

    def __post_init__(self) -> None:
        total = sum(entry.count for entry in self.qtable)
        if total != int(self.indices.size):
            raise ValueError(
                f"Q-Table counts sum to {total} but {self.indices.size} indices given"
            )

    @property
    def nonzero_count(self) -> int:
        """Nonzero weights — accumulate operations per output pixel."""
        return int(self.indices.size)

    @property
    def distinct_values(self) -> int:
        """Distinct nonzero values — multiply operations per output pixel."""
        return len({entry.value for entry in self.qtable})

    @property
    def qtable_entries(self) -> int:
        """Q-Table rows including any split continuation entries."""
        return len(self.qtable)

    @property
    def encoded_bytes(self) -> int:
        """On-chip/DDR footprint of this kernel's encoding."""
        return (
            KERNEL_HEADER_BYTES
            + QT_ENTRY_BYTES * self.qtable_entries
            + WT_ENTRY_BYTES * self.nonzero_count
        )

    @cached_property
    def segment_offsets(self) -> np.ndarray:
        """CSR-style offsets into :attr:`indices`, one segment per Q-Table
        entry: segment ``i`` is ``indices[segment_offsets[i]:segment_offsets[i+1]]``.

        Shape ``(qtable_entries + 1,)``. Cached: the flat view is what the
        compiled execution plan consumes directly.
        """
        counts = np.fromiter(
            (entry.count for entry in self.qtable), dtype=np.int64, count=len(self.qtable)
        )
        offsets = np.zeros(len(self.qtable) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets

    @cached_property
    def segment_values(self) -> np.ndarray:
        """Per-segment weight value, aligned with :attr:`segment_offsets`."""
        return np.fromiter(
            (entry.value for entry in self.qtable), dtype=np.int64, count=len(self.qtable)
        )

    @cached_property
    def _materialized_groups(self) -> Tuple[Tuple[int, np.ndarray], ...]:
        offsets = self.segment_offsets
        groups = []
        for i, entry in enumerate(self.qtable):
            block = self.indices[offsets[i] : offsets[i + 1]]
            block.setflags(write=False)
            groups.append((entry.value, block))
        return tuple(groups)

    def value_groups(self) -> Iterable[Tuple[int, np.ndarray]]:
        """Yield (value, packed index block) pairs in stream order.

        The blocks are materialized once and cached, so hot loops that walk
        the groups repeatedly (the reference kernel visits them per output
        pixel) stop re-slicing :attr:`indices` on every iteration.
        """
        return iter(self._materialized_groups)


def pack_index(n: int, k: int, k2: int, kernel: int) -> int:
    """Pack a (n, k, k') weight position into a WT-Buffer index."""
    return (n * kernel + k) * kernel + k2


def unpack_index(packed: int, kernel: int) -> Tuple[int, int, int]:
    """Inverse of :func:`pack_index`."""
    k2 = packed % kernel
    rest = packed // kernel
    return rest // kernel, rest % kernel, k2


def encode_kernel(kernel_codes: np.ndarray) -> EncodedKernel:
    """Encode one kernel's integer weight codes.

    ``kernel_codes`` has shape (N, K, K); FC kernels use (N, 1, 1). Raises
    if any packed index would overflow the 16-bit WT-Buffer width.
    """
    codes = np.asarray(kernel_codes)
    if codes.ndim != 3 or codes.shape[1] != codes.shape[2]:
        raise ValueError(f"kernel codes must be (N, K, K), got {codes.shape}")
    if not np.issubdtype(codes.dtype, np.integer):
        raise TypeError("kernel codes must be integers")
    if codes.size - 1 > MAX_PACKED_INDEX:
        raise ValueError(
            f"kernel of {codes.size} weights overflows the 16-bit index width"
        )
    flat = codes.reshape(-1)
    nonzero_positions = np.flatnonzero(flat)
    entries: List[QTableEntry] = []
    blocks: List[np.ndarray] = []
    if nonzero_positions.size:
        values = flat[nonzero_positions]
        # Group positions by value; iterate values in ascending order, which
        # fixes the stream order the Address Generator expects.
        order = np.argsort(values, kind="stable")
        sorted_positions = nonzero_positions[order]
        sorted_values = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_values)) + 1
        for block, value_block in zip(
            np.split(sorted_positions, boundaries), np.split(sorted_values, boundaries)
        ):
            value = int(value_block[0])
            # Split oversize groups to honour the 8-bit NUM field.
            for start in range(0, block.size, MAX_ENTRY_COUNT):
                chunk = block[start : start + MAX_ENTRY_COUNT]
                entries.append(QTableEntry(value=value, count=int(chunk.size)))
                blocks.append(np.sort(chunk))
    indices = (
        np.concatenate(blocks).astype(np.int64) if blocks else np.empty(0, dtype=np.int64)
    )
    return EncodedKernel(
        qtable=tuple(entries), indices=indices, kernel_shape=tuple(codes.shape)
    )


def decode_kernel(encoded: EncodedKernel) -> np.ndarray:
    """Reconstruct the dense integer kernel from its encoding."""
    flat = np.zeros(int(np.prod(encoded.kernel_shape)), dtype=np.int64)
    for value, block in encoded.value_groups():
        flat[block] = value
    return flat.reshape(encoded.kernel_shape)


@dataclass(frozen=True)
class EncodedLayer:
    """All kernels of one conv/FC layer in encoded form."""

    name: str
    kernels: Tuple[EncodedKernel, ...]

    @property
    def nonzero_count(self) -> int:
        return sum(kernel.nonzero_count for kernel in self.kernels)

    @property
    def qtable_entries(self) -> int:
        return sum(kernel.qtable_entries for kernel in self.kernels)

    @property
    def encoded_bytes(self) -> int:
        """Total DDR footprint of the layer's encoded weights."""
        return sum(kernel.encoded_bytes for kernel in self.kernels)

    @property
    def max_wt_entries_per_kernel(self) -> int:
        """Deepest per-kernel index stream (sizes the WT-Buffer depth D_w)."""
        if not self.kernels:
            return 0
        return max(kernel.nonzero_count for kernel in self.kernels)

    @property
    def max_qtable_entries_per_kernel(self) -> int:
        """Deepest per-kernel Q-Table (sizes the Q-Table depth D_q)."""
        if not self.kernels:
            return 0
        return max(kernel.qtable_entries for kernel in self.kernels)


def encode_layer(name: str, weight_codes: np.ndarray) -> EncodedLayer:
    """Encode a whole layer's (M, N, K, K) integer weight tensor."""
    codes = np.asarray(weight_codes)
    if codes.ndim == 2:  # FC weights (M, N) -> (M, N, 1, 1)
        codes = codes.reshape(codes.shape[0], codes.shape[1], 1, 1)
    if codes.ndim != 4:
        raise ValueError(f"layer codes must be (M, N, K, K), got shape {codes.shape}")
    kernels = tuple(encode_kernel(codes[m]) for m in range(codes.shape[0]))
    return EncodedLayer(name=name, kernels=kernels)


def decode_layer(encoded: EncodedLayer) -> np.ndarray:
    """Reconstruct the dense (M, N, K, K) tensor of an encoded layer."""
    if not encoded.kernels:
        raise ValueError("encoded layer has no kernels")
    return np.stack([decode_kernel(kernel) for kernel in encoded.kernels])


def encoded_model_bytes(layers: Sequence[EncodedLayer]) -> int:
    """Total encoded weight footprint of a model (paper Table 3)."""
    return sum(layer.encoded_bytes for layer in layers)


#: Encoded layers kept by :func:`encode_layer_cached` before LRU eviction.
ENCODE_CACHE_CAPACITY = 32

_encode_cache: "OrderedDict[Tuple[str, Tuple[int, ...], str], EncodedLayer]" = (
    OrderedDict()
)
#: Guards LRU mutations — serve workers and parallel simulation can race.
_encode_lock = threading.Lock()
_encode_hits = 0
_encode_misses = 0
_encode_evictions = 0


def _encode_cache_key(
    name: str, codes: np.ndarray
) -> Tuple[str, Tuple[int, ...], str]:
    digest = hashlib.sha256(np.ascontiguousarray(codes).tobytes()).hexdigest()
    return (name, tuple(codes.shape), digest)


def encode_layer_cached(name: str, weight_codes: np.ndarray) -> EncodedLayer:
    """Memoized :func:`encode_layer` for hot paths that re-encode per call.

    Keyed by (name, shape, content digest), so repeated calls with the same
    dense codes — e.g. :func:`repro.core.abm.abm_conv2d_from_codes` inside
    an inference loop — reuse the encoding instead of re-sorting the whole
    weight tensor every invocation. A small LRU bounds the footprint.
    """
    codes = np.asarray(weight_codes)
    if not np.issubdtype(codes.dtype, np.integer):
        raise TypeError("kernel codes must be integers")
    global _encode_hits, _encode_misses, _encode_evictions
    key = _encode_cache_key(name, codes)
    with _encode_lock:
        cached = _encode_cache.get(key)
        if cached is not None:
            _encode_cache.move_to_end(key)
            _encode_hits += 1
            return cached
        _encode_misses += 1
    # Encode outside the lock (it is the expensive part); racing threads may
    # both encode, but the first insert wins so callers share one object.
    encoded = encode_layer(name, codes)
    with _encode_lock:
        cached = _encode_cache.get(key)
        if cached is not None:
            _encode_cache.move_to_end(key)
            return cached
        _encode_cache[key] = encoded
        while len(_encode_cache) > ENCODE_CACHE_CAPACITY:
            _encode_cache.popitem(last=False)
            _encode_evictions += 1
    return encoded


def clear_encode_cache() -> None:
    """Drop all memoized encodings (tests and long-lived processes)."""
    global _encode_hits, _encode_misses, _encode_evictions
    with _encode_lock:
        _encode_cache.clear()
        _encode_hits = 0
        _encode_misses = 0
        _encode_evictions = 0


def encode_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the encode memo (telemetry view)."""
    with _encode_lock:
        return CacheStats(
            hits=_encode_hits,
            misses=_encode_misses,
            evictions=_encode_evictions,
            size=len(_encode_cache),
            capacity=ENCODE_CACHE_CAPACITY,
            name="core.encode",
        )


register_cache("core.encode", encode_cache_stats)
