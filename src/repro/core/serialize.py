"""Binary serialization of encoded models.

A deployed accelerator consumes the encoded weights as a flat binary blob
streamed into the WT-Buffer and Q-Table; this module defines that artifact.
The on-wire layout mirrors the hardware widths of Figure 4 exactly — 16-bit
index entries, 16-bit Q-Table entries (8-bit VAL + 8-bit NUM), a 16-bit
per-kernel total — plus a small self-describing header so a host runtime
can validate and memory-map it.

Layout (little-endian)::

    magic   4s   b"ABMS"
    version u16  FORMAT_VERSION
    layers  u16
    per layer:
        name_len u8, name utf-8
        kernel_shape 3 x u32   (N, K, K)
        kernels u32
        per kernel:
            total u16          (nonzero count == index entries)
            qtable_entries u16
            qtable entries: (VAL i8, NUM u8) x qtable_entries
            indices: u16 x total
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, List, Sequence

import numpy as np

from .encoding import EncodedKernel, EncodedLayer, QTableEntry

MAGIC = b"ABMS"
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a blob is malformed or version-incompatible."""


def _write_kernel(stream: BinaryIO, kernel: EncodedKernel) -> None:
    stream.write(struct.pack("<HH", kernel.nonzero_count, kernel.qtable_entries))
    for entry in kernel.qtable:
        stream.write(struct.pack("<bB", entry.value, entry.count))
    stream.write(kernel.indices.astype("<u2").tobytes())


def _read_kernel(stream: BinaryIO, kernel_shape: tuple) -> EncodedKernel:
    header = stream.read(4)
    if len(header) != 4:
        raise SerializationError("truncated kernel header")
    total, entries = struct.unpack("<HH", header)
    qtable: List[QTableEntry] = []
    for _ in range(entries):
        raw = stream.read(2)
        if len(raw) != 2:
            raise SerializationError("truncated Q-Table")
        value, count = struct.unpack("<bB", raw)
        try:
            qtable.append(QTableEntry(value=value, count=count))
        except ValueError as exc:
            raise SerializationError(f"invalid Q-Table entry: {exc}") from exc
    raw = stream.read(2 * total)
    if len(raw) != 2 * total:
        raise SerializationError("truncated index stream")
    indices = np.frombuffer(raw, dtype="<u2").astype(np.int64)
    try:
        return EncodedKernel(
            qtable=tuple(qtable), indices=indices, kernel_shape=kernel_shape
        )
    except ValueError as exc:
        raise SerializationError(f"inconsistent kernel record: {exc}") from exc


def dump_layers(layers: Sequence[EncodedLayer], stream: BinaryIO) -> None:
    """Serialize encoded layers to a binary stream."""
    if len(layers) > 0xFFFF:
        raise SerializationError("too many layers")
    stream.write(MAGIC)
    stream.write(struct.pack("<HH", FORMAT_VERSION, len(layers)))
    for layer in layers:
        name = layer.name.encode("utf-8")
        if len(name) > 0xFF:
            raise SerializationError(f"layer name too long: {layer.name!r}")
        if not layer.kernels:
            raise SerializationError(f"layer {layer.name!r} has no kernels")
        stream.write(struct.pack("<B", len(name)))
        stream.write(name)
        shape = layer.kernels[0].kernel_shape
        stream.write(struct.pack("<IIII", *shape, len(layer.kernels)))
        for kernel in layer.kernels:
            if kernel.kernel_shape != shape:
                raise SerializationError(
                    f"layer {layer.name!r} mixes kernel shapes"
                )
            if kernel.nonzero_count > 0xFFFF:
                raise SerializationError(
                    f"kernel stream of {kernel.nonzero_count} entries overflows u16"
                )
            _write_kernel(stream, kernel)


def load_layers(stream: BinaryIO) -> List[EncodedLayer]:
    """Deserialize encoded layers from a binary stream."""
    if stream.read(4) != MAGIC:
        raise SerializationError("bad magic — not an ABM-SpConv model blob")
    header = stream.read(4)
    if len(header) != 4:
        raise SerializationError("truncated file header")
    version, layer_count = struct.unpack("<HH", header)
    if version != FORMAT_VERSION:
        raise SerializationError(f"unsupported format version {version}")
    layers = []
    for _ in range(layer_count):
        raw = stream.read(1)
        if len(raw) != 1:
            raise SerializationError("truncated layer header")
        (name_len,) = struct.unpack("<B", raw)
        name = stream.read(name_len).decode("utf-8")
        raw = stream.read(16)
        if len(raw) != 16:
            raise SerializationError("truncated layer shape record")
        n, k, k2, kernels = struct.unpack("<IIII", raw)
        shape = (n, k, k2)
        layers.append(
            EncodedLayer(
                name=name,
                kernels=tuple(_read_kernel(stream, shape) for _ in range(kernels)),
            )
        )
    return layers


def dumps(layers: Sequence[EncodedLayer]) -> bytes:
    """Serialize to bytes."""
    buffer = io.BytesIO()
    dump_layers(layers, buffer)
    return buffer.getvalue()


def loads(blob: bytes) -> List[EncodedLayer]:
    """Deserialize from bytes."""
    return load_layers(io.BytesIO(blob))


def save_model(layers: Sequence[EncodedLayer], path: str) -> int:
    """Write a model blob to disk; returns its size in bytes."""
    blob = dumps(layers)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def load_model(path: str) -> List[EncodedLayer]:
    """Read a model blob from disk."""
    with open(path, "rb") as handle:
        return load_layers(handle)
