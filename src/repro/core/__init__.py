"""ABM-SpConv core: the paper's primary contribution.

- :mod:`~repro.core.abm` — the accumulate-before-multiply factored
  convolution (Equation 2), bit-exact against direct integer convolution.
- :mod:`~repro.core.encoding` — the index-based sparse weight encoding
  (WT-Buffer + Q-Table, Figure 4).
- :mod:`~repro.core.opcount` — operation-count analysis of SDConv / FDConv /
  SpConv / ABM-SpConv (Table 1).
- :mod:`~repro.core.specs` — analytic layer dimension records.
- :mod:`~repro.core.schemes` — scheme taxonomy, computational roofs
  (Figure 1), and the :class:`SchemeModel` registry behind per-layer
  heterogeneous execution.
- :mod:`~repro.core.model_plan` — whole-network fused streaming execution
  (conv/FC + epilogue stages over ping-pong activation buffers).
- :mod:`~repro.core.tiers` — numpy / numba execution-tier selection.
"""

from .abm import (
    ABMConvBatchResult,
    ABMConvResult,
    ConvGeometry,
    abm_conv2d,
    abm_conv2d_batch,
    abm_conv2d_from_codes,
    abm_conv2d_reference,
    abm_conv2d_vectorized,
    abm_fc,
    abm_fc_batch,
    direct_conv2d_codes,
)
from .encoding import (
    EncodedKernel,
    EncodedLayer,
    QTableEntry,
    clear_encode_cache,
    encode_cache_stats,
    decode_kernel,
    decode_layer,
    encode_kernel,
    encode_layer,
    encode_layer_cached,
    encoded_model_bytes,
    pack_index,
    unpack_index,
)
from .plan import (
    LayerPlan,
    clear_plan_cache,
    plan_cache_stats,
    compile_layer_plan,
    plan_cache_size,
)
from .model_plan import (
    ModelPlan,
    clear_model_plan_cache,
    compile_model_plan,
    model_plan_cache_size,
    model_plan_cache_stats,
)
from .tiers import (
    TIERS,
    get_tier,
    numba_available,
    resolve_tier,
    set_tier,
)
from .opcount import (
    FDCONV_REDUCTION,
    LayerOpCounts,
    ModelOpCounts,
    analytic_layer_counts,
    analytic_model_counts,
    expected_distinct_values,
    measured_layer_counts,
)
from .schemes import (
    ABMSchemeModel,
    ComputationalRoof,
    ConvScheme,
    SchemeModel,
    SchemeOps,
    SchemeResources,
    abm_roof,
    get_scheme_model,
    reduced_mac_roof,
    register_scheme_model,
    scheme_model_names,
    scheme_models,
    sdconv_roof,
)
from .serialize import (
    FORMAT_VERSION,
    SerializationError,
    dump_layers,
    dumps,
    load_layers,
    load_model,
    loads,
    save_model,
)
from .specs import CONV, FC, LayerSpec, conv_spec, fc_spec
from .verify import (
    TrialConfig,
    VerificationReport,
    random_trial_config,
    run_trial,
    verify_schemes,
)

__all__ = [
    "ABMConvBatchResult",
    "ABMConvResult",
    "ConvGeometry",
    "abm_conv2d",
    "abm_conv2d_batch",
    "abm_conv2d_from_codes",
    "abm_conv2d_reference",
    "abm_conv2d_vectorized",
    "abm_fc",
    "abm_fc_batch",
    "direct_conv2d_codes",
    "EncodedKernel",
    "EncodedLayer",
    "QTableEntry",
    "encode_kernel",
    "decode_kernel",
    "encode_layer",
    "encode_layer_cached",
    "clear_encode_cache",
    "encode_cache_stats",
    "decode_layer",
    "encoded_model_bytes",
    "pack_index",
    "unpack_index",
    "LayerPlan",
    "compile_layer_plan",
    "clear_plan_cache",
    "plan_cache_stats",
    "plan_cache_size",
    "ModelPlan",
    "compile_model_plan",
    "clear_model_plan_cache",
    "model_plan_cache_stats",
    "model_plan_cache_size",
    "TIERS",
    "get_tier",
    "set_tier",
    "resolve_tier",
    "numba_available",
    "FDCONV_REDUCTION",
    "LayerOpCounts",
    "ModelOpCounts",
    "analytic_layer_counts",
    "analytic_model_counts",
    "measured_layer_counts",
    "expected_distinct_values",
    "ComputationalRoof",
    "ConvScheme",
    "sdconv_roof",
    "reduced_mac_roof",
    "abm_roof",
    "ABMSchemeModel",
    "SchemeModel",
    "SchemeOps",
    "SchemeResources",
    "register_scheme_model",
    "get_scheme_model",
    "scheme_model_names",
    "scheme_models",
    "CONV",
    "FC",
    "LayerSpec",
    "conv_spec",
    "fc_spec",
    "FORMAT_VERSION",
    "SerializationError",
    "dump_layers",
    "load_layers",
    "dumps",
    "loads",
    "save_model",
    "load_model",
    "TrialConfig",
    "VerificationReport",
    "random_trial_config",
    "run_trial",
    "verify_schemes",
]
