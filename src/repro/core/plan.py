"""Compile-once CSR execution plans for ABM-SpConv layers.

The vectorized kernel in :mod:`repro.core.abm` still issues one fancy-indexed
gather plus one ``sum(axis=1)`` per (kernel, distinct-value) pair — tens of
thousands of tiny numpy dispatches for a real conv layer. This module does
the software analogue of what the paper's accelerator does in hardware:
flatten every kernel's value-grouped index blocks into *layer-wide* CSR-style
arrays that are consumed sequentially.

A :class:`LayerPlan` holds, per channel group:

- ``columns``       — all kernels' WT-Buffer index streams concatenated,
  usable directly as gather columns into the im2col patch matrix;
- ``seg_starts``    — offsets of each Q-Table segment inside ``columns``
  (the CSR row pointer);
- ``seg_values``    — the Q-Table VAL of each segment;
- ``kernel_starts`` / ``kernel_rows`` — which contiguous run of segments
  belongs to which output channel (the segment→kernel map).

Execution works on the *transposed* patch matrix (features x pixels), so
the single gather (``np.take`` along axis 0) copies whole contiguous pixel
rows, and both segmented reductions (``np.add.reduceat`` over
``seg_starts`` — stage 1 of Equation 2 — then over ``kernel_starts`` —
stage 2) vectorize across the pixel axis. No per-kernel or per-value
Python loops remain; work is chunked on kernel boundaries so the gather
buffer stays cache-resident. Operation counts are computed analytically
from the encoding (``nnz`` accumulates and one multiply per Q-Table
segment, per output pixel), which is exactly what the reference loop
counts one iteration at a time.

Plans are cached per (encoded layer, geometry) and keep reusable scratch
buffers keyed by the shapes they have seen, so repeated inference — executor
batches, ``SystemRuntime.infer_batch``, the serve worker pool — pays
compilation and allocation once. Work is processed in pixel chunks sized to
stay cache-resident, and arithmetic drops to int32 when the layer's exact
worst-case partial sums provably fit, halving memory traffic.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry.caches import CacheStats, register_cache
from ..telemetry.context import get_active
from . import tiers
from .encoding import EncodedLayer

if TYPE_CHECKING:  # pragma: no cover - import cycle with repro.core.abm
    from .abm import ConvGeometry

try:  # scipy is optional: it accelerates stage 1 but is never required.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised via _set_sparse_enabled
    _scipy_sparse = None

#: Module switch for the scipy stage-1 path (tests force the fallback).
_sparse_enabled = _scipy_sparse is not None


def _set_sparse_enabled(enabled: bool) -> bool:
    """Toggle the scipy stage-1 path; returns the previous setting.

    Used by tests to force the pure-numpy fallback; enabling has no effect
    when scipy is not installed.
    """
    global _sparse_enabled
    previous = _sparse_enabled
    _sparse_enabled = bool(enabled) and _scipy_sparse is not None
    return previous


#: Target element count of one gather chunk (kept small enough that the
#: gather buffer stays cache-resident between the write and the reduceat).
CHUNK_ELEMENTS = 1 << 20

#: Target element count of the stage-1 partial-sum block in the sparse
#: path; bounds scratch memory when a layer has many output pixels.
PARTIAL_ELEMENTS = 1 << 23

#: Compiled plans kept before LRU eviction.
PLAN_CACHE_CAPACITY = 64

#: Scratch buffers kept per plan before LRU eviction.
_SCRATCH_CAPACITY = 16


def _conv_output_hw(rows: int, cols: int, geometry: "ConvGeometry") -> Tuple[int, int]:
    out_rows = (rows + 2 * geometry.padding - geometry.kernel) // geometry.stride + 1
    out_cols = (cols + 2 * geometry.padding - geometry.kernel) // geometry.stride + 1
    if out_rows < 1 or out_cols < 1:
        raise ValueError("convolution geometry does not fit the input")
    return out_rows, out_cols


class _GroupPlan:
    """Flat CSR arrays of one channel group's kernels.

    ``kcol_bounds`` / ``kseg_bounds`` are the per-(nonempty-)kernel
    boundaries into ``columns`` and the segment axis — the segment→kernel
    map — used to cut the stream into cache-sized chunks on kernel edges.
    """

    __slots__ = (
        "columns",
        "seg_starts",
        "seg_values",
        "kernel_rows",
        "kcol_bounds",
        "kseg_bounds",
        "_selection",
        "_numba_args",
        "_dense",
    )

    def __init__(
        self,
        columns: np.ndarray,
        seg_starts: np.ndarray,
        seg_values: np.ndarray,
        kernel_rows: np.ndarray,
        kcol_bounds: np.ndarray,
        kseg_bounds: np.ndarray,
    ) -> None:
        self.columns = columns
        self.seg_starts = seg_starts
        self.seg_values = seg_values
        self.kernel_rows = kernel_rows
        self.kcol_bounds = kcol_bounds
        self.kseg_bounds = kseg_bounds
        self._selection: Dict[str, object] = {}
        self._numba_args: Optional[Tuple[np.ndarray, ...]] = None
        self._dense: Optional[np.ndarray] = None

    def numba_args(self) -> Tuple[np.ndarray, ...]:
        """The int64 argument tuple of the numba group kernel (built once).

        ``seg_bounds`` extends ``seg_starts`` with the column count so the
        kernel can walk every segment's half-open column range directly.
        """
        if self._numba_args is None:
            seg_bounds = np.empty(len(self.seg_starts) + 1, dtype=np.int64)
            seg_bounds[:-1] = self.seg_starts
            seg_bounds[-1] = self.columns.size
            self._numba_args = (
                self.columns.astype(np.int64),
                seg_bounds,
                self.seg_values.astype(np.int64),
                self.kseg_bounds.astype(np.int64),
                self.kernel_rows.astype(np.int64),
            )
        return self._numba_args

    def dense_weights(self, group_out: int, patch_width: int) -> np.ndarray:
        """The group's weight codes as a dense float64 (group_out, K) matrix.

        Scattered straight from the CSR stream (one weight per (kernel,
        column) pair) and cached on the group — the fused model plan's GEMM
        datapath multiplies it against float64 patches with BLAS.  Weight
        codes are small integers, so every entry is exactly representable.
        """
        if self._dense is None:
            dense = np.zeros((group_out, patch_width), dtype=np.float64)
            if self.columns.size:
                seg_bounds = np.empty(len(self.seg_starts) + 1, dtype=np.int64)
                seg_bounds[:-1] = self.seg_starts
                seg_bounds[-1] = self.columns.size
                seg_lengths = np.diff(seg_bounds)
                seg_rows = np.repeat(self.kernel_rows, np.diff(self.kseg_bounds))
                dense[
                    np.repeat(seg_rows, seg_lengths), self.columns
                ] = np.repeat(self.seg_values, seg_lengths)
            self._dense = dense
        return self._dense

    def selection_matrix(self, dtype, patch_width: int):
        """The stage-1 accumulate as a CSR selection matrix (scipy path).

        Row ``s`` holds a 1 at every WT-Buffer column of Q-Table segment
        ``s`` — ``seg_starts`` is literally the CSR ``indptr`` and
        ``columns`` the CSR ``indices``, so ``S @ patchesT`` *is* the
        segmented accumulate of Equation 2's inner sum. Built once per work
        dtype (matching dtypes keeps scipy from copying the operands).
        """
        key = np.dtype(dtype).str
        matrix = self._selection.get(key)
        if matrix is None:
            indptr = np.empty(len(self.seg_starts) + 1, dtype=np.int64)
            indptr[:-1] = self.seg_starts
            indptr[-1] = self.columns.size
            matrix = _scipy_sparse.csr_matrix(
                (
                    np.ones(self.columns.size, dtype=dtype),
                    self.columns.astype(np.int64),
                    indptr,
                ),
                shape=(len(self.seg_starts), patch_width),
            )
            self._selection[key] = matrix
        return matrix


class _Chunk:
    """One kernel-aligned slice of a group's index stream."""

    __slots__ = ("col_lo", "col_hi", "seg_lo", "seg_hi", "kernel_lo", "kernel_hi",
                 "local_seg_starts", "local_kernel_starts")

    def __init__(self, group: _GroupPlan, kernel_lo: int, kernel_hi: int) -> None:
        self.kernel_lo = kernel_lo
        self.kernel_hi = kernel_hi
        self.col_lo = int(group.kcol_bounds[kernel_lo])
        self.col_hi = int(group.kcol_bounds[kernel_hi])
        self.seg_lo = int(group.kseg_bounds[kernel_lo])
        self.seg_hi = int(group.kseg_bounds[kernel_hi])
        self.local_seg_starts = (
            group.seg_starts[self.seg_lo : self.seg_hi] - self.col_lo
        )
        self.local_kernel_starts = (
            group.kseg_bounds[kernel_lo:kernel_hi] - self.seg_lo
        )


class LayerPlan:
    """A layer compiled for single-pass CSR execution (see module docs)."""

    def __init__(self, encoded: EncodedLayer, geometry: "ConvGeometry") -> None:
        kernels = len(encoded.kernels)
        if kernels % geometry.groups:
            raise ValueError("output channels must divide into groups")
        self.geometry = geometry
        self.out_channels = kernels
        self.name = encoded.name
        shapes = {kernel.kernel_shape for kernel in encoded.kernels}
        if len(shapes) > 1:
            raise ValueError(f"kernels disagree on shape: {sorted(shapes)}")
        if shapes:
            shape = next(iter(shapes))
            if shape[1] != geometry.kernel:
                raise ValueError(
                    f"encoded kernel size {shape[1]} != geometry kernel "
                    f"{geometry.kernel}"
                )
            self.group_in = shape[0]
        else:
            self.group_in = 0
        self.patch_width = self.group_in * geometry.kernel * geometry.kernel
        group_out = kernels // geometry.groups if geometry.groups else 0
        self.group_out = group_out
        self._groups: List[_GroupPlan] = []
        #: Exact accumulate operations per output pixel (layer nonzeros).
        self.accumulates_per_pixel = 0
        #: Exact multiply operations per output pixel (Q-Table segments,
        #: counting NUM-field split entries separately, as the loop does).
        self.multiplies_per_pixel = 0
        # Worst-case |sum(value * partial)| over any kernel, per unit of
        # feature magnitude — the exact bound that licenses int32 execution.
        self._max_weighted_sum = 0
        for g in range(geometry.groups):
            self._groups.append(
                self._compile_group(encoded.kernels[g * group_out : (g + 1) * group_out])
            )
        self._scratch: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._chunk_cache: Dict[Tuple[int, int], List[_Chunk]] = {}

    def _compile_group(self, kernels: Sequence) -> _GroupPlan:
        columns: List[np.ndarray] = []
        seg_lengths: List[int] = []
        seg_values: List[int] = []
        kernel_rows: List[int] = []
        kcol_bounds: List[int] = [0]
        kseg_bounds: List[int] = [0]
        total_cols = 0
        for row, kernel in enumerate(kernels):
            weighted = 0
            for entry in kernel.qtable:
                seg_lengths.append(entry.count)
                seg_values.append(entry.value)
                weighted += abs(entry.value) * entry.count
            self._max_weighted_sum = max(self._max_weighted_sum, weighted)
            if kernel.indices.size:
                kernel_rows.append(row)
                columns.append(kernel.indices)
                total_cols += kernel.indices.size
                kcol_bounds.append(total_cols)
                kseg_bounds.append(len(seg_values))
            self.accumulates_per_pixel += kernel.nonzero_count
            self.multiplies_per_pixel += kernel.qtable_entries
        flat_columns = (
            np.concatenate(columns).astype(np.intp)
            if columns
            else np.empty(0, dtype=np.intp)
        )
        if flat_columns.size and int(flat_columns.max()) >= self.patch_width:
            raise ValueError("encoded index exceeds the layer's patch width")
        starts = np.zeros(len(seg_lengths), dtype=np.intp)
        if seg_lengths:
            np.cumsum(seg_lengths[:-1], out=starts[1:])
        return _GroupPlan(
            columns=flat_columns,
            seg_starts=starts,
            seg_values=np.asarray(seg_values, dtype=np.int64),
            kernel_rows=np.asarray(kernel_rows, dtype=np.intp),
            kcol_bounds=np.asarray(kcol_bounds, dtype=np.intp),
            kseg_bounds=np.asarray(kseg_bounds, dtype=np.intp),
        )

    # ---- scratch management ---------------------------------------------

    def _buffer(self, kind: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A reusable scratch array for this plan, LRU-bounded."""
        key = (kind, shape, np.dtype(dtype).str)
        buffer = self._scratch.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._scratch[key] = buffer
            while len(self._scratch) > _SCRATCH_CAPACITY:
                self._scratch.popitem(last=False)
        else:
            self._scratch.move_to_end(key)
        return buffer

    # ---- execution -------------------------------------------------------

    def _work_dtype(self, features: np.ndarray, input_peak: Optional[int] = None):
        """int32 when the exact worst-case datapath value fits, else int64.

        The bound is |partial| <= max|x| * max_kernel sum(|VAL|*NUM), which
        also bounds every stage-2 total; bias enters later in int64.
        ``input_peak`` lets callers that already know a bound on ``max|x|``
        (the fused model plan tracks quantized-format code ranges at
        compile time) skip the full-batch ``abs().max()`` scan.
        """
        if self._max_weighted_sum == 0:
            return np.int32
        if input_peak is None:
            if features.size == 0:
                return np.int32
            input_peak = int(np.abs(features).max())
        peak = int(input_peak) * self._max_weighted_sum
        return np.int32 if peak <= np.iinfo(np.int32).max else np.int64

    def execute(
        self,
        features: np.ndarray,
        bias_codes: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, int, int]:
        """Run one CHW image; returns (output MHW, acc_ops, mult_ops)."""
        output, acc, mult = self.execute_batch(features[None], bias_codes)
        return output[0], acc, mult

    def execute_batch(
        self,
        batch: np.ndarray,
        bias_codes: Optional[np.ndarray] = None,
        input_peak: Optional[int] = None,
    ) -> Tuple[np.ndarray, int, int]:
        """Run a (B, C, H, W) batch stacked into the pixel axis.

        Returns (output (B, M, R', C'), accumulate_ops, multiply_ops) with
        op counts totalled over the whole batch.
        """
        telemetry = get_active()
        if telemetry is None:
            return self._execute_batch(batch, bias_codes, input_peak)
        with telemetry.span("kernel", layer=self.name, images=int(batch.shape[0])):
            return self._execute_batch(batch, bias_codes, input_peak)

    def _execute_batch(
        self,
        batch: np.ndarray,
        bias_codes: Optional[np.ndarray] = None,
        input_peak: Optional[int] = None,
    ) -> Tuple[np.ndarray, int, int]:
        output, images, out_rows, out_cols = self.execute_batch_raw(
            batch, bias_codes, input_peak
        )
        total_pixels = images * out_rows * out_cols
        # .copy() detaches the result from the reusable scratch buffer.
        shaped = (
            output.reshape(self.out_channels, images, out_rows, out_cols)
            .transpose(1, 0, 2, 3)
            .copy()
        )
        return (
            shaped,
            self.accumulates_per_pixel * total_pixels,
            self.multiplies_per_pixel * total_pixels,
        )

    def execute_batch_raw(
        self,
        batch: np.ndarray,
        bias_codes: Optional[np.ndarray] = None,
        input_peak: Optional[int] = None,
    ) -> Tuple[np.ndarray, int, int, int]:
        """Run a batch and return the undetached (M, B*pixels) int64 sums.

        Returns ``(output, images, out_rows, out_cols)`` where ``output``
        is **plan-owned scratch** (kernel-major, bias already added): it is
        only valid until the next execute call on this plan.  The fused
        model plan consumes it directly — epilogue fusion writes requantized
        codes straight into the model's ping-pong buffers, so no per-layer
        output is materialized.  Op counts are analytic:
        ``accumulates_per_pixel * images * out_rows * out_cols`` (likewise
        multiplies), identical to what :meth:`execute_batch` reports.
        """
        geometry = self.geometry
        images, channels, rows, cols = batch.shape
        if self.group_in and channels != self.group_in * geometry.groups:
            raise ValueError(
                f"layer {self.name!r} expects {self.group_in * geometry.groups} "
                f"input channels, got {channels}"
            )
        out_rows, out_cols = _conv_output_hw(rows, cols, geometry)
        pixels = out_rows * out_cols
        total_pixels = images * pixels
        work_dtype = self._work_dtype(batch, input_peak)
        output = self._buffer("output", (self.out_channels, total_pixels), np.int64)
        output.fill(0)
        # No full-batch cast pass: _patches_t's copies convert to the work
        # dtype on the fly while laying out the patch matrix.
        for g, plan in enumerate(self._groups):
            patches_t = self._patches_t(batch, g, out_rows, out_cols, work_dtype)
            self._execute_group(
                g,
                plan,
                patches_t,
                output[g * self.group_out : (g + 1) * self.group_out],
                work_dtype,
            )
        if bias_codes is not None:
            output += np.asarray(bias_codes, dtype=np.int64)[:, None]
        return output, images, out_rows, out_cols

    @property
    def weight_peak(self) -> int:
        """Largest |weight code| of the layer (max |VAL| over all Q-Tables).

        Together with an input-magnitude bound this lets alternative scheme
        datapaths (the fused plan's Winograd stages) prove their float64
        intermediates exact at compile time, the same way
        :attr:`max_weighted_sum` licenses the GEMM datapath.
        """
        peak = 0
        for group in self._groups:
            if group.seg_values.size:
                peak = max(peak, int(np.abs(group.seg_values).max()))
        return peak

    def dense_group_weights(self, group: int) -> np.ndarray:
        """One group's weight codes as float64 ``(group_out, C_g, K, K)``.

        A reshaped view of the cached dense GEMM matrix — the tensor form
        the Winograd/spectral scheme datapaths transform. For FC layers the
        kernel extent is 1 and this degenerates to ``(out, in, 1, 1)``.
        """
        k = self.geometry.kernel
        dense = self._groups[group].dense_weights(self.group_out, self.patch_width)
        return dense.reshape(self.group_out, self.group_in, k, k)

    @property
    def max_weighted_sum(self) -> int:
        """Worst-case |output sum| per unit of input magnitude.

        The exact per-kernel bound max_k sum(|VAL| * NUM): multiplied by a
        bound on |x| it bounds every stage-1 partial, every stage-2 total
        and every GEMM prefix sum.  It licenses int32 execution (vs int64)
        and, against 2**53, the fused plan's exact float64 GEMM datapath.
        """
        return self._max_weighted_sum

    def execute_batch_gemm(
        self,
        batch: np.ndarray,
        bias_codes: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, int, int, int]:
        """Run a batch as one dense float64 GEMM per group (BLAS).

        Returns ``(output, images, out_rows, out_cols)`` where ``output``
        is **plan-owned float64 scratch** of shape (M, B*pixels), bias
        already added.  Bit-exact against :meth:`execute_batch_raw`
        *provided the caller has checked the exactness bound*
        ``input_peak * max_weighted_sum + max|bias| < 2**53``: weight and
        feature codes are exact small integers in float64, every product
        and every partial sum (in any summation order BLAS picks) is then
        an exact integer below 2**53, so the accumulated result equals the
        integer ABM sum term for term.  The fused model plan verifies the
        bound at compile time from tracked quantized-format ranges.
        """
        geometry = self.geometry
        images, channels, rows, cols = batch.shape
        if self.group_in and channels != self.group_in * geometry.groups:
            raise ValueError(
                f"layer {self.name!r} expects {self.group_in * geometry.groups} "
                f"input channels, got {channels}"
            )
        out_rows, out_cols = _conv_output_hw(rows, cols, geometry)
        total_pixels = images * out_rows * out_cols
        output = self._buffer(
            "output_f", (self.out_channels, total_pixels), np.float64
        )
        for g, plan in enumerate(self._groups):
            patches_t = self._patches_t(batch, g, out_rows, out_cols, np.float64)
            np.matmul(
                plan.dense_weights(self.group_out, self.patch_width),
                patches_t,
                out=output[g * self.group_out : (g + 1) * self.group_out],
            )
        if bias_codes is not None:
            output += np.asarray(bias_codes, dtype=np.float64)[:, None]
        return output, images, out_rows, out_cols

    def _patches_t(
        self,
        batch: np.ndarray,
        group: int,
        out_rows: int,
        out_cols: int,
        work_dtype,
    ) -> np.ndarray:
        """Transposed im2col of one channel group over the whole batch.

        Returns a (C*K*K, B*pixels) matrix: row ``n*K*K + k*K + k'`` holds
        that weight position's feature word for every output pixel of every
        image — so a WT-Buffer index selects a *contiguous row*, and the
        batch genuinely stacks into the pixel axis.
        """
        geometry = self.geometry
        images = batch.shape[0]
        pixels = out_rows * out_cols
        width = self.patch_width if self.group_in else 0
        if width == 0:
            return np.empty((0, images * pixels), dtype=work_dtype)
        patches = self._buffer(("patches_t", group), (width, images * pixels), work_dtype)
        lo = group * self.group_in
        hi = lo + self.group_in
        if geometry.kernel == 1 and pixels == 1 and geometry.padding == 0:
            # FC view: the patch matrix is just the transposed batch.
            np.copyto(patches, batch[:, lo:hi].reshape(images, width).T)
            return patches
        k = geometry.kernel
        pad = geometry.padding
        if pad:
            padded = self._buffer(
                ("padded", group),
                (images, self.group_in, batch.shape[2] + 2 * pad, batch.shape[3] + 2 * pad),
                batch.dtype.str,
            )
            padded.fill(0)
            padded[:, :, pad:-pad, pad:-pad] = batch[:, lo:hi]
        else:
            padded = batch[:, lo:hi]
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (k, k), axis=(2, 3)
        )[:, :, :: geometry.stride, :: geometry.stride][:, :, :out_rows, :out_cols]
        # (B, C, R', C', K, K) -> (C, K, K, B, R', C'): row-major (n, k, k')
        # over image-major pixel columns, in one strided pass.
        np.copyto(
            patches.reshape(self.group_in, k, k, images, out_rows, out_cols),
            windows.transpose(1, 4, 5, 0, 2, 3),
            casting="same_kind",
        )
        return patches

    def _chunks(self, group_index: int, plan: _GroupPlan, pixels: int) -> List[_Chunk]:
        """Kernel-aligned chunks whose gather block fits the cache budget."""
        key = (group_index, pixels)
        chunks = self._chunk_cache.get(key)
        if chunks is not None:
            return chunks
        target_rows = max(1, CHUNK_ELEMENTS // max(1, pixels))
        chunks = []
        bounds = plan.kcol_bounds
        kernels = len(plan.kernel_rows)
        lo = 0
        while lo < kernels:
            hi = lo + 1
            while hi < kernels and bounds[hi + 1] - bounds[lo] <= target_rows:
                hi += 1
            chunks.append(_Chunk(plan, lo, hi))
            lo = hi
        self._chunk_cache[key] = chunks
        return chunks

    def _execute_group(
        self,
        group_index: int,
        plan: _GroupPlan,
        patches_t: np.ndarray,
        out: np.ndarray,
        work_dtype,
    ) -> None:
        if plan.columns.size == 0:
            return
        if tiers.numba_active():
            kernel = tiers.group_kernel()
            if kernel is not None:  # pragma: no cover - needs numba installed
                columns, seg_bounds, seg_values, kseg_bounds, kernel_rows = (
                    plan.numba_args()
                )
                kernel(
                    patches_t,
                    columns,
                    seg_bounds,
                    seg_values,
                    kseg_bounds,
                    kernel_rows,
                    out,
                )
                return
        if _sparse_enabled:
            self._execute_group_sparse(plan, patches_t, out, work_dtype)
        else:
            self._execute_group_gather(group_index, plan, patches_t, out, work_dtype)

    def _execute_group_sparse(
        self,
        plan: _GroupPlan,
        patches_t: np.ndarray,
        out: np.ndarray,
        work_dtype,
    ) -> None:
        """Stage 1 as one CSR selection product (scipy available).

        The WT-Buffer stream is consumed sequentially by the sparse kernel
        — the software twin of the accelerator's Address Generator walking
        its index buffer — and the pixel axis is blocked so the partial-sum
        matrix stays bounded for large feature maps.
        """
        pixels = patches_t.shape[1]
        segs = len(plan.seg_values)
        selection = plan.selection_matrix(work_dtype, patches_t.shape[0])
        seg_values = plan.seg_values.astype(work_dtype)[:, None]
        kernel_starts = (plan.kseg_bounds[:-1]).astype(np.intp)
        nker = len(plan.kernel_rows)
        block_pixels = max(1, min(pixels, PARTIAL_ELEMENTS // max(1, segs)))
        totals = self._buffer("totals", (nker, pixels), work_dtype)
        for lo in range(0, pixels, block_pixels):
            hi = min(lo + block_pixels, pixels)
            # Stage 1: the segmented accumulate, as sparse-times-dense.
            partial = selection @ np.ascontiguousarray(patches_t[:, lo:hi])
            # Stage 2: one multiply per Q-Table segment...
            np.multiply(partial, seg_values, out=partial)
            # ...then reduce each kernel's contiguous run of segments.
            np.add.reduceat(partial, kernel_starts, axis=0, out=totals[:, lo:hi])
        out[plan.kernel_rows] = totals

    def _execute_group_gather(
        self,
        group_index: int,
        plan: _GroupPlan,
        patches_t: np.ndarray,
        out: np.ndarray,
        work_dtype,
    ) -> None:
        """Pure-numpy fallback: chunked gather + two segmented reductions."""
        pixels = patches_t.shape[1]
        chunks = self._chunks(group_index, plan, pixels)
        seg_values = plan.seg_values.astype(work_dtype)[:, None]
        max_rows = max(chunk.col_hi - chunk.col_lo for chunk in chunks)
        max_segs = max(chunk.seg_hi - chunk.seg_lo for chunk in chunks)
        max_kernels = max(chunk.kernel_hi - chunk.kernel_lo for chunk in chunks)
        gather = self._buffer("gather", (max_rows, pixels), work_dtype)
        partial = self._buffer("partial", (max_segs, pixels), work_dtype)
        totals = self._buffer("totals", (max_kernels, pixels), work_dtype)
        for chunk in chunks:
            rows = chunk.col_hi - chunk.col_lo
            segs = chunk.seg_hi - chunk.seg_lo
            nker = chunk.kernel_hi - chunk.kernel_lo
            block = gather[:rows]
            # One gather: this chunk's WT-Buffer streams, whole rows at once.
            np.take(
                patches_t, plan.columns[chunk.col_lo : chunk.col_hi], axis=0, out=block
            )
            # Stage 1: segmented accumulate over the Q-Table segments,
            # vectorized across the (batch-stacked) pixel axis.
            np.add.reduceat(block, chunk.local_seg_starts, axis=0, out=partial[:segs])
            # Stage 2: one multiply per segment...
            np.multiply(
                partial[:segs],
                seg_values[chunk.seg_lo : chunk.seg_hi],
                out=partial[:segs],
            )
            # ...then reduce each kernel's contiguous run of segments and
            # scatter into those kernels' output rows (all-zero kernels were
            # never included, so their rows stay at the zero fill).
            np.add.reduceat(
                partial[:segs], chunk.local_kernel_starts, axis=0, out=totals[:nker]
            )
            out[plan.kernel_rows[chunk.kernel_lo : chunk.kernel_hi]] = totals[:nker]

    def describe(self) -> str:
        """One-line summary for logs and benchmarks."""
        return (
            f"plan({self.name}: {self.out_channels} kernels, "
            f"{self.accumulates_per_pixel} acc/px, "
            f"{self.multiplies_per_pixel} mult/px, "
            f"{len(self._groups)} group(s))"
        )


_plan_cache: "OrderedDict[Tuple[int, Hashable], LayerPlan]" = OrderedDict()
_plan_refs: Dict[int, "weakref.ref[EncodedLayer]"] = {}
#: Reentrant: a weakref.finalize eviction can fire from a GC triggered while
#: compile_layer_plan already holds the lock in the same thread.
_plan_lock = threading.RLock()
_plan_hits = 0
_plan_misses = 0
_plan_evictions = 0


def _evict_plans(encoded_id: int) -> None:
    global _plan_evictions
    with _plan_lock:
        _plan_refs.pop(encoded_id, None)
        for key in [k for k in _plan_cache if k[0] == encoded_id]:
            del _plan_cache[key]
            _plan_evictions += 1


def compile_layer_plan(encoded: EncodedLayer, geometry: "ConvGeometry") -> LayerPlan:
    """The cached :class:`LayerPlan` for (encoded, geometry).

    Keyed by the encoded layer's identity (encodings are immutable) and the
    geometry; entries are evicted when the encoded layer is garbage
    collected, and an LRU bound caps the cache for long-lived processes.
    Lookup and insertion are lock-guarded — serve workers and parallel
    simulation may compile plans concurrently.
    """
    global _plan_hits, _plan_misses
    key = (id(encoded), geometry)
    with _plan_lock:
        plan = _plan_cache.get(key)
        if plan is not None:
            ref = _plan_refs.get(id(encoded))
            if ref is not None and ref() is encoded:
                _plan_cache.move_to_end(key)
                _plan_hits += 1
                return plan
            _evict_plans(id(encoded))
        _plan_misses += 1
    # Compile outside the lock: plans are deterministic, so if two threads
    # race on the same key the loser's insert is a harmless overwrite.
    plan = LayerPlan(encoded, geometry)
    with _plan_lock:
        global _plan_evictions
        _plan_cache[key] = plan
        if id(encoded) not in _plan_refs:
            _plan_refs[id(encoded)] = weakref.ref(encoded)
            weakref.finalize(encoded, _evict_plans, id(encoded))
        while len(_plan_cache) > PLAN_CACHE_CAPACITY:
            old_key, _ = _plan_cache.popitem(last=False)
            _plan_evictions += 1
            if not any(k[0] == old_key[0] for k in _plan_cache):
                _plan_refs.pop(old_key[0], None)
    return plan


def clear_plan_cache() -> None:
    """Drop all compiled plans (tests and memory-sensitive callers)."""
    global _plan_hits, _plan_misses, _plan_evictions
    with _plan_lock:
        _plan_cache.clear()
        _plan_refs.clear()
        _plan_hits = 0
        _plan_misses = 0
        _plan_evictions = 0


def plan_cache_size() -> int:
    with _plan_lock:
        return len(_plan_cache)


def plan_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the plan cache (telemetry view)."""
    with _plan_lock:
        return CacheStats(
            hits=_plan_hits,
            misses=_plan_misses,
            evictions=_plan_evictions,
            size=len(_plan_cache),
            capacity=PLAN_CACHE_CAPACITY,
            name="core.plan",
        )


register_cache("core.plan", plan_cache_stats)
