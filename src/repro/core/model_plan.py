"""Whole-model fused streaming execution plans.

:mod:`repro.core.plan` compiles each conv/FC layer into a CSR execution
plan, but end-to-end inference still round-trips every layer through fresh
numpy temporaries: the per-layer pipeline detaches each plan result with a
``transpose(...).copy()``, casts the full batch per layer, rescans its
peak magnitude per layer, and materializes 6-8 float temporaries per
requantize.  This module compiles the *network* the way the paper's
accelerator streams it: one :class:`ModelPlan` per (pipeline, batch
geometry) that

- **fuses each conv/FC with its epilogue** — bias add, requantize to the
  layer's 8-bit output format, ReLU (folded into the clip bound) and, when
  adjacent, the integer-exact MaxPool — into a single stage;
- **threads activations through two preallocated ping-pong CHW buffers**
  sized to the network's high-water mark, so no per-layer output is ever
  materialized (stages read the raw plan scratch and write requantized
  codes straight into the destination buffer);
- **hoists run-time decisions to compile time**: the per-layer work dtype
  comes from the tracked quantized-format code range (no ``abs().max()``
  scan per layer per batch), the bias codes and requantize scale factors
  are computed once, and the host/accelerator split is resolved when the
  plan is built;
- **shares one scratch arena across the batch**: the requantize float
  scratch and the pooling windows reuse the same two arrays for every
  stage of every call.

Bit-exactness: every fused stage performs the *same* float64/integer
operations as :meth:`repro.pipeline.QuantizedPipeline.run_batch_reference`
(power-of-two scale factors make the fused single multiply exact, integer
max equals float max on integer codes), so fused outputs and op counts are
identical to the per-layer path — pinned by the hypothesis differential
suite in ``tests/test_model_fused.py``.

Host layers (AvgPool, LRN, Softmax) stay on the float path, exactly as the
paper's CPU/FPGA split prescribes: they dequantize out of the stream, run
in float64, and requantize back into the ping-pong flow.

Plans are LRU-cached per (pipeline identity, quantization token, batch
geometry) and registered with the telemetry cache registry as
``core.model_plan``.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..nn.layers import (
    AvgPool2D,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Softmax,
)
from ..nn.tensor import FeatureShape
from ..quant.fixed_point import QFormat
from ..telemetry.caches import CacheStats, register_cache
from ..telemetry.context import get_active
from . import tiers
from .plan import LayerPlan, compile_layer_plan
from .schemes import get_scheme_model
from .specs import CONV, LayerSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle with repro.pipeline
    from ..pipeline import QuantizedPipeline

#: Compiled model plans kept before LRU eviction.  Model plans own the
#: ping-pong buffers (two int64 + two float64 arrays at the network's
#: high-water mark), so the bound is deliberately small.
MODEL_PLAN_CACHE_CAPACITY = 8

#: Fill value of integer max-pool padding; never beats a real code.
_INT_MIN = np.iinfo(np.int64).min


def _max_abs_code(fmt: QFormat) -> int:
    """The largest |code| the format can emit — the static input peak."""
    return max(-fmt.min_code, fmt.max_code)


class _FusedStage:
    """conv/FC + bias + requantize [+ ReLU] [+ integer MaxPool], one stage."""

    __slots__ = (
        "name",
        "plan",
        "bias_codes",
        "factor",
        "clip_lo",
        "clip_hi",
        "pool",
        "is_fc",
        "input_peak",
        "use_gemm",
        "conv_shape",
        "out_shape",
        "fused_names",
        "scheme",
        "_raw_fn",
    )

    def __init__(
        self,
        name: str,
        plan: LayerPlan,
        bias_codes: np.ndarray,
        in_fmt: QFormat,
        datapath_fmt: QFormat,
        out_fmt: QFormat,
        relu: bool,
        pool: Optional[MaxPool2D],
        is_fc: bool,
        conv_shape: FeatureShape,
        out_shape: FeatureShape,
        fused_names: Tuple[str, ...],
        scheme: str = "abm",
        raw_fn: Optional[Callable] = None,
    ) -> None:
        self.name = name
        self.plan = plan
        self.bias_codes = bias_codes
        # One multiply replaces dequantize(datapath) o quantize(out): both
        # scales are powers of two, so (codes * 2**-dp) * 2**out and
        # codes * 2**(out - dp) round identically (each step is exact).
        self.factor = 2.0 ** (out_fmt.frac_bits - datapath_fmt.frac_bits)
        # ReLU folds into the requantize clip: max(clip(x, lo, hi), 0)
        # == clip(x, max(lo, 0), hi), and out_fmt.max_code >= 0 always.
        self.clip_lo = float(max(out_fmt.min_code, 0) if relu else out_fmt.min_code)
        self.clip_hi = float(out_fmt.max_code)
        self.pool = pool
        self.is_fc = is_fc
        self.input_peak = _max_abs_code(in_fmt)
        # Compile-time exactness proof for the GEMM datapath: every BLAS
        # partial sum is bounded by max|x| * max_k sum(|VAL|*NUM) + |bias|,
        # and integers below 2**53 are exact in float64 — so dense float64
        # matmul equals the integer ABM sums term for term.  The numba
        # tier keeps the ABM loop structure instead (see run()).
        bias_peak = int(np.abs(bias_codes).max()) if bias_codes.size else 0
        self.use_gemm = (
            self.input_peak * plan.max_weighted_sum + bias_peak < 2**53
        )
        self.conv_shape = conv_shape
        self.out_shape = out_shape
        self.fused_names = fused_names
        self.scheme = scheme
        self._raw_fn = raw_fn
        if scheme == "winograd2":
            # F(2x2,3x3) claims bit-exactness, so prove it like the GEMM
            # bound: transform row sums bound every intermediate by
            # 81 * C_g * max|x| * max|w| (+ bias), and the dyadic values
            # (multiples of 1/4) need 2 extra mantissa bits -> 2**51.
            wino_peak = (
                81 * plan.group_in * self.input_peak * plan.weight_peak
                + bias_peak
            )
            if wino_peak >= 2**51:
                raise ValueError(
                    f"{name}: winograd2 magnitude bound {wino_peak} >= 2**51; "
                    "the F(2x2,3x3) path cannot guarantee exact sums here"
                )

    def run(self, arena: "_Arena", current: np.ndarray) -> np.ndarray:
        batch = (
            current.reshape(current.shape[0], -1, 1, 1) if self.is_fc else current
        )
        channels = self.plan.out_channels
        if self._raw_fn is not None:
            raw, images, out_rows, out_cols = self._raw_fn(
                batch, self.bias_codes
            )
            # Scheme fast paths return float64 sums with bounded round-off
            # (zero for winograd2, < 0.5 otherwise); snap to the exact
            # integer sums, then run the shared requantize epilogue.
            np.rint(raw, out=raw)
            scaled = raw  # scheme-owned fresh array: scale it in place
            np.multiply(raw, self.factor, out=scaled)
        elif self.use_gemm and not tiers.numba_active():
            raw, images, out_rows, out_cols = self.plan.execute_batch_gemm(
                batch, self.bias_codes
            )
            scaled = raw  # plan-owned float scratch: scale it in place
            np.multiply(raw, self.factor, out=scaled)
        else:
            raw, images, out_rows, out_cols = self.plan.execute_batch_raw(
                batch, self.bias_codes, self.input_peak
            )
            scaled = arena.float_a[: raw.size].reshape(raw.shape)
            np.multiply(raw, self.factor, out=scaled)
        # Requantize in the shared float scratch: one exact power-of-two
        # multiply, round half away from zero, clip (ReLU included).
        rounded = arena.float_b[: raw.size].reshape(raw.shape)
        np.abs(scaled, out=rounded)
        rounded += 0.5
        np.floor(rounded, out=rounded)
        np.copysign(rounded, scaled, out=rounded)
        np.clip(rounded, self.clip_lo, self.clip_hi, out=rounded)
        # One strided pass writes the kernel-major sums into the BCHW
        # destination view — the detach copy and the int64 cast in one.
        dest = arena.claim(current, (images, channels, out_rows, out_cols))
        np.copyto(
            dest.transpose(1, 0, 2, 3),
            rounded.reshape(channels, images, out_rows, out_cols),
            casting="unsafe",
        )
        if self.pool is not None:
            dest = _integer_maxpool(arena, self.pool, dest)
        return dest


def _integer_maxpool(arena: "_Arena", pool: MaxPool2D, current: np.ndarray) -> np.ndarray:
    """Ceil-mode max pooling on integer codes, into the free ping buffer.

    Max of codes == code of max, and padding with INT64_MIN never beats a
    real pixel (ceil-mode windows always contain at least one), so this is
    bit-identical to the reference's float64 pool + ``astype(int64)``.
    """
    images, channels, rows, cols = current.shape
    windows = pool._windows(
        current.reshape(images * channels, rows, cols), fill=_INT_MIN
    )
    out_rows, out_cols = windows.shape[1], windows.shape[2]
    dest = arena.claim(current, (images, channels, out_rows, out_cols))
    np.max(
        windows, axis=(3, 4), out=dest.reshape(images * channels, out_rows, out_cols)
    )
    return dest


class _PoolStage:
    """Standalone integer MaxPool (not adjacent to a conv epilogue)."""

    __slots__ = ("name", "pool")

    def __init__(self, name: str, pool: MaxPool2D) -> None:
        self.name = name
        self.pool = pool

    def run(self, arena: "_Arena", current: np.ndarray) -> np.ndarray:
        return _integer_maxpool(arena, self.pool, current)


class _ReLUStage:
    """Standalone elementwise ReLU, in place on the stream buffer."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def run(self, arena: "_Arena", current: np.ndarray) -> np.ndarray:
        np.maximum(current, 0, out=current)
        return current


class _ReshapeStage:
    """Flatten / Dropout: pure view changes, no data movement."""

    __slots__ = ("name", "flatten")

    def __init__(self, name: str, flatten: bool) -> None:
        self.name = name
        self.flatten = flatten

    def run(self, arena: "_Arena", current: np.ndarray) -> np.ndarray:
        if self.flatten:
            return current.reshape(current.shape[0], -1, 1, 1)
        return current


class _HostStage:
    """AvgPool / LRN / Softmax: dequantize, run float64, requantize.

    The float round-trip is byte-for-byte the reference path's — host
    layers are where the paper's system leaves the integer stream, so the
    fused plan leaves it the same way.
    """

    __slots__ = ("name", "layer", "in_fmt", "out_fmt")

    def __init__(self, name: str, layer, in_fmt: QFormat, out_fmt: QFormat) -> None:
        self.name = name
        self.layer = layer
        self.in_fmt = in_fmt
        self.out_fmt = out_fmt

    def run(self, arena: "_Arena", current: np.ndarray) -> np.ndarray:
        real = self.layer.forward_batch(self.in_fmt.dequantize(current))
        # The fresh codes array rejoins the stream directly; downstream
        # claims fall back to ping buffer 0 when reading from it.
        return self.out_fmt.quantize(real)


class _Arena:
    """The shared buffer arena of one model plan.

    Two int64 ping-pong buffers at the activation high-water mark plus two
    float64 requantize scratches at the largest raw conv output.  ``claim``
    hands out a view of whichever ping buffer the caller is *not* reading
    from, so a stage can always write its output while streaming its input.
    """

    __slots__ = ("ping", "float_a", "float_b")

    def __init__(self, high_water: int, float_elements: int) -> None:
        self.ping = (
            np.empty(high_water, dtype=np.int64),
            np.empty(high_water, dtype=np.int64),
        )
        self.float_a = np.empty(float_elements, dtype=np.float64)
        self.float_b = np.empty(float_elements, dtype=np.float64)

    def _index_of(self, array: np.ndarray) -> Optional[int]:
        base = array
        while base.base is not None:  # walk view chains to the owning array
            base = base.base
        for i, buf in enumerate(self.ping):
            if base is buf:
                return i
        return None

    def claim(self, current: np.ndarray, shape: Sequence[int]) -> np.ndarray:
        """A destination view that does not alias ``current``."""
        src = self._index_of(current)
        dest = 1 - src if src is not None else 0
        n = int(np.prod(shape))
        return self.ping[dest][:n].reshape(shape)

    @property
    def nbytes(self) -> int:
        return (
            self.ping[0].nbytes * 2 + self.float_a.nbytes + self.float_b.nbytes
        )


def _resolve_scheme(
    scheme: str,
    name: str,
    compiled,
    plan: LayerPlan,
    in_shape: FeatureShape,
    conv_shape: FeatureShape,
):
    """Resolve a non-ABM scheme tag to (raw-sum producer, per-image ops).

    Validates at compile time that the scheme exists, has a fused datapath,
    and supports the layer's geometry — a bad assignment fails here with
    the layer name, never mid-batch.
    """
    if compiled.is_fc:
        raise ValueError(f"{name}: scheme {scheme!r} cannot execute an FC layer")
    geometry = compiled.geometry
    spec = LayerSpec(
        name=name,
        kind=CONV,
        in_channels=in_shape.channels,
        out_channels=conv_shape.channels,
        kernel=geometry.kernel,
        stride=geometry.stride,
        padding=geometry.padding,
        groups=geometry.groups,
        in_rows=in_shape.rows,
        in_cols=in_shape.cols,
        out_rows=conv_shape.rows,
        out_cols=conv_shape.cols,
    )
    model = get_scheme_model(scheme)
    if not model.executable:
        raise ValueError(f"{name}: scheme {scheme!r} has no fused datapath")
    if not model.supports(spec):
        raise ValueError(
            f"{name}: scheme {scheme!r} does not support geometry "
            f"K={spec.kernel} S={spec.stride} groups={spec.groups}"
        )
    if scheme in ("winograd2", "winograd4"):
        from ..baselines.winograd import winograd_raw_from_plan

        tile = int(scheme[len("winograd") :])

        def raw_fn(batch, bias, _plan=plan, _tile=tile):
            return winograd_raw_from_plan(_plan, batch, bias, tile=_tile)

    elif scheme == "spectral":
        from ..baselines.spectral import spectral_raw_from_plan

        def raw_fn(batch, bias, _plan=plan):
            return spectral_raw_from_plan(_plan, batch, bias)

    else:  # pragma: no cover - registry and executables move together
        raise ValueError(f"{name}: scheme {scheme!r} has no fused datapath")
    from ..hw.workload import KernelWork, LayerWorkload

    workload = LayerWorkload(
        spec=spec,
        kernels=tuple(KernelWork(0, 0) for _ in range(spec.out_channels)),
        encoded_bytes=0,
    )
    return raw_fn, model.layer_ops(workload)


class ModelPlan:
    """A quantized network compiled for fused streaming execution.

    ``schemes`` optionally maps accelerated layer names to the convolution
    scheme executing them (``abm`` — the default — ``winograd2``,
    ``winograd4`` or ``spectral``). Non-ABM stages swap only the raw-sum
    producer; bias, requantize, ReLU and pooling fuse identically, and
    numerics stay bit-exact with the reference path (winograd2 by the
    compile-time magnitude proof, the float schemes by integer snapping).
    """

    def __init__(
        self,
        pipeline: "QuantizedPipeline",
        batch_shape: Tuple[int, ...],
        schemes: Optional[Mapping[str, str]] = None,
    ) -> None:
        if len(batch_shape) != 4:
            raise ValueError(f"expected a BCHW batch shape, got {batch_shape}")
        if pipeline.input_fmt is None:
            raise RuntimeError(
                "pipeline is not calibrated: call calibrate() before compiling "
                "a model plan"
            )
        if not pipeline.compiled:
            raise RuntimeError(
                "pipeline is not quantized: call quantize() before compiling "
                "a model plan"
            )
        images = int(batch_shape[0])
        self.batch_shape = tuple(int(s) for s in batch_shape)
        self.network_name = pipeline.network.name
        self.input_fmt = pipeline.input_fmt
        self.schemes: Dict[str, str] = {
            layer: scheme
            for layer, scheme in (schemes or {}).items()
            if scheme != "abm"
        }
        self.stages: List[object] = []
        #: (layer name, accumulates, multiplies) per accelerated layer, in
        #: network order — the batch-total op counts are exact constants.
        self.layer_ops: List[Tuple[str, int, int]] = []
        self._lock = threading.Lock()

        layers = list(pipeline.network)
        shape = FeatureShape(*(int(s) for s in batch_shape[1:]))
        fmt = pipeline.input_fmt
        high_water = images * shape.size
        float_elements = 1
        index = 0
        while index < len(layers):
            layer = layers[index]
            name = layer.name
            if name in pipeline.compiled:
                compiled = pipeline.compiled[name]
                datapath_fmt = QFormat(
                    32, fmt.frac_bits + compiled.weight_fmt.frac_bits
                )
                bias_codes = datapath_fmt.quantize(compiled.bias_codes)
                plan = compile_layer_plan(compiled.encoded, compiled.geometry)
                conv_shape = layer.output_shape(shape)
                fused = [name]
                relu = False
                pool: Optional[MaxPool2D] = None
                if index + 1 < len(layers) and isinstance(layers[index + 1], ReLU):
                    relu = True
                    fused.append(layers[index + 1].name)
                    index += 1
                if index + 1 < len(layers) and isinstance(
                    layers[index + 1], MaxPool2D
                ):
                    pool = layers[index + 1]
                    fused.append(pool.name)
                    index += 1
                out_shape = pool.output_shape(conv_shape) if pool else conv_shape
                scheme = self.schemes.get(name, "abm")
                raw_fn = None
                scheme_ops = None
                if scheme != "abm":
                    raw_fn, scheme_ops = _resolve_scheme(
                        scheme, name, compiled, plan, shape, conv_shape
                    )
                stage = _FusedStage(
                    name=name,
                    plan=plan,
                    bias_codes=bias_codes,
                    in_fmt=fmt,
                    datapath_fmt=datapath_fmt,
                    out_fmt=compiled.output_fmt,
                    relu=relu,
                    pool=pool,
                    is_fc=compiled.is_fc,
                    conv_shape=conv_shape,
                    out_shape=out_shape,
                    fused_names=tuple(fused),
                    scheme=scheme,
                    raw_fn=raw_fn,
                )
                self.stages.append(stage)
                pixels = images * conv_shape.rows * conv_shape.cols
                if scheme_ops is None:
                    self.layer_ops.append(
                        (
                            name,
                            plan.accumulates_per_pixel * pixels,
                            plan.multiplies_per_pixel * pixels,
                        )
                    )
                else:
                    self.layer_ops.append(
                        (
                            name,
                            int(round(scheme_ops.accumulates)) * images,
                            int(round(scheme_ops.multiplies)) * images,
                        )
                    )
                high_water = max(high_water, images * conv_shape.size)
                float_elements = max(float_elements, images * conv_shape.size)
                fmt = compiled.output_fmt
                shape = out_shape
            elif isinstance(layer, ReLU):
                self.stages.append(_ReLUStage(name))
            elif isinstance(layer, MaxPool2D):
                self.stages.append(_PoolStage(name, layer))
                shape = layer.output_shape(shape)
            elif isinstance(layer, (Flatten, Dropout)):
                self.stages.append(
                    _ReshapeStage(name, flatten=isinstance(layer, Flatten))
                )
                shape = layer.output_shape(shape)
            elif isinstance(layer, (AvgPool2D, LocalResponseNorm, Softmax)):
                out_fmt = pipeline.output_fmts.get(name, fmt)
                self.stages.append(_HostStage(name, layer, fmt, out_fmt))
                fmt = out_fmt
                shape = layer.output_shape(shape)
            else:
                raise TypeError(f"pipeline cannot execute layer {layer!r}")
            high_water = max(high_water, images * shape.size)
            index += 1
        accelerated = {
            s.name for s in self.stages if isinstance(s, _FusedStage)
        }
        unknown = set(self.schemes) - accelerated
        if unknown:
            raise ValueError(
                f"scheme assignment names layers the pipeline does not "
                f"accelerate: {sorted(unknown)}"
            )
        self.output_fmt = fmt
        self.output_shape = shape
        self.arena = _Arena(high_water, float_elements)

    # ---- execution -------------------------------------------------------

    def run(self, codes: np.ndarray) -> Tuple[np.ndarray, QFormat]:
        """Stream quantized input codes through every fused stage.

        Returns the final integer codes (a view into plan-owned scratch —
        consume before the next ``run``) and their format.  The arena is
        shared mutable state, so concurrent runs serialize on a plan lock.
        """
        if codes.shape != self.batch_shape:
            raise ValueError(
                f"model plan compiled for batch {self.batch_shape}, "
                f"got {codes.shape}"
            )
        telemetry = get_active()
        with self._lock:
            current = codes
            for stage in self.stages:
                if telemetry is not None and isinstance(stage, _FusedStage):
                    with telemetry.span(
                        "kernel",
                        layer=stage.name,
                        images=int(codes.shape[0]),
                        fused=",".join(stage.fused_names),
                    ):
                        current = stage.run(self.arena, current)
                else:
                    current = stage.run(self.arena, current)
            return current, self.output_fmt

    # ---- reporting -------------------------------------------------------

    def describe(self) -> str:
        """One-line summary for logs and benchmarks."""
        fused = sum(1 for s in self.stages if isinstance(s, _FusedStage))
        host = sum(1 for s in self.stages if isinstance(s, _HostStage))
        mix: Dict[str, int] = {}
        for stage in self.stages:
            if isinstance(stage, _FusedStage):
                mix[stage.scheme] = mix.get(stage.scheme, 0) + 1
        scheme_part = ""
        if set(mix) - {"abm"}:
            joined = ",".join(f"{k}:{v}" for k, v in sorted(mix.items()))
            scheme_part = f", schemes={joined}"
        return (
            f"model_plan({self.network_name}: {len(self.stages)} stages, "
            f"{fused} fused, {host} host, batch={self.batch_shape}, "
            f"arena={self.arena.nbytes / 1e6:.1f} MB{scheme_part})"
        )


_model_plan_cache: "OrderedDict[Hashable, ModelPlan]" = OrderedDict()
_model_plan_refs: Dict[int, "weakref.ref"] = {}
_model_plan_lock = threading.RLock()
_model_plan_hits = 0
_model_plan_misses = 0
_model_plan_evictions = 0


def _evict_model_plans(pipeline_id: int) -> None:
    global _model_plan_evictions
    with _model_plan_lock:
        _model_plan_refs.pop(pipeline_id, None)
        for key in [k for k in _model_plan_cache if k[0] == pipeline_id]:
            del _model_plan_cache[key]
            _model_plan_evictions += 1


def compile_model_plan(
    pipeline: "QuantizedPipeline",
    batch_shape: Tuple[int, ...],
    schemes: Optional[Mapping[str, str]] = None,
) -> ModelPlan:
    """The cached :class:`ModelPlan` for (pipeline, batch geometry, schemes).

    Keyed on the pipeline's identity, its quantization token (bumped by
    ``prune``/``calibrate``/``quantize``, so a re-quantized pipeline never
    reuses stale stages), the batch shape, and the canonicalized per-layer
    scheme assignment; entries evict when the pipeline is garbage collected
    or the LRU bound trips.  A compile miss records a ``fuse`` span under
    the active telemetry.
    """
    global _model_plan_hits, _model_plan_misses
    scheme_key = (
        tuple(sorted((k, v) for k, v in schemes.items() if v != "abm"))
        if schemes
        else ()
    )
    key = (
        id(pipeline),
        pipeline.quantization_token,
        tuple(batch_shape),
        scheme_key,
    )
    with _model_plan_lock:
        plan = _model_plan_cache.get(key)
        if plan is not None:
            ref = _model_plan_refs.get(id(pipeline))
            if ref is not None and ref() is pipeline:
                _model_plan_cache.move_to_end(key)
                _model_plan_hits += 1
                return plan
            _evict_model_plans(id(pipeline))
        _model_plan_misses += 1
    telemetry = get_active()
    if telemetry is not None:
        with telemetry.span(
            "fuse", model=pipeline.network.name, batch=list(batch_shape)
        ):
            plan = ModelPlan(pipeline, tuple(batch_shape), schemes=schemes)
    else:
        plan = ModelPlan(pipeline, tuple(batch_shape), schemes=schemes)
    with _model_plan_lock:
        global _model_plan_evictions
        _model_plan_cache[key] = plan
        if id(pipeline) not in _model_plan_refs:
            _model_plan_refs[id(pipeline)] = weakref.ref(pipeline)
            weakref.finalize(pipeline, _evict_model_plans, id(pipeline))
        while len(_model_plan_cache) > MODEL_PLAN_CACHE_CAPACITY:
            old_key, _ = _model_plan_cache.popitem(last=False)
            _model_plan_evictions += 1
            if not any(k[0] == old_key[0] for k in _model_plan_cache):
                _model_plan_refs.pop(old_key[0], None)
    return plan


def clear_model_plan_cache() -> None:
    """Drop all compiled model plans (tests and memory-sensitive callers)."""
    global _model_plan_hits, _model_plan_misses, _model_plan_evictions
    with _model_plan_lock:
        _model_plan_cache.clear()
        _model_plan_refs.clear()
        _model_plan_hits = 0
        _model_plan_misses = 0
        _model_plan_evictions = 0


def model_plan_cache_size() -> int:
    with _model_plan_lock:
        return len(_model_plan_cache)


def model_plan_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the model-plan cache (telemetry)."""
    with _model_plan_lock:
        return CacheStats(
            hits=_model_plan_hits,
            misses=_model_plan_misses,
            evictions=_model_plan_evictions,
            size=len(_model_plan_cache),
            capacity=MODEL_PLAN_CACHE_CAPACITY,
            name="core.model_plan",
        )


register_cache("core.model_plan", model_plan_cache_stats)
