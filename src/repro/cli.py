"""Command-line interface: ``abm-spconv <command>``.

Commands
--------
- ``experiments [--only ID]`` — regenerate the paper's tables/figures and
  print paper-vs-measured comparisons.
- ``simulate --model {alexnet,vgg16}`` — run the accelerator simulator on a
  calibrated synthetic workload and print the per-layer report.
- ``explore --model {alexnet,vgg16}`` — run the design-space exploration
  flow and print the chosen configuration; with ``--trials K`` it runs the
  adaptive joint-space study instead (``--sampler tpe|random``,
  ``--objectives a,b,...``, ``--study FILE`` persists the trial log as
  JSONL and ``--resume`` continues a killed study bit-identically).
- ``schemes --model {alexnet,vgg16}`` — print the per-layer heterogeneous
  scheme plan (chosen scheme, predicted cost/cycles, rationale) produced
  by :func:`repro.dse.schemes.plan_model_schemes`.
- ``roofline`` — print the Figure 1 roofline for a device.
- ``devices`` — list the FPGA device catalog (logic/DSP/M20K/bandwidth).
- ``partition --model {alexnet,vgg16} --devices A,B`` — search
  layer-pipeline partitions across a heterogeneous device catalog
  (exhaustive by default; ``--trials K`` runs the adaptive study) and
  print the best pipelined plan against the replication baseline.
- ``serve-sim --model {lenet,cifarnet}`` — simulate batched serving across
  a pool of accelerator instances and print the latency/throughput report;
  ``--metrics-out FILE`` additionally records the run through
  :mod:`repro.telemetry` and writes the JSONL snapshot.
- ``metrics`` — inspect, validate (``--check``) or convert
  (``--format prometheus``) an exported telemetry snapshot.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.compare import render_comparisons
from .core import tiers
from .dse.explorer import explore
from .dse.roofline import RooflineModel
from .hw.accelerator import AcceleratorSimulator
from .hw.config import PAPER_CONFIG_ALEXNET, PAPER_CONFIG_VGG16
from .hw.device import get_device
from .workloads.synthetic import synthetic_model_workload

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig6",
    "fig7",
    "utilization",
    "bitwidth",
    "batch_bandwidth",
    "density_sweep",
)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from . import experiments as exp

    names = [args.only] if args.only else list(_EXPERIMENTS)
    for name in names:
        if name not in _EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from {_EXPERIMENTS}")
            return 2
        module = getattr(exp, name)
        result = module.run(seed=args.seed)
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(result.render())
        print()
        comparisons = getattr(result, "comparisons", ())
        if comparisons:
            print(render_comparisons(comparisons, title="paper vs measured"))
            print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = PAPER_CONFIG_VGG16 if args.model == "vgg16" else PAPER_CONFIG_ALEXNET
    device = get_device(args.device)
    workload = synthetic_model_workload(args.model, seed=args.seed)
    simulator = AcceleratorSimulator(config, device, use_cache=not args.no_cache)
    trace = None
    if args.trace:
        from .hw.trace import TraceRecorder

        trace = TraceRecorder(capacity=args.trace_capacity)
    result = simulator.simulate(workload, workers=args.workers, trace=trace)
    print(f"model: {args.model}   config: {config.describe()}")
    print(simulator.utilization_summary(result))
    print()
    print(f"throughput:       {result.throughput_gops:8.1f} GOP/s (dense-op basis)")
    print(f"effective rate:   {result.effective_gops:8.1f} GOP/s (executed ops)")
    print(f"inference time:   {result.seconds_per_image * 1e3:8.2f} ms/image")
    print(f"CU utilization:   {result.cu_utilization:8.1%}")
    print(f"avg bandwidth:    {result.bandwidth_gbs:8.2f} GB/s")
    if trace is not None:
        print(
            f"trace:            {trace.recorded} event(s) recorded, "
            f"{trace.dropped} dropped"
        )
    return 0


def _cmd_explore_adaptive(args: argparse.Namespace) -> int:
    from .dse.adaptive import OBJECTIVE_DIRECTIONS, run_study
    from .dse.study import StudyError, parse_objectives

    device = get_device(args.device)
    workload = synthetic_model_workload(args.model, seed=args.seed)
    try:
        objectives = (
            parse_objectives(args.objectives, OBJECTIVE_DIRECTIONS)
            if args.objectives
            else None
        )
        result = run_study(
            [workload],
            device,
            trials=args.trials,
            sampler=args.sampler,
            seed=args.seed,
            objectives=objectives,
            path=args.study,
            resume=args.resume,
            batch=args.batch,
        )
    except StudyError as error:
        print(f"error: {error}")
        return 1
    spec = result.study.spec
    print(
        f"adaptive exploration for {args.model} on {device.name} "
        f"[sampler={spec.sampler} seed={spec.seed}]"
    )
    print(
        f"  trials:              {result.sampled_trials} sampled, "
        f"{len(result.study.trials)} total"
    )
    print(
        f"  evaluated:           {result.evaluated_points} of "
        f"{result.space_size} joint configurations "
        f"({result.evaluated_fraction:.2%})"
    )
    print(f"  pareto front:        {len(result.front)} trials")
    if result.best is None:
        print("  no feasible configuration found")
        return 1
    params = result.best.params
    print(
        f"  best:                N_knl={params['n_knl']:g} "
        f"S_ec={params['s_ec']:g} N_cu={params['n_cu']:g} "
        f"N={params['n_share']:g} D_f={params['d_f']:g} "
        f"D_w={params['d_w']:g} @{params['freq_mhz']:g} MHz"
    )
    for name, value in result.best.values.items():
        print(f"    {name:<18} {value:.4g}")
    if args.study:
        print(f"  study file:          {args.study}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    if args.trials is not None:
        return _cmd_explore_adaptive(args)
    device = get_device(args.device)
    workload = synthetic_model_workload(args.model, seed=args.seed)
    result = explore(
        workload,
        device,
        workers=args.workers,
        compiled=not args.reference,
        seed=args.seed,
    )
    path = "reference (per-point)" if args.reference else "compiled (whole-grid)"
    print(f"exploration for {args.model} on {device.name} [{path}]")
    print(f"  sharing factor N:    {result.n_share}")
    print(f"  optimal N_knl:       {result.chosen_n_knl}")
    print(f"  chosen config:       {result.chosen.describe()}")
    print(
        f"  buffers:             D_f={result.buffers.d_f} "
        f"D_w={result.buffers.d_w} D_q={result.buffers.d_q}"
    )
    print(f"  predicted:           {result.performance.throughput_gops:.1f} GOP/s")
    print(
        f"  bandwidth:           {result.bandwidth.required_bandwidth_gbs:.2f} GB/s "
        f"needed of {device.bandwidth_gbs:g} "
        f"({'compute' if result.bandwidth.compute_bound else 'memory'}-bound)"
    )
    print("  top candidates:")
    for candidate in result.candidates:
        print(
            f"    S_ec={candidate.s_ec:>2} N_cu={candidate.n_cu} -> "
            f"{candidate.throughput_gops:6.1f} GOP/s  "
            f"logic {candidate.utilization.logic:.0%} "
            f"dsp {candidate.utilization.dsp:.0%} "
            f"mem {candidate.utilization.memory:.0%}"
        )
    return 0


def _cmd_roofline(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    print(RooflineModel(device, freq_mhz=args.freq).render())
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    from .hw.device import available_devices

    header = (
        f"{'device':<18} {'ALMs':>9} {'DSPs':>6} {'M20K':>6} "
        f"{'BW GB/s':>8} {'MACs/cy':>8} {'max acc':>8}"
    )
    print(header)
    print("-" * len(header))
    for name in available_devices():
        device = get_device(name)
        print(
            f"{device.name:<18} {device.alms:>9,} {device.dsps:>6,} "
            f"{device.m20k_blocks:>6,} {device.bandwidth_gbs:>8g} "
            f"{device.mac_count:>8,} {device.max_accumulators:>8,}"
        )
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .dse.partition import partition_study, search_partitions
    from .shard.link import LinkModel

    device_names = [name.strip() for name in args.devices.split(",") if name.strip()]
    if not device_names:
        print("error: --devices needs at least one device name", file=sys.stderr)
        return 2
    devices = [get_device(name) for name in device_names]
    workload = synthetic_model_workload(
        args.model,
        seed=args.seed,
        scale=args.scale,
        spatial_scale=args.spatial_scale,
    )
    link = LinkModel(
        bandwidth_gbs=args.link_gbs,
        latency_s=args.link_latency_us * 1e-6,
        name="cli-link",
    )
    if args.trials is not None:
        result = partition_study(
            workload,
            devices,
            n_shards=args.shards or 2,
            trials=args.trials,
            sampler=args.sampler,
            seed=args.seed,
            link=link,
            path=args.study,
            resume=args.resume,
        )
        study = result.study
        print(
            f"partition study for {args.model} over "
            f"{', '.join(device_names)}: {result.sampled_trials} trials "
            f"sampled of a {result.space_size}-point space"
        )
        if result.best is None:
            print("no feasible pipelined deployment found")
            return 1
        print(f"best: {result.best.describe()}")
        print(
            f"replication baseline: "
            f"{result.replication.total_ips:.1f} img/s"
        )
        print(
            f"pareto front: {len(study.front.members)} members, "
            f"{study.rounds_complete} rounds complete"
        )
        return 0
    result = search_partitions(
        workload,
        devices,
        max_shards=args.shards,
        link=link,
        seed=args.seed,
    )
    print(result.render())
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    from .dse.schemes import plan_model_schemes

    config = PAPER_CONFIG_VGG16 if args.model == "vgg16" else PAPER_CONFIG_ALEXNET
    device = get_device(args.device)
    workload = synthetic_model_workload(
        args.model,
        seed=args.seed,
        scale=args.scale,
        spatial_scale=args.spatial_scale,
    )
    plan = plan_model_schemes(
        workload, config, device=device, basis=args.basis, margin=args.margin
    )
    scaled = "" if args.scale == 1.0 and args.spatial_scale == 1.0 else (
        f" (scale {args.scale:g}, spatial {args.spatial_scale:g})"
    )
    print(f"per-layer scheme plan for {args.model} on {device.name}{scaled}")
    print(f"  config:   {config.describe()}")
    print(f"  basis:    {plan.basis} (margin {plan.margin:.0%})")
    print(f"  enabled:  {', '.join(plan.enabled) if plan.enabled else 'none'}")
    if plan.rejected:
        print(f"  rejected: {', '.join(plan.rejected)} (unit does not fit fabric)")
    if plan.enabled:
        print(
            f"  overhead: +{plan.overhead.alms} ALMs "
            f"+{plan.overhead.dsps} DSPs +{plan.overhead.m20ks} M20Ks"
        )
    print()
    print(
        f"  {'layer':<10} {'shape':<24} {'scheme':<10} "
        f"{'cost':>9} {'cycles':>9} {'gain':>6}  why"
    )
    specs = {layer.spec.name: layer.spec for layer in workload.layers}
    for decision in plan.decisions:
        spec = specs[decision.layer]
        if spec.is_fc:
            shape = f"fc {spec.in_channels}->{spec.out_channels}"
        else:
            shape = (
                f"{spec.kernel}x{spec.kernel}/s{spec.stride} "
                f"{spec.in_channels}->{spec.out_channels} "
                f"@{spec.out_rows}x{spec.out_cols}"
            )
        print(
            f"  {decision.layer:<10} {shape:<24} {decision.scheme:<10} "
            f"{decision.chosen_cost / 1e6:8.1f}M "
            f"{decision.cycles[decision.scheme] / 1e6:8.2f}M "
            f"{decision.speedup:5.2f}x  {decision.reason}"
        )
    print()
    print(f"  {plan.summary()}")
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    from .nn.models import get_architecture
    from .system import run_system

    config = PAPER_CONFIG_VGG16 if args.model == "vgg16" else PAPER_CONFIG_ALEXNET
    result = run_system(
        get_architecture(args.model),
        synthetic_model_workload(args.model, seed=args.seed),
        config,
        get_device(args.device),
        host_ops_per_second=args.host_gops * 1e9,
    )
    print(f"pipelined CPU/FPGA system — {args.model}")
    print(f"  FPGA stage:      {result.fpga_seconds * 1e3:8.2f} ms/image")
    print(f"  host stage:      {result.host_seconds * 1e3:8.2f} ms/image")
    print(f"  CPU hidden:      {result.cpu_hidden}")
    print(f"  bottleneck:      {result.bottleneck}")
    print(f"  FPGA-only:       {result.fpga_gops:8.1f} GOP/s")
    print(f"  overall system:  {result.system_gops:8.1f} GOP/s")
    print(f"  pipeline gain:   {result.pipeline_speedup:8.2f}x vs sequential")
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    """Simulate batched serving across a pool of accelerator instances."""
    import numpy as np

    from .nn.models import get_architecture
    from .pipeline import QuantizedPipeline
    from .prune import uniform_schedule
    from .serve import BatchPolicy, DeploymentCache, build_worker_pool
    from .workloads.images import natural_image

    # Validate the serving shape before the (slow) pipeline build.
    if args.workers < 1:
        print("serve-sim: --workers must be >= 1")
        return 2
    if args.requests < 1:
        print("serve-sim: --requests must be >= 1")
        return 2
    if args.max_batch < 1:
        print("serve-sim: --max-batch must be >= 1")
        return 2
    if args.max_wait_ms < 0:
        print("serve-sim: --max-wait-ms cannot be negative")
        return 2
    if args.rate <= 0:
        print("serve-sim: --rate must be positive")
        return 2
    if not 0 <= args.best_effort < 1:
        print("serve-sim: --best-effort must be in [0, 1)")
        return 2
    if args.autoscale_max and args.autoscale_max < args.workers:
        print("serve-sim: --autoscale-max must be >= --workers")
        return 2

    architecture = get_architecture(args.model)
    network = architecture.build(seed=args.seed)
    rng = np.random.default_rng(args.seed)
    shape = network.input_shape.as_tuple()
    pipeline = QuantizedPipeline(network)
    names = [layer.name for layer in network.accelerated_layers()]
    pipeline.prune(uniform_schedule(names, args.density).densities)
    pipeline.calibrate(natural_image(shape, rng))
    pipeline.quantize()
    cache = DeploymentCache()
    # The events engine only needs one runtime (its timing profile); the
    # reference engine needs the full pool for the per-batch numerics.
    pool = build_worker_pool(
        pipeline,
        architecture.accelerated_specs(),
        args.workers if args.engine == "threads" else 1,
        device=get_device(args.device),
        cache=cache,
    )
    policy = BatchPolicy(
        max_batch=args.max_batch, max_wait_s=args.max_wait_ms * 1e-3
    )
    telemetry = None
    if args.metrics_out:
        from .telemetry import Telemetry

        telemetry = Telemetry()

    print(
        f"serving simulation — {args.model} on {args.workers} simulated "
        f"accelerator instance(s) ({args.engine} engine)"
    )
    print(
        f"policy:          max batch {policy.max_batch}, "
        f"max wait {args.max_wait_ms:g} ms, "
        f"offered load {args.rate:g} req/s ({args.trace})"
    )
    if args.engine == "threads":
        from .serve import ServingSimulator, make_requests, make_trace

        trace = make_trace(args.trace, args.requests, args.rate, seed=args.seed)
        images = [natural_image(shape, rng) for _ in range(args.requests)]
        requests = make_requests(images, trace.arrivals.tolist())
        report = ServingSimulator(pool, policy, telemetry=telemetry).run(
            requests
        )
        stats = report.stats
    else:
        from .serve import (
            AutoscalePolicy,
            EventDrivenSimulator,
            ServiceProfile,
            SLOClass,
            make_trace,
        )

        slo_mix = {"latency-sensitive": 1.0}
        classes = (SLOClass("latency-sensitive", priority=0),)
        if args.best_effort > 0:
            slo_mix = {
                "latency-sensitive": 1.0 - args.best_effort,
                "best-effort": args.best_effort,
            }
            classes = (
                SLOClass("latency-sensitive", priority=0),
                SLOClass(
                    "best-effort", priority=1, queue_limit=args.queue_limit
                ),
            )
        autoscale = None
        if args.autoscale_max and args.autoscale_max > args.workers:
            autoscale = AutoscalePolicy(
                min_instances=args.workers,
                max_instances=args.autoscale_max,
                check_interval_s=args.autoscale_interval_ms * 1e-3,
            )
        trace = make_trace(
            args.trace, args.requests, args.rate, seed=args.seed,
            slo_mix=slo_mix,
        )
        engine = EventDrivenSimulator(
            ServiceProfile.from_runtime(pool[0]),
            policy,
            classes=classes,
            instances=args.workers,
            continuous=args.continuous,
            autoscale=autoscale,
            telemetry=telemetry,
        )
        report = engine.run_trace(trace)
        stats = report.stats
        if args.continuous:
            print("batching:        continuous (in-flight admission)")
        if report.scale_events:
            peak = report.peak_instances
            print(
                f"autoscaling:     {len(report.scale_events)} decision(s), "
                f"peak {peak} instance(s), final {report.final_instances}"
            )
    print(stats.render())
    info = cache.info()
    print(
        f"model cache:     {info.size} deployment(s), "
        f"{info.hits} hits / {info.misses} misses"
    )
    if telemetry is not None:
        from .telemetry import write_jsonl

        snapshot = telemetry.snapshot()
        size = write_jsonl(snapshot, args.metrics_out)
        totals = snapshot["span_totals"]
        spans = ", ".join(
            f"{name}×{int(data['count'])}" for name, data in sorted(totals.items())
        )
        print(f"telemetry:       {spans}")
        print(f"metrics written: {args.metrics_out} ({size} bytes)")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    """Encode a synthetic pruned model and write the deployment blob."""
    import numpy as np

    from .core import encode_layer, save_model
    from .nn.models import get_architecture
    from .prune.schedules import deep_compression_schedule
    from .workloads.codebooks import codebook_size
    from .workloads.synthetic import synthesize_quantized_layer

    architecture = get_architecture(args.model)
    schedule = deep_compression_schedule(args.model)
    rng = np.random.default_rng(args.seed)
    layers = []
    skipped = 0
    for spec in architecture.accelerated_specs():
        if spec.weight_count > args.max_layer_weights:
            skipped += 1
            continue
        codes = synthesize_quantized_layer(
            spec,
            schedule.density(spec.name),
            codebook_size(args.model, spec.name),
            rng,
        )
        layers.append(encode_layer(spec.name, codes))
    size = save_model(layers, args.out)
    print(f"wrote {args.out}: {len(layers)} layers, {size / 1e6:.2f} MB")
    if skipped:
        print(f"({skipped} layers above --max-layer-weights were skipped)")
    return 0


def _demo_snapshot() -> dict:
    """A tiny deterministic telemetry snapshot (virtual clock, no compute).

    Exercises every record kind the exporters know — counters, gauges,
    histograms, cache stats, a nested span tree — so ``metrics`` without
    ``--from`` doubles as a self-check of the telemetry plumbing.
    """
    from .telemetry import Telemetry, VirtualClock, activate

    clock = VirtualClock()
    telemetry = Telemetry(clock=clock.now)
    with activate(telemetry):
        with telemetry.span("request", demo=True):
            clock.advance(1e-3)
            with telemetry.span("batch", size=2):
                clock.advance(2e-3)
        registry = telemetry.registry
        registry.counter("demo/requests").inc(2)
        registry.gauge("demo/queue_depth").set(1)
        histogram = registry.histogram("demo/latency_s")
        histogram.observe(1e-3)
        histogram.observe(3e-3)
        return telemetry.snapshot()


def _render_metrics_summary(snapshot: dict) -> str:
    lines = [f"schema: {snapshot.get('schema')}"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        lines.append("metrics:")
        for name, value in counters.items():
            lines.append(f"  {name:<32} {value:>12g}  (counter)")
        for name, value in gauges.items():
            lines.append(f"  {name:<32} {value:>12g}  (gauge)")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, data in histograms.items():
            p50 = data.get("p50")
            p95 = data.get("p95")
            fmt = lambda v: f"{v:.3g}" if v is not None else "-"
            lines.append(
                f"  {name:<32} n={data['count']:<6} "
                f"p50={fmt(p50)} p95={fmt(p95)} max={fmt(data.get('max'))}"
            )
    caches = snapshot.get("caches", {})
    if caches:
        lines.append("caches:")
        for name, data in caches.items():
            lines.append(
                f"  {name:<16} {data['hits']:>8} hits {data['misses']:>8} misses "
                f"{data['evictions']:>6} evictions  "
                f"hit rate {data.get('hit_rate', 0.0):6.1%}"
            )
    totals = snapshot.get("span_totals", {})
    if totals:
        lines.append("spans:")
        for name, data in sorted(totals.items()):
            lines.append(
                f"  {name:<16} ×{int(data['count']):<6} "
                f"total {data['total_s'] * 1e3:.3f} ms"
            )
    return "\n".join(lines)


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Inspect, validate or convert a telemetry snapshot."""
    from .telemetry import (
        export_jsonl,
        parse_jsonl,
        prometheus_text,
        validate_snapshot,
    )

    if args.snapshot_file:
        try:
            with open(args.snapshot_file, "r", encoding="utf-8") as handle:
                snapshot = parse_jsonl(handle.read())
        except OSError as error:
            print(f"metrics: cannot read {args.snapshot_file}: {error}")
            return 2
        except ValueError as error:
            print(f"metrics: {args.snapshot_file}: {error}")
            return 2
    else:
        snapshot = _demo_snapshot()
    problems = validate_snapshot(snapshot)
    if args.check:
        if problems:
            for problem in problems:
                print(f"problem: {problem}")
            print(f"snapshot INVALID ({len(problems)} problem(s))")
            return 1
        sections = (
            f"{len(snapshot.get('counters', {}))} counter(s), "
            f"{len(snapshot.get('gauges', {}))} gauge(s), "
            f"{len(snapshot.get('histograms', {}))} histogram(s), "
            f"{len(snapshot.get('caches', {}))} cache(s), "
            f"{len(snapshot.get('spans', []))} span tree(s)"
        )
        print(f"snapshot ok: {sections}")
        return 0
    if args.format == "jsonl":
        print(export_jsonl(snapshot), end="")
    elif args.format == "prometheus":
        print(prometheus_text(snapshot), end="")
    else:
        print(_render_metrics_summary(snapshot))
        if problems:
            for problem in problems:
                print(f"problem: {problem}")
            return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .core.verify import verify_schemes

    report = verify_schemes(trials=args.trials, seed=args.seed)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import write_report

    size = write_report(
        args.out, seed=args.seed, include_extensions=not args.no_extensions
    )
    print(f"wrote {args.out} ({size / 1024:.1f} KiB)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="abm-spconv",
        description="ABM-SpConv (DAC 2019) reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--tier",
        choices=tiers.TIERS,
        default=None,
        help="execution tier for the compiled ABM kernels (default: "
        "ABM_SPCONV_TIER env var, else 'auto' = numba when available)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("--only", help=f"one of {', '.join(_EXPERIMENTS)}")
    p_exp.set_defaults(func=_cmd_experiments)

    p_sim = sub.add_parser("simulate", help="simulate a model on the accelerator")
    p_sim.add_argument("--model", choices=("alexnet", "vgg16"), default="vgg16")
    p_sim.add_argument("--device", default="Stratix-V GXA7")
    p_sim.add_argument("--no-cache", action="store_true",
                       help="bypass the layer-simulation result cache")
    p_sim.add_argument("--workers", type=int, default=None,
                       help="parallel layer-simulation processes")
    p_sim.add_argument("--trace", action="store_true",
                       help="record per-task scheduler events (serial, uncached)")
    p_sim.add_argument("--trace-capacity", type=int, default=None,
                       help="ring-buffer capacity; overflow is reported as dropped")
    p_sim.set_defaults(func=_cmd_simulate)

    p_dse = sub.add_parser("explore", help="run design space exploration")
    p_dse.add_argument("--model", choices=("alexnet", "vgg16"), default="vgg16")
    p_dse.add_argument("--device", default="Stratix-V GXA7")
    p_dse.add_argument("--reference", action="store_true",
                       help="use the per-point reference evaluators instead "
                            "of the compiled whole-grid fast path")
    p_dse.add_argument("--workers", type=int, default=None,
                       help="process-pool size (reference path only)")
    p_dse.add_argument("--trials", type=int, default=None,
                       help="run the adaptive joint-space study with this "
                            "many sampled trials instead of the grid sweep")
    p_dse.add_argument("--sampler", choices=("tpe", "random"), default="tpe",
                       help="adaptive study sampler (default: tpe)")
    p_dse.add_argument("--objectives", default=None,
                       help="comma-separated study objectives; the first is "
                            "the primary (default: throughput_gops,"
                            "logic_util,dsp_util,mem_util,total_power_w)")
    p_dse.add_argument("--study", default=None,
                       help="persist the study as append-only JSONL here")
    p_dse.add_argument("--resume", action="store_true",
                       help="resume an existing --study file")
    p_dse.add_argument("--batch", type=int, default=8,
                       help="sampled trials per study round (default: 8)")
    p_dse.set_defaults(func=_cmd_explore)

    p_sch = sub.add_parser(
        "schemes", help="print the per-layer heterogeneous scheme plan"
    )
    p_sch.add_argument("--model", choices=("alexnet", "vgg16"), default="vgg16")
    p_sch.add_argument("--device", default="Stratix-V GXA7")
    p_sch.add_argument(
        "--basis",
        choices=("execution", "cycles"),
        default="execution",
        help="ranking basis: software execution cost or accelerator cycles",
    )
    p_sch.add_argument(
        "--margin",
        type=float,
        default=0.1,
        help="relative margin a challenger must beat ABM by per layer",
    )
    p_sch.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="channel-count multiplier (bench-scale plans, e.g. 0.25)",
    )
    p_sch.add_argument(
        "--spatial-scale",
        type=float,
        default=1.0,
        help="input-resolution multiplier (bench-scale plans, e.g. 0.5)",
    )
    p_sch.set_defaults(func=_cmd_schemes)

    p_roof = sub.add_parser("roofline", help="print the Figure 1 roofline")
    p_roof.add_argument("--device", default="Stratix-V GXA7")
    p_roof.add_argument("--freq", type=float, default=200.0)
    p_roof.set_defaults(func=_cmd_roofline)

    p_dev = sub.add_parser("devices", help="list the FPGA device catalog")
    p_dev.set_defaults(func=_cmd_devices)

    p_part = sub.add_parser(
        "partition",
        help="search layer-pipeline partitions over a device catalog",
    )
    p_part.add_argument("--model", choices=("alexnet", "vgg16"), default="vgg16")
    p_part.add_argument(
        "--devices",
        default="Stratix-V GXA7,Stratix-V GXA3",
        help="comma-separated device names (see `abm-spconv devices`)",
    )
    p_part.add_argument(
        "--shards", type=int, default=None,
        help="max shard count (exhaustive) or exact count (--trials study)",
    )
    p_part.add_argument("--link-gbs", type=float, default=6.0,
                        help="inter-shard link bandwidth in GB/s")
    p_part.add_argument("--link-latency-us", type=float, default=5.0,
                        help="per-transfer link latency in microseconds")
    p_part.add_argument("--scale", type=float, default=1.0,
                        help="channel-count multiplier")
    p_part.add_argument("--spatial-scale", type=float, default=1.0,
                        help="input-resolution multiplier")
    p_part.add_argument("--seed", type=int, default=1)
    p_part.add_argument("--trials", type=int, default=None,
                        help="run the adaptive partition study with this "
                             "many sampled trials instead of exhaustion")
    p_part.add_argument("--sampler", choices=("tpe", "random"), default="tpe")
    p_part.add_argument("--study", default=None,
                        help="persist the study as append-only JSONL here")
    p_part.add_argument("--resume", action="store_true",
                        help="resume an existing --study file")
    p_part.set_defaults(func=_cmd_partition)

    p_sys = sub.add_parser("system", help="pipelined CPU/FPGA system model")
    p_sys.add_argument("--model", choices=("alexnet", "vgg16"), default="vgg16")
    p_sys.add_argument("--device", default="Stratix-V GXA7")
    p_sys.add_argument("--host-gops", type=float, default=4.0,
                       help="host elementwise rate in Gops/s")
    p_sys.set_defaults(func=_cmd_system)

    p_srv = sub.add_parser(
        "serve-sim", help="simulate batched multi-accelerator serving"
    )
    p_srv.add_argument(
        "--model",
        choices=("lenet", "cifarnet"),
        default="lenet",
        help="small zoo members run the full functional pipeline",
    )
    p_srv.add_argument("--device", default="Stratix-V GXA7")
    p_srv.add_argument("--engine", choices=("events", "threads"),
                       default="events",
                       help="events = virtual-clock event loop (timing only, "
                            "fleet scale); threads = reference simulator "
                            "with full numerics")
    p_srv.add_argument("--workers", type=int, default=2,
                       help="simulated accelerator instances")
    p_srv.add_argument("--requests", type=int, default=32)
    p_srv.add_argument("--rate", type=float, default=50_000.0,
                       help="offered load in requests/s")
    p_srv.add_argument("--trace", choices=("poisson", "uniform", "diurnal",
                                           "burst"),
                       default="poisson", help="arrival process")
    p_srv.add_argument("--max-batch", type=int, default=8)
    p_srv.add_argument("--max-wait-ms", type=float, default=0.2,
                       help="dynamic batcher deadline")
    p_srv.add_argument("--continuous", action="store_true",
                       help="continuous batching: admit requests into "
                            "in-flight batches (events engine only)")
    p_srv.add_argument("--best-effort", type=float, default=0.0,
                       help="fraction of requests in a lower-priority "
                            "best-effort SLO class (events engine only)")
    p_srv.add_argument("--queue-limit", type=int, default=None,
                       help="admission-control queue bound for the "
                            "best-effort class")
    p_srv.add_argument("--autoscale-max", type=int, default=None,
                       help="enable autoscaling up to this many instances "
                            "(events engine only)")
    p_srv.add_argument("--autoscale-interval-ms", type=float, default=1.0,
                       help="autoscaler check interval, virtual ms")
    p_srv.add_argument("--density", type=float, default=0.4,
                       help="uniform pruning density before quantization")
    p_srv.add_argument("--metrics-out", default=None,
                       help="record the run through repro.telemetry and "
                            "write the JSONL snapshot to this file")
    p_srv.set_defaults(func=_cmd_serve_sim)

    p_met = sub.add_parser(
        "metrics", help="inspect or validate a telemetry snapshot"
    )
    p_met.add_argument("--from", dest="snapshot_file", default=None,
                       help="JSONL snapshot to load (default: built-in demo)")
    p_met.add_argument("--check", action="store_true",
                       help="schema-validate and exit 1 on problems")
    p_met.add_argument("--format", choices=("summary", "jsonl", "prometheus"),
                       default="summary")
    p_met.set_defaults(func=_cmd_metrics)

    p_enc = sub.add_parser("encode", help="write an encoded-model blob")
    p_enc.add_argument("--model", choices=("alexnet", "vgg16"), default="alexnet")
    p_enc.add_argument("--out", default="model.abms")
    p_enc.add_argument("--max-layer-weights", type=int, default=3_000_000,
                       help="skip layers with more weights (memory guard)")
    p_enc.set_defaults(func=_cmd_encode)

    p_ver = sub.add_parser("verify", help="differential verification campaign")
    p_ver.add_argument("--trials", type=int, default=200)
    p_ver.set_defaults(func=_cmd_verify)

    p_rep = sub.add_parser("report", help="write the full reproduction report")
    p_rep.add_argument("--out", default="reproduction_report.md")
    p_rep.add_argument("--no-extensions", action="store_true",
                       help="paper artifacts only")
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.tier is not None:
        tiers.set_tier(args.tier)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
