"""Layer-pipeline sharding of compiled models across device catalogs.

The subsystem splits a fused :class:`repro.core.model_plan.ModelPlan`
into contiguous shards (:mod:`repro.shard.plan`), prices inter-shard
activation traffic through a bandwidth/latency link model
(:mod:`repro.shard.link`), and validates pipeline timing against a
finite-FIFO tandem-line simulation (:mod:`repro.shard.pipeline_sim`).
The partition *search* lives in :mod:`repro.dse.partition`; pipelined
serving in :mod:`repro.serve`.
"""

from .link import DEFAULT_LINK, LinkModel, LinkTransfer
from .plan import (
    SHARDED_PLAN_CACHE_CAPACITY,
    ModelPartition,
    ShardPlan,
    ShardSpec,
    ShardedModelPlan,
    clear_sharded_plan_cache,
    compile_sharded_plan,
    sharded_plan_cache_stats,
    sharded_run_batch,
    stage_cuts_for_layers,
)
from .pipeline_sim import (
    PipelineSimReport,
    analytic_bottleneck_s,
    analytic_fill_s,
    simulate_pipeline,
    simulate_shard_plan,
)

__all__ = [
    "DEFAULT_LINK",
    "LinkModel",
    "LinkTransfer",
    "ModelPartition",
    "PipelineSimReport",
    "SHARDED_PLAN_CACHE_CAPACITY",
    "ShardPlan",
    "ShardSpec",
    "ShardedModelPlan",
    "analytic_bottleneck_s",
    "analytic_fill_s",
    "clear_sharded_plan_cache",
    "compile_sharded_plan",
    "sharded_plan_cache_stats",
    "sharded_run_batch",
    "simulate_pipeline",
    "simulate_shard_plan",
    "stage_cuts_for_layers",
]
