"""Layer-pipeline sharding of compiled model plans.

Two layers live here, mirroring the rest of the codebase's split between
*executable* and *modelled*:

- :class:`ShardedModelPlan` — the executable side. It cuts an existing
  :class:`repro.core.model_plan.ModelPlan` stage list into contiguous
  shards, gives each shard its own ping-pong arena, and detach-copies the
  activation stream at every cut point — exactly the transfer a real
  multi-board deployment performs. Stage ``run()`` methods depend only on
  input *values* (the arena is pure scratch), so sharded outputs are
  bit-exact against the unsharded fused plan for any cut set; the
  hypothesis differential in ``tests/test_shard_plan.py`` pins this the
  way ``tests/test_model_fused.py`` pins fused-vs-reference.
- :class:`ModelPartition` / :class:`ShardSpec` / :class:`ShardPlan` — the
  modelled side the partition search (:mod:`repro.dse.partition`)
  produces: contiguous cuts of a :class:`repro.hw.workload.ModelWorkload`,
  a device and accelerator config per shard, and the inter-shard
  activation traffic priced through a :class:`repro.shard.link.LinkModel`.
  Pipeline timing follows the deterministic tandem-line law (see
  :mod:`repro.shard.pipeline_sim`): steady-state throughput is the
  bottleneck stage's rate, latency is the fill sum.

Sharded executable plans are LRU-cached per (pipeline identity,
quantization token, batch geometry, cuts, schemes) and registered with
the telemetry cache registry as ``shard.plans``.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.model_plan import ModelPlan, _Arena, _FusedStage, compile_model_plan
from ..hw.config import AcceleratorConfig
from ..hw.device import FPGADevice
from ..hw.workload import ModelWorkload
from ..quant.fixed_point import QFormat
from ..telemetry.caches import CacheStats, register_cache
from ..telemetry.context import get_active
from .link import DEFAULT_LINK, LinkModel, LinkTransfer

if TYPE_CHECKING:  # pragma: no cover - import cycle with repro.pipeline
    from ..pipeline import InferenceResult, QuantizedPipeline

__all__ = [
    "ModelPartition",
    "SHARDED_PLAN_CACHE_CAPACITY",
    "ShardPlan",
    "ShardSpec",
    "ShardedModelPlan",
    "clear_sharded_plan_cache",
    "compile_sharded_plan",
    "sharded_plan_cache_stats",
    "sharded_run_batch",
    "stage_cuts_for_layers",
]


def _validate_cuts(cuts: Sequence[int], limit: int, what: str) -> Tuple[int, ...]:
    """Strictly increasing interior cut indices in (0, limit)."""
    out = tuple(int(c) for c in cuts)
    for c in out:
        if not 0 < c < limit:
            raise ValueError(
                f"{what} cut {c} outside the open interval (0, {limit})"
            )
    if any(b <= a for a, b in zip(out, out[1:])):
        raise ValueError(f"{what} cuts must be strictly increasing, got {out}")
    return out


# ---------------------------------------------------------------------------
# Modelled side: partitions of a ModelWorkload and the resulting ShardPlan.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelPartition:
    """Contiguous cuts of a model workload's accelerated-layer list.

    ``cuts`` are layer indices: a cut at ``i`` means layers ``[.., i)``
    and ``[i, ..)`` land on different shards. The activation crossing a
    cut is the output tensor of layer ``i - 1`` (8-bit codes, one element
    per output value).
    """

    workload: ModelWorkload
    cuts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.workload.layers:
            raise ValueError("cannot partition a workload with no layers")
        object.__setattr__(
            self,
            "cuts",
            _validate_cuts(self.cuts, len(self.workload.layers), "layer"),
        )

    @property
    def n_shards(self) -> int:
        return len(self.cuts) + 1

    @property
    def boundaries(self) -> Tuple[int, ...]:
        return (0,) + self.cuts + (len(self.workload.layers),)

    def shard_workloads(self) -> Tuple[ModelWorkload, ...]:
        """One sub-workload per shard, named ``<model>/shard<i>``."""
        bounds = self.boundaries
        return tuple(
            ModelWorkload(
                name=f"{self.workload.name}/shard{i}",
                layers=self.workload.layers[bounds[i] : bounds[i + 1]],
            )
            for i in range(self.n_shards)
        )

    def cut_elements(self) -> Tuple[int, ...]:
        """Activation elements crossing each cut (per image)."""
        return tuple(
            self.workload.layers[c - 1].spec.output_size for c in self.cuts
        )

    def boundary_layers(self) -> Tuple[str, ...]:
        """The first accelerated layer of each downstream shard."""
        return tuple(self.workload.layers[c].spec.name for c in self.cuts)


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a planned pipeline: its layers, device and config."""

    index: int
    layers: Tuple[str, ...]
    device: FPGADevice
    config: AcceleratorConfig
    seconds_per_image: float
    dense_ops_per_image: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("shard index cannot be negative")
        if not self.layers:
            raise ValueError(f"shard {self.index} has no layers")
        if self.seconds_per_image <= 0:
            raise ValueError(f"shard {self.index}: stage time must be positive")


@dataclass(frozen=True)
class ShardPlan:
    """A complete pipelined deployment plan for one model.

    ``transfers`` prices the activation traffic at each cut (length
    ``len(shards) - 1``). Timing follows the deterministic tandem-line
    law: the steady-state output interval is the slowest shard *or* link,
    regardless of inter-stage queue depth, and one image's latency is the
    sum of every stage and link time (the pipeline fill).
    """

    model: str
    shards: Tuple[ShardSpec, ...]
    transfers: Tuple[LinkTransfer, ...]
    dense_ops_per_image: int = 0

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a shard plan needs at least one shard")
        if len(self.transfers) != len(self.shards) - 1:
            raise ValueError(
                f"{len(self.shards)} shards need {len(self.shards) - 1} "
                f"transfers, got {len(self.transfers)}"
            )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def service_times(self) -> Tuple[float, ...]:
        """Shard and link service times, interleaved in stream order."""
        times: List[float] = []
        for i, shard in enumerate(self.shards):
            times.append(shard.seconds_per_image)
            if i < len(self.transfers):
                times.append(self.transfers[i].seconds)
        return tuple(times)

    @property
    def bottleneck_s(self) -> float:
        """Steady-state output interval: the slowest stage or link."""
        return max(self.service_times)

    @property
    def fill_latency_s(self) -> float:
        """One image's end-to-end latency through the empty pipeline."""
        return sum(self.service_times)

    @property
    def throughput_ips(self) -> float:
        return 1.0 / self.bottleneck_s

    @property
    def throughput_gops(self) -> float:
        return self.throughput_ips * self.dense_ops_per_image / 1e9

    def batch_seconds(self, batch_size: int) -> float:
        """Makespan of ``batch_size`` images: fill + (B-1) steady steps."""
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        return self.fill_latency_s + (batch_size - 1) * self.bottleneck_s

    def describe(self) -> str:
        parts = []
        for i, shard in enumerate(self.shards):
            parts.append(
                f"shard{shard.index}[{shard.layers[0]}..{shard.layers[-1]}]"
                f"@{shard.device.name} {shard.seconds_per_image * 1e3:.3f}ms"
            )
            if i < len(self.transfers):
                t = self.transfers[i]
                parts.append(f"--{t.wire_bytes}B/{t.seconds * 1e6:.1f}us-->")
        return (
            f"shard_plan({self.model}: {' '.join(parts)}; "
            f"{self.throughput_ips:.1f} img/s, "
            f"fill {self.fill_latency_s * 1e3:.3f} ms)"
        )


# ---------------------------------------------------------------------------
# Executable side: slicing a compiled ModelPlan's stage list.
# ---------------------------------------------------------------------------


def stage_cuts_for_layers(
    plan: ModelPlan, boundary_layers: Sequence[str]
) -> Tuple[int, ...]:
    """Map accelerated-layer boundaries to stage-list cut indices.

    Each name in ``boundary_layers`` is the first accelerated layer of a
    downstream shard (:meth:`ModelPartition.boundary_layers`); the
    returned indices cut ``plan.stages`` immediately before the fused
    stage executing that layer, so interstitial host/pool/reshape stages
    stay with the upstream shard — they consume the upstream activation
    before it crosses the link.
    """
    index_of = {
        stage.name: i
        for i, stage in enumerate(plan.stages)
        if isinstance(stage, _FusedStage)
    }
    cuts = []
    for name in boundary_layers:
        if name not in index_of:
            raise ValueError(
                f"layer {name!r} is not an accelerated stage of this plan; "
                f"accelerated: {sorted(index_of)}"
            )
        cuts.append(index_of[name])
    return _validate_cuts(cuts, len(plan.stages), "stage")


class ShardedModelPlan:
    """A compiled model plan executed as contiguous stage shards.

    Wraps an existing :class:`ModelPlan` without touching it: each shard
    owns a private :class:`_Arena` (sized like the parent's, so any cut
    set is safe), and the activation leaving a shard is detach-copied —
    the modelled link transfer — before entering the next shard's arena
    domain. Because every stage's ``run`` is a pure function of its input
    values, the sharded stream is bit-exact against ``plan.run``.

    Per-shard ``shard`` telemetry spans wrap the usual ``kernel`` spans,
    and :attr:`transfer_elements` records the exact per-cut activation
    element counts after a run.
    """

    def __init__(self, plan: ModelPlan, cuts: Sequence[int]) -> None:
        self.plan = plan
        self.cuts = _validate_cuts(cuts, len(plan.stages), "stage")
        bounds = (0,) + self.cuts + (len(plan.stages),)
        self.shards: Tuple[Tuple[object, ...], ...] = tuple(
            tuple(plan.stages[bounds[i] : bounds[i + 1]])
            for i in range(len(bounds) - 1)
        )
        self.shard_layers: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(s.name for s in shard if isinstance(s, _FusedStage))
            for shard in self.shards
        )
        # Each shard gets the parent's arena geometry: sizing per shard
        # would save memory but ties the arena to the cut set; the parent
        # high-water mark is correct for any contiguous slice.
        ping = plan.arena.ping[0].size
        scratch = plan.arena.float_a.size
        self.arenas: Tuple[_Arena, ...] = tuple(
            _Arena(ping, scratch) for _ in self.shards
        )
        #: Per-cut activation elements moved at the last ``run`` (whole
        #: batch); ``None`` before the first run.
        self.transfer_elements: Optional[Tuple[int, ...]] = None
        self._lock = threading.Lock()

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def batch_shape(self) -> Tuple[int, ...]:
        return self.plan.batch_shape

    @property
    def output_fmt(self) -> QFormat:
        return self.plan.output_fmt

    @property
    def layer_ops(self) -> List[Tuple[str, int, int]]:
        return self.plan.layer_ops

    def run(self, codes: np.ndarray) -> Tuple[np.ndarray, QFormat]:
        """Stream codes through every shard, copying at each cut.

        Returns the final integer codes and their format, exactly like
        :meth:`ModelPlan.run`. The parent plan's lock is held too: fused
        stages share per-layer scratch with the unsharded plan, so the
        two must never run concurrently.
        """
        if codes.shape != self.plan.batch_shape:
            raise ValueError(
                f"sharded plan compiled for batch {self.plan.batch_shape}, "
                f"got {codes.shape}"
            )
        telemetry = get_active()
        transfers: List[int] = []
        with self._lock, self.plan._lock:
            current = codes
            for index, (shard, arena) in enumerate(zip(self.shards, self.arenas)):
                if telemetry is not None:
                    with telemetry.span(
                        "shard",
                        shard=index,
                        stages=len(shard),
                        layers=",".join(self.shard_layers[index]),
                    ):
                        current = self._run_shard(
                            shard, arena, current, telemetry, codes.shape[0]
                        )
                else:
                    current = self._run_shard(
                        shard, arena, current, None, codes.shape[0]
                    )
                if index < len(self.shards) - 1:
                    # The cut-point transfer: detach from this shard's
                    # arena so the downstream shard reads a foreign array
                    # (its first claim lands in its own ping buffer).
                    current = current.copy()
                    transfers.append(int(current.size))
            self.transfer_elements = tuple(transfers)
            return current, self.plan.output_fmt

    @staticmethod
    def _run_shard(
        shard: Tuple[object, ...],
        arena: _Arena,
        current: np.ndarray,
        telemetry,
        images: int,
    ) -> np.ndarray:
        for stage in shard:
            if telemetry is not None and isinstance(stage, _FusedStage):
                with telemetry.span(
                    "kernel",
                    layer=stage.name,
                    images=images,
                    fused=",".join(stage.fused_names),
                ):
                    current = stage.run(arena, current)
            else:
                current = stage.run(arena, current)
        return current

    def describe(self) -> str:
        layers = " | ".join(
            ",".join(names) or "-" for names in self.shard_layers
        )
        return (
            f"sharded_plan({self.plan.network_name}: {self.n_shards} shards "
            f"at cuts {list(self.cuts)}; {layers})"
        )


# ---------------------------------------------------------------------------
# Sharded-plan cache (telemetry family: shard.plans).
# ---------------------------------------------------------------------------

#: Sharded wrappers kept before LRU eviction. Each owns per-shard arenas,
#: so the bound stays as small as the model-plan cache's.
SHARDED_PLAN_CACHE_CAPACITY = 8

_sharded_cache: "OrderedDict[Hashable, ShardedModelPlan]" = OrderedDict()
_sharded_refs: Dict[int, "weakref.ref"] = {}
_sharded_lock = threading.RLock()
_sharded_hits = 0
_sharded_misses = 0
_sharded_evictions = 0


def _evict_sharded_plans(pipeline_id: int) -> None:
    global _sharded_evictions
    with _sharded_lock:
        _sharded_refs.pop(pipeline_id, None)
        for key in [k for k in _sharded_cache if k[0] == pipeline_id]:
            del _sharded_cache[key]
            _sharded_evictions += 1


def compile_sharded_plan(
    pipeline: "QuantizedPipeline",
    batch_shape: Tuple[int, ...],
    cuts: Sequence[int],
    schemes: Optional[Mapping[str, str]] = None,
) -> ShardedModelPlan:
    """The cached sharded wrapper for (pipeline, batch, cuts, schemes).

    The underlying fused plan comes from
    :func:`repro.core.model_plan.compile_model_plan` (its own cache);
    this cache only holds the shard wrappers and their arenas. Keys
    follow the model-plan cache: pipeline identity + quantization token,
    with weakref eviction when the pipeline is collected.
    """
    global _sharded_hits, _sharded_misses, _sharded_evictions
    scheme_key = (
        tuple(sorted((k, v) for k, v in schemes.items() if v != "abm"))
        if schemes
        else ()
    )
    key = (
        id(pipeline),
        pipeline.quantization_token,
        tuple(int(s) for s in batch_shape),
        tuple(int(c) for c in cuts),
        scheme_key,
    )
    with _sharded_lock:
        sharded = _sharded_cache.get(key)
        if sharded is not None:
            ref = _sharded_refs.get(id(pipeline))
            if ref is not None and ref() is pipeline:
                _sharded_cache.move_to_end(key)
                _sharded_hits += 1
                return sharded
            _evict_sharded_plans(id(pipeline))
        _sharded_misses += 1
    plan = compile_model_plan(pipeline, tuple(batch_shape), schemes=schemes)
    sharded = ShardedModelPlan(plan, cuts)
    with _sharded_lock:
        _sharded_cache[key] = sharded
        if id(pipeline) not in _sharded_refs:
            _sharded_refs[id(pipeline)] = weakref.ref(pipeline)
            weakref.finalize(pipeline, _evict_sharded_plans, id(pipeline))
        while len(_sharded_cache) > SHARDED_PLAN_CACHE_CAPACITY:
            old_key, _ = _sharded_cache.popitem(last=False)
            _sharded_evictions += 1
            if not any(k[0] == old_key[0] for k in _sharded_cache):
                _sharded_refs.pop(old_key[0], None)
    return sharded


def clear_sharded_plan_cache() -> None:
    """Drop every cached sharded wrapper (tests and benchmarks)."""
    global _sharded_hits, _sharded_misses, _sharded_evictions
    with _sharded_lock:
        _sharded_cache.clear()
        _sharded_refs.clear()
        _sharded_hits = 0
        _sharded_misses = 0
        _sharded_evictions = 0


def sharded_plan_cache_stats() -> CacheStats:
    """Hit/miss/eviction accounting of the sharded-plan cache."""
    with _sharded_lock:
        return CacheStats(
            hits=_sharded_hits,
            misses=_sharded_misses,
            evictions=_sharded_evictions,
            size=len(_sharded_cache),
            capacity=SHARDED_PLAN_CACHE_CAPACITY,
            name="shard.plans",
        )


register_cache("shard.plans", sharded_plan_cache_stats)


def sharded_run_batch(
    pipeline: "QuantizedPipeline",
    images: np.ndarray,
    cuts: Sequence[int],
    schemes: Optional[Mapping[str, str]] = None,
) -> "List[InferenceResult]":
    """Batched inference through a stage-sharded plan.

    The multi-device analogue of
    :meth:`repro.pipeline.QuantizedPipeline.run_batch`: identical
    quantize/dequantize envelope, identical per-image op attribution, and
    bit-exact outputs for any valid cut set (the hypothesis differential
    in ``tests/test_shard_plan.py`` pins this).
    """
    from ..pipeline import InferenceResult, LayerRunStats

    pipeline._check_ready("sharded_run_batch()")
    batch = pipeline._as_bchw(images)
    b = batch.shape[0]
    sharded = compile_sharded_plan(pipeline, batch.shape, cuts, schemes=schemes)
    codes = pipeline.input_fmt.quantize(batch)
    out_codes, out_fmt = sharded.run(codes)
    outputs = out_fmt.dequantize(out_codes)
    return [
        InferenceResult(
            output=outputs[i],
            layer_stats=[
                LayerRunStats(
                    name=name,
                    accumulate_ops=acc // b,
                    multiply_ops=mult // b,
                )
                for name, acc, mult in sharded.layer_ops
            ],
        )
        for i in range(b)
    ]
