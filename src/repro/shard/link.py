"""Inter-shard transfer links.

When a model is cut into layer-pipeline shards (HPIPE-style, see
PAPERS.md), the activation tensor at every cut point has to cross a
board-to-board link — PCIe, a serial transceiver bridge, or host DRAM
staging. A :class:`LinkModel` is the timing abstraction for one such
link: a fixed per-transfer latency plus a bandwidth term over the
activation bytes. The executable sharded plan
(:class:`repro.shard.plan.ShardedModelPlan`) counts the exact elements
crossing each cut; the partition search
(:mod:`repro.dse.partition`) prices those bytes through this model so a
cut in the middle of a wide feature pyramid is penalized the way real
deployments penalize it.

Activations in this system are 8-bit quantized codes, so the default
``bytes_per_element`` is 1 — the int64 arrays the executable stream uses
are a host-side convenience, not the wire format.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEFAULT_LINK", "LinkModel", "LinkTransfer"]


@dataclass(frozen=True)
class LinkModel:
    """Timing model of one inter-shard link."""

    #: Sustained link bandwidth in GB/s (decimal, like ``FPGADevice``).
    bandwidth_gbs: float
    #: Fixed per-transfer latency (DMA descriptor setup, link round trip).
    latency_s: float = 0.0
    #: Wire bytes per activation element (8-bit codes by default).
    bytes_per_element: int = 1
    name: str = "link"

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError(f"{self.name}: link bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError(f"{self.name}: link latency cannot be negative")
        if self.bytes_per_element < 1:
            raise ValueError(f"{self.name}: bytes per element must be >= 1")

    def transfer_bytes(self, elements: int) -> int:
        """Wire bytes of one activation transfer of ``elements`` codes."""
        if elements < 0:
            raise ValueError("cannot transfer a negative element count")
        return elements * self.bytes_per_element

    def transfer_seconds(self, elements: int) -> float:
        """Latency of moving ``elements`` activation codes across the link."""
        return self.latency_s + self.transfer_bytes(elements) / (
            self.bandwidth_gbs * 1e9
        )

    def transfer(self, elements: int) -> "LinkTransfer":
        """The fully priced transfer record for one cut point."""
        return LinkTransfer(
            elements=elements,
            wire_bytes=self.transfer_bytes(elements),
            seconds=self.transfer_seconds(elements),
            link=self,
        )


@dataclass(frozen=True)
class LinkTransfer:
    """One cut point's activation traffic, priced through its link."""

    elements: int
    wire_bytes: int
    seconds: float
    link: LinkModel


#: A conservative PCIe Gen3 x8-class default: what one mid-2010s FPGA
#: board realistically sustains for peer DMA, with a DMA-setup latency
#: floor. Partition searches accept any :class:`LinkModel` instead.
DEFAULT_LINK = LinkModel(bandwidth_gbs=6.0, latency_s=5e-6, name="pcie3x8")
