"""Cycle-accurate tandem-pipeline simulation over finite FIFOs.

The sharded deployment is a deterministic tandem line: stages (shards
and links) with fixed service times, finite FIFO queues between them,
and blocking-after-service back-pressure — a stage holds its finished
token until the downstream queue has space, stalling itself. For such a
line the classic result holds exactly:

- image ``k`` leaves the pipeline at ``fill + k * bottleneck``, where
  ``fill`` is the sum of all service times and ``bottleneck`` the
  maximum — *independent of queue depth* (any depth >= 1);
- steady-state throughput is therefore ``1 / bottleneck``.

:func:`simulate_pipeline` computes the exact event times by recurrence
and *replays* every push/pop against real :class:`repro.hw.fifo.Fifo`
instances, so occupancy bounds, stall counts and overflow checks come
from the same FIFO model the CU datapath uses (paper Figure 2-b). Tests
pin the simulated departure times against the analytic formulas float
for float; the partition search (:mod:`repro.dse.partition`) leans on
the closed forms, with this simulator as its differential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..hw.fifo import Fifo
from .plan import ShardPlan

__all__ = [
    "PipelineSimReport",
    "analytic_bottleneck_s",
    "analytic_fill_s",
    "simulate_pipeline",
    "simulate_shard_plan",
]


def analytic_bottleneck_s(service_times: Sequence[float]) -> float:
    """Steady-state output interval of the deterministic tandem line."""
    if not service_times:
        raise ValueError("need at least one stage")
    return max(service_times)


def analytic_fill_s(service_times: Sequence[float]) -> float:
    """First-image latency through the empty line (pipeline fill)."""
    if not service_times:
        raise ValueError("need at least one stage")
    return float(sum(service_times))


@dataclass(frozen=True)
class PipelineSimReport:
    """Outcome of one finite-FIFO pipeline simulation."""

    service_times: Tuple[float, ...]
    queue_depth: int
    #: Sink arrival time of every image, in order.
    finish_s: np.ndarray
    #: First image's latency (measured; equals the analytic fill).
    fill_latency_s: float
    #: Measured steady-state output interval (last two departures).
    steady_interval_s: float
    #: The replayed inter-stage FIFOs with their counters; ``fifos[i]``
    #: feeds stage ``i`` (``fifos[0]`` is the source queue).
    fifos: Tuple[Fifo, ...]

    @property
    def throughput_ips(self) -> float:
        return 1.0 / self.steady_interval_s

    @property
    def total_push_stalls(self) -> int:
        """Back-pressure events: pushes that had to wait for space."""
        return sum(f.push_stalls for f in self.fifos)

    @property
    def max_occupancy(self) -> Tuple[int, ...]:
        return tuple(f.max_occupancy for f in self.fifos)


def simulate_pipeline(
    service_times: Sequence[float],
    images: int,
    queue_depth: int = 2,
) -> PipelineSimReport:
    """Push ``images`` tokens through the tandem line, FIFOs replayed.

    The source holds an infinite backlog ready at t=0 and pushes into
    stage 0's FIFO whenever it has space; every stage pops its input
    FIFO, serves for its fixed time, then pushes downstream — blocking
    (and counting a stall on the FIFO it is pushing into) while the
    downstream queue is full. The last stage drains into an infinite
    sink.
    """
    times = [float(t) for t in service_times]
    if not times:
        raise ValueError("need at least one stage")
    if any(t <= 0 for t in times):
        raise ValueError(f"service times must be positive, got {times}")
    if images < 1:
        raise ValueError("need at least one image")
    if queue_depth < 1:
        raise ValueError("queue depth must be >= 1")

    n_stages = len(times)
    # Event-time recurrence (blocking-after-service):
    #   push[i][k]  token k lands in stage i's input FIFO
    #   pop[i][k]   stage i pops token k and starts service
    # A stage's server frees when its previous token *departed* (was
    # pushed downstream), and a push waits for the downstream pop that
    # frees a slot (token k-depth entering service).
    push = [[0.0] * images for _ in range(n_stages)]
    pop = [[0.0] * images for _ in range(n_stages)]
    finish = [[0.0] * images for _ in range(n_stages)]
    #: The time each push *could* have happened had the queue had space
    #: (upstream finish, or 0 for the source) — a later actual push time
    #: means the pusher stalled on a full FIFO.
    ready = [[0.0] * images for _ in range(n_stages)]

    for k in range(images):
        ready[0][k] = 0.0
        push[0][k] = (
            max(0.0, pop[0][k - queue_depth]) if k >= queue_depth else 0.0
        )
        for i in range(n_stages):
            server_free = 0.0
            if k > 0:
                # Blocking-after-service: interior stages free when the
                # previous token left for the next FIFO; the last stage
                # drains into the sink as soon as it finishes.
                server_free = (
                    push[i + 1][k - 1] if i < n_stages - 1 else finish[i][k - 1]
                )
            pop[i][k] = max(push[i][k], server_free)
            finish[i][k] = pop[i][k] + times[i]
            if i < n_stages - 1:
                ready[i + 1][k] = finish[i][k]
                blocked_until = (
                    pop[i + 1][k - queue_depth] if k >= queue_depth else 0.0
                )
                push[i + 1][k] = max(finish[i][k], blocked_until)

    # Replay the exact event sequence against real FIFO models. Ties are
    # broken per FIFO in token order — push(k) at 2k, pop(k) at 2k+1 —
    # so an equal-time pop of token k follows its own push, while the
    # pop of token k-depth (index 2k-2*depth+1 < 2k) still lands before
    # the blocked push it unblocks. Stall probes never share a timestamp
    # with a same-FIFO push or pop, so they sort last harmlessly.
    fifos = tuple(Fifo(depth=queue_depth) for _ in range(n_stages))
    events: List[Tuple[float, int, int, int, int]] = []
    for i in range(n_stages):
        for k in range(images):
            events.append((push[i][k], i, 2 * k, 1, k))
            events.append((pop[i][k], i, 2 * k + 1, 0, k))
            if push[i][k] > ready[i][k]:
                # The push attempt at ready time found the FIFO full.
                events.append((ready[i][k], i, 2 * images + k, 2, k))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    for _, i, _, kind, k in events:
        if kind == 0:
            tag, _ = fifos[i].pop()
            assert tag == k, f"FIFO {i} out of order: popped {tag}, expected {k}"
        elif kind == 1:
            fifos[i].push(k, i)  # raises FifoOverflow if the model is wrong
        else:
            stalled = not fifos[i].try_push(k, i)
            assert stalled, f"FIFO {i} had space at a computed stall time"

    finish_s = np.array(finish[-1], dtype=np.float64)
    steady = (
        float(finish_s[-1] - finish_s[-2])
        if images > 1
        else analytic_bottleneck_s(times)
    )
    return PipelineSimReport(
        service_times=tuple(times),
        queue_depth=queue_depth,
        finish_s=finish_s,
        fill_latency_s=float(finish_s[0]),
        steady_interval_s=steady,
        fifos=fifos,
    )


def simulate_shard_plan(
    plan: ShardPlan, images: int, queue_depth: int = 2
) -> PipelineSimReport:
    """Simulate a planned shard pipeline (shards and links as stages)."""
    return simulate_pipeline(plan.service_times, images, queue_depth=queue_depth)
