"""Per-layer dynamic fixed-point quantization of CNN models.

The paper quantizes pruned AlexNet/VGG16 weights to 8 bits using the
Ristretto methodology: every layer gets its own fixed-point format whose
integer width is fitted to the layer's dynamic range. Feature maps are
likewise stored in 8-bit entries in the FT-Buffer, while the datapath
(accumulators and multiplier operands) is 16-bit so the two-stage ABM
computation loses no information before the single final rounding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from .fixed_point import (
    DATAPATH_BITS,
    FEATURE_BITS,
    ROUND_NEAREST,
    WEIGHT_BITS,
    QFormat,
    fit_qformat,
)


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer-code tensor together with its fixed-point format.

    ``codes`` always stores plain integers (``int64``); the real value of the
    tensor is ``codes * fmt.scale``.
    """

    codes: np.ndarray
    fmt: QFormat

    def __post_init__(self) -> None:
        codes = np.asarray(self.codes)
        if not np.issubdtype(codes.dtype, np.integer):
            raise TypeError("QuantizedTensor codes must be integers")
        if codes.size and (
            codes.max() > self.fmt.max_code or codes.min() < self.fmt.min_code
        ):
            raise ValueError("codes exceed the representable range of fmt")

    @property
    def shape(self) -> tuple:
        return tuple(self.codes.shape)

    def dequantize(self) -> np.ndarray:
        """Real-valued view of the tensor."""
        return self.fmt.dequantize(self.codes)

    def density(self) -> float:
        """Fraction of nonzero codes (1.0 for a dense tensor)."""
        if self.codes.size == 0:
            return 0.0
        return float(np.count_nonzero(self.codes)) / self.codes.size

    def distinct_nonzero_values(self) -> np.ndarray:
        """Sorted distinct nonzero codes — the Wp of Equation (2)."""
        nz = self.codes[self.codes != 0]
        return np.unique(nz)


def quantize_tensor(
    values: np.ndarray,
    total_bits: int = WEIGHT_BITS,
    fmt: Optional[QFormat] = None,
    rounding: str = ROUND_NEAREST,
) -> QuantizedTensor:
    """Quantize a real tensor to dynamic fixed point.

    If ``fmt`` is not supplied the format is fitted to the tensor's dynamic
    range (Ristretto rule).
    """
    if fmt is None:
        fmt = fit_qformat(values, total_bits)
    return QuantizedTensor(fmt.quantize(values, rounding=rounding), fmt)


@dataclass
class LayerQuantization:
    """Quantization decision for one layer: weight, bias and output formats."""

    weight_fmt: QFormat
    bias_fmt: QFormat
    output_fmt: QFormat


@dataclass
class ModelQuantizer:
    """Calibrates and applies dynamic fixed point across a whole model.

    Parameters
    ----------
    weight_bits / feature_bits:
        Storage widths. The paper's final design uses 8/8.
    datapath_bits:
        Width of accumulators and multiplier inputs (16 in the paper);
        exposed so experiments can study narrower datapaths.
    """

    weight_bits: int = WEIGHT_BITS
    feature_bits: int = FEATURE_BITS
    datapath_bits: int = DATAPATH_BITS
    decisions: Dict[str, LayerQuantization] = field(default_factory=dict)

    def calibrate_layer(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray],
        output_sample: np.ndarray,
    ) -> LayerQuantization:
        """Fit formats for one layer from its weights and an output sample."""
        weight_fmt = fit_qformat(weights, self.weight_bits)
        bias_values = bias if bias is not None else np.zeros(1)
        bias_fmt = fit_qformat(bias_values, self.datapath_bits)
        output_fmt = fit_qformat(output_sample, self.feature_bits)
        decision = LayerQuantization(weight_fmt, bias_fmt, output_fmt)
        self.decisions[name] = decision
        return decision

    def quantize_weights(self, name: str, weights: np.ndarray) -> QuantizedTensor:
        """Quantize a layer's weights with its calibrated format."""
        decision = self._decision(name)
        return QuantizedTensor(decision.weight_fmt.quantize(weights), decision.weight_fmt)

    def quantize_features(self, name: str, features: np.ndarray) -> QuantizedTensor:
        """Quantize a layer's output feature map with its calibrated format."""
        decision = self._decision(name)
        return QuantizedTensor(decision.output_fmt.quantize(features), decision.output_fmt)

    def _decision(self, name: str) -> LayerQuantization:
        if name not in self.decisions:
            raise KeyError(f"layer {name!r} has not been calibrated")
        return self.decisions[name]


def quantization_error(values: np.ndarray, quantized: QuantizedTensor) -> float:
    """RMS error introduced by quantization, in real-value units."""
    diff = np.asarray(values, dtype=np.float64) - quantized.dequantize()
    if diff.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(diff**2)))


def codebook_histogram(tensors: Iterable[QuantizedTensor]) -> Mapping[int, int]:
    """Histogram of integer codes across tensors (for Q-Table sizing)."""
    counts: Dict[int, int] = {}
    for tensor in tensors:
        values, occurrences = np.unique(tensor.codes, return_counts=True)
        for value, occurrence in zip(values.tolist(), occurrences.tolist()):
            counts[value] = counts.get(value, 0) + occurrence
    return counts
