"""Weight-sharing quantization via 1-D k-means (Deep Compression style).

The paper's models are "pruned by the scheme proposed by Han et al. [7]",
whose quantization stage clusters each layer's surviving weights around k
shared centroids — *this* is the mechanism that leaves a kernel with only
a handful of distinct values (Table 1 measures ~20 for CONV4_2, ~9 for
FC6), which ABM-SpConv then exploits. The calibrated synthetic workloads
model the effect statistically; this module implements the mechanism
itself so the whole chain — cluster, fixed-point-encode the codebook,
run ABM — can be exercised end to end.

The solver is Lloyd's algorithm on the nonzero weights, with centroids
initialized by linear spacing over the weight range (Han et al.'s 'linear'
initialization, which they found best preserves the long tails).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .fixed_point import fit_qformat
from .quantizer import QuantizedTensor


@dataclass(frozen=True)
class ClusteredWeights:
    """A layer's weights after weight-sharing quantization."""

    #: Cluster assignment per weight (-1 for pruned zeros).
    assignments: np.ndarray
    #: Real-valued centroids, one per cluster.
    centroids: np.ndarray
    shape: Tuple[int, ...]

    def dense(self) -> np.ndarray:
        """Reconstructed real-valued weight tensor."""
        flat = np.zeros(int(np.prod(self.shape)))
        mask = self.assignments >= 0
        flat[mask] = self.centroids[self.assignments[mask]]
        return flat.reshape(self.shape)

    @property
    def distinct_values(self) -> int:
        used = np.unique(self.assignments[self.assignments >= 0])
        return int(used.size)

    def to_fixed_point(self, total_bits: int = 8) -> QuantizedTensor:
        """Fixed-point view: centroids rounded to the layer's format.

        Distinct centroids may merge when they round to the same code —
        the hardware sees at most as many values as the codebook holds.
        """
        fmt = fit_qformat(self.centroids if self.centroids.size else np.zeros(1), total_bits)
        return QuantizedTensor(fmt.quantize(self.dense()), fmt)


def kmeans_1d(
    values: np.ndarray,
    clusters: int,
    iterations: int = 25,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm in one dimension.

    Returns (centroids, assignments). Centroids are linearly initialized
    over [min, max]; empty clusters are dropped at the end.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    clusters = min(clusters, values.size)
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        return np.array([lo]), np.zeros(values.size, dtype=np.int64)
    centroids = np.linspace(lo, hi, clusters)
    assignments = np.zeros(values.size, dtype=np.int64)
    for _ in range(iterations):
        # 1-D assignment: nearest centroid via searchsorted on midpoints.
        midpoints = (centroids[1:] + centroids[:-1]) / 2.0
        new_assignments = np.searchsorted(midpoints, values)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments
        sums = np.bincount(assignments, weights=values, minlength=centroids.size)
        counts = np.bincount(assignments, minlength=centroids.size)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied]
        centroids = np.sort(centroids)
    # Compact away empty clusters.
    counts = np.bincount(assignments, minlength=centroids.size)
    keep = np.flatnonzero(counts)
    remap = -np.ones(centroids.size, dtype=np.int64)
    remap[keep] = np.arange(keep.size)
    return centroids[keep], remap[assignments]


def cluster_weights(
    weights: np.ndarray,
    clusters: int,
    iterations: int = 25,
) -> ClusteredWeights:
    """Weight-share a (pruned) tensor: zeros stay zero, survivors cluster."""
    arr = np.asarray(weights, dtype=np.float64)
    flat = arr.reshape(-1)
    nonzero_positions = np.flatnonzero(flat)
    assignments = -np.ones(flat.size, dtype=np.int64)
    if nonzero_positions.size:
        centroids, labels = kmeans_1d(flat[nonzero_positions], clusters, iterations)
        assignments[nonzero_positions] = labels
    else:
        centroids = np.empty(0)
    return ClusteredWeights(
        assignments=assignments, centroids=centroids, shape=tuple(arr.shape)
    )


def clustering_error(weights: np.ndarray, clustered: ClusteredWeights) -> float:
    """RMS reconstruction error of the shared-weight approximation."""
    diff = np.asarray(weights, dtype=np.float64) - clustered.dense()
    if diff.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(diff**2)))


#: Cluster counts Deep Compression reports: 256 for conv, 32 for FC layers.
DEEP_COMPRESSION_CONV_CLUSTERS = 256
DEEP_COMPRESSION_FC_CLUSTERS = 32
