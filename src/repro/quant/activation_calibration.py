"""Activation-range calibration strategies.

Max-abs calibration (the :func:`~repro.quant.fixed_point.fit_qformat`
default) devotes range to the single largest activation; on heavy-tailed
distributions that wastes most codes on outliers. Percentile calibration
clips the top tail instead, trading rare saturation for a finer LSB — the
refinement Ristretto-style flows apply when the plain dynamic range costs
accuracy. The SQNR metric quantifies the trade, and the pipeline exposes
the strategy choice.
"""

from __future__ import annotations

import numpy as np

from .fixed_point import QFormat, fit_qformat

#: Calibration strategy names accepted by the pipeline.
CALIBRATION_MAX = "max"
CALIBRATION_PERCENTILE = "percentile"
CALIBRATION_STRATEGIES = (CALIBRATION_MAX, CALIBRATION_PERCENTILE)


def fit_qformat_percentile(
    values: np.ndarray,
    total_bits: int,
    percentile: float = 99.9,
) -> QFormat:
    """Fit a format to the given percentile of |values| instead of the max.

    Values beyond the percentile saturate; everything below gets up to a
    few extra fractional bits of precision.
    """
    if not 50.0 < percentile <= 100.0:
        raise ValueError("percentile must be in (50, 100]")
    arr = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1)
    if arr.size == 0:
        return fit_qformat(values, total_bits)
    threshold = float(np.percentile(arr, percentile))
    if threshold == 0.0:
        threshold = float(arr.max())
    return fit_qformat(np.array([threshold]), total_bits)


def fit_with_strategy(
    values: np.ndarray,
    total_bits: int,
    strategy: str = CALIBRATION_MAX,
    percentile: float = 99.9,
) -> QFormat:
    """Dispatch on the calibration strategy name."""
    if strategy == CALIBRATION_MAX:
        return fit_qformat(values, total_bits)
    if strategy == CALIBRATION_PERCENTILE:
        return fit_qformat_percentile(values, total_bits, percentile)
    raise ValueError(
        f"unknown calibration strategy {strategy!r}; "
        f"choose from {CALIBRATION_STRATEGIES}"
    )


def sqnr_db(values: np.ndarray, fmt: QFormat) -> float:
    """Signal-to-quantization-noise ratio of a format on a tensor, in dB."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("inf")
    reconstructed = fmt.roundtrip(arr)
    noise = np.mean((arr - reconstructed) ** 2)
    signal = np.mean(arr**2)
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return 0.0
    return float(10.0 * np.log10(signal / noise))
