"""Fixed-point number formats and conversions.

The ABM-SpConv accelerator stores weights and feature maps in narrow
fixed-point formats (8-bit in the paper's final design) while carrying the
datapath at 16 bits so that Equation (2) of the paper holds exactly: the
accumulate-before-multiply factorization is only valid when no intermediate
rounding occurs.

A :class:`QFormat` describes a signed two's-complement fixed-point format by
its total bit width and the number of fractional bits, mirroring the
dynamic-fixed-point scheme of Ristretto (Gysel et al., 2018) that the paper
adopts for 8-bit quantization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

#: Rounding mode: round half away from zero (what most HLS `round()` cores do).
ROUND_NEAREST = "nearest"
#: Rounding mode: truncate toward negative infinity (plain bit dropping).
ROUND_FLOOR = "floor"
#: Rounding mode: round to nearest, ties to even (IEEE style).
ROUND_EVEN = "even"

_ROUNDING_MODES = (ROUND_NEAREST, ROUND_FLOOR, ROUND_EVEN)


def _round_half_away(x: np.ndarray) -> np.ndarray:
    """Round to nearest integer with ties away from zero."""
    return np.sign(x) * np.floor(np.abs(x) + 0.5)


@dataclass(frozen=True)
class QFormat:
    """A signed two's-complement fixed-point format.

    Parameters
    ----------
    total_bits:
        Width of the stored word, including the sign bit.
    frac_bits:
        Number of fractional bits. May be negative (values are multiples of
        a power of two greater than one) or exceed ``total_bits - 1`` (all
        stored bits are fractional), as in dynamic fixed point.
    """

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError(f"total_bits must be >= 2, got {self.total_bits}")

    @property
    def int_bits(self) -> int:
        """Number of integer (non-sign, non-fraction) bits; may be negative."""
        return self.total_bits - 1 - self.frac_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_code(self) -> int:
        """Most negative representable integer code."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_code(self) -> int:
        """Most positive representable integer code."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Most negative representable real value."""
        return self.min_code * self.scale

    @property
    def max_value(self) -> float:
        """Most positive representable real value."""
        return self.max_code * self.scale

    @property
    def num_codes(self) -> int:
        """Number of distinct representable codes (2**total_bits)."""
        return 1 << self.total_bits

    def quantize(self, values: ArrayLike, rounding: str = ROUND_NEAREST) -> np.ndarray:
        """Convert real values to integer codes, with saturation.

        Returns an ``int64`` array of codes in ``[min_code, max_code]``.
        """
        if rounding not in _ROUNDING_MODES:
            raise ValueError(f"unknown rounding mode {rounding!r}")
        scaled = np.asarray(values, dtype=np.float64) * (2.0**self.frac_bits)
        if rounding == ROUND_NEAREST:
            codes = _round_half_away(scaled)
        elif rounding == ROUND_EVEN:
            codes = np.rint(scaled)
        else:
            codes = np.floor(scaled)
        codes = np.clip(codes, self.min_code, self.max_code)
        return codes.astype(np.int64)

    def dequantize(self, codes: ArrayLike) -> np.ndarray:
        """Convert integer codes back to real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def roundtrip(self, values: ArrayLike, rounding: str = ROUND_NEAREST) -> np.ndarray:
        """Quantize then dequantize (the value seen by the hardware)."""
        return self.dequantize(self.quantize(values, rounding=rounding))

    def saturates(self, values: ArrayLike) -> np.ndarray:
        """Boolean mask of values that fall outside the representable range."""
        arr = np.asarray(values, dtype=np.float64)
        return (arr > self.max_value) | (arr < self.min_value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.int_bits}.{self.frac_bits} ({self.total_bits}b)"


def best_frac_bits(values: ArrayLike, total_bits: int) -> int:
    """Choose the fractional bit count that covers ``max(|values|)``.

    This is the dynamic-fixed-point calibration rule used by Ristretto: give
    the integer part just enough bits to avoid saturating the largest
    magnitude, and spend every remaining bit on precision. An all-zero input
    gets the maximum fractional width (the format is arbitrary then).
    """
    arr = np.asarray(values, dtype=np.float64)
    max_abs = float(np.max(np.abs(arr))) if arr.size else 0.0
    if max_abs == 0.0:
        return total_bits - 1
    max_code = (1 << (total_bits - 1)) - 1
    # Largest frac with max_code * 2**-frac >= max_abs, i.e. the tightest
    # format whose positive range still covers the peak magnitude.
    frac = math.floor(math.log2(max_code / max_abs))
    # Guard against floating-point fuzz at exact powers of two.
    while QFormat(total_bits, frac).max_value < max_abs:
        frac -= 1
    while QFormat(total_bits, frac + 1).max_value >= max_abs:
        frac += 1
    return frac


def fit_qformat(values: ArrayLike, total_bits: int) -> QFormat:
    """Return the :class:`QFormat` chosen by :func:`best_frac_bits`."""
    return QFormat(total_bits, best_frac_bits(values, total_bits))


#: 8-bit weight / activation storage format family used in the paper.
WEIGHT_BITS = 8
#: Feature-map storage width (FT-Buffer entries are ``8 * S_ec`` bits wide).
FEATURE_BITS = 8
#: Datapath width of the accumulators and multiplier operands.
DATAPATH_BITS = 16
