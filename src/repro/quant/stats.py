"""Statistics over quantized tensors used by the DSE flow and Table 1.

The key statistic for ABM-SpConv is, per convolution kernel (one output
channel's N*K*K weight block), how many *distinct nonzero quantized values*
appear: that is exactly the number of multiplications the factored
convolution performs for each output pixel, and its ratio to the nonzero
count is the accumulate/multiply arithmetic-intensity ratio that determines
the sharing factor ``N`` (paper Section 5.2, last column of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class KernelSparsityStats:
    """Sparsity/value statistics of one convolution kernel."""

    total_weights: int
    nonzero_weights: int
    distinct_nonzero_values: int

    @property
    def density(self) -> float:
        if self.total_weights == 0:
            return 0.0
        return self.nonzero_weights / self.total_weights

    @property
    def acc_to_mult_ratio(self) -> float:
        """Accumulates per multiply for this kernel (paper Table 1 column)."""
        if self.distinct_nonzero_values == 0:
            return 0.0
        return self.nonzero_weights / self.distinct_nonzero_values


def kernel_stats(kernel_codes: np.ndarray) -> KernelSparsityStats:
    """Statistics for a single kernel given its integer weight codes."""
    codes = np.asarray(kernel_codes)
    nonzero = codes[codes != 0]
    return KernelSparsityStats(
        total_weights=int(codes.size),
        nonzero_weights=int(nonzero.size),
        distinct_nonzero_values=int(np.unique(nonzero).size),
    )


def per_output_channel_stats(weight_codes: np.ndarray) -> List[KernelSparsityStats]:
    """Statistics for every output-channel kernel of a conv weight tensor.

    ``weight_codes`` has shape (M, N, K, K) — or (M, N) for FC treated as
    1x1 convolution; the leading axis indexes output channels.
    """
    codes = np.asarray(weight_codes)
    if codes.ndim < 2:
        raise ValueError("weight tensor must have an output-channel axis")
    return [kernel_stats(codes[m]) for m in range(codes.shape[0])]


@dataclass(frozen=True)
class LayerSparsitySummary:
    """Aggregate sparsity summary of a layer (mean over kernels)."""

    kernels: int
    total_weights: int
    nonzero_weights: int
    mean_distinct_values: float
    min_acc_to_mult_ratio: float
    mean_acc_to_mult_ratio: float

    @property
    def density(self) -> float:
        if self.total_weights == 0:
            return 0.0
        return self.nonzero_weights / self.total_weights

    @property
    def pruning_ratio(self) -> float:
        """Fraction of weights removed (paper Table 1 'Pruning Ratio')."""
        return 1.0 - self.density


def summarize_layer(weight_codes: np.ndarray) -> LayerSparsitySummary:
    """Aggregate :func:`per_output_channel_stats` over a layer."""
    stats = per_output_channel_stats(weight_codes)
    return summarize_stats(stats)


def summarize_stats(stats: Sequence[KernelSparsityStats]) -> LayerSparsitySummary:
    """Aggregate precomputed per-kernel statistics."""
    if not stats:
        return LayerSparsitySummary(0, 0, 0, 0.0, 0.0, 0.0)
    ratios = [s.acc_to_mult_ratio for s in stats if s.distinct_nonzero_values > 0]
    return LayerSparsitySummary(
        kernels=len(stats),
        total_weights=sum(s.total_weights for s in stats),
        nonzero_weights=sum(s.nonzero_weights for s in stats),
        mean_distinct_values=float(
            np.mean([s.distinct_nonzero_values for s in stats])
        ),
        min_acc_to_mult_ratio=min(ratios) if ratios else 0.0,
        mean_acc_to_mult_ratio=float(np.mean(ratios)) if ratios else 0.0,
    )
