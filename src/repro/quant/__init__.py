"""Dynamic fixed-point quantization substrate (Ristretto-style).

Public surface:

- :class:`~repro.quant.fixed_point.QFormat` — signed fixed-point format with
  quantize/dequantize/saturate.
- :func:`~repro.quant.fixed_point.fit_qformat` — dynamic-range calibration.
- :class:`~repro.quant.quantizer.QuantizedTensor` and
  :class:`~repro.quant.quantizer.ModelQuantizer` — per-layer model quantization.
- :mod:`~repro.quant.stats` — per-kernel distinct-value statistics feeding
  the ABM-SpConv op-count analysis (paper Table 1).
"""

from .fixed_point import (
    DATAPATH_BITS,
    FEATURE_BITS,
    ROUND_EVEN,
    ROUND_FLOOR,
    ROUND_NEAREST,
    WEIGHT_BITS,
    QFormat,
    best_frac_bits,
    fit_qformat,
)
from .activation_calibration import (
    CALIBRATION_MAX,
    CALIBRATION_PERCENTILE,
    CALIBRATION_STRATEGIES,
    fit_qformat_percentile,
    fit_with_strategy,
    sqnr_db,
)
from .clustering import (
    DEEP_COMPRESSION_CONV_CLUSTERS,
    DEEP_COMPRESSION_FC_CLUSTERS,
    ClusteredWeights,
    cluster_weights,
    clustering_error,
    kmeans_1d,
)
from .quantizer import (
    LayerQuantization,
    ModelQuantizer,
    QuantizedTensor,
    codebook_histogram,
    quantization_error,
    quantize_tensor,
)
from .stats import (
    KernelSparsityStats,
    LayerSparsitySummary,
    kernel_stats,
    per_output_channel_stats,
    summarize_layer,
    summarize_stats,
)

__all__ = [
    "DATAPATH_BITS",
    "FEATURE_BITS",
    "ROUND_EVEN",
    "ROUND_FLOOR",
    "ROUND_NEAREST",
    "WEIGHT_BITS",
    "QFormat",
    "best_frac_bits",
    "fit_qformat",
    "ClusteredWeights",
    "cluster_weights",
    "clustering_error",
    "kmeans_1d",
    "DEEP_COMPRESSION_CONV_CLUSTERS",
    "DEEP_COMPRESSION_FC_CLUSTERS",
    "CALIBRATION_MAX",
    "CALIBRATION_PERCENTILE",
    "CALIBRATION_STRATEGIES",
    "fit_qformat_percentile",
    "fit_with_strategy",
    "sqnr_db",
    "LayerQuantization",
    "ModelQuantizer",
    "QuantizedTensor",
    "codebook_histogram",
    "quantization_error",
    "quantize_tensor",
    "KernelSparsityStats",
    "LayerSparsitySummary",
    "kernel_stats",
    "per_output_channel_stats",
    "summarize_layer",
    "summarize_stats",
]
