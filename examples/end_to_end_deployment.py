"""End-to-end deployment: from a float CNN to a timed accelerator run.

The complete user story in one script:

1. build a CNN and prune/quantize it (Deep Compression style),
2. `deploy()` it — encode the weights, pick an accelerator configuration
   with the DSE flow, verify buffer fits, produce the binary blob,
3. run inference through the `SystemRuntime`, which couples the bit-exact
   ABM numerics with the simulator's cycle-level timing and the host model
   (the paper's CPU/FPGA split),
4. inspect the per-layer latency breakdown.

Run:  python examples/end_to_end_deployment.py
"""

import numpy as np

from repro.nn.models import cifarnet_architecture
from repro.pipeline import QuantizedPipeline
from repro.prune import uniform_schedule
from repro.runtime import SystemRuntime

SEED = 13


def main() -> None:
    architecture = cifarnet_architecture()
    network = architecture.build(seed=SEED)
    rng = np.random.default_rng(SEED)
    image = rng.normal(size=network.input_shape.as_tuple())

    # 1. prune + quantize (with k-means weight sharing for good measure).
    names = [layer.name for layer in network.accelerated_layers()]
    pipeline = QuantizedPipeline(network, weight_clusters=32)
    pipeline.prune(uniform_schedule(names, 0.35).densities)
    pipeline.calibrate(image)
    pipeline.quantize()

    # 2. deploy: DSE picks the configuration, the blob is ready to ship.
    runtime = SystemRuntime.from_pipeline(
        pipeline, architecture.accelerated_specs()
    )
    deployed = runtime.deployed
    print(f"deployed {deployed.name}: config {deployed.config.describe()}")
    print(f"  weight blob: {deployed.blob_bytes / 1024:.1f} KiB "
          f"(buffers fit: {deployed.fits})")

    # 3. run one inference with coupled numerics + timing.
    outcome = runtime.infer(image)
    reference = int(np.argmax(pipeline.run_float(image)))
    print(f"\ninference: top-1 = {outcome.top1} "
          f"(float reference {reference}, "
          f"{'match' if outcome.top1 == reference else 'MISMATCH'})")
    print(f"  FPGA time:   {outcome.fpga_ms * 1e3:8.1f} us")
    print(f"  host time:   {outcome.host_ms * 1e3:8.1f} us")
    print(f"  throughput:  {outcome.throughput_gops:8.1f} GOP/s (dense basis)")
    print(f"  effective:   {outcome.effective_gops:8.1f} GOP/s (executed ops)")

    # 4. per-layer latency breakdown.
    print("\nper-layer FPGA latency:")
    for name, ms in runtime.latency_breakdown():
        print(f"  {name:<8} {ms * 1e3:8.1f} us")


if __name__ == "__main__":
    main()
