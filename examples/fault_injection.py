"""Inspect the accelerator's behaviour under faults and at event level.

Two diagnostics a hardware bring-up engineer would actually run:

1. **Execution trace** — simulate a layer with the trace recorder attached,
   verify the scheduler invariants (no CU overlap, at most two prefetch
   windows in flight — the ping-pong buffer), and print the Gantt chart.
2. **Fault injection** — corrupt the encoded weight stream in transit
   (single bit flips in WT-Buffer indices and Q-Table values, stream
   truncation) and measure the blast radius on the output feature map.

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro.core import ConvGeometry, abm_conv2d, conv_spec, encode_layer
from repro.hw import (
    AcceleratorConfig,
    CorruptionDetected,
    ExternalMemory,
    TraceRecorder,
    flip_index_bit,
    flip_value_bit,
    simulate_layer,
    truncate_stream,
    workload_from_encoded,
)
from repro.workloads import synthesize_quantized_layer, synthetic_feature_codes

SEED = 9


def trace_demo() -> None:
    print("=== execution trace (one conv layer, 3 CUs)")
    rng = np.random.default_rng(SEED)
    spec = conv_spec("demo", 64, 24, kernel=3, in_rows=14, in_cols=14, padding=1)
    weights = synthesize_quantized_layer(spec, density=0.3, codebook=20, rng=rng)
    workload = workload_from_encoded(spec, encode_layer(spec.name, weights))
    config = AcceleratorConfig(n_cu=3, n_knl=4, n_share=4, s_ec=8, d_f=1024)
    trace = TraceRecorder()
    result = simulate_layer(
        workload, config, ExternalMemory(12.8, config.freq_mhz), trace=trace
    )
    trace.verify_no_overlap()
    print(f"tasks: {result.tasks}, windows: {result.windows}, "
          f"cycles: {result.cycles:,}, CU util: {result.cu_utilization:.0%}")
    print(f"prefetch windows concurrently in flight: "
          f"{trace.windows_in_flight()} (ping-pong bound: 2)")
    print(trace.gantt())
    print()


def fault_demo() -> None:
    print("=== fault injection on the encoded weight stream")
    rng = np.random.default_rng(SEED)
    spec = conv_spec("demo", 32, 8, kernel=3, in_rows=10, in_cols=10, padding=1)
    weights = synthesize_quantized_layer(spec, density=0.4, codebook=16, rng=rng)
    encoded = encode_layer(spec.name, weights)
    features = synthetic_feature_codes((32, 10, 10), rng)
    geometry = ConvGeometry(kernel=3, padding=1)
    clean = abm_conv2d(features, encoded, geometry).output

    # 1. Q-Table VAL flip: corrupts exactly one output channel.
    corrupted = flip_value_bit(encoded, kernel_index=2, entry_index=0, bit=5)
    dirty = abm_conv2d(features, corrupted, geometry).output
    changed = [m for m in range(8) if not np.array_equal(clean[m], dirty[m])]
    print(f"VAL bit flip in kernel 2 -> corrupted channels: {changed}")

    # 2. Index flip: one accumulate reads the wrong pixel.
    corrupted = flip_index_bit(encoded, kernel_index=0, entry_index=3, bit=1)
    dirty = abm_conv2d(features, corrupted, geometry).output
    errors = np.abs(dirty - clean)
    print(f"index bit flip in kernel 0 -> max output error {errors.max()}, "
          f"{np.count_nonzero(errors)} of {errors.size} pixels touched")

    # 3. Structural corruption must be DETECTED, not silently decoded.
    try:
        truncate_stream(encoded, kernel_index=0, drop_entries=2)
    except CorruptionDetected as exc:
        print(f"truncated stream -> detected: {exc}")


def main() -> None:
    trace_demo()
    fault_demo()


if __name__ == "__main__":
    main()
