"""Compare all four convolution schemes functionally and by op count.

Runs the *same* pruned, quantized convolution layer through SDConv (dense),
SpConv (zero-skipping), FDConv (frequency domain) and ABM-SpConv, checking
they produce the same numbers (exactly for the integer schemes, to float
tolerance for FDConv) while spending very different operation budgets —
the single-layer view of paper Table 1.

Run:  python examples/scheme_comparison.py
"""

import numpy as np

from repro.baselines import OaAModel, fdconv2d, sdconv2d, spconv2d
from repro.core import ConvGeometry, abm_conv2d_from_codes, conv_spec
from repro.workloads import codebook_size, synthesize_quantized_layer, synthetic_feature_codes

SEED = 3


def main() -> None:
    # A conv4-like layer at reduced size: 64 -> 32 channels, 14x14 output.
    spec = conv_spec("demo", 64, 32, kernel=3, in_rows=14, in_cols=14, padding=1)
    rng = np.random.default_rng(SEED)
    weights = synthesize_quantized_layer(
        spec, density=0.27, codebook=codebook_size("vgg16", "conv4_2"), rng=rng
    )
    features = synthetic_feature_codes((64, 14, 14), rng)
    geometry = ConvGeometry(kernel=3, padding=1)

    dense = sdconv2d(features, weights, geometry)
    sparse = spconv2d(features, weights, geometry)
    abm = abm_conv2d_from_codes(features, weights, geometry)
    freq = fdconv2d(features.astype(float), weights.astype(float), padding=1)

    assert np.array_equal(dense.output, sparse.output), "SpConv must match dense"
    assert np.array_equal(dense.output, abm.output), "ABM must match dense"
    assert np.allclose(freq, dense.output, atol=1e-5), "FDConv must match dense"
    print("all four schemes agree on the output feature map\n")

    oaa = OaAModel()
    fd_ops = dense.total_ops / oaa.reduction(spec.kernel)
    rows = (
        ("SDConv (dense)", dense.multiply_ops, dense.accumulate_ops, dense.total_ops),
        ("FDConv (OaA model)", fd_ops / 2, fd_ops / 2, fd_ops),
        ("SpConv (zero-skip)", sparse.multiply_ops, sparse.accumulate_ops, sparse.total_ops),
        ("ABM-SpConv", abm.multiply_ops, abm.accumulate_ops, abm.total_ops),
    )
    print(f"{'scheme':<20} {'multiplies':>12} {'accumulates':>12} {'total':>12} {'vs dense':>9}")
    for name, mult, acc, total in rows:
        print(f"{name:<20} {mult:>12,.0f} {acc:>12,.0f} {total:>12,.0f} "
              f"{total / dense.total_ops:>8.1%}")
    print(f"\nABM acc/mult ratio: {abm.acc_to_mult_ratio:.1f} "
          f"(paper Table 1 reports 62.7 for the full-size conv4_2)")


if __name__ == "__main__":
    main()
