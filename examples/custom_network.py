"""Deploy a *custom* CNN through the whole ABM-SpConv stack.

Shows the library as a downstream user would adopt it: define your own
architecture with the DSL, prune/quantize/encode it, check it fits the
on-chip buffers, execute it bit-accurately with ABM-SpConv, and size an
accelerator for it — none of this is AlexNet/VGG16-specific.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro.dse import explore
from repro.hw import (
    STRATIX_V_GXA7,
    AcceleratorSimulator,
    buffer_report,
    workload_from_encoded,
)
from repro.hw.workload import ModelWorkload
from repro.nn.models import (
    Architecture,
    ConvDef,
    FCDef,
    FlattenDef,
    PoolDef,
    ReLUDef,
    SoftmaxDef,
)
from repro.pipeline import QuantizedPipeline
from repro.prune import uniform_schedule

SEED = 11


def tinynet() -> Architecture:
    """A VGG-flavoured 6-layer CNN for 32x32 inputs (CIFAR-sized)."""
    return Architecture(
        name="tinynet",
        input_channels=3,
        input_rows=32,
        input_cols=32,
        defs=[
            ConvDef("conv1", 32, kernel=3, padding=1),
            ReLUDef("relu1"),
            ConvDef("conv2", 32, kernel=3, padding=1),
            ReLUDef("relu2"),
            PoolDef("pool1", kernel=2, stride=2),
            ConvDef("conv3", 64, kernel=3, padding=1),
            ReLUDef("relu3"),
            PoolDef("pool2", kernel=2, stride=2),
            ConvDef("conv4", 64, kernel=3, padding=1),
            ReLUDef("relu4"),
            PoolDef("pool3", kernel=2, stride=2),
            FlattenDef("flatten"),
            FCDef("fc5", 256),
            ReLUDef("relu5"),
            FCDef("fc6", 10, scale_output=False),
            SoftmaxDef("prob"),
        ],
    )


def main() -> None:
    architecture = tinynet()
    network = architecture.build(seed=SEED)
    rng = np.random.default_rng(SEED)
    image = rng.normal(0.0, 1.0, size=network.input_shape.as_tuple())

    # Prune to a uniform 30% density and quantize to 8 bits.
    layer_names = [layer.name for layer in network.accelerated_layers()]
    pipeline = QuantizedPipeline(network)
    pipeline.prune(uniform_schedule(layer_names, density=0.30).densities)
    pipeline.calibrate(image).quantize()

    result = pipeline.run(image)
    reference = pipeline.run_float(image)
    print(f"tinynet top-1: quantized={int(np.argmax(result.output))} "
          f"float={int(np.argmax(reference))}")
    print(f"ABM ops: {result.accumulate_ops:,} accumulates, "
          f"{result.multiply_ops:,} multiplies "
          f"(ratio {result.accumulate_ops / result.multiply_ops:.1f})")

    # Build the accelerator workload from the *actual* encoded weights.
    specs = {spec.name: spec for spec in architecture.accelerated_specs()}
    layers = tuple(
        workload_from_encoded(specs[encoded.name], encoded)
        for encoded in pipeline.encoded_layers()
    )
    workload = ModelWorkload(name="tinynet", layers=layers)

    # Size an accelerator for it with the DSE flow...
    exploration = explore(workload, STRATIX_V_GXA7)
    print(f"\nDSE-chosen accelerator: {exploration.chosen.describe()}")

    # ...confirm the encoding fits the chosen buffers...
    for requirement in buffer_report(exploration.chosen, pipeline.encoded_layers()):
        status = "ok" if requirement.fits else "TOO SMALL"
        print(f"  {requirement.name:<10} depth {requirement.provisioned_depth:>6} "
              f"(needs {requirement.required_depth:>6})  {status}")

    # ...and simulate it.
    simulation = AcceleratorSimulator(exploration.chosen, STRATIX_V_GXA7).simulate(
        workload
    )
    print(f"\nsimulated: {simulation.seconds_per_image * 1e6:.0f} us/image, "
          f"{simulation.throughput_gops:.1f} GOP/s, "
          f"CU utilization {simulation.cu_utilization:.0%}")


if __name__ == "__main__":
    main()
