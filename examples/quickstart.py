"""Quickstart: ABM-SpConv on a small CNN in ~60 lines.

Builds a scaled-down AlexNet, prunes it with the Deep Compression schedule,
quantizes to 8-bit dynamic fixed point, and runs inference where every
conv/FC layer executes with accumulate-before-multiply sparse convolution —
then shows the two things the paper is about:

1. the quantized ABM output matches the float reference (classification
   agrees; Equation 2 is exact in fixed point), and
2. the operation counts collapse: multiplies shrink far below accumulates,
   which is what lets an FPGA trade scarce DSPs for cheap ALM accumulators.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.nn.models import alexnet_architecture
from repro.pipeline import QuantizedPipeline
from repro.prune import deep_compression_schedule

SEED = 7


def main() -> None:
    # A laptop-sized AlexNet: 12% of the channels, 42% of the resolution.
    network = alexnet_architecture().build(scale=0.12, spatial_scale=0.42, seed=SEED)
    rng = np.random.default_rng(SEED)
    image = rng.normal(0.0, 1.0, size=network.input_shape.as_tuple())

    pipeline = QuantizedPipeline(network)
    pipeline.prune(deep_compression_schedule("alexnet").densities)
    pipeline.calibrate(image)
    pipeline.quantize()

    quantized = pipeline.run(image)
    reference = pipeline.run_float(image)

    top_quant = int(np.argmax(quantized.output))
    top_float = int(np.argmax(reference))
    print(f"input: {network.input_shape}, output classes: {reference.size}")
    print(f"top-1 (float reference): {top_float}")
    print(f"top-1 (8-bit ABM-SpConv): {top_quant}")
    print(f"agreement: {'yes' if top_quant == top_float else 'no'}")
    print()

    dense_macs = sum(
        layer.operation_count(network.input_shape_of(layer.name)) // 2
        for layer in network.accelerated_layers()
    )
    print("operation counts (all conv/FC layers):")
    print(f"  dense MACs:        {dense_macs:>12,}  (multiply+accumulate each)")
    print(f"  ABM accumulates:   {quantized.accumulate_ops:>12,}")
    print(f"  ABM multiplies:    {quantized.multiply_ops:>12,}")
    ratio = quantized.accumulate_ops / quantized.multiply_ops
    saved = 1 - quantized.total_ops / (2 * dense_macs)
    print(f"  acc/mult ratio:    {ratio:>12.1f}  (sizes the DSP sharing factor N)")
    print(f"  ops saved vs dense:{saved:>12.1%}")
    print()
    print(f"encoded weights: {pipeline.encoded_bytes() / 1024:.0f} KiB "
          f"(WT-Buffer + Q-Table format of paper Fig. 4)")


if __name__ == "__main__":
    main()
