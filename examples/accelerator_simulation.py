"""Simulate the ABM-SpConv FPGA accelerator on full-size AlexNet and VGG16.

Uses the paper's final configurations (Table 3) on the Stratix-V GXA7 and
the calibrated synthetic pruned/quantized workloads — full-size models are
simulated from per-kernel statistics, so no multi-hundred-megabyte weight
tensors are materialized. Prints the per-layer timing report, the headline
throughput vs the published FDConv baseline [3], and where the design lands
in the Figure 1 roofline.

Run:  python examples/accelerator_simulation.py
"""

from repro.baselines import get_baseline
from repro.core.schemes import ConvScheme
from repro.dse import DesignPoint, RooflineModel
from repro.hw import (
    PAPER_CONFIG_ALEXNET,
    PAPER_CONFIG_VGG16,
    STRATIX_V_GXA7,
    AcceleratorSimulator,
)
from repro.workloads import synthetic_model_workload

SEED = 1


def simulate(model: str, config) -> None:
    workload = synthetic_model_workload(model, seed=SEED)
    simulator = AcceleratorSimulator(config, STRATIX_V_GXA7)
    result = simulator.simulate(workload)
    baseline = get_baseline(f"zeng-{model}")

    print(f"=== {model} on {STRATIX_V_GXA7.name} — {config.describe()}")
    print(simulator.utilization_summary(result))
    print()
    print(f"  inference time:   {result.seconds_per_image * 1e3:7.2f} ms/image")
    print(f"  throughput:       {result.throughput_gops:7.1f} GOP/s (dense-op basis)")
    print(f"  FDConv [3]:       {baseline.throughput_gops:7.1f} GOP/s on the same device")
    print(f"  speedup:          {result.throughput_gops / baseline.throughput_gops:7.2f}x")
    print(f"  avg DDR traffic:  {result.bandwidth_gbs:7.2f} GB/s "
          f"of {STRATIX_V_GXA7.bandwidth_gbs:g} available")
    print()


def main() -> None:
    simulate("alexnet", PAPER_CONFIG_ALEXNET)
    simulate("vgg16", PAPER_CONFIG_VGG16)

    # Place the simulated VGG16 design in the Figure 1 roofline.
    workload = synthetic_model_workload("vgg16", seed=SEED)
    result = AcceleratorSimulator(PAPER_CONFIG_VGG16, STRATIX_V_GXA7).simulate(workload)
    roofline = RooflineModel(STRATIX_V_GXA7, freq_mhz=200.0)
    points = (
        DesignPoint("Zeng FDConv [3]", ConvScheme.FDCONV,
                    get_baseline("zeng-vgg16").throughput_gops),
        DesignPoint("ABM-SpConv (this run)", ConvScheme.ABM_SPCONV,
                    result.throughput_gops),
    )
    print(roofline.render(points))


if __name__ == "__main__":
    main()
