"""Run the complete design-space exploration flow (paper Figure 5).

Stage by stage on VGG16 / Stratix-V GXA7:

1. analyze the pruned quantized network (sharing factor N, buffer depths),
2. sweep N_knl for the normalized-performance-boost optimum (Figure 6),
3. characterize the platform with synthetic "fast compiles" and re-fit the
   C0..C7 resource constants (the paper's calibration stage),
4. explore the S_ec x N_cu grid under the 75% logic constraint (Figure 7),

then port the whole flow to a different device (Arria-10 GX1150) to show
the exploration is device-generic — the paper's "complete flow" claim.

Run:  python examples/design_space_exploration.py
"""

from repro.dse import (
    SyntheticCompiler,
    characterization_suite,
    explore,
    fit_constants,
)
from repro.dse.performance import share_factor_from_workloads
from repro.hw import ARRIA_10_GX1150, STRATIX_V_GXA7, AcceleratorConfig
from repro.workloads import synthetic_model_workload

SEED = 1


def run_flow(device, freq_mhz: float) -> None:
    workload = synthetic_model_workload("vgg16", seed=SEED)
    print(f"=== exploration on {device.name} @ {freq_mhz:g} MHz")

    # Stage 1: network analysis.
    n_share = share_factor_from_workloads(workload.layers)
    print(f"  stage 1: min Acc/Mult intensity ratio -> sharing factor N = {n_share}")

    # Stage 3 (shown early so the fit feeds the sweeps): characterization.
    compiler = SyntheticCompiler(device, noise=0.02, seed=SEED)
    base = AcceleratorConfig(n_cu=3, n_knl=14, n_share=n_share, s_ec=20)
    samples = compiler.characterize(characterization_suite(base))
    fitted = fit_constants(samples)
    print(
        f"  stage 3: fitted constants from {len(samples)} compiles: "
        f"C1={fitted.c1:.0f} ALM/lane, C4={fitted.c4:.1f} DSP/mult, "
        f"C6={fitted.c6:.0f} M20K/lane"
    )

    # Stages 2 + 4: the sweeps, inside the packaged flow.
    result = explore(workload, device, resources=fitted, freq_mhz=freq_mhz)
    print(f"  stage 2: optimal N_knl = {result.chosen_n_knl}")
    print(f"  stage 4: chosen {result.chosen.describe()}")
    print(
        f"           buffers D_f={result.buffers.d_f} D_w={result.buffers.d_w} "
        f"D_q={result.buffers.d_q}"
    )
    print(f"           predicted {result.performance.throughput_gops:.0f} GOP/s; "
          f"{'compute' if result.bandwidth.compute_bound else 'memory'}-bound "
          f"({result.bandwidth.required_bandwidth_gbs:.2f} GB/s needed)")
    print("           candidates:")
    for candidate in result.candidates[:5]:
        print(
            f"             S_ec={candidate.s_ec:>2} N_cu={candidate.n_cu} -> "
            f"{candidate.throughput_gops:6.1f} GOP/s "
            f"(logic {candidate.utilization.logic:.0%}, "
            f"dsp {candidate.utilization.dsp:.0%}, "
            f"mem {candidate.utilization.memory:.0%})"
        )
    print()


def main() -> None:
    run_flow(STRATIX_V_GXA7, freq_mhz=200.0)
    # Port to a bigger device: more DSPs and ALMs shift the whole frontier.
    run_flow(ARRIA_10_GX1150, freq_mhz=300.0)


if __name__ == "__main__":
    main()
