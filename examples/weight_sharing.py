"""Weight sharing: the mechanism behind ABM-SpConv's multiply savings.

The paper's models are pruned *and quantized* with Deep Compression, whose
k-means weight sharing leaves each layer with a small codebook of shared
values — that is why a 1,244-nonzero VGG16 conv4_2 kernel holds only ~20
distinct values (Table 1), and why ABM-SpConv can replace its ~1,244
multiplies with ~20.

This example runs the same pruned network through the ABM pipeline with
and without k-means sharing and shows the multiply count collapse while
the classification stays put.

Run:  python examples/weight_sharing.py
"""

import numpy as np

from repro.nn.models import cifarnet_architecture
from repro.pipeline import QuantizedPipeline
from repro.prune import uniform_schedule
from repro.quant import cluster_weights, clustering_error

SEED = 21


def run_pipeline(clusters):
    network = cifarnet_architecture().build(seed=SEED)
    rng = np.random.default_rng(SEED)
    image = rng.normal(size=network.input_shape.as_tuple())
    names = [layer.name for layer in network.accelerated_layers()]
    pipeline = QuantizedPipeline(network, weight_clusters=clusters)
    pipeline.prune(uniform_schedule(names, 0.35).densities)
    pipeline.calibrate(image)
    pipeline.quantize()
    return pipeline, pipeline.run(image), image


def main() -> None:
    print(f"{'codebook':>9} {'accumulates':>12} {'multiplies':>11} "
          f"{'acc/mult':>9} {'top-1':>6}")
    reference = None
    for clusters in (None, 64, 16, 4):
        pipeline, result, image = run_pipeline(clusters)
        if reference is None:
            reference = int(np.argmax(pipeline.run_float(image)))
        label = "8-bit only" if clusters is None else f"k={clusters}"
        ratio = result.accumulate_ops / max(result.multiply_ops, 1)
        top1 = int(np.argmax(result.output))
        print(f"{label:>9} {result.accumulate_ops:>12,} "
              f"{result.multiply_ops:>11,} {ratio:>9.1f} "
              f"{'ok' if top1 == reference else 'MISS':>6}")

    # The clustering itself: error vs codebook size on one weight tensor.
    print("\nk-means reconstruction error (conv2 weights):")
    network = cifarnet_architecture().build(seed=SEED)
    weights = network.layer("conv2").weights
    for k in (4, 16, 64, 256):
        clustered = cluster_weights(weights, k)
        print(f"  k={k:<4} distinct={clustered.distinct_values:<4} "
              f"rms={clustering_error(weights, clustered):.5f}")


if __name__ == "__main__":
    main()
