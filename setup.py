"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so `pip install -e .`
works on environments without the `wheel` package (offline boxes where the
PEP 660 editable-wheel path is unavailable).
"""

from setuptools import setup

setup()
