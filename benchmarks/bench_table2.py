"""Benchmark: regenerate paper Table 2 (state-of-the-art comparison)."""

from repro.analysis import render_comparisons
from repro.baselines import get_baseline
from repro.experiments import table2


def test_bench_table2(benchmark, seed):
    result = benchmark(table2.run, seed)
    print()
    print(result.render())
    print()
    print(render_comparisons(result.comparisons, title="Table 2 — paper vs measured"))
    vgg = result.proposed["vgg16"]
    # Headline: clear VGG16 win over the FDConv design [3] on the same FPGA.
    assert vgg.throughput_gops / get_baseline("zeng-vgg16").throughput_gops > 1.25
    # DSPs must stay under the device total — the accumulator-bound claim.
    assert vgg.resources.dsps < 256
