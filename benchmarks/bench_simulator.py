"""Benchmark: full-model accelerator simulation throughput.

Times the event-driven simulator on the paper's two workloads (the core of
Table 2's regeneration) and sweeps the sharing factor N as an ablation of
the paper's N=4 choice.

``test_bench_fastsim_artifact`` compares the vectorized scheduler fast
path against the per-task reference event loop on both models, verifies
they agree exactly, and writes a ``BENCH_simulator.json`` trajectory
artifact (timings, speedups, cached-replay time) to the repo root so
future PRs can track simulator performance over time. Quick mode for CI:
``REPRO_BENCH_QUICK=1`` uses fewer repeats and a relaxed speedup floor for
shared runners; the full run asserts the ISSUE's >= 5x bar on VGG16.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.hw import (
    PAPER_CONFIG_ALEXNET,
    PAPER_CONFIG_VGG16,
    STRATIX_V_GXA7,
    AcceleratorConfig,
    AcceleratorSimulator,
    clear_sim_cache,
)
from repro.telemetry import Telemetry, activate
from repro.workloads import synthetic_model_workload

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "")
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def _telemetry_section(telemetry):
    """Compact snapshot for bench artifacts: cache hit rates + span totals."""
    snapshot = telemetry.snapshot(include_spans=False)
    return {
        "caches": {
            name: {
                key: data[key]
                for key in ("hits", "misses", "evictions", "hit_rate")
            }
            for name, data in snapshot["caches"].items()
        },
        "span_totals": telemetry.tracer.totals(),
    }


@pytest.mark.parametrize(
    "model,config",
    [("alexnet", PAPER_CONFIG_ALEXNET), ("vgg16", PAPER_CONFIG_VGG16)],
    ids=["alexnet", "vgg16"],
)
def test_bench_simulate(benchmark, seed, model, config):
    workload = synthetic_model_workload(model, seed=seed)
    simulator = AcceleratorSimulator(config, STRATIX_V_GXA7)
    result = benchmark(simulator.simulate, workload)
    print(f"\n  {model}: {result.throughput_gops:.1f} GOP/s, "
          f"CU {result.cu_utilization:.1%}, engine {result.engine_utilization:.1%}")
    assert result.throughput_gops > 500


def test_bench_share_factor_ablation(benchmark, seed):
    """Ablation: the sharing factor N trades DSPs for multiplier stalls.

    N=4 (the paper's choice) keeps throughput within a few per cent of
    N=1 while using a quarter of the multipliers; N=16 over-shares and
    visibly slows the multiply-bound shallow layers.
    """
    workload = synthetic_model_workload("vgg16", seed=seed)

    def sweep():
        results = {}
        for n_share in (1, 2, 4, 8, 16):
            config = AcceleratorConfig(
                n_cu=3, n_knl=14, n_share=n_share, s_ec=20, d_f=1568, freq_mhz=204.0
            )
            sim = AcceleratorSimulator(config, STRATIX_V_GXA7).simulate(workload)
            results[n_share] = (sim.throughput_gops, config.total_multipliers)
        return results

    results = benchmark(sweep)
    print()
    for n_share, (gops, mults) in results.items():
        print(f"  N={n_share:<3} multipliers={mults:<4} throughput={gops:7.1f} GOP/s")
    assert results[4][0] > 0.9 * results[1][0]  # N=4 nearly free
    assert results[16][0] < results[1][0]  # over-sharing costs throughput
    assert results[4][1] == results[1][1] / 4  # and saves 4x the DSPs


def _best_of(fn, repeats):
    """Best-of-N wall time in seconds (min is the least noisy estimator)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_fastsim_artifact():
    """Reference vs fast-path full-model simulation; writes the artifact.

    The fast path must return byte-identical ModelSimResults and clear the
    speedup floor on the VGG16 full-model simulation (the acceptance bar).
    """
    repeats = 3 if QUICK else 5
    floor = 2.0 if QUICK else 5.0
    report = {
        "generated_by": "benchmarks/bench_simulator.py",
        "quick": QUICK,
        "seed": 1,
        "models": {},
    }
    print()
    for model, config in (
        ("alexnet", PAPER_CONFIG_ALEXNET),
        ("vgg16", PAPER_CONFIG_VGG16),
    ):
        workload = synthetic_model_workload(model, seed=1)
        fast_sim = AcceleratorSimulator(config, STRATIX_V_GXA7, use_cache=False)
        ref_sim = AcceleratorSimulator(
            config, STRATIX_V_GXA7, fast=False, use_cache=False
        )
        fast = fast_sim.simulate(workload)
        assert fast == ref_sim.simulate(workload)  # cycle-exact, field-exact

        fast_s = _best_of(lambda: fast_sim.simulate(workload), repeats)
        reference_s = _best_of(
            lambda: ref_sim.simulate(workload), max(1, repeats - 2)
        )
        # Cached replay: what repeated deployments / DSE sweeps pay.
        clear_sim_cache()
        cached_sim = AcceleratorSimulator(config, STRATIX_V_GXA7)
        cached_sim.simulate(workload)
        cached_s = _best_of(lambda: cached_sim.simulate(workload), repeats)
        clear_sim_cache()

        entry = {
            "layers": len(fast.layers),
            "tasks": sum(layer.tasks for layer in fast.layers),
            "throughput_gops": round(fast.throughput_gops, 1),
            "reference_s": round(reference_s, 6),
            "fast_s": round(fast_s, 6),
            "cached_s": round(cached_s, 6),
            "speedup_fast_vs_reference": round(reference_s / fast_s, 2),
            "speedup_cached_vs_reference": round(reference_s / cached_s, 2),
        }
        report["models"][model] = entry
        print(
            f"  {model:<8} reference {reference_s * 1e3:8.2f} ms  "
            f"fast {fast_s * 1e3:7.2f} ms  "
            f"cached {cached_s * 1e3:6.2f} ms  "
            f"speedup {entry['speedup_fast_vs_reference']:5.2f}x"
        )

    # One instrumented cached replay (outside the timed loops) captures the
    # sim-cache hit story and a bench-level span total per model.
    telemetry = Telemetry()
    with activate(telemetry):
        for model, config in (
            ("alexnet", PAPER_CONFIG_ALEXNET),
            ("vgg16", PAPER_CONFIG_VGG16),
        ):
            workload = synthetic_model_workload(model, seed=1)
            simulator = AcceleratorSimulator(config, STRATIX_V_GXA7)
            with telemetry.span("simulate", model=model):
                simulator.simulate(workload)
    report["telemetry"] = _telemetry_section(telemetry)

    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {ARTIFACT}")

    vgg16 = report["models"]["vgg16"]["speedup_fast_vs_reference"]
    assert vgg16 >= floor, f"vgg16 fast-path speedup {vgg16}x below {floor}x"
