"""Benchmark: full-model accelerator simulation throughput.

Times the event-driven simulator on the paper's two workloads (the core of
Table 2's regeneration) and sweeps the sharing factor N as an ablation of
the paper's N=4 choice.
"""

import pytest

from repro.hw import (
    PAPER_CONFIG_ALEXNET,
    PAPER_CONFIG_VGG16,
    STRATIX_V_GXA7,
    AcceleratorConfig,
    AcceleratorSimulator,
)
from repro.workloads import synthetic_model_workload


@pytest.mark.parametrize(
    "model,config",
    [("alexnet", PAPER_CONFIG_ALEXNET), ("vgg16", PAPER_CONFIG_VGG16)],
    ids=["alexnet", "vgg16"],
)
def test_bench_simulate(benchmark, seed, model, config):
    workload = synthetic_model_workload(model, seed=seed)
    simulator = AcceleratorSimulator(config, STRATIX_V_GXA7)
    result = benchmark(simulator.simulate, workload)
    print(f"\n  {model}: {result.throughput_gops:.1f} GOP/s, "
          f"CU {result.cu_utilization:.1%}, engine {result.engine_utilization:.1%}")
    assert result.throughput_gops > 500


def test_bench_share_factor_ablation(benchmark, seed):
    """Ablation: the sharing factor N trades DSPs for multiplier stalls.

    N=4 (the paper's choice) keeps throughput within a few per cent of
    N=1 while using a quarter of the multipliers; N=16 over-shares and
    visibly slows the multiply-bound shallow layers.
    """
    workload = synthetic_model_workload("vgg16", seed=seed)

    def sweep():
        results = {}
        for n_share in (1, 2, 4, 8, 16):
            config = AcceleratorConfig(
                n_cu=3, n_knl=14, n_share=n_share, s_ec=20, d_f=1568, freq_mhz=204.0
            )
            sim = AcceleratorSimulator(config, STRATIX_V_GXA7).simulate(workload)
            results[n_share] = (sim.throughput_gops, config.total_multipliers)
        return results

    results = benchmark(sweep)
    print()
    for n_share, (gops, mults) in results.items():
        print(f"  N={n_share:<3} multipliers={mults:<4} throughput={gops:7.1f} GOP/s")
    assert results[4][0] > 0.9 * results[1][0]  # N=4 nearly free
    assert results[16][0] < results[1][0]  # over-sharing costs throughput
    assert results[4][1] == results[1][1] / 4  # and saves 4x the DSPs
