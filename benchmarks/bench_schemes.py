"""Benchmark: heterogeneous per-layer scheme execution vs ABM-only.

Times whole-model fused inference on channel/spatial-scaled AlexNet and
VGG16 twice — once on the default all-ABM plan and once under the
scheme assignment chosen by :func:`repro.dse.schemes.plan_model_schemes`
for the *actual* encoded workload — asserting the heterogeneous plan is
bit-exact against the per-layer reference and measurably faster on VGG16.

The scales are chosen so the mid-pyramid lands where the calibrated cost
model puts the Winograd win region on this class of host (out maps of
28/14 with 32-128 channels): VGG16 at (0.25, 0.5) gets F(4x4,3x3) on the
conv3 block and F(2x2,3x3) on conv4; conv1/2 (large maps, transform
stacks spill cache) and conv5/FC (too small to amortize the gather) stay
ABM.  All timing is *interleaved*: the variants alternate within each
sweep so clock drift hits them equally, and min-of-N per variant is the
estimator — sequential best-of blocks drift by several percent on shared
hosts, which would swamp the effect.

The per-layer table records each decision's predicted ABM/chosen cost so
the artifact doubles as a predicted-vs-measured trace: a ranking check
re-times the model with only the top-predicted half of the reassignments
enabled and verifies the planner's ranking orders the measured gains too.

Writes ``BENCH_schemes.json`` to the repo root.  Quick mode for CI:
``REPRO_BENCH_QUICK=1`` shrinks repeats and relaxes the speedup floor.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.baselines.winograd import winograd_supported
from repro.core import clear_model_plan_cache, conv_spec, fc_spec
from repro.core import tiers
from repro.dse.schemes import plan_model_schemes
from repro.hw import PAPER_CONFIG_ALEXNET, PAPER_CONFIG_VGG16, STRATIX_V_GXA7
from repro.hw.workload import ModelWorkload, workload_from_encoded
from repro.nn.layers.conv import Conv2D
from repro.nn.models.alexnet import alexnet_architecture
from repro.nn.models.vgg16 import vgg16_architecture
from repro.pipeline import QuantizedPipeline

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "")
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_schemes.json"

# (channel scale, spatial scale, batch).  VGG16 keeps half the input
# resolution so conv3/conv4 sit at 28x28/14x14 output maps — the
# measured Winograd win region.  AlexNet keeps full resolution (its
# pyramid is already shallow); only conv3 crosses the planner's margin.
MODEL_CONFIGS = {
    "alexnet": (0.25, 1.0, 4),
    "vgg16": (0.25, 0.5, 4),
}
PAPER_CONFIGS = {
    "alexnet": PAPER_CONFIG_ALEXNET,
    "vgg16": PAPER_CONFIG_VGG16,
}


def _interleaved_best(fns, repeats):
    """Paired min-of-N: one pass times every variant back-to-back, so a
    slow sweep penalizes all of them equally; the per-variant min over
    sweeps is the least noisy estimator at few-ms scale."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _build_model(name):
    arch = alexnet_architecture() if name == "alexnet" else vgg16_architecture()
    scale, spatial_scale, batch = MODEL_CONFIGS[name]
    network = arch.build(scale=scale, spatial_scale=spatial_scale, seed=11)
    pipeline = QuantizedPipeline(network)
    rng = np.random.default_rng(11)
    pipeline.calibrate(rng.standard_normal(network.input_shape.as_tuple()))
    pipeline.quantize()
    images = rng.standard_normal((batch,) + network.input_shape.as_tuple())
    return network, pipeline, images


def _encoded_workload(name, network, pipeline):
    """The scaled model's real per-layer workload, from the encoded weights."""
    specs = []
    for layer in network.accelerated_layers():
        in_shape = network.input_shape_of(layer.name)
        if isinstance(layer, Conv2D):
            specs.append(
                conv_spec(
                    layer.name,
                    layer.in_channels,
                    layer.out_channels,
                    layer.kernel,
                    in_shape.rows,
                    in_shape.cols,
                    stride=layer.stride,
                    padding=layer.padding,
                    groups=layer.groups,
                )
            )
        else:
            specs.append(fc_spec(layer.name, layer.in_features, layer.out_features))
    encoded = pipeline.encoded_layers()
    assert len(specs) == len(encoded)
    return ModelWorkload(
        name=name,
        layers=tuple(
            workload_from_encoded(spec, enc) for spec, enc in zip(specs, encoded)
        ),
    )


def _assert_bit_exact(fused, reference):
    for f, r in zip(fused, reference):
        assert np.array_equal(f.output, r.output)


def test_bench_scheme_execution():
    """ABM-only vs planner-assigned heterogeneous execution, end to end."""
    repeats = 4 if QUICK else 9
    previous_tier = tiers.set_tier("numpy")
    rows = {}
    print()
    try:
        for name in MODEL_CONFIGS:
            network, pipeline, images = _build_model(name)
            workload = _encoded_workload(name, network, pipeline)
            plan = plan_model_schemes(
                workload, PAPER_CONFIGS[name], device=STRATIX_V_GXA7
            )
            assignment = plan.assignment()
            supported = {
                layer.spec.name
                for layer in workload.layers
                if winograd_supported(layer.spec)
            }
            if name == "vgg16":
                # The acceptance shape: the planner reassigns a non-trivial
                # slice of the pyramid, every pick is a Winograd unit, and
                # every pick is a 3x3 stride-1 conv layer.  (It does NOT
                # pick every supported layer: conv1/2's transform stacks
                # spill cache and conv5 is too small — the calibrated cost
                # model keeps those on ABM on purpose.)
                assert len(assignment) >= 3, plan.summary()
                for layer_name, scheme in assignment.items():
                    assert scheme.startswith("winograd"), (layer_name, scheme)
                    assert layer_name in supported, layer_name
                assert "spectral" in plan.rejected

            clear_model_plan_cache()
            reference = pipeline.run_batch_reference(images)
            _assert_bit_exact(pipeline.run_batch(images), reference)
            _assert_bit_exact(
                pipeline.run_batch(images, schemes=assignment), reference
            )

            # Ranking consistency probe: reassignments ordered by predicted
            # saving; the top-predicted half must buy at least as much
            # measured wall time as the rest.
            by_saving = sorted(
                (d for d in plan.decisions if d.scheme != "abm"),
                key=lambda d: d.abm_cost - d.chosen_cost,
                reverse=True,
            )
            split = max(1, len(by_saving) // 2)
            top = {d.layer: d.scheme for d in by_saving[:split]}
            rest = {d.layer: d.scheme for d in by_saving[split:]}

            variants = [
                lambda: pipeline.run_batch(images),
                lambda: pipeline.run_batch(images, schemes=assignment),
                lambda: pipeline.run_batch(images, schemes=top),
                lambda: pipeline.run_batch(images, schemes=rest),
            ]
            abm_s, het_s, top_s, rest_s = _interleaved_best(variants, repeats)
            if not rest:
                rest_s = abm_s
            gain_top = abm_s - top_s
            gain_rest = abm_s - rest_s

            batch = images.shape[0]
            scale, spatial_scale, _ = MODEL_CONFIGS[name]
            rows[name] = {
                "scale": scale,
                "spatial_scale": spatial_scale,
                "batch": batch,
                "plan": plan.summary(),
                "enabled": list(plan.enabled),
                "rejected": list(plan.rejected),
                "assignment": assignment,
                "predicted_speedup": round(plan.predicted_speedup, 3),
                "abm_only_s": round(abm_s, 6),
                "heterogeneous_s": round(het_s, 6),
                "measured_speedup": round(abm_s / het_s, 3),
                "images_per_s": round(batch / het_s, 2),
                "ranking": {
                    "top_half_layers": sorted(top),
                    "gain_top_half_s": round(gain_top, 6),
                    "gain_rest_s": round(gain_rest, 6),
                },
                "layers": [
                    {
                        "layer": d.layer,
                        "scheme": d.scheme,
                        "abm_cost": round(d.abm_cost, 1),
                        "chosen_cost": round(d.chosen_cost, 1),
                        "predicted_speedup": round(d.speedup, 3),
                        "reason": d.reason,
                    }
                    for d in plan.decisions
                ],
            }
            print(
                f"  {name:<8} abm-only {abm_s * 1e3:8.2f} ms  "
                f"heterogeneous {het_s * 1e3:8.2f} ms "
                f"({rows[name]['measured_speedup']:5.2f}x measured, "
                f"{rows[name]['predicted_speedup']:.2f}x predicted)  "
                f"[{plan.summary()}]"
            )
    finally:
        tiers.set_tier(previous_tier)

    report = {
        "generated_by": "benchmarks/bench_schemes.py",
        "quick": QUICK,
        "models": rows,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {ARTIFACT}")

    # Headline acceptance: the heterogeneous plan beats ABM-only on VGG16.
    # The honest effect at this scale is a few percent of whole-model wall
    # time (the reassigned layers are ~40% of it); replicated full runs
    # measure 1.02-1.11x, so the full floor sits at the low edge of that
    # band and quick mode (fewer repeats, noisier) just guards against a
    # regression below parity.
    floor = 1.0 if QUICK else 1.02
    assert rows["vgg16"]["measured_speedup"] >= floor, (
        f"vgg16 heterogeneous speedup {rows['vgg16']['measured_speedup']}x"
    )
    assert rows["vgg16"]["predicted_speedup"] > 1.0
    # Predicted ranking consistent with measurement: the top-predicted half
    # of the reassignments must capture a meaningful share (>=1/3) of the
    # combined measured gain.  An anti-correlated ranking would leave the
    # top half with next to nothing; an exact >= comparison of the halves
    # is inside paired-timing noise (~1 ms) at this model size.
    if not QUICK:
        ranking = rows["vgg16"]["ranking"]
        total_gain = ranking["gain_top_half_s"] + ranking["gain_rest_s"]
        assert total_gain > 0, ranking
        assert ranking["gain_top_half_s"] >= total_gain / 3.0, ranking
