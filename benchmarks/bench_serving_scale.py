"""Benchmark: fleet-scale serving through the event-driven engine.

Two measurements, one artifact (``BENCH_serving_scale.json``):

- **scale**: >= 1,000,000 simulated requests pushed through the
  event-driven engine (windowed batching, 16 instances) in well under
  the 30 s acceptance bar — the wall-clock claim behind replacing the
  wall-clock thread loop with a virtual clock.
- **load curve**: p50/p99/p999 latency versus offered load for two SLO
  classes under continuous batching, at sub-saturation, near-saturation
  and overload points. The percentiles come straight from the telemetry
  registry's histograms (identical nearest-rank arithmetic to
  ``ServeStats``), which is the p99-vs-offered-load story PR 5's
  instruments were built for; the overload point also exercises
  admission control, so rejection counts land in the artifact too.

Quick mode for CI (``REPRO_BENCH_QUICK=1``): >= 100k total simulated
requests with a 60 s bar.
"""

import json
import os
import time
from pathlib import Path

from repro.serve import (
    BatchPolicy,
    EventDrivenSimulator,
    ServiceProfile,
    SLOClass,
    poisson_trace,
)
from repro.telemetry import Telemetry

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "")
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serving_scale.json"

#: The simulated deployment: AlexNet-class stage times (Section 6.1 scale)
#: on a 16-instance fleet.
PROFILE = ServiceProfile(fpga_s=2e-3, host_s=1e-3, dense_ops_per_image=0)
INSTANCES = 16
POLICY = BatchPolicy(max_batch=16, max_wait_s=4e-3)
SLO_MIX = {"latency-sensitive": 0.6, "best-effort": 0.4}

SCALE_REQUESTS = 120_000 if QUICK else 1_000_000
CURVE_REQUESTS = 20_000 if QUICK else 150_000
WALL_BAR_S = 60.0 if QUICK else 30.0

#: Offered load as a fraction of saturated fleet throughput. 1.25x is a
#: genuine overload: best-effort admission control has to shed it.
LOAD_POINTS = (0.5, 0.8, 0.95, 1.25)


def _fleet_capacity_rps() -> float:
    return INSTANCES * PROFILE.capacity_rps


def _classes(overloaded: bool):
    queue_limit = 256 if overloaded else None
    return (
        SLOClass("latency-sensitive", priority=0, target_latency_s=50e-3),
        SLOClass("best-effort", priority=1, queue_limit=queue_limit),
    )


def _percentiles(telemetry: Telemetry, slo: str):
    histogram = telemetry.registry.histogram("serve/latency_s", slo=slo)
    return {
        "p50_ms": round(histogram.percentile(50) * 1e3, 4),
        "p99_ms": round(histogram.percentile(99) * 1e3, 4),
        "p999_ms": round(histogram.percentile(99.9) * 1e3, 4),
        "count": histogram.count,
    }


def test_bench_serving_scale_artifact():
    """Fleet-scale wall-time bar + latency-vs-load curve; writes artifact."""
    capacity = _fleet_capacity_rps()
    report = {
        "generated_by": "benchmarks/bench_serving_scale.py",
        "quick": QUICK,
        "profile": {
            "fpga_ms": PROFILE.fpga_s * 1e3,
            "host_ms": PROFILE.host_s * 1e3,
            "instances": INSTANCES,
            "max_batch": POLICY.max_batch,
            "max_wait_ms": POLICY.max_wait_s * 1e3,
            "fleet_capacity_rps": round(capacity, 1),
        },
    }
    print()

    # ---- scale: the million-request wall-time bar ----------------------
    trace = poisson_trace(
        SCALE_REQUESTS, 0.8 * capacity, seed=0, slo_mix=SLO_MIX
    )
    engine = EventDrivenSimulator(
        PROFILE,
        POLICY,
        classes=_classes(overloaded=False),
        instances=INSTANCES,
        telemetry=Telemetry(),
        record_spans=False,
        collect_records=False,
    )
    start = time.perf_counter()
    scale_report = engine.run_trace(trace)
    wall_s = time.perf_counter() - start
    assert scale_report.served == SCALE_REQUESTS
    assert wall_s < WALL_BAR_S, (
        f"{SCALE_REQUESTS} requests took {wall_s:.1f}s, bar is {WALL_BAR_S}s"
    )
    report["scale"] = {
        "engine": "events",
        "batching": "windows",
        "requests": SCALE_REQUESTS,
        "wall_s": round(wall_s, 3),
        "requests_per_wall_second": round(SCALE_REQUESTS / wall_s),
        "virtual_makespan_s": round(scale_report.makespan_s, 3),
        "bar_s": WALL_BAR_S,
    }
    print(
        f"  scale: {SCALE_REQUESTS} requests in {wall_s:.2f}s wall "
        f"({SCALE_REQUESTS / wall_s / 1e3:.0f}k req/s, bar {WALL_BAR_S:g}s)"
    )

    # ---- latency vs offered load, per SLO class ------------------------
    curve = []
    for ratio in LOAD_POINTS:
        overloaded = ratio > 1.0
        telemetry = Telemetry()
        trace = poisson_trace(
            CURVE_REQUESTS, ratio * capacity, seed=7, slo_mix=SLO_MIX
        )
        engine = EventDrivenSimulator(
            PROFILE,
            POLICY,
            classes=_classes(overloaded),
            instances=INSTANCES,
            continuous=True,
            telemetry=telemetry,
            record_spans=False,
            collect_records=False,
        )
        start = time.perf_counter()
        point_report = engine.run_trace(trace)
        point_wall_s = time.perf_counter() - start
        point = {
            "offered_ratio": ratio,
            "offered_rps": round(ratio * capacity, 1),
            "requests": CURVE_REQUESTS,
            "served": point_report.served,
            "rejected": point_report.rejected,
            "wall_s": round(point_wall_s, 3),
            "classes": {
                slo: _percentiles(telemetry, slo)
                for slo in point_report.class_names
            },
        }
        curve.append(point)
        sensitive = point["classes"]["latency-sensitive"]
        print(
            f"  load {ratio:4.2f}x: p50 {sensitive['p50_ms']:7.3f} ms  "
            f"p99 {sensitive['p99_ms']:7.3f} ms  "
            f"p999 {sensitive['p999_ms']:7.3f} ms  "
            f"rejected {point['rejected']}"
        )
    report["load_curve"] = curve

    # The artifact must carry the acceptance shape: >= 3 load points and
    # >= 2 SLO classes with all three percentiles at every point.
    assert len(curve) >= 3
    for point in curve:
        assert len(point["classes"]) >= 2
        for percentiles in point["classes"].values():
            assert {"p50_ms", "p99_ms", "p999_ms"} <= set(percentiles)
    # Latency is monotone-ish in load: the near-saturation point is
    # strictly slower than the half-load point at the tail.
    assert (
        curve[2]["classes"]["latency-sensitive"]["p99_ms"]
        >= curve[0]["classes"]["latency-sensitive"]["p99_ms"]
    )
    # Overload sheds best-effort load, never latency-sensitive load.
    overload_point = curve[-1]
    assert overload_point["rejected"] > 0
    assert (
        overload_point["classes"]["latency-sensitive"]["count"]
        + overload_point["classes"]["best-effort"]["count"]
        + overload_point["rejected"]
        == CURVE_REQUESTS
    )

    total = SCALE_REQUESTS + len(curve) * CURVE_REQUESTS
    report["total_simulated_requests"] = total
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {ARTIFACT} ({total} simulated requests total)")
