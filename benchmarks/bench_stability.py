"""Benchmark (extension): statistical stability of the reproduction.

The synthetic workloads are random draws calibrated to the paper's
statistics; a reproduction claim is only as good as its variance across
draws. This bench re-simulates Table 2's proposed columns over several
seeds and checks the headline figures are tight (sub-2% spread) — i.e.
the conclusions do not hinge on a lucky seed.
"""

import numpy as np

from repro.hw import (
    PAPER_CONFIG_ALEXNET,
    PAPER_CONFIG_VGG16,
    STRATIX_V_GXA7,
    AcceleratorSimulator,
)
from repro.workloads import synthetic_model_workload

SEEDS = (1, 2, 3, 4, 5)


def test_bench_seed_stability(benchmark):
    def sweep():
        results = {}
        for model, config in (
            ("alexnet", PAPER_CONFIG_ALEXNET),
            ("vgg16", PAPER_CONFIG_VGG16),
        ):
            gops = []
            for seed in SEEDS:
                workload = synthetic_model_workload(model, seed=seed)
                sim = AcceleratorSimulator(config, STRATIX_V_GXA7).simulate(workload)
                gops.append(sim.throughput_gops)
            results[model] = np.asarray(gops)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for model, gops in results.items():
        spread = gops.std() / gops.mean()
        print(
            f"  {model:<8} {gops.mean():7.1f} GOP/s  "
            f"min {gops.min():7.1f}  max {gops.max():7.1f}  "
            f"rel spread {spread:.3%} over {len(SEEDS)} seeds"
        )
        # Tight across draws: the calibration, not the draw, sets the number.
        assert spread < 0.02
    # The headline ordering survives every seed.
    assert results["vgg16"].min() > 662.3  # beats FDConv [3] always
