"""Benchmark harness configuration.

Every module regenerates one paper artifact (table or figure), times the
regeneration with pytest-benchmark, prints the rows the paper reports and
the paper-vs-measured comparison, and asserts the headline shape so a
regression is a failure, not just a slow run.

Run:  pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture(scope="session")
def seed() -> int:
    return 1
