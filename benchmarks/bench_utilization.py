"""Benchmark: regenerate the CU execution-efficiency study (Sections 6-7)."""

from repro.analysis import render_comparisons
from repro.experiments import utilization


def test_bench_utilization(benchmark, seed):
    result = benchmark(utilization.run, seed)
    print()
    print(result.render())
    print()
    print(
        render_comparisons(result.comparisons, title="CU efficiency — paper vs measured")
    )
    for model, row in result.rows.items():
        # Paper: 87% (VGG16) / 81% (AlexNet), both far above [2]'s 64.5%.
        assert 0.745 < row.execution_efficiency < 0.98, model


def test_bench_scheduling_ablation(benchmark, seed):
    """Design ablation: balanced kernel grouping vs encode-order grouping."""
    ablation = benchmark(utilization.scheduling_ablation, seed)
    print()
    for policy, rows in ablation.items():
        for model, efficiency in rows.items():
            print(f"  {policy:<9} {model:<8} efficiency {efficiency:.1%}")
    for model in ("vgg16", "alexnet"):
        assert ablation["balanced"][model] >= ablation["natural"][model] - 0.01
