"""Benchmark (extension): pruning-density crossover vs the FDConv baseline.

ABM-SpConv's win is sparsity-funded. This sweep finds where it stops:
below ~2.2x MAC reduction (uniform density above ~0.45) the fixed FDConv
design [3] would out-run the paper's configuration on the same device.
Deep Compression's VGG16 sits at ~3.1x — comfortably inside the winning
region, which is exactly why the paper's headline holds.
"""

from repro.experiments import density_sweep


def test_bench_density_crossover(benchmark, seed):
    result = benchmark.pedantic(density_sweep.run, args=(seed,), rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\ncrossover density: {result.crossover_density}")
    # Throughput decreases monotonically with density.
    gops = [p.throughput_gops for p in result.points]
    assert all(a > b for a, b in zip(gops, gops[1:]))
    # The crossover exists and sits between 30% and 65% density.
    assert result.crossover_density is not None
    assert 0.3 <= result.crossover_density <= 0.65
    # Deep Compression's ~27% overall density is safely in the win region.
    sparse = next(p for p in result.points if p.density == 0.3)
    assert sparse.beats(result.baseline_gops)
    # Fully dense, ABM falls to the SDConv-class regime (no sparsity fuel).
    dense = next(p for p in result.points if p.density == 1.0)
    assert dense.throughput_gops < result.baseline_gops