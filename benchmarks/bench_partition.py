"""Benchmark: pipelined multi-device deployment vs whole-model replication.

Runs the exhaustive partition search (:func:`repro.dse.search_partitions`)
over a heterogeneous two-board catalog — a Stratix-V GXA7 next to the
smaller GXA3 — and compares the best layer-pipelined deployment against
the replication baseline (every board serving whole-model replicas with
its own best configuration).  The headline pair is channel/spatial-scaled
VGG16, where the GXA3 is whole-model-feasible but slow: handing it the
light front of the pyramid while the GXA7 runs the heavy tail beats two
independent replicas, because per-shard buffer sizing frees M20K blocks
for compute units on both boards.

Every plan's analytic timing (bottleneck rate, fill latency) is
cross-checked against the finite-FIFO tandem-line event simulation
(:func:`repro.shard.simulate_shard_plan`), so the artifact's numbers are
backed by the same model the serving layer uses.

Writes ``BENCH_partition.json`` to the repo root.  Quick mode for CI:
``REPRO_BENCH_QUICK=1`` keeps only the headline VGG16 row (the search is
deterministic arithmetic, so quick and full agree on it exactly).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.dse.partition import clear_partition_cache, search_partitions
from repro.hw.device import STRATIX_V_GXA3, STRATIX_V_GXA7
from repro.shard import simulate_shard_plan
from repro.workloads import synthetic_model_workload

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "")
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_partition.json"

# (channel scale, spatial scale).  VGG16 at quarter scale is the
# acceptance pair: both boards are whole-model feasible, so the pipeline
# has to beat an honest two-replica baseline, not an idle board.
MODEL_CONFIGS = {
    "vgg16": (0.25, 0.25),
    "alexnet": (0.5, 0.5),
}
CATALOG = (STRATIX_V_GXA7, STRATIX_V_GXA3)
SIM_IMAGES = 64


def _plan_row(plan):
    return {
        "throughput_ips": round(plan.throughput_ips, 1),
        "fill_latency_s": round(plan.fill_latency_s, 9),
        "bottleneck_s": round(plan.bottleneck_s, 9),
        "shards": [
            {
                "device": shard.device.name,
                "layers": list(shard.layers),
                "n_cu": shard.config.n_cu,
                "s_ec": shard.config.s_ec,
                "seconds_per_image": round(shard.seconds_per_image, 9),
            }
            for shard in plan.shards
        ],
        "links": [
            {
                "elements": transfer.elements,
                "seconds": round(transfer.seconds, 9),
            }
            for transfer in plan.transfers
        ],
    }


def test_bench_partition():
    """Partition search vs replication over the GXA7+GXA3 catalog."""
    clear_partition_cache()
    models = ["vgg16"] if QUICK else list(MODEL_CONFIGS)
    rows = {}
    print()
    for name in models:
        scale, spatial_scale = MODEL_CONFIGS[name]
        workload = synthetic_model_workload(
            name, seed=1, scale=scale, spatial_scale=spatial_scale
        )
        start = time.perf_counter()
        result = search_partitions(workload, CATALOG, seed=1)
        search_s = time.perf_counter() - start

        # The analytic plan numbers must match the finite-FIFO tandem-line
        # simulation exactly — same law, independent mechanism.
        report = simulate_shard_plan(result.best, images=SIM_IMAGES)
        assert report.steady_interval_s == pytest.approx(
            result.best.bottleneck_s, rel=1e-9
        )
        assert report.fill_latency_s == pytest.approx(
            result.best.fill_latency_s, rel=1e-9
        )

        rows[name] = {
            "scale": scale,
            "spatial_scale": spatial_scale,
            "devices": [d.name for d in CATALOG],
            "space_size": result.space_size,
            "evaluated": result.evaluated,
            "search_s": round(search_s, 3),
            "pipelined": _plan_row(result.best),
            "replication": {
                "per_device_ips": {
                    device: round(ips, 1)
                    for device, ips in result.replication.per_device_ips.items()
                },
                "total_ips": round(result.replication.total_ips, 1),
            },
            "speedup_vs_replication": round(result.speedup_vs_replication, 3),
            "simulated": {
                "images": SIM_IMAGES,
                "steady_interval_s": round(report.steady_interval_s, 9),
                "fill_latency_s": round(report.fill_latency_s, 9),
                "total_push_stalls": report.total_push_stalls,
            },
        }
        print(
            f"  {name:<8} pipelined {rows[name]['pipelined']['throughput_ips']:8.1f} img/s  "
            f"replicated {rows[name]['replication']['total_ips']:8.1f} img/s  "
            f"({rows[name]['speedup_vs_replication']:5.2f}x, "
            f"{result.best.n_shards} shards, "
            f"{result.evaluated} points in {search_s:.2f}s)"
        )

    report = {
        "generated_by": "benchmarks/bench_partition.py",
        "quick": QUICK,
        "models": rows,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  wrote {ARTIFACT}")

    # Headline acceptance: on the VGG16 pair the best pipelined deployment
    # beats whole-model replication across the same two boards.  The search
    # is deterministic cost-model arithmetic (no wall-clock noise), so the
    # floor holds in quick mode too; measured value is ~1.16x.
    vgg = rows["vgg16"]
    assert vgg["speedup_vs_replication"] > 1.05, vgg
    assert vgg["pipelined"]["throughput_ips"] > vgg["replication"]["total_ips"]
    assert len(vgg["pipelined"]["shards"]) == 2
