"""Benchmark: regenerate paper Figure 1 (roofline design spaces)."""

from repro.analysis import render_comparisons, worst_error
from repro.experiments import fig1


def test_bench_fig1(benchmark, seed):
    result = benchmark(fig1.run, seed)
    print()
    print(result.render())
    print()
    print(render_comparisons(result.comparisons, title="Figure 1 — paper vs measured"))
    # The three roofs are analytic; they must match within 2%.
    assert worst_error(result.comparisons) < 0.02
    # Ordering: SDConv < FDConv < ABM roof, with our point above [3]'s.
    roofs = [roof.gops for roof in result.roofline.roofs()]
    assert roofs == sorted(roofs)
