"""Benchmark: regenerate paper Table 1 (#OP by convolution scheme, VGG16)."""

from repro.analysis import render_comparisons, worst_error
from repro.experiments import table1


def test_bench_table1(benchmark, seed):
    result = benchmark(table1.run, seed)
    print()
    print(result.render())
    print()
    print(render_comparisons(result.comparisons, title="Table 1 — paper vs measured"))
    # Headline: 83.6% of ops saved vs dense spatial convolution.
    assert abs(result.counts.saved_vs_sdconv - 0.836) < 0.02
    assert worst_error(result.comparisons) < 0.12
