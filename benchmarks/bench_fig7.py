"""Benchmark: regenerate paper Figure 7 (S_ec x N_cu exploration)."""

from repro.analysis import render_comparisons
from repro.experiments import fig7


def test_bench_fig7(benchmark, seed):
    result = benchmark(fig7.run, seed)
    print()
    print(result.render())
    print()
    print(render_comparisons(result.comparisons, title="Figure 7 — paper vs measured"))
    # The paper's implemented point (S_ec=20, N_cu=3) is feasible and
    # within 10% of the best candidate our models find.
    assert result.paper_point is not None and result.paper_point.feasible
    best = result.candidates[0]
    assert result.paper_point.throughput_gops >= 0.9 * best.throughput_gops

    # Refinement: re-rank candidates at their congestion-limited Fmax
    # (the paper's reason for carrying several close candidates forward).
    from repro.dse import refine_with_frequency

    refined = refine_with_frequency(list(result.candidates))
    print("\ncongestion-refined ranking (delivered GOP/s at achievable Fmax):")
    for entry in refined[:5]:
        print(
            f"  S_ec={entry.point.s_ec:>2} N_cu={entry.point.n_cu} -> "
            f"{entry.delivered_gops:6.1f} GOP/s @ {entry.fmax_mhz:5.1f} MHz"
        )
    assert (20, 3) in [(r.point.s_ec, r.point.n_cu) for r in refined[:5]]
