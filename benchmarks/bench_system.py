"""Benchmark: pipelined CPU/FPGA system (paper Section 6.1).

Regenerates the paper's system-level claim that pipelined processing hides
the CPU layers (pooling, LRN, softmax) behind the FPGA's conv/FC time, and
reports the FPGA-only vs overall-system throughput split that Table 2's
footnote draws for [3] (663.5 vs 780.6 GOP/s).
"""

from repro.hw import PAPER_CONFIG_ALEXNET, PAPER_CONFIG_VGG16, STRATIX_V_GXA7
from repro.nn.models import get_architecture
from repro.system import run_system
from repro.workloads import synthetic_model_workload


def test_bench_system_pipeline(benchmark, seed):
    def run_both():
        results = {}
        for model, config in (
            ("alexnet", PAPER_CONFIG_ALEXNET),
            ("vgg16", PAPER_CONFIG_VGG16),
        ):
            results[model] = run_system(
                get_architecture(model),
                synthetic_model_workload(model, seed=seed),
                config,
                STRATIX_V_GXA7,
            )
        return results

    results = benchmark(run_both)
    print()
    for model, outcome in results.items():
        print(
            f"  {model:<8} fpga {outcome.fpga_seconds * 1e3:6.2f} ms  "
            f"host {outcome.host_seconds * 1e3:6.2f} ms  "
            f"cpu hidden: {outcome.cpu_hidden}  "
            f"fpga {outcome.fpga_gops:6.1f} GOP/s  "
            f"system {outcome.system_gops:6.1f} GOP/s  "
            f"pipeline gain {outcome.pipeline_speedup:4.2f}x"
        )
    # The paper's claim: CPU time is hidden for both models.
    assert results["vgg16"].cpu_hidden
    assert results["alexnet"].cpu_hidden
    # When hidden, system throughput equals the FPGA-only figure.
    assert results["vgg16"].system_gops == results["vgg16"].fpga_gops
